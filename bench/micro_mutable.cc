// Live-mutability benchmark: per-query cost of the mutable tier
// (search/mutable_laesa.h) in its three lives — the frozen base alone, the
// working state with a live delta segment + tombstones in front of the
// base, and the post-merge state where the background compaction has
// folded everything back into one segment.
//
// Contracts checked:
//   * mutable_exact — after inserting ~MMU_INSERT_PCT% new prototypes and
//     removing ~MMU_REMOVE_PCT% of the live set, every probe query answers
//     with the exact brute-force distance profile over the live set, only
//     live ids, and no removed id ever surfaces; the same holds again
//     after the merge (CI greps this boolean).
//
// The JSON reports p50 Nearest latency for each state plus the merge cost,
// so the delta/tombstone overhead and its reclamation are visible side by
// side.
//
// Human-readable progress goes to stderr; a single JSON object goes to
// stdout.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/mutable_laesa.h"
#include "search/nn_searcher.h"

namespace cned {
namespace {

double MedianSeconds(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

/// p50 of per-query Nearest latency over the probe set.
double MeasureP50(const MutableLaesa& index,
                  const std::vector<std::string>& queries) {
  std::vector<double> samples;
  samples.reserve(queries.size());
  for (const auto& q : queries) {
    Stopwatch w;
    (void)index.Nearest(q);
    samples.push_back(w.Seconds());
  }
  return MedianSeconds(samples);
}

/// Exactness vs brute force over the live map: distance profile rank for
/// rank (well-defined under ties), live ids only, true distances.
bool ProbesExact(const MutableLaesa& index,
                 const std::map<std::uint64_t, std::string>& live,
                 const StringDistance& dist,
                 const std::vector<std::string>& queries, std::size_t k) {
  for (const auto& q : queries) {
    std::vector<NeighborResult> want;
    want.reserve(live.size());
    for (const auto& [id, s] : live) {
      want.push_back({static_cast<std::size_t>(id), dist.Distance(q, s)});
    }
    std::sort(want.begin(), want.end(), NeighborLess);
    if (want.size() > k) want.resize(k);
    const auto got = index.KNearest(q, k);
    if (got.size() != want.size()) return false;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].distance != want[i].distance) return false;
      const auto it = live.find(got[i].index);
      if (it == live.end()) return false;  // dead or unknown id surfaced
      if (got[i].distance != dist.Distance(q, it->second)) return false;
    }
  }
  return true;
}

int Run() {
  std::ostream& log = std::cerr;
  const auto pool =
      static_cast<std::size_t>(Config::ScaledInt("MMU_POOL", 4000));
  const auto pivots =
      static_cast<std::size_t>(Config::ScaledInt("MMU_PIVOTS", 32));
  const auto num_queries =
      static_cast<std::size_t>(Config::ScaledInt("MMU_QUERIES", 60));
  const auto insert_pct =
      static_cast<std::size_t>(Config::Int("MMU_INSERT_PCT", 5));
  const auto remove_pct =
      static_cast<std::size_t>(Config::Int("MMU_REMOVE_PCT", 2));

  log << "micro_mutable: delta/tombstone overhead vs frozen base "
         "(scale=" << Config::Scale() << ")\n";

  Dataset dict = bench::MakeDictionary(pool, Config::Seed());
  Rng rng(Config::Seed() + 97);
  const auto queries =
      MakeQueries(dict.strings, num_queries, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");

  MutableLaesa::Options opt;
  opt.num_pivots = pivots;
  MutableLaesa index(dict.strings, dist, opt);
  std::map<std::uint64_t, std::string> live;
  for (std::size_t i = 0; i < dict.strings.size(); ++i) {
    live[i] = dict.strings[i];
  }

  // Warm, then measure the frozen base (no delta, no tombstones).
  (void)index.Nearest(queries.front());
  const double p50_frozen = MeasureP50(index, queries);
  log << "  frozen base: " << index.size() << " prototypes, p50 "
      << p50_frozen * 1e6 << " us\n";

  // Mutate: ~insert_pct% fresh perturbed entries, ~remove_pct% removals
  // spread over base and delta.
  const std::size_t inserts = dict.strings.size() * insert_pct / 100;
  const std::size_t removes = dict.strings.size() * remove_pct / 100;
  for (std::size_t i = 0; i < inserts; ++i) {
    const std::string s =
        dict.strings[rng.Index(dict.strings.size())] + std::to_string(i);
    live[index.Insert(s)] = s;
  }
  for (std::size_t i = 0; i < removes && live.size() > 1; ++i) {
    auto it = live.begin();
    std::advance(it, rng.Index(live.size()));
    if (index.Remove(it->first)) live.erase(it);
  }
  log << "  mutated: +" << inserts << " / -" << removes << ", delta "
      << index.delta_size() << ", tombstones " << index.tombstone_count()
      << "\n";

  const double p50_live = MeasureP50(index, queries);
  bool exact = ProbesExact(index, live, *dist, queries, 3);
  log << "  live delta: p50 " << p50_live * 1e6 << " us, exact "
      << (exact ? "yes" : "NO") << "\n";

  // Fold the delta + tombstones back into one segment and re-measure.
  Stopwatch merge_watch;
  const bool merged = index.MergeNow();
  const double merge_seconds = merge_watch.Seconds();
  const double p50_merged = MeasureP50(index, queries);
  exact = exact && merged && index.delta_size() == 0 &&
          index.tombstone_count() == 0 &&
          ProbesExact(index, live, *dist, queries, 3);
  log << "  merged: " << merge_seconds * 1e3 << " ms, p50 "
      << p50_merged * 1e6 << " us, exact " << (exact ? "yes" : "NO") << "\n";

  const double overhead =
      p50_frozen > 0.0 ? p50_live / p50_frozen : 0.0;

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"bench\": \"micro_mutable\",\n"
            << "  \"prototypes\": " << dict.strings.size() << ",\n"
            << "  \"pivots\": " << pivots << ",\n"
            << "  \"inserted\": " << inserts << ",\n"
            << "  \"removed\": " << removes << ",\n"
            << "  \"live\": " << live.size() << ",\n"
            << "  \"p50_frozen_seconds\": " << p50_frozen << ",\n"
            << "  \"p50_live_seconds\": " << p50_live << ",\n"
            << "  \"p50_merged_seconds\": " << p50_merged << ",\n"
            << "  \"live_over_frozen\": " << overhead << ",\n"
            << "  \"merge_seconds\": " << merge_seconds << ",\n"
            << "  \"mutable_exact\": " << (exact ? "true" : "false")
            << "\n}\n";
  return exact ? 0 : 1;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
