// Section 4.1 — Agreement between the exact contextual distance dC and the
// O(mn) heuristic dC,h.
//
// Paper: "dC,h(x,y) = dC(x,y) in 90% of the cases, with differences ranging
// from 0.03 for the dictionary to 0.008 for the contour strings."

#include <iomanip>
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "core/contextual.h"
#include "core/contextual_heuristic.h"

namespace cned {
namespace {

struct Agreement {
  double rate = 0.0;      // fraction of pairs with dC == dC,h
  double max_diff = 0.0;  // worst dC,h - dC
  double mean_diff = 0.0;
  double seconds_exact = 0.0;
  double seconds_heuristic = 0.0;
};

Agreement Measure(const std::vector<std::string>& data, std::size_t pairs,
                  Rng& rng) {
  Agreement a;
  std::size_t equal = 0;
  double total_diff = 0.0;
  Stopwatch watch;
  std::vector<std::pair<std::size_t, std::size_t>> sampled;
  for (std::size_t t = 0; t < pairs; ++t) {
    sampled.emplace_back(rng.Index(data.size()), rng.Index(data.size()));
  }
  std::vector<double> exact(pairs), heur(pairs);
  watch.Reset();
  for (std::size_t t = 0; t < pairs; ++t) {
    exact[t] = ContextualDistance(data[sampled[t].first],
                                  data[sampled[t].second]);
  }
  a.seconds_exact = watch.Seconds();
  watch.Reset();
  for (std::size_t t = 0; t < pairs; ++t) {
    heur[t] = ContextualHeuristicDistance(data[sampled[t].first],
                                          data[sampled[t].second]);
  }
  a.seconds_heuristic = watch.Seconds();
  for (std::size_t t = 0; t < pairs; ++t) {
    double diff = heur[t] - exact[t];
    if (diff < 1e-12) {
      ++equal;
    }
    total_diff += diff;
    a.max_diff = std::max(a.max_diff, diff);
  }
  a.rate = static_cast<double>(equal) / static_cast<double>(pairs);
  a.mean_diff = total_diff / static_cast<double>(pairs);
  return a;
}

int Run() {
  bench::Banner("Section 4.1: dC vs dC,h agreement",
                "de la Higuera & Mico, ICDE 2008, Section 4.1");
  const auto pairs =
      static_cast<std::size_t>(Config::ScaledInt("S41_PAIRS", 3000));

  Dataset dict = bench::MakeDictionary(
      static_cast<std::size_t>(Config::ScaledInt("S41_DICT", 1000)),
      Config::Seed());
  Dataset digits = bench::MakeDigits(
      static_cast<std::size_t>(Config::ScaledInt("S41_DIGITS_PER_CLASS", 10)),
      Config::Seed() + 1);
  Dataset genes = bench::MakeGenes(
      static_cast<std::size_t>(Config::ScaledInt("S41_GENES", 120)),
      Config::Seed() + 2, /*median_length=*/50.0);

  Rng rng(Config::Seed() + 3);
  Table table({"Dataset", "agreement %", "max diff", "mean diff",
               "t(dC) s", "t(dC,h) s"});
  struct Row {
    const char* name;
    const std::vector<std::string>* data;
    std::size_t pairs;
  };
  const Row rows[] = {
      {"Spanish dictionary", &dict.strings, pairs},
      {"handwritten digits", &digits.strings, pairs / 4},
      {"genes", &genes.strings, pairs / 4},
  };
  for (const Row& row : rows) {
    Agreement a = Measure(*row.data, row.pairs, rng);
    table.AddRow(row.name,
                 {100.0 * a.rate, a.max_diff, a.mean_diff, a.seconds_exact,
                  a.seconds_heuristic},
                 4);
  }
  table.Print(std::cout);
  std::cout << "\n(paper: ~90% agreement; max differences 0.03 (dictionary)"
            << " down to 0.008 (contours).\n The heuristic never "
               "undershoots: dC <= dC,h by construction.)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
