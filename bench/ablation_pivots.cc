// Ablation — LAESA pivot selection strategy and AESA comparison.
//
// The LAESA paper (and ours) uses greedy max-min pivots; this ablation
// quantifies the choice against uniformly random pivots, and positions both
// against AESA's full-matrix elimination (the quadratic-preprocessing upper
// bound on what triangle-inequality pruning can achieve).

#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "metric/stats.h"
#include "search/aesa.h"
#include "search/exhaustive.h"
#include "search/laesa.h"
#include "search/pivot_selection.h"

namespace cned {
namespace {

int Run() {
  bench::Banner("Ablation: pivot selection (max-min vs random) and AESA",
                "Mico, Oncina & Vidal 1994 (paper ref [5]); §4.3");
  const auto train =
      static_cast<std::size_t>(Config::ScaledInt("ABLP_TRAIN", 800));
  const auto queries =
      static_cast<std::size_t>(Config::ScaledInt("ABLP_QUERIES", 200));

  Dataset dict = bench::MakeDictionary(train, Config::Seed());
  Rng rng(Config::Seed() + 60);
  auto query_set = MakeQueries(dict.strings, queries, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");

  Table table({"Index", "pivots", "avg dist computations / query"});

  for (std::size_t pivots : {10u, 40u, 120u}) {
    {
      Laesa laesa(dict.strings, dist, pivots);
      Laesa::QueryStats st;
      for (const auto& q : query_set) laesa.Nearest(q, &st);
      table.AddRow("LAESA max-min pivots",
                   {static_cast<double>(pivots),
                    static_cast<double>(st.distance_computations) /
                        static_cast<double>(query_set.size())},
                   1);
    }
    {
      Rng prng(Config::Seed() + 61);
      Laesa laesa(dict.strings, dist,
                  SelectPivotsRandom(dict.size(), pivots, prng));
      Laesa::QueryStats st;
      for (const auto& q : query_set) laesa.Nearest(q, &st);
      table.AddRow("LAESA random pivots",
                   {static_cast<double>(pivots),
                    static_cast<double>(st.distance_computations) /
                        static_cast<double>(query_set.size())},
                   1);
    }
  }
  {
    Aesa aesa(dict.strings, dist);
    Aesa::QueryStats st;
    for (const auto& q : query_set) aesa.Nearest(q, &st);
    table.AddRow("AESA (full matrix)",
                 {static_cast<double>(dict.size()),
                  static_cast<double>(st.distance_computations) /
                      static_cast<double>(query_set.size())},
                 1);
  }
  table.AddRow("Exhaustive", {0.0, static_cast<double>(dict.size())}, 1);
  table.Print(std::cout);
  std::cout << "\n(AESA gives the fewest computations at quadratic "
               "preprocessing/memory.\n Note max-min pivots can LOSE to "
               "random at small pivot counts on data\n with length outliers "
               "— the greedy rule picks extreme words first;\n see "
               "EXPERIMENTS.md E13.)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
