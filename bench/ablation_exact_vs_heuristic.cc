// Ablation — exact Algorithm 1 vs the O(mn) heuristic.
//
// Quantifies the design decision the paper motivates in §4.1: how much
// slower is the exact cubic DP as strings grow, how often does the optimal
// edit length k* exceed d_E (the cases the heuristic misses), and by how
// much. Also cross-checks the quadratic-space layered DP against the
// closed-form decomposition invariants.

#include <iomanip>
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "core/contextual.h"
#include "core/contextual_heuristic.h"
#include "distances/levenshtein.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

int Run() {
  bench::Banner("Ablation: exact dC vs heuristic dC,h",
                "de la Higuera & Mico, ICDE 2008, Sections 3.2 & 4.1");
  Rng rng(Config::Seed() + 50);

  // 1. Runtime scaling with string length.
  std::cout << "--- runtime scaling (random 4-symbol strings) ---\n";
  Table scaling({"length", "t(dC) us", "t(dC,h) us", "ratio"});
  Alphabet ab("abcd");
  for (std::size_t len : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const std::size_t trials = len <= 64 ? 200 : 30;
    std::vector<std::string> xs, ys;
    for (std::size_t t = 0; t < trials; ++t) {
      xs.push_back(StringGen::Uniform(rng, ab, len));
      ys.push_back(StringGen::Uniform(rng, ab, len));
    }
    Stopwatch w1;
    for (std::size_t t = 0; t < trials; ++t) ContextualDistance(xs[t], ys[t]);
    double exact_us = w1.Seconds() * 1e6 / static_cast<double>(trials);
    Stopwatch w2;
    for (std::size_t t = 0; t < trials; ++t) {
      ContextualHeuristicDistance(xs[t], ys[t]);
    }
    double heur_us = w2.Seconds() * 1e6 / static_cast<double>(trials);
    scaling.AddRow(std::to_string(len),
                   {exact_us, heur_us, exact_us / heur_us}, 1);
  }
  scaling.Print(std::cout);

  // 2. Distribution of k* - dE on a paper-like dataset: how far beyond the
  // minimal edit length does the optimum live?
  std::cout << "\n--- optimal k* vs dE on the dictionary ---\n";
  Dataset dict = bench::MakeDictionary(
      static_cast<std::size_t>(Config::ScaledInt("ABL_DICT", 400)),
      Config::Seed());
  std::map<std::size_t, std::size_t> excess_histogram;
  const auto pairs =
      static_cast<std::size_t>(Config::ScaledInt("ABL_PAIRS", 4000));
  for (std::size_t t = 0; t < pairs; ++t) {
    const std::string& x = dict.strings[rng.Index(dict.size())];
    const std::string& y = dict.strings[rng.Index(dict.size())];
    auto r = ContextualDistanceDetailed(x, y);
    std::size_t de = LevenshteinDistance(x, y);
    ++excess_histogram[r.k - de];
  }
  Table excess({"k* - dE", "pairs", "share %"});
  for (const auto& [diff, count] : excess_histogram) {
    excess.AddRow(std::to_string(diff),
                  {static_cast<double>(count),
                   100.0 * static_cast<double>(count) /
                       static_cast<double>(pairs)});
  }
  excess.Print(std::cout);
  std::cout << "(k* == dE is exactly the case where the heuristic is "
               "exact)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
