// Figure 2 — Histograms of the normalised distances (top: dYB, dC,h, dMV,
// dmax) and of the plain Levenshtein distance (bottom) on the genes dataset.
//
// Shape to reproduce: the other normalisations concentrate their mass into
// narrow peaks (dYB worst), while dC,h and dE spread out — the property that
// gives the contextual distance its low intrinsic dimensionality (Table 1).

#include <iostream>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "distances/registry.h"
#include "metric/distance_matrix.h"
#include "metric/histogram.h"
#include "metric/stats.h"

namespace cned {
namespace {

int Run() {
  bench::Banner("Figure 2: distance histograms on DNA genes",
                "de la Higuera & Mico, ICDE 2008, Figure 2");
  const auto samples =
      static_cast<std::size_t>(Config::ScaledInt("FIG2_SAMPLES", 120));
  Dataset genes = bench::MakeGenes(samples, Config::Seed() + 2);
  std::cout << "genes: " << genes.size() << " sequences, mean length "
            << genes.MeanLength() << "\n\n";

  // Top panel: the four normalised distances share one [0,3) axis as in the
  // paper; bottom panel: the unbounded edit distance gets its own axis.
  for (const auto& dist : EvaluationDistances()) {
    const bool is_edit = dist->name() == "dE";
    double hi = is_edit ? 3.0 * genes.MeanLength() : 3.0;
    Histogram hist(0.0, hi, 30);
    Stopwatch watch;
    DistanceMatrix(genes.strings, *dist).FillHistogram(hist);
    std::cout << "--- " << dist->name() << " (" << watch.Seconds()
              << " s) --- mean=" << hist.stats().mean()
              << " sigma=" << hist.stats().stddev()
              << " rho=" << IntrinsicDimensionality(hist.stats()) << "\n"
              << hist.ToAscii(46) << "\n";
  }
  std::cout << "(paper shape: dYB most concentrated, then dMV/dmax;\n"
            << " dC,h and dE are the most spread out)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
