#ifndef CNED_BENCH_BENCH_UTIL_H_
#define CNED_BENCH_BENCH_UTIL_H_

// Shared workload construction for the experiment harnesses. Each bench
// binary reproduces one table or figure of the paper; sizes default to a
// laptop-friendly fraction of the paper's and scale with CNED_SCALE (see
// common/config.h). Set CNED_SCALE=10 to approach the paper's sizes.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.h"
#include "datasets/dataset.h"
#include "datasets/dictionary_gen.h"
#include "datasets/digit_contours.h"
#include "datasets/dna_gen.h"

namespace cned::bench {

/// Spanish-like dictionary (paper: 86,062 words; default here: 2,000).
inline Dataset MakeDictionary(std::size_t count, std::uint64_t seed) {
  DictionaryOptions opt;
  opt.word_count = count;
  opt.seed = seed;
  return GenerateDictionary(opt);
}

/// DNA gene families (paper: 20,660 Listeria genes; default here: short
/// sequences so the cubic baselines stay tractable).
inline Dataset MakeGenes(std::size_t count, std::uint64_t seed,
                         double median_length = 60.0) {
  DnaOptions opt;
  opt.sequence_count = count;
  opt.family_count = count / 8 + 1;
  opt.seed = seed;
  opt.median_length = median_length;
  opt.log_sigma = 0.8;
  opt.min_length = 10;
  opt.max_length = static_cast<std::size_t>(median_length * 8);
  return GenerateDnaGenes(opt);
}

/// Handwritten-digit contour strings (paper: NIST SD3).
inline Dataset MakeDigits(std::size_t per_class, std::uint64_t seed) {
  DigitContourOptions opt;
  opt.per_class = per_class;
  opt.seed = seed;
  opt.width = 24;
  opt.height = 32;
  opt.distortion = 1.0;  // unnormalised scribes, as in the paper
  return GenerateDigitContours(opt);
}

/// Prints the standard bench banner.
inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "scale=" << Config::Scale() << " seed=" << Config::Seed()
            << "  (set CNED_SCALE / CNED_SEED to adjust)\n"
            << "==========================================================\n";
}

}  // namespace cned::bench

#endif  // CNED_BENCH_BENCH_UTIL_H_
