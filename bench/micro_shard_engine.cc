// Shard-engine benchmark: LAESA nearest-neighbour queries over a
// ShardedPrototypeStore at 1/2/4/8 shards, answered (a) sequentially one
// query at a time through the lazy sharded sweep and (b) through the
// BatchQueryEngine's two-stage pipeline (one blocked query x pivot pass
// shared by the whole batch, then row-consuming sweeps on all cores).
//
// Contracts checked per shard count:
//   * the lazy sharded sweep returns bit-identical neighbours, distances
//     and QueryStats to the flat single-store Laesa (the sharded execution
//     is the same sweep, partitioned);
//   * the batched pipeline returns the same neighbour distances (both
//     paths are exact on the metric workload distances used here);
//   * the shared pivot stage evaluates fewer query-pivot distances per
//     batch than the per-query path — the batch repeats popular queries,
//     as serving traffic does, and the stage deduplicates them while the
//     per-query path cannot.
//
// Human-readable progress goes to stderr; a single JSON object goes to
// stdout (CI greps the contract booleans).

#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/batch_engine.h"
#include "search/laesa.h"
#include "search/sharded_laesa.h"

namespace cned {
namespace {

struct ShardRun {
  std::size_t shards = 0;
  double lazy_seconds = 0.0;
  double batched_seconds = 0.0;
  QueryStats lazy_stats;
  QueryStats batched_stats;
  std::vector<std::uint64_t> shard_evals;
  bool identical_to_flat = false;
  bool batched_distances_identical = false;
  bool pivot_stage_reduces = false;
};

struct DistanceReport {
  std::string distance;
  std::vector<ShardRun> runs;
};

DistanceReport RunDistance(const std::string& distance_name,
                           const std::vector<std::string>& protos,
                           const PrototypeStore& queries, std::size_t pivots,
                           std::ostream& log) {
  DistanceReport report;
  report.distance = distance_name;
  auto dist = MakeDistance(distance_name);

  // Flat single-store reference: the identity baseline for every shard
  // count (ShardedLaesa picks the same max-min pivots over the same data).
  PrototypeStore flat_store(protos);
  Laesa flat(flat_store, dist, pivots);
  QueryStats flat_stats;
  std::vector<NeighborResult> flat_results(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    flat_results[i] = flat.Nearest(queries[i], &flat_stats);
  }

  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    ShardRun run;
    run.shards = shards;
    ShardedPrototypeStore store(protos, shards);
    ShardedLaesa index(store, dist, pivots);

    // Warm-up so neither timed path pays first-allocation noise.
    BatchQueryEngine::Options opt;
    opt.pivot_stage = true;
    BatchQueryEngine batched(index, opt);
    (void)batched.Nearest(queries);

    std::vector<NeighborResult> lazy(queries.size());
    Stopwatch w_lazy;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      lazy[i] = index.Nearest(queries[i], &run.lazy_stats);
    }
    run.lazy_seconds = w_lazy.Seconds();

    std::vector<QueryStats> shard_stats;
    Stopwatch w_batched;
    auto batched_results = batched.Nearest(queries, &run.batched_stats,
                                           &shard_stats);
    run.batched_seconds = w_batched.Seconds();
    for (const QueryStats& s : shard_stats) {
      run.shard_evals.push_back(s.distance_computations);
    }

    run.identical_to_flat =
        run.lazy_stats == flat_stats && lazy.size() == flat_results.size();
    for (std::size_t i = 0; run.identical_to_flat && i < lazy.size(); ++i) {
      run.identical_to_flat = lazy[i].index == flat_results[i].index &&
                              lazy[i].distance == flat_results[i].distance;
    }
    run.batched_distances_identical =
        batched_results.size() == flat_results.size();
    for (std::size_t i = 0;
         run.batched_distances_identical && i < batched_results.size(); ++i) {
      run.batched_distances_identical =
          batched_results[i].distance == flat_results[i].distance;
    }
    run.pivot_stage_reduces = run.batched_stats.pivot_computations <
                              run.lazy_stats.pivot_computations;

    log << "  " << distance_name << " S=" << shards << ": lazy "
        << run.lazy_seconds * 1e3 << " ms ("
        << run.lazy_stats.pivot_computations << " pivot evals), batched "
        << run.batched_seconds * 1e3 << " ms ("
        << run.batched_stats.pivot_computations
        << " pivot evals), speedup "
        << (run.batched_seconds > 0.0
                ? run.lazy_seconds / run.batched_seconds
                : 0.0)
        << ", identical " << (run.identical_to_flat ? "yes" : "NO")
        << ", reduces " << (run.pivot_stage_reduces ? "yes" : "NO") << "\n";
    report.runs.push_back(std::move(run));
  }
  return report;
}

void PrintStats(const char* key, const QueryStats& s, std::ostream& out) {
  out << "\"" << key << "\": {\"computations\": " << s.distance_computations
      << ", \"pivot_evals\": " << s.pivot_computations
      << ", \"abandons\": " << s.bounded_abandons << "}";
}

int Run() {
  std::ostream& log = std::cerr;
  const auto pool =
      static_cast<std::size_t>(Config::ScaledInt("MSE_POOL", 2000));
  const auto num_queries =
      static_cast<std::size_t>(Config::ScaledInt("MSE_QUERIES", 600));
  const auto unique_queries =
      static_cast<std::size_t>(Config::ScaledInt("MSE_UNIQUE", 150));
  const auto pivots =
      static_cast<std::size_t>(Config::ScaledInt("MSE_PIVOTS", 40));
  const unsigned hw = std::thread::hardware_concurrency();

  log << "micro_shard_engine: sharded LAESA, lazy vs two-stage pipeline "
         "(scale=" << Config::Scale() << ", hardware threads=" << hw << ")\n";

  Dataset dict = bench::MakeDictionary(pool, Config::Seed());
  Rng rng(Config::Seed() + 71);
  // A serving-shaped batch: popular queries repeat. Draw the batch with
  // replacement from a small unique pool so the deduplicating pivot stage
  // has the duplicates production traffic would give it.
  auto unique_pool = MakeQueries(dict.strings, unique_queries, 2,
                                 Alphabet::Latin(), rng);
  PrototypeStore queries;
  queries.Reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    queries.Add(unique_pool[rng.Index(unique_pool.size())]);
  }
  log << "  " << dict.size() << " prototypes, " << queries.size()
      << " queries (" << unique_pool.size() << " unique), " << pivots
      << " pivots\n";

  std::vector<DistanceReport> reports;
  for (const char* name : {"dE", "dYB"}) {
    reports.push_back(RunDistance(name, dict.strings, queries, pivots, log));
  }

  bool all_identical = true, all_batched_identical = true, all_reduce = true;
  for (const auto& rep : reports) {
    for (const auto& run : rep.runs) {
      all_identical = all_identical && run.identical_to_flat;
      all_batched_identical =
          all_batched_identical && run.batched_distances_identical;
      all_reduce = all_reduce && run.pivot_stage_reduces;
    }
  }

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"bench\": \"micro_shard_engine\",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"prototypes\": " << dict.size() << ",\n"
            << "  \"queries\": " << queries.size() << ",\n"
            << "  \"unique_queries\": " << unique_pool.size() << ",\n"
            << "  \"pivots\": " << pivots << ",\n"
            << "  \"workloads\": [\n";
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const auto& rep = reports[r];
    std::cout << "   {\"distance\": \"" << rep.distance << "\", \"runs\": [\n";
    for (std::size_t i = 0; i < rep.runs.size(); ++i) {
      const auto& run = rep.runs[i];
      std::cout << "    {\"shards\": " << run.shards
                << ", \"lazy_seconds\": " << run.lazy_seconds
                << ", \"batched_seconds\": " << run.batched_seconds << ",\n     ";
      PrintStats("lazy", run.lazy_stats, std::cout);
      std::cout << ",\n     ";
      PrintStats("batched", run.batched_stats, std::cout);
      std::cout << ",\n     \"shard_evals\": [";
      for (std::size_t s = 0; s < run.shard_evals.size(); ++s) {
        std::cout << run.shard_evals[s]
                  << (s + 1 < run.shard_evals.size() ? ", " : "");
      }
      std::cout << "],\n     \"identical_to_flat\": "
                << (run.identical_to_flat ? "true" : "false")
                << ", \"batched_distances_identical\": "
                << (run.batched_distances_identical ? "true" : "false")
                << ", \"pivot_stage_reduces\": "
                << (run.pivot_stage_reduces ? "true" : "false") << "}"
                << (i + 1 < rep.runs.size() ? "," : "") << "\n";
    }
    std::cout << "   ]}" << (r + 1 < reports.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"identical_results\": "
            << (all_identical && all_batched_identical ? "true" : "false")
            << ",\n"
            << "  \"pivot_stage_reduces\": " << (all_reduce ? "true" : "false")
            << "\n}\n";
  return all_identical && all_batched_identical && all_reduce ? 0 : 1;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
