// Ablation — contour representation: raw Freeman chain codes (the paper's
// choice, "no preprocessing of the digits") versus normalised variants
// (differential code, canonical-rotation signature).
//
// Quantifies how much of the classification error is due to the raw
// representation rather than the distance — and whether the contextual
// distance's advantage survives representation normalisation.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "distances/registry.h"
#include "search/exhaustive.h"
#include "search/knn_classifier.h"
#include "strings/chain_code.h"

namespace cned {
namespace {

Dataset Transform(const Dataset& in, std::string (*f)(std::string_view)) {
  Dataset out;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.Add(f(in.strings[i]), in.labels[i]);
  }
  return out;
}

std::string Identity(std::string_view s) { return std::string(s); }
std::string Differential(std::string_view s) {
  return DifferentialChainCode(s);
}

int Run() {
  bench::Banner("Ablation: contour representation (raw vs normalised)",
                "de la Higuera & Mico, ICDE 2008, §4.4 data preparation");
  const auto train_pc =
      static_cast<std::size_t>(Config::ScaledInt("ABLC_TRAIN_PER_CLASS", 15));
  const auto test_pc =
      static_cast<std::size_t>(Config::ScaledInt("ABLC_TEST_PER_CLASS", 8));

  Dataset train_raw = bench::MakeDigits(train_pc, Config::Seed() + 80);
  Dataset test_raw = bench::MakeDigits(test_pc, Config::Seed() + 81);

  struct Repr {
    const char* name;
    std::string (*fn)(std::string_view);
  };
  const Repr reprs[] = {
      {"raw chain code (paper)", Identity},
      {"differential chain code", Differential},
      {"canonical signature", ContourSignature},
  };

  Table table({"Representation", "dE err %", "dC,h err %", "dmax err %"});
  for (const Repr& repr : reprs) {
    Dataset train = Transform(train_raw, repr.fn);
    Dataset test = Transform(test_raw, repr.fn);
    std::vector<double> errs;
    for (const char* dist_name : {"dE", "dC,h", "dmax"}) {
      auto dist = MakeDistance(dist_name);
      ExhaustiveSearch search(train.strings, dist);
      NearestNeighborClassifier clf(search, train.labels);
      errs.push_back(clf.ErrorRatePercent(test.strings, test.labels));
    }
    table.AddRow(repr.name, errs);
  }
  table.Print(std::cout);
  std::cout << "\n(the paper classifies raw codes; the normalised variants"
            << "\n quantify how much scribe rotation/start-point variation"
            << "\n contributes to the error)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
