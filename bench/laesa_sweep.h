#ifndef CNED_BENCH_LAESA_SWEEP_H_
#define CNED_BENCH_LAESA_SWEEP_H_

// Shared harness for Figures 3 and 4: LAESA pivot-count sweep reporting the
// average number of distance computations and the average search time per
// query, for each distance, with repetition-based deviations — the exact
// series the paper plots.
//
// Queries run through the BatchQueryEngine (all cores, merged stats): the
// distance-computation counts are identical to the sequential per-query
// loop by the engine's determinism contract, and the reported time is
// batched wall-clock per query, i.e. the throughput a serving deployment
// would see.
//
// With `shards > 1` the store is partitioned into a ShardedPrototypeStore
// and searched with ShardedLaesa. The lazy sharded sweep is bit-identical
// to the flat index (results and stats), so the headline columns stay
// comparable; the harness additionally reports the per-shard split of
// those evaluations and the totals of the batched two-stage pivot
// pipeline, whose shared query x pivot pass replaces the per-query pivot
// evaluations.

#include <cmath>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "datasets/prototype_store.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "metric/stats.h"
#include "search/batch_engine.h"
#include "search/laesa.h"
#include "search/sharded_laesa.h"
#include "search/sweep_kernel.h"

namespace cned::bench {

/// Applies a `--kernel=scalar|avx2|neon|auto` harness flag: forces the
/// sweep-kernel variant for the whole run, so the ablation chapters can
/// report vectorisation as its own row (distance-computation counts are
/// bit-identical across kernels by the sweep-kernel contract — only the
/// time column moves). Returns false, listing the available variants, for
/// an unknown or unsupported name.
inline bool ApplySweepKernelFlag(const std::string& value) {
  if (!SetActiveSweepKernels(value)) {
    std::cerr << "unknown or unavailable sweep kernel '" << value
              << "' (available:";
    for (const SweepKernels* k : AvailableSweepKernels()) {
      std::cerr << ' ' << k->name;
    }
    std::cerr << " auto)\n";
    return false;
  }
  std::cout << "sweep kernel: " << ActiveSweepKernels().name << "\n";
  return true;
}

/// Applies a `--table-precision=f64|f32|f16|u8` harness flag: selects the
/// pivot-table storage precision (search/table_quant.h) for every index the
/// sweep builds. Results are exact at any precision (admissible round-down)
/// — the computation columns may move slightly (quantized bounds prune a
/// little less), the time columns show the bandwidth effect. Returns false,
/// listing the valid names, for an unknown name.
inline bool ApplyTablePrecisionFlag(const std::string& value,
                                    TablePrecision* out) {
  if (!ParseTablePrecision(value, out)) {
    std::cerr << "unknown table precision '" << value
              << "' (valid: f64 f32 f16 u8)\n";
    return false;
  }
  std::cout << "table precision: " << TablePrecisionName(*out) << "\n";
  return true;
}

struct SweepPoint {
  std::size_t pivots = 0;
  double mean_computations = 0.0;
  double dev_computations = 0.0;
  double mean_seconds = 0.0;
  // Sharded runs only (shards > 1): the per-shard split of the lazy-path
  // evaluations, and the batched pivot-stage pipeline's per-query totals.
  std::vector<double> shard_mean_computations;
  double mean_batched_computations = 0.0;
  double mean_batched_pivot_evals = 0.0;
};

/// Runs the pivot sweep for one distance. Each repetition draws a fresh
/// prototype subset and query set (as the paper averages over 10 prototype
/// sets); computations are query-time only, as in the paper.
inline std::vector<SweepPoint> RunSweep(
    const StringDistancePtr& distance,
    const std::vector<std::string>& pool,
    const std::vector<std::string>& query_pool, std::size_t train_size,
    std::size_t queries_per_rep, std::size_t repetitions,
    const std::vector<std::size_t>& pivot_counts, Rng& rng,
    std::size_t shards = 1,
    TablePrecision precision = DefaultTablePrecision()) {
  std::vector<SweepPoint> series;
  for (std::size_t pivots : pivot_counts) {
    RunningStats comp_stats, time_stats, batched_comp, batched_pivot;
    std::vector<RunningStats> shard_comp(shards);
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      // Fresh prototype sample per repetition (same rng order regardless of
      // shard count, so every configuration sees identical data).
      std::vector<std::string> sample;
      sample.reserve(train_size);
      for (std::size_t i = 0; i < train_size; ++i) {
        sample.push_back(pool[rng.Index(pool.size())]);
      }
      // Query sample drawn before the timer (same rng order as the old
      // per-query loop), then answered as one batch.
      PrototypeStore queries;
      queries.Reserve(queries_per_rep);
      for (std::size_t q = 0; q < queries_per_rep; ++q) {
        queries.Add(query_pool[rng.Index(query_pool.size())]);
      }
      QueryStats qstats;
      double secs = 0.0;
      if (shards <= 1) {
        PrototypeStore protos(sample);
        Laesa laesa(protos, distance, pivots, /*first_pivot=*/0, precision);
        BatchQueryEngine engine(laesa);
        Stopwatch watch;
        (void)engine.Nearest(queries, &qstats);
        secs = watch.Seconds();
      } else {
        ShardedPrototypeStore store(sample, shards);
        ShardedLaesa laesa(store, distance, pivots, /*first_pivot=*/0,
                           precision);
        BatchQueryEngine engine(laesa);
        std::vector<QueryStats> shard_stats;
        Stopwatch watch;
        (void)engine.Nearest(queries, &qstats, &shard_stats);
        secs = watch.Seconds();
        for (std::size_t s = 0; s < shards; ++s) {
          shard_comp[s].Add(
              static_cast<double>(shard_stats[s].distance_computations) /
              static_cast<double>(queries_per_rep));
        }
        // Second pass through the two-stage pipeline: one shared blocked
        // query x pivot stage, then row-consuming sweeps.
        BatchQueryEngine::Options opt;
        opt.pivot_stage = true;
        BatchQueryEngine batched(laesa, opt);
        QueryStats bstats;
        (void)batched.Nearest(queries, &bstats);
        batched_comp.Add(static_cast<double>(bstats.distance_computations) /
                         static_cast<double>(queries_per_rep));
        batched_pivot.Add(static_cast<double>(bstats.pivot_computations) /
                          static_cast<double>(queries_per_rep));
      }
      comp_stats.Add(static_cast<double>(qstats.distance_computations) /
                     static_cast<double>(queries_per_rep));
      time_stats.Add(secs / static_cast<double>(queries_per_rep));
    }
    SweepPoint point;
    point.pivots = pivots;
    point.mean_computations = comp_stats.mean();
    point.dev_computations = comp_stats.stddev();
    point.mean_seconds = time_stats.mean();
    if (shards > 1) {
      for (std::size_t s = 0; s < shards; ++s) {
        point.shard_mean_computations.push_back(shard_comp[s].mean());
      }
      point.mean_batched_computations = batched_comp.mean();
      point.mean_batched_pivot_evals = batched_pivot.mean();
    }
    series.push_back(std::move(point));
  }
  return series;
}

/// Prints one figure (all distances) as aligned tables.
inline void PrintSweep(
    const std::vector<std::pair<std::string, std::vector<SweepPoint>>>& runs) {
  Table comp({"pivots", "dYB", "dC,h", "dMV", "dmax", "dE"});
  Table times({"pivots", "dYB", "dC,h", "dMV", "dmax", "dE"});
  if (runs.empty() || runs[0].second.empty()) return;
  for (std::size_t p = 0; p < runs[0].second.size(); ++p) {
    std::vector<std::string> comp_row{
        std::to_string(runs[0].second[p].pivots)};
    std::vector<std::string> time_row = comp_row;
    for (const auto& [name, series] : runs) {
      comp_row.push_back(FormatDouble(series[p].mean_computations, 1) +
                         "+-" + FormatDouble(series[p].dev_computations, 1));
      time_row.push_back(FormatDouble(series[p].mean_seconds * 1e6, 1));
    }
    comp.AddRow(comp_row);
    times.AddRow(time_row);
  }
  std::cout << "--- average distance computations per query ---\n";
  comp.Print(std::cout);
  std::cout << "\n--- average search time per query "
               "(microseconds, batched over all cores) ---\n";
  times.Print(std::cout);

  // Sharded runs carry a per-shard split: one extra table per distance.
  const std::size_t shards =
      runs[0].second[0].shard_mean_computations.size();
  if (shards == 0) return;
  for (const auto& [name, series] : runs) {
    std::vector<std::string> header{"pivots"};
    for (std::size_t s = 0; s < shards; ++s) {
      header.push_back("shard" + std::to_string(s));
    }
    header.push_back("batched total");
    header.push_back("batched pivot");
    Table per_shard(header);
    for (const SweepPoint& point : series) {
      std::vector<std::string> row{std::to_string(point.pivots)};
      for (double c : point.shard_mean_computations) {
        row.push_back(FormatDouble(c, 1));
      }
      row.push_back(FormatDouble(point.mean_batched_computations, 1));
      row.push_back(FormatDouble(point.mean_batched_pivot_evals, 1));
      per_shard.AddRow(row);
    }
    std::cout << "\n--- " << name
              << ": per-shard distance evaluations per query (lazy path; "
                 "last columns: two-stage pipeline totals) ---\n";
    per_shard.Print(std::cout);
  }
}

}  // namespace cned::bench

#endif  // CNED_BENCH_LAESA_SWEEP_H_
