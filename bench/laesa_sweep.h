#ifndef CNED_BENCH_LAESA_SWEEP_H_
#define CNED_BENCH_LAESA_SWEEP_H_

// Shared harness for Figures 3 and 4: LAESA pivot-count sweep reporting the
// average number of distance computations and the average search time per
// query, for each distance, with repetition-based deviations — the exact
// series the paper plots.
//
// Queries run through the BatchQueryEngine (all cores, merged stats): the
// distance-computation counts are identical to the sequential per-query
// loop by the engine's determinism contract, and the reported time is
// batched wall-clock per query, i.e. the throughput a serving deployment
// would see.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "datasets/prototype_store.h"
#include "distances/registry.h"
#include "metric/stats.h"
#include "search/batch_engine.h"
#include "search/laesa.h"

namespace cned::bench {

struct SweepPoint {
  std::size_t pivots = 0;
  double mean_computations = 0.0;
  double dev_computations = 0.0;
  double mean_seconds = 0.0;
};

/// Runs the pivot sweep for one distance. Each repetition draws a fresh
/// prototype subset and query set (as the paper averages over 10 prototype
/// sets); computations are query-time only, as in the paper.
inline std::vector<SweepPoint> RunSweep(
    const StringDistancePtr& distance,
    const std::vector<std::string>& pool,
    const std::vector<std::string>& query_pool, std::size_t train_size,
    std::size_t queries_per_rep, std::size_t repetitions,
    const std::vector<std::size_t>& pivot_counts, Rng& rng) {
  std::vector<SweepPoint> series;
  for (std::size_t pivots : pivot_counts) {
    RunningStats comp_stats, time_stats;
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      // Fresh prototype sample per repetition, packed into a flat arena.
      PrototypeStore protos;
      protos.Reserve(train_size);
      for (std::size_t i = 0; i < train_size; ++i) {
        protos.Add(pool[rng.Index(pool.size())]);
      }
      // Query sample drawn before the timer (same rng order as the old
      // per-query loop), then answered as one batch.
      PrototypeStore queries;
      queries.Reserve(queries_per_rep);
      for (std::size_t q = 0; q < queries_per_rep; ++q) {
        queries.Add(query_pool[rng.Index(query_pool.size())]);
      }
      Laesa laesa(protos, distance, pivots);
      BatchQueryEngine engine(laesa);
      QueryStats qstats;
      Stopwatch watch;
      (void)engine.Nearest(queries, &qstats);
      double secs = watch.Seconds();
      comp_stats.Add(static_cast<double>(qstats.distance_computations) /
                     static_cast<double>(queries_per_rep));
      time_stats.Add(secs / static_cast<double>(queries_per_rep));
    }
    series.push_back({pivots, comp_stats.mean(), comp_stats.stddev(),
                      time_stats.mean()});
  }
  return series;
}

/// Prints one figure (all distances) as aligned tables.
inline void PrintSweep(
    const std::vector<std::pair<std::string, std::vector<SweepPoint>>>& runs) {
  Table comp({"pivots", "dYB", "dC,h", "dMV", "dmax", "dE"});
  Table times({"pivots", "dYB", "dC,h", "dMV", "dmax", "dE"});
  if (runs.empty() || runs[0].second.empty()) return;
  for (std::size_t p = 0; p < runs[0].second.size(); ++p) {
    std::vector<std::string> comp_row{
        std::to_string(runs[0].second[p].pivots)};
    std::vector<std::string> time_row = comp_row;
    for (const auto& [name, series] : runs) {
      comp_row.push_back(FormatDouble(series[p].mean_computations, 1) +
                         "+-" + FormatDouble(series[p].dev_computations, 1));
      time_row.push_back(FormatDouble(series[p].mean_seconds * 1e6, 1));
    }
    comp.AddRow(comp_row);
    times.AddRow(time_row);
  }
  std::cout << "--- average distance computations per query ---\n";
  comp.Print(std::cout);
  std::cout << "\n--- average search time per query "
               "(microseconds, batched over all cores) ---\n";
  times.Print(std::cout);
}

}  // namespace cned::bench

#endif  // CNED_BENCH_LAESA_SWEEP_H_
