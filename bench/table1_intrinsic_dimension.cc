// Table 1 — Intrinsic dimensionality rho = mu^2 / (2 sigma^2) of the five
// distances over the three datasets (Spanish dictionary, handwritten
// digits, genes).
//
// Shape to reproduce (paper, Table 1): for every dataset
//   rho(dE) < rho(dC,h) << rho(dYB), rho(dMV), rho(dmax),
// i.e. the contextual distance is the least concentrated normalisation.

#include <iostream>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "distances/registry.h"
#include "metric/distance_matrix.h"
#include "metric/stats.h"

namespace cned {
namespace {

double Rho(const StringDistance& dist, const std::vector<std::string>& data,
           std::size_t max_sample) {
  // Full pairwise matrix over (a prefix of) the data, computed in parallel.
  std::vector<std::string> sample(
      data.begin(),
      data.begin() + static_cast<std::ptrdiff_t>(
                         std::min(max_sample, data.size())));
  return DistanceMatrix(sample, dist).IntrinsicDimension();
}

int Run() {
  bench::Banner("Table 1: intrinsic dimensionality",
                "de la Higuera & Mico, ICDE 2008, Table 1");
  const auto dict_n =
      static_cast<std::size_t>(Config::ScaledInt("T1_DICT", 800));
  const auto digits_n =
      static_cast<std::size_t>(Config::ScaledInt("T1_DIGITS_PER_CLASS", 12));
  const auto genes_n =
      static_cast<std::size_t>(Config::ScaledInt("T1_GENES", 120));
  const auto max_sample =
      static_cast<std::size_t>(Config::ScaledInt("T1_MAX_SAMPLE", 400));

  Dataset dict = bench::MakeDictionary(dict_n, Config::Seed());
  Dataset digits = bench::MakeDigits(digits_n, Config::Seed() + 1);
  Dataset genes = bench::MakeGenes(genes_n, Config::Seed() + 2);
  std::cout << "dictionary " << dict.size() << " words / digits "
            << digits.size() << " contours / genes " << genes.size()
            << " sequences\n\n";

  Table table({"Distance", "Spanish D.", "hand. digits", "genes"});
  Stopwatch watch;
  for (const auto& dist : EvaluationDistances()) {
    table.AddRow(dist->name(),
                 {Rho(*dist, dict.strings, max_sample),
                  Rho(*dist, digits.strings, max_sample),
                  Rho(*dist, genes.strings, max_sample)});
  }
  table.Print(std::cout);
  std::cout << "\ncomputed in " << watch.Seconds() << " s\n"
            << "(paper's values for reference: dYB 40.57/18.81/8.43, dC,h "
               "18.61/7.95/1.88,\n dMV 33.98/19.36/11.25, dmax "
               "30.25/19.48/14.13, dE 8.75/4.91/0.99;\n reproduce the "
               "ordering, not the absolute numbers)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
