// Table 2 — Error rate of 1-NN classification of handwritten digits, for
// the six distances, with LAESA and exhaustive search.
//
// Paper setup: ~1000 training digits (100 per class), 1000 test digits from
// different writers, 10 repetitions. Shape to reproduce: every
// normalisation beats the raw edit distance; dmax (despite not being a
// metric) is best; dC and dC,h obtain the *same* error rate; LAESA and
// exhaustive search give (nearly) identical errors.

#include <iostream>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "datasets/prototype_store.h"
#include "distances/registry.h"
#include "metric/stats.h"
#include "search/exhaustive.h"
#include "search/knn_classifier.h"
#include "search/laesa.h"

namespace cned {
namespace {

int Run() {
  bench::Banner("Table 2: 1-NN digit classification error (%)",
                "de la Higuera & Mico, ICDE 2008, Table 2");
  const auto train_per_class =
      static_cast<std::size_t>(Config::ScaledInt("T2_TRAIN_PER_CLASS", 12));
  const auto test_per_class =
      static_cast<std::size_t>(Config::ScaledInt("T2_TEST_PER_CLASS", 8));
  const auto reps =
      static_cast<std::size_t>(Config::ScaledInt("T2_REPS", 2));
  const auto pivots =
      static_cast<std::size_t>(Config::ScaledInt("T2_PIVOTS", 20));

  std::cout << "train " << train_per_class * 10 << " / test "
            << test_per_class * 10 << " digits per repetition, " << reps
            << " repetitions, " << pivots << " LAESA pivots\n\n";

  Table table({"Distance", "LAESA", "Exhaustive search"});
  Stopwatch total_watch;
  for (const auto& dist : ClassificationDistances()) {
    RunningStats laesa_err, exact_err;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Dataset train =
          bench::MakeDigits(train_per_class, Config::Seed() + 40 + rep);
      Dataset test =
          bench::MakeDigits(test_per_class, Config::Seed() + 140 + rep);
      // One flat arena per set, shared by both indexes; the classifier
      // answers the whole test span through the batch engine.
      PrototypeStore train_store(train.strings);
      PrototypeStore test_store(test.strings);

      Laesa laesa(train_store, dist, pivots);
      NearestNeighborClassifier laesa_clf(laesa, train.labels);
      laesa_err.Add(laesa_clf.ErrorRatePercent(test_store, test.labels));

      ExhaustiveSearch exact(train_store, dist);
      NearestNeighborClassifier exact_clf(exact, train.labels);
      exact_err.Add(exact_clf.ErrorRatePercent(test_store, test.labels));
    }
    table.AddRow(dist->name(), {laesa_err.mean(), exact_err.mean()});
    std::cout << "finished " << dist->name() << " (" << total_watch.Seconds()
              << " s elapsed)\n";
  }
  std::cout << '\n';
  table.Print(std::cout);
  std::cout << "\n(paper values: dYB 5.19/5.22, dMV 5.04/5.04, dC 5.30/5.30,"
            << "\n dC,h 5.30/5.30, dmax 4.85/4.86, dE 6.19/6.26 — reproduce"
            << "\n the ordering: normalisations < dE, and dC == dC,h)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
