// Batch-engine benchmark: end-to-end LAESA nearest-neighbour queries on the
// dictionary workload, answered (a) sequentially one query at a time and
// (b) through the BatchQueryEngine fanning the same query span across all
// cores. Results must be bit-identical and the merged stats must equal the
// sequential sums; queries/sec must not be.
//
// The speedup scales with the available cores (the engine adds no
// per-query work, only ParallelFor dispatch): on a multi-core machine
// expect >= 2x for the batched path; on a single hardware thread it
// degenerates to ~1x by construction.
//
// Human-readable progress goes to stderr; a single JSON object for the perf
// trajectory goes to stdout.

#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "distances/registry.h"
#include "search/batch_engine.h"
#include "search/laesa.h"

namespace cned {
namespace {

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  QueryStats stats;
};

struct WorkloadResult {
  std::string distance;
  RunResult sequential;
  RunResult batched;
  bool identical = false;
  bool stats_equal = false;
};

WorkloadResult RunWorkload(const std::string& distance_name,
                           const PrototypeStore& protos,
                           const PrototypeStore& queries, std::size_t pivots,
                           std::ostream& log) {
  WorkloadResult result;
  result.distance = distance_name;
  auto dist = MakeDistance(distance_name);
  Laesa laesa(protos, dist, pivots);

  // Warm-up: touch every thread-local scratch/workspace once so neither
  // path pays first-allocation noise inside the timed region.
  BatchQueryEngine engine(laesa);
  (void)engine.Nearest(queries);

  std::vector<NeighborResult> sequential(queries.size());
  Stopwatch w_seq;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    sequential[i] = laesa.Nearest(queries[i], &result.sequential.stats);
  }
  result.sequential.seconds = w_seq.Seconds();

  Stopwatch w_batch;
  auto batched = engine.Nearest(queries, &result.batched.stats);
  result.batched.seconds = w_batch.Seconds();

  const auto n = static_cast<double>(queries.size());
  result.sequential.qps =
      result.sequential.seconds > 0.0 ? n / result.sequential.seconds : 0.0;
  result.batched.qps =
      result.batched.seconds > 0.0 ? n / result.batched.seconds : 0.0;

  result.identical = batched.size() == sequential.size();
  for (std::size_t i = 0; result.identical && i < batched.size(); ++i) {
    result.identical = batched[i].index == sequential[i].index &&
                       batched[i].distance == sequential[i].distance;
  }
  result.stats_equal = result.batched.stats == result.sequential.stats;

  log << "  " << distance_name << ": sequential "
      << result.sequential.seconds * 1e3 << " ms (" << result.sequential.qps
      << " q/s), batched " << result.batched.seconds * 1e3 << " ms ("
      << result.batched.qps << " q/s), speedup "
      << (result.sequential.seconds > 0.0
              ? result.sequential.seconds / result.batched.seconds
              : 0.0)
      << ", identical " << (result.identical ? "yes" : "NO")
      << ", stats equal " << (result.stats_equal ? "yes" : "NO") << "\n";
  return result;
}

void PrintRun(const char* key, const RunResult& r, std::ostream& out) {
  out << "    \"" << key << "\": {\"seconds\": " << r.seconds
      << ", \"qps\": " << r.qps
      << ", \"computations\": " << r.stats.distance_computations
      << ", \"abandons\": " << r.stats.bounded_abandons << "}";
}

int Run() {
  std::ostream& log = std::cerr;
  const auto pool =
      static_cast<std::size_t>(Config::ScaledInt("MBE_POOL", 2000));
  const auto num_queries =
      static_cast<std::size_t>(Config::ScaledInt("MBE_QUERIES", 600));
  const auto pivots =
      static_cast<std::size_t>(Config::ScaledInt("MBE_PIVOTS", 40));
  const unsigned hw = std::thread::hardware_concurrency();

  log << "micro_batch_engine: sequential vs batched LAESA on the dictionary "
         "workload (scale=" << Config::Scale() << ", hardware threads=" << hw
      << ")\n";

  Dataset dict = bench::MakeDictionary(pool, Config::Seed());
  PrototypeStore protos(dict.strings);
  Rng rng(Config::Seed() + 51);
  PrototypeStore queries(
      MakeQueries(dict.strings, num_queries, 2, Alphabet::Latin(), rng));
  log << "  " << protos.size() << " prototypes (" << protos.arena_bytes()
      << " arena bytes), " << queries.size() << " queries, " << pivots
      << " pivots\n";

  std::vector<WorkloadResult> results;
  for (const char* name : {"dE", "dYB"}) {
    results.push_back(RunWorkload(name, protos, queries, pivots, log));
  }

  bool all_identical = true, all_stats_equal = true;
  for (const auto& r : results) {
    all_identical = all_identical && r.identical;
    all_stats_equal = all_stats_equal && r.stats_equal;
  }

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"bench\": \"micro_batch_engine\",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"prototypes\": " << protos.size() << ",\n"
            << "  \"queries\": " << queries.size() << ",\n"
            << "  \"pivots\": " << pivots << ",\n"
            << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::cout << "   {\n"
              << "    \"distance\": \"" << r.distance << "\",\n";
    PrintRun("sequential", r.sequential, std::cout);
    std::cout << ",\n";
    PrintRun("batched", r.batched, std::cout);
    std::cout << ",\n"
              << "    \"speedup\": "
              << (r.batched.seconds > 0.0
                      ? r.sequential.seconds / r.batched.seconds
                      : 0.0)
              << ",\n"
              << "    \"identical_results\": "
              << (r.identical ? "true" : "false") << ",\n"
              << "    \"stats_equal\": " << (r.stats_equal ? "true" : "false")
              << "\n   }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"identical_results\": "
            << (all_identical ? "true" : "false") << ",\n"
            << "  \"stats_equal\": " << (all_stats_equal ? "true" : "false")
            << "\n}\n";
  return all_identical && all_stats_equal ? 0 : 1;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
