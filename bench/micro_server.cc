// Concurrent serving benchmark: N client threads driving simultaneous
// scatter/gather sweeps through the admission-batching front end
// (serve/engine.h) over the concurrent pipelined router (serve/router.h),
// on a fig3-style dictionary workload.
//
// The machine model this measures is deliberately hostile: every process
// (router, 4 shard workers) shares whatever cores exist — on a single
// core the win cannot come from parallel compute at all. It comes from
// syscall and context-switch coalescing: concurrent senders flat-combine
// frames into shared writes, the worker drain loop answers every buffered
// request per wakeup, and the reactor's migrating reader completes all
// waiting queries per recv. The serialized baseline is the *same* stack
// driven by the same threads behind one external mutex — identical work,
// one query in flight — so the ratio isolates exactly what pipelining
// buys.
//
// Measured:
//   * per-query latency (p50/p99) and throughput at 1/2/4/8/16 closed-loop
//     clients, unreplicated (R=1), through the engine's pivot-row path;
//   * the serialized baseline at 8 clients (one-at-a-time, same stack);
//   * the replicated tier (R=2) at 8 concurrent clients;
//   * an overload segment: a deliberately tiny engine (short queue, 2
//     in-flight slots, ~instant admission deadline) hammered by 16
//     clients, which must shed — fast refusals, not collapse — while
//     every admitted query stays exact.
//
// Contracts checked (CI greps the booleans):
//   * "concurrent_exact": every non-shed answer, at every client count
//     and both replica counts, is bit-identical — neighbours, distances
//     AND QueryStats — to the in-process ShardedLaesa pivot-row path
//     (ComputePivotRow + KNearestWithPivotRow);
//   * "concurrent_throughput_ok": 8 concurrent clients sustain >= 3x the
//     serialized baseline's throughput (R=1) — the pipelining headline;
//   * "overload_sheds": the overload segment shed at least one query and
//     answered the rest exactly.
//
// Human-readable progress goes to stderr; a single JSON object goes to
// stdout.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <stdlib.h>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datasets/perturb.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/pivot_stage.h"
#include "search/sharded_laesa.h"
#include "serve/engine.h"
#include "serve/router.h"
#include "serve/shard_snapshot.h"

namespace cned {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/cned_mserv_XXXXXX";
    char* p = mkdtemp(tmpl);
    path = p != nullptr ? p : "";
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[i];
}

bool Identical(const ServeResult& got, const std::vector<NeighborResult>& want,
               const QueryStats& want_stats) {
  if (got.partial || got.shed || !got.missing_shards.empty() ||
      got.neighbors.size() != want.size() || !(got.stats == want_stats)) {
    return false;
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got.neighbors[i].index != want[i].index ||
        got.neighbors[i].distance != want[i].distance) {
      return false;
    }
  }
  return true;
}

/// One closed-loop phase: `clients` threads each issue `per_client`
/// queries back to back through `call`, which returns the ServeResult for
/// query index `qi`. Shed answers are counted, not latency-sampled.
struct Phase {
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t shed = 0;
  bool exact = true;
};

Phase RunClients(std::size_t clients, std::size_t per_client,
                 std::size_t num_queries,
                 const std::function<ServeResult(std::size_t)>& call,
                 const std::function<bool(std::size_t, const ServeResult&)>&
                     check) {
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::size_t> shed(clients, 0);
  std::vector<char> ok(clients, 1);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Stopwatch wall;
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t j = 0; j < per_client; ++j) {
        // Staggered round-robin: threads overlap on popular queries, so
        // the engine's duplicate-row dedup sees real work.
        const std::size_t qi = (t * 3 + j) % num_queries;
        Stopwatch w;
        const ServeResult got = call(qi);
        if (got.shed) {
          ++shed[t];
          continue;
        }
        lat[t].push_back(w.Seconds() * 1e3);
        if (!check(qi, got)) ok[t] = 0;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  Phase ph;
  ph.wall_s = wall.Seconds();
  std::vector<double> all;
  for (std::size_t t = 0; t < clients; ++t) {
    all.insert(all.end(), lat[t].begin(), lat[t].end());
    ph.shed += shed[t];
    ph.exact = ph.exact && ok[t] != 0;
  }
  ph.qps = ph.wall_s > 0.0 ? static_cast<double>(all.size()) / ph.wall_s : 0.0;
  ph.p50_ms = Percentile(all, 0.50);
  ph.p99_ms = Percentile(all, 0.99);
  return ph;
}

int Run() {
  std::ostream& log = std::cerr;
  const auto pool =
      static_cast<std::size_t>(Config::ScaledInt("MSERVER_POOL", 2000));
  const auto pivots =
      static_cast<std::size_t>(Config::ScaledInt("MSERVER_PIVOTS", 16));
  const auto num_queries =
      static_cast<std::size_t>(Config::ScaledInt("MSERVER_QUERIES", 32));
  const auto iters =
      static_cast<std::size_t>(Config::Int("MSERVER_ITERS", 25));
  const std::size_t shards = 4;
  const std::size_t k = 5;

  log << "micro_server: concurrent pipelined serving vs serialized baseline "
         "(scale=" << Config::Scale() << ")\n";

  Dataset dict = bench::MakeDictionary(pool, Config::Seed());
  Rng rng(Config::Seed() + 131);
  const auto queries =
      MakeQueries(dict.strings, num_queries, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");

  ShardedPrototypeStore store(dict.strings, shards);
  ShardedLaesa index(store, dist, pivots);
  TempDir dir;
  SaveServingSnapshot(index, dir.path);

  // In-process reference: the sequential two-stage pivot-row path — what
  // both the engine and the router's batch path must match bit-for-bit.
  const PivotStageSearcher& ps = index;
  const std::size_t np = ps.pivot_count();
  std::vector<std::vector<NeighborResult>> want(queries.size());
  std::vector<QueryStats> want_stats(queries.size());
  {
    std::vector<double> row(np);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      QueryStats st;
      ps.ComputePivotRow(queries[i], row.data(), &st);
      want[i] = ps.KNearestWithPivotRow(queries[i], k, row.data(), &st);
      want_stats[i] = st;
    }
  }
  const auto check = [&](std::size_t qi, const ServeResult& got) {
    return Identical(got, want[qi], want_stats[qi]);
  };

  ServeOptions opt;
  opt.distance = "dE";
  opt.replicas = 1;

  ServeEngineOptions eng_opt;
  eng_opt.max_batch = 8;
  eng_opt.max_inflight = 32;
  eng_opt.max_queue = 1024;
  // The ladder must never shed — admission latency is measured, not
  // refused. The overload segment below uses a tiny engine instead.
  eng_opt.admission_timeout_ms = 120000;

  bool exact = true;
  const std::vector<std::size_t> client_counts = {1, 2, 4, 8, 16};
  std::vector<double> p50_ms, p99_ms, qps;
  double concurrent_qps_8 = 0.0;

  {
    ServeRouter router(dir.path, opt);
    ServeEngine engine(router, eng_opt);
    for (std::size_t clients : client_counts) {
      const Phase ph = RunClients(
          clients, iters, queries.size(),
          [&](std::size_t qi) { return engine.KNearest(queries[qi], k); },
          check);
      exact = exact && ph.exact && ph.shed == 0;
      p50_ms.push_back(ph.p50_ms);
      p99_ms.push_back(ph.p99_ms);
      qps.push_back(ph.qps);
      if (clients == 8) concurrent_qps_8 = ph.qps;
      log << "  C=" << clients << " R=1: " << ph.qps << " q/s, p50 "
          << ph.p50_ms << " ms, p99 " << ph.p99_ms << " ms\n";
    }
    log << "  engine: " << engine.batches() << " batches over "
        << engine.batched_queries() << " queries, " << engine.deduped_rows()
        << " rows deduped\n";
  }

  // Serialized baseline: the SAME stack, the same 8 threads, one query in
  // flight at a time — the pre-pipelining serving tier.
  double serialized_qps_8 = 0.0;
  {
    ServeRouter router(dir.path, opt);
    ServeEngine engine(router, eng_opt);
    std::mutex serial_mu;
    const Phase ph = RunClients(
        8, iters, queries.size(),
        [&](std::size_t qi) {
          std::lock_guard<std::mutex> one_at_a_time(serial_mu);
          return engine.KNearest(queries[qi], k);
        },
        check);
    exact = exact && ph.exact && ph.shed == 0;
    serialized_qps_8 = ph.qps;
    log << "  C=8 serialized baseline: " << ph.qps << " q/s, p50 "
        << ph.p50_ms << " ms, p99 " << ph.p99_ms << " ms\n";
  }
  const double speedup =
      serialized_qps_8 > 0.0 ? concurrent_qps_8 / serialized_qps_8 : 0.0;
  const bool throughput_ok = speedup >= 3.0;
  log << "  pipelining speedup at 8 clients: " << speedup << "x ("
      << (throughput_ok ? "ok" : "BELOW 3x") << ")\n";

  // Replicated tier: every begin/step now fans out to two processes per
  // shard; answers must stay exact under the same concurrency.
  double rep_p50 = 0.0, rep_p99 = 0.0, rep_qps = 0.0;
  {
    ServeOptions rep_opt = opt;
    rep_opt.replicas = 2;
    ServeRouter router(dir.path, rep_opt);
    ServeEngine engine(router, eng_opt);
    const Phase ph = RunClients(
        8, std::max<std::size_t>(iters / 2, 5), queries.size(),
        [&](std::size_t qi) { return engine.KNearest(queries[qi], k); },
        check);
    exact = exact && ph.exact && ph.shed == 0;
    rep_p50 = ph.p50_ms;
    rep_p99 = ph.p99_ms;
    rep_qps = ph.qps;
    log << "  C=8 R=2: " << rep_qps << " q/s, p50 " << rep_p50 << " ms, p99 "
        << rep_p99 << " ms\n";
  }

  // Overload: a front end sized for 2 concurrent sweeps and a near-zero
  // admission budget, hammered by 16 clients. The contract is fast
  // refusal — some queries shed, every admitted one exact, nothing hangs.
  std::size_t overload_shed = 0, overload_served = 0;
  bool overload_exact = true;
  {
    ServeRouter router(dir.path, opt);
    ServeEngineOptions tiny;
    tiny.max_batch = 4;
    tiny.max_inflight = 2;
    tiny.max_queue = 4;
    tiny.admission_timeout_ms = 20;
    ServeEngine engine(router, tiny);
    const Phase ph = RunClients(
        16, iters, queries.size(),
        [&](std::size_t qi) { return engine.KNearest(queries[qi], k); },
        check);
    overload_shed = ph.shed;
    overload_served = static_cast<std::size_t>(16 * iters) - ph.shed;
    overload_exact = ph.exact;
    log << "  overload (queue=4, inflight=2): " << overload_shed
        << " shed, " << overload_served << " served exactly\n";
  }
  const bool overload_sheds = overload_shed > 0 && overload_exact;
  exact = exact && overload_exact;

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"bench\": \"micro_server\",\n"
            << "  \"prototypes\": " << dict.strings.size() << ",\n"
            << "  \"pivots\": " << pivots << ",\n"
            << "  \"queries\": " << queries.size() << ",\n"
            << "  \"iters_per_client\": " << iters << ",\n"
            << "  \"clients\": [1, 2, 4, 8, 16],\n"
            << "  \"qps\": [" << qps[0] << ", " << qps[1] << ", " << qps[2]
            << ", " << qps[3] << ", " << qps[4] << "],\n"
            << "  \"p50_ms\": [" << p50_ms[0] << ", " << p50_ms[1] << ", "
            << p50_ms[2] << ", " << p50_ms[3] << ", " << p50_ms[4] << "],\n"
            << "  \"p99_ms\": [" << p99_ms[0] << ", " << p99_ms[1] << ", "
            << p99_ms[2] << ", " << p99_ms[3] << ", " << p99_ms[4] << "],\n"
            << "  \"serialized_qps_8\": " << serialized_qps_8 << ",\n"
            << "  \"concurrent_qps_8\": " << concurrent_qps_8 << ",\n"
            << "  \"pipelining_speedup\": " << speedup << ",\n"
            << "  \"replicated_qps_8\": " << rep_qps << ",\n"
            << "  \"replicated_p50_ms\": " << rep_p50 << ",\n"
            << "  \"replicated_p99_ms\": " << rep_p99 << ",\n"
            << "  \"overload_shed\": " << overload_shed << ",\n"
            << "  \"concurrent_exact\": " << (exact ? "true" : "false")
            << ",\n"
            << "  \"concurrent_throughput_ok\": "
            << (throughput_ok ? "true" : "false") << ",\n"
            << "  \"overload_sheds\": " << (overload_sheds ? "true" : "false")
            << "\n}\n";

  return exact && throughput_ok && overload_sheds ? 0 : 1;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
