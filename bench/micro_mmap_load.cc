// Mmap-serving benchmark: startup cost of the copying loaders
// (`PrototypeStore::LoadBinary` + `Laesa::Load`) versus the zero-copy
// mapped loaders (`PrototypeStore::Map` + `Laesa::Map`) on a fig3-style
// dictionary snapshot, plus the first-query latency each freshly started
// "process" then pays.
//
// Contracts checked:
//   * the mapped index answers every probe query with bit-identical
//     neighbours, distances and QueryStats to the built and the
//     copy-loaded index;
//   * Map() startup is at least 10x faster than the copying Load() — the
//     table and arena sections are used in place, so the map path does
//     O(prototypes) validation instead of O(pivots x prototypes) copying;
//   * snapshot_shrink_ok — the f16 index snapshot is at least 2x smaller
//     than the f64 one (the quantized-table storage win,
//     search/table_quant.h), and the quantized mapped index answers probes
//     bit-identically to the index built at the same precision.
//
// The JSON also breaks each snapshot into its sections (pivot table vs
// string arena vs bookkeeping, computed from the format layout) and lists
// the index file size at every table precision.
//
// Human-readable progress goes to stderr; a single JSON object goes to
// stdout (CI greps the contract booleans).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "distances/registry.h"
#include "search/laesa.h"
#include "search/table_quant.h"

namespace cned {
namespace {

std::size_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::size_t>(in.tellg()) : 0;
}

bool ProbesIdentical(const Laesa& a, const Laesa& b,
                     const std::vector<std::string>& queries) {
  for (const auto& q : queries) {
    QueryStats sa, sb;
    const NeighborResult ra = a.Nearest(q, &sa);
    const NeighborResult rb = b.Nearest(q, &sb);
    if (ra.index != rb.index || ra.distance != rb.distance || !(sa == sb)) {
      return false;
    }
  }
  return true;
}

int Run() {
  std::ostream& log = std::cerr;
  const auto pool =
      static_cast<std::size_t>(Config::ScaledInt("MML_POOL", 6000));
  const auto pivots =
      static_cast<std::size_t>(Config::ScaledInt("MML_PIVOTS", 64));
  const auto num_queries =
      static_cast<std::size_t>(Config::ScaledInt("MML_QUERIES", 40));
  const int reps = static_cast<int>(Config::Int("MML_REPS", 9));

  log << "micro_mmap_load: copy Load() vs zero-copy Map() startup "
         "(scale=" << Config::Scale() << ")\n";

  Dataset dict = bench::MakeDictionary(pool, Config::Seed());
  Rng rng(Config::Seed() + 83);
  const auto queries =
      MakeQueries(dict.strings, num_queries, 2, Alphabet::Latin(), rng);

  auto dist = MakeDistance("dE");
  PrototypeStore store(dict.strings);
  Laesa built(store, dist, pivots);
  const std::string store_path = "micro_mmap_store.bin";
  const std::string index_path = "micro_mmap_index.bin";
  store.SaveBinary(store_path);
  built.Save(index_path);
  const std::size_t store_bytes = FileBytes(store_path);
  const std::size_t index_bytes = FileBytes(index_path);
  log << "  " << store.size() << " prototypes, " << pivots
      << " pivots; snapshot " << store_bytes << " + " << index_bytes
      << " bytes\n";

  const double inf = std::numeric_limits<double>::infinity();
  double copy_load = inf, map_load = inf;
  double copy_first_query = inf, map_first_query = inf;
  bool identical = true;

  // Best-of-N so both paths are measured against a warm page cache — the
  // honest comparison, since the copy path reads through the same cache.
  for (int rep = 0; rep < reps; ++rep) {
    {
      Stopwatch w;
      PrototypeStore served_store = PrototypeStore::LoadBinary(store_path);
      Laesa served = Laesa::Load(index_path, served_store, dist);
      const double t = w.Seconds();
      if (t < copy_load) copy_load = t;
      Stopwatch wq;
      (void)served.Nearest(queries.front());
      const double tq = wq.Seconds();
      if (tq < copy_first_query) copy_first_query = tq;
      identical = identical && ProbesIdentical(built, served, queries);
    }
    {
      Stopwatch w;
      PrototypeStore served_store = PrototypeStore::Map(store_path);
      Laesa served = Laesa::Map(index_path, served_store, dist);
      const double t = w.Seconds();
      if (t < map_load) map_load = t;
      Stopwatch wq;
      (void)served.Nearest(queries.front());
      const double tq = wq.Seconds();
      if (tq < map_first_query) map_first_query = tq;
      identical = identical && ProbesIdentical(built, served, queries);
    }
  }

  // Per-section byte accounting, from the format layout: the pivot table
  // dominates the index file, the character arena the store file; the rest
  // (headers, pivot ids, lengths/offsets, alignment, CRC footers) is
  // bookkeeping.
  const std::size_t n = store.size();
  const std::size_t table_bytes = pivots * n * sizeof(double);
  const std::size_t index_bookkeeping_bytes = index_bytes - table_bytes;
  std::size_t arena_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) arena_bytes += store.view(i).size();
  const std::size_t store_bookkeeping_bytes = store_bytes - arena_bytes;
  log << "  sections: table " << table_bytes << " B, arena " << arena_bytes
      << " B, bookkeeping " << (index_bookkeeping_bytes +
                                store_bookkeeping_bytes) << " B\n";

  // Quantized snapshots: size at every precision, plus a probe-identity
  // check that the mapped quantized index serves exactly what the
  // same-precision build computes.
  constexpr TablePrecision kPrecisions[] = {
      TablePrecision::kF64, TablePrecision::kF32, TablePrecision::kF16,
      TablePrecision::kU8};
  std::vector<std::pair<std::string, std::size_t>> precision_bytes;
  std::size_t f16_bytes = 0;
  bool quantized_identical = true;
  for (TablePrecision prec : kPrecisions) {
    std::size_t bytes = index_bytes;
    if (prec != TablePrecision::kF64) {
      Laesa quantized(store, dist, pivots, /*first_pivot=*/0, prec);
      const std::string qpath =
          "micro_mmap_index_" + std::string(TablePrecisionName(prec)) + ".bin";
      quantized.Save(qpath);
      bytes = FileBytes(qpath);
      Laesa mapped = Laesa::Map(qpath, store, dist);
      quantized_identical =
          quantized_identical && ProbesIdentical(quantized, mapped, queries);
      std::remove(qpath.c_str());
    }
    if (prec == TablePrecision::kF16) f16_bytes = bytes;
    precision_bytes.emplace_back(TablePrecisionName(prec), bytes);
    log << "  index at " << TablePrecisionName(prec) << ": " << bytes
        << " bytes\n";
  }
  const bool snapshot_shrink_ok =
      f16_bytes > 0 && index_bytes >= 2 * f16_bytes && quantized_identical;
  log << "  f64 -> f16 snapshot shrink: "
      << (f16_bytes > 0 ? static_cast<double>(index_bytes) /
                              static_cast<double>(f16_bytes)
                        : 0.0)
      << "x (" << (snapshot_shrink_ok ? "ok" : "BELOW 2x or probes diverged")
      << ")\n";

  const double speedup = map_load > 0.0 ? copy_load / map_load : inf;
  const bool speedup_ok = speedup >= 10.0;
  log << "  copy load " << copy_load * 1e3 << " ms, map load "
      << map_load * 1e3 << " ms, startup speedup " << speedup << "x ("
      << (speedup_ok ? "ok" : "BELOW 10x") << ")\n"
      << "  first query: copy " << copy_first_query * 1e6 << " us, map "
      << map_first_query * 1e6 << " us\n"
      << "  identical results: " << (identical ? "yes" : "NO") << "\n";

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"bench\": \"micro_mmap_load\",\n"
            << "  \"prototypes\": " << store.size() << ",\n"
            << "  \"pivots\": " << pivots << ",\n"
            << "  \"store_bytes\": " << store_bytes << ",\n"
            << "  \"index_bytes\": " << index_bytes << ",\n"
            << "  \"sections\": {\"table_bytes\": " << table_bytes
            << ", \"arena_bytes\": " << arena_bytes
            << ", \"index_bookkeeping_bytes\": " << index_bookkeeping_bytes
            << ", \"store_bookkeeping_bytes\": " << store_bookkeeping_bytes
            << "},\n"
            << "  \"index_bytes_by_precision\": {";
  for (std::size_t i = 0; i < precision_bytes.size(); ++i) {
    std::cout << "\"" << precision_bytes[i].first
              << "\": " << precision_bytes[i].second
              << (i + 1 < precision_bytes.size() ? ", " : "");
  }
  std::cout << "},\n"
            << "  \"snapshot_shrink_ok\": "
            << (snapshot_shrink_ok ? "true" : "false") << ",\n";
  std::cout
            << "  \"copy_load_seconds\": " << copy_load << ",\n"
            << "  \"map_load_seconds\": " << map_load << ",\n"
            << "  \"load_speedup\": " << speedup << ",\n"
            << "  \"copy_first_query_seconds\": " << copy_first_query << ",\n"
            << "  \"map_first_query_seconds\": " << map_first_query << ",\n"
            << "  \"identical_results\": " << (identical ? "true" : "false")
            << ",\n"
            << "  \"map_speedup_ok\": " << (speedup_ok ? "true" : "false")
            << "\n}\n";

  std::remove(store_path.c_str());
  std::remove(index_path.c_str());
  return identical && speedup_ok && snapshot_shrink_ok ? 0 : 1;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
