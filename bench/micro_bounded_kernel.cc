// Bounded-kernel engine benchmark: (1) raw kernel throughput of the banded
// contextual DP with and without a caller bound, counting DP cells; (2)
// end-to-end LAESA nearest-neighbour queries on the dictionary workload with
// the bound-passing engine versus an adapter that ignores bounds (the
// pre-engine baseline) — same pivots, same elimination trajectory, so any
// delta is pure kernel work. Results must be identical; wall time and DP
// cells must not be.
//
// Human-readable progress goes to stderr; a single JSON object for the perf
// trajectory goes to stdout.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/contextual.h"
#include "datasets/perturb.h"
#include "distances/levenshtein.h"
#include "distances/registry.h"
#include "search/laesa.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

/// Baseline adapter: forwards `Distance` but *ignores* the bound, restoring
/// the pre-engine behaviour where every evaluation runs to completion.
class UnboundedAdapter final : public StringDistance {
 public:
  explicit UnboundedAdapter(StringDistancePtr inner)
      : inner_(std::move(inner)) {}
  double Distance(std::string_view x, std::string_view y) const override {
    return inner_->Distance(x, y);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double) const override {
    return inner_->Distance(x, y);
  }
  std::string name() const override { return inner_->name() + "(unbounded)"; }
  bool is_metric() const override { return inner_->is_metric(); }

 private:
  StringDistancePtr inner_;
};

struct KernelRun {
  double seconds = 0.0;
  std::uint64_t cells = 0;
  std::uint64_t abandons = 0;
};

KernelRun RunContextualPairs(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    double bound_factor) {
  KernelRun run;
  ResetContextualCellsEvaluated();
  Stopwatch w;
  for (const auto& [x, y] : pairs) {
    if (bound_factor <= 0.0) {
      (void)ContextualDistanceDetailed(x, y);
    } else {
      // Simulate an index incumbent at `bound_factor` times the true value.
      const double exact = ContextualDistanceDetailed(x, y).distance;
      const double d =
          ContextualDistanceDetailed(x, y, exact * bound_factor).distance;
      if (d >= exact * bound_factor) ++run.abandons;
    }
  }
  run.seconds = w.Seconds();
  run.cells = ContextualCellsEvaluated();
  return run;
}

int Run() {
  std::ostream& log = std::cerr;
  log << "micro_bounded_kernel: bounded-vs-unbounded contextual kernel and "
         "end-to-end LAESA (scale=" << Config::Scale() << ")\n";

  // -------------------------------------------------------------------
  // Part 1: raw kernel, near-duplicate pairs (the index query regime).
  // -------------------------------------------------------------------
  const auto pair_count =
      static_cast<std::size_t>(Config::ScaledInt("MBK_PAIRS", 400));
  Rng rng(Config::Seed() + 31);
  Alphabet latin = Alphabet::Latin();
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(pair_count);
  std::size_t total_len = 0;
  for (std::size_t i = 0; i < pair_count; ++i) {
    std::string x = StringGen::UniformLength(rng, latin, 16, 48);
    std::string y = x;
    for (int e = 0; e < 3 && !y.empty(); ++e) {
      y[rng.Index(y.size())] = latin.symbol(rng.Index(latin.size()));
    }
    total_len += x.size() + y.size();
    pairs.emplace_back(std::move(x), std::move(y));
  }

  // Note: the bounded runs evaluate each pair twice (exact + bounded), so
  // compare their cells/time against 2x the unbounded baseline.
  KernelRun unbounded = RunContextualPairs(pairs, 0.0);
  KernelRun tight = RunContextualPairs(pairs, 0.5);   // incumbent below d
  KernelRun loose = RunContextualPairs(pairs, 1.5);   // incumbent above d
  log << "  kernel: " << pairs.size() << " pairs, unbounded "
      << unbounded.cells << " cells in " << unbounded.seconds * 1e3
      << " ms; tight-bound pass abandoned " << tight.abandons << "\n";

  // -------------------------------------------------------------------
  // Part 2: end-to-end LAESA on the dictionary workload, exact dC.
  // -------------------------------------------------------------------
  const auto pool =
      static_cast<std::size_t>(Config::ScaledInt("MBK_POOL", 1000));
  const auto num_queries =
      static_cast<std::size_t>(Config::ScaledInt("MBK_QUERIES", 150));
  const auto pivots =
      static_cast<std::size_t>(Config::ScaledInt("MBK_PIVOTS", 30));

  Dataset dict = bench::MakeDictionary(pool, Config::Seed());
  Rng qrng(Config::Seed() + 32);
  auto queries = MakeQueries(dict.strings, num_queries, 2, latin, qrng);

  auto contextual = MakeDistance("dC");
  auto baseline = std::make_shared<UnboundedAdapter>(contextual);

  Laesa laesa_bounded(dict.strings, contextual, pivots);
  Laesa laesa_baseline(dict.strings, baseline, pivots);

  Laesa::QueryStats stats_bounded, stats_baseline;
  std::vector<NeighborResult> results_bounded, results_baseline;
  results_bounded.reserve(queries.size());
  results_baseline.reserve(queries.size());

  ResetContextualCellsEvaluated();
  Stopwatch w_baseline;
  for (const auto& q : queries) {
    results_baseline.push_back(laesa_baseline.Nearest(q, &stats_baseline));
  }
  const double baseline_s = w_baseline.Seconds();
  const std::uint64_t baseline_cells = ContextualCellsEvaluated();

  ResetContextualCellsEvaluated();
  Stopwatch w_bounded;
  for (const auto& q : queries) {
    results_bounded.push_back(laesa_bounded.Nearest(q, &stats_bounded));
  }
  const double bounded_s = w_bounded.Seconds();
  const std::uint64_t bounded_cells = ContextualCellsEvaluated();

  bool identical = results_bounded.size() == results_baseline.size();
  for (std::size_t i = 0; identical && i < results_bounded.size(); ++i) {
    identical = results_bounded[i].index == results_baseline[i].index &&
                results_bounded[i].distance == results_baseline[i].distance;
  }

  log << "  laesa: " << pool << " prototypes, " << queries.size()
      << " queries, " << pivots << " pivots\n"
      << "    baseline " << baseline_s * 1e3 << " ms, " << baseline_cells
      << " cells; bounded " << bounded_s * 1e3 << " ms, " << bounded_cells
      << " cells, " << stats_bounded.bounded_abandons << " abandons\n"
      << "    identical results: " << (identical ? "yes" : "NO") << "\n";

  // -------------------------------------------------------------------
  // JSON for the perf trajectory.
  // -------------------------------------------------------------------
  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"bench\": \"micro_bounded_kernel\",\n"
            << "  \"kernel\": {\n"
            << "    \"pairs\": " << pairs.size() << ",\n"
            << "    \"avg_pair_len\": "
            << static_cast<double>(total_len) /
                   static_cast<double>(pairs.empty() ? 1 : pairs.size())
            << ",\n"
            << "    \"unbounded\": {\"seconds\": " << unbounded.seconds
            << ", \"cells\": " << unbounded.cells << "},\n"
            << "    \"tight_bound\": {\"seconds\": " << tight.seconds
            << ", \"cells\": " << tight.cells
            << ", \"abandons\": " << tight.abandons << "},\n"
            << "    \"loose_bound\": {\"seconds\": " << loose.seconds
            << ", \"cells\": " << loose.cells
            << ", \"abandons\": " << loose.abandons << "}\n"
            << "  },\n"
            << "  \"laesa\": {\n"
            << "    \"prototypes\": " << pool << ",\n"
            << "    \"queries\": " << queries.size() << ",\n"
            << "    \"pivots\": " << pivots << ",\n"
            << "    \"baseline\": {\"seconds\": " << baseline_s
            << ", \"cells\": " << baseline_cells << ", \"computations\": "
            << stats_baseline.distance_computations << "},\n"
            << "    \"bounded\": {\"seconds\": " << bounded_s
            << ", \"cells\": " << bounded_cells << ", \"computations\": "
            << stats_bounded.distance_computations
            << ", \"abandons\": " << stats_bounded.bounded_abandons << "},\n"
            << "    \"cell_reduction\": "
            << (baseline_cells == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(bounded_cells) /
                                static_cast<double>(baseline_cells))
            << ",\n"
            << "    \"speedup\": "
            << (bounded_s == 0.0 ? 0.0 : baseline_s / bounded_s) << ",\n"
            << "    \"identical_results\": " << (identical ? "true" : "false")
            << "\n"
            << "  }\n"
            << "}\n";
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
