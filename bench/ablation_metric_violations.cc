// Ablation — metric-axiom audit of every distance (paper §2.2 and §5).
//
// Scans dataset samples for triangle-inequality violations: the paper's
// counterexamples for d_sum/d_max/d_min must show up, d_E/d_YB/d_C must be
// clean, and d_MV / d_C,h (open or heuristic) are measured empirically.
// Also reproduces the §5 dummy-symbol exploit that breaks the naive
// generalised contextual distance.

#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/generalized_contextual.h"
#include "distances/registry.h"
#include "metric/metric_validator.h"

namespace cned {
namespace {

int Run() {
  bench::Banner("Ablation: metric violations audit",
                "de la Higuera & Mico, ICDE 2008, §2.2 counterexamples & §5");
  const auto sample_size =
      static_cast<std::size_t>(Config::ScaledInt("ABLM_SAMPLE", 28));

  Dataset dict = bench::MakeDictionary(600, Config::Seed());
  Rng rng(Config::Seed() + 70);
  std::vector<std::string> sample;
  // Mix of paper counterexample strings and dictionary words.
  for (const char* s : {"ab", "aba", "ba", "b", "aa"}) sample.emplace_back(s);
  while (sample.size() < sample_size) {
    sample.push_back(dict.strings[rng.Index(dict.size())]);
  }

  Table table({"Distance", "claimed metric", "violation found", "worst margin",
               "witness"});
  for (const auto& name : AllDistanceNames()) {
    auto dist = MakeDistance(name);
    auto v = FindTriangleViolation(*dist, sample);
    table.AddRow({dist->name(), dist->is_metric() ? "yes" : "no",
                  v ? "YES" : "no",
                  v ? FormatDouble(v->margin, 4) : "-",
                  v ? ("(" + v->x + "," + v->y + "," + v->z + ")") : "-"});
  }
  table.Print(std::cout);

  std::cout << "\n--- §5: naive generalised contextual distance exploit ---\n";
  Alphabet internal("ab"), extended("abz");
  std::vector<std::vector<double>> sub(3, std::vector<double>(3, 10.0));
  for (std::size_t i = 0; i < 3; ++i) sub[i][i] = 0.0;
  MatrixCosts costs(extended, sub, {1.0, 1.0, 0.01}, {1.0, 1.0, 0.01});
  double internal_only =
      NaiveGeneralizedContextualDistance("aa", "bb", costs, internal, 4);
  double with_dummy =
      NaiveGeneralizedContextualDistance("aa", "bb", costs, extended, 8);
  std::cout << "substitutions cost 10, dummy-'z' indels cost 0.01\n"
            << "  aa -> bb without dummy symbols : " << internal_only << "\n"
            << "  aa -> bb with cheap 'z' padding: " << with_dummy << "\n"
            << "(the optimal path pads with dummies to discount the expensive"
            << "\n substitutions, then erases them — so Lemma 1/Prop. 1 fail"
            << "\n and no polynomial DP is known, as the paper notes)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
