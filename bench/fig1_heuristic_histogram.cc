// Figure 1 — Histograms of d_C and d_C,h for the Spanish dictionary.
//
// The paper plots the distance histograms of the exact contextual distance
// and its heuristic over 8000 dictionary samples and observes they are
// nearly identical (similar intrinsic dimensionality). We regenerate both
// series over a synthetic Spanish-like dictionary.

#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/contextual.h"
#include "core/contextual_heuristic.h"
#include "metric/histogram.h"
#include "metric/stats.h"

namespace cned {
namespace {

int Run() {
  bench::Banner("Figure 1: histograms of dC and dC,h (Spanish dictionary)",
                "de la Higuera & Mico, ICDE 2008, Figure 1");
  const auto samples =
      static_cast<std::size_t>(Config::ScaledInt("FIG1_SAMPLES", 400));
  const auto max_pairs =
      static_cast<std::size_t>(Config::ScaledInt("FIG1_PAIRS", 60000));

  Dataset dict = bench::MakeDictionary(samples, Config::Seed());
  std::cout << "dictionary: " << dict.size()
            << " words, mean length " << dict.MeanLength() << "\n\n";

  Histogram exact_hist(0.0, 2.0, 40), heur_hist(0.0, 2.0, 40);
  Rng rng(Config::Seed() + 1);
  Stopwatch watch;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < dict.size() && pairs < max_pairs; ++i) {
    for (std::size_t j = i + 1; j < dict.size() && pairs < max_pairs; ++j) {
      exact_hist.Add(ContextualDistance(dict.strings[i], dict.strings[j]));
      heur_hist.Add(
          ContextualHeuristicDistance(dict.strings[i], dict.strings[j]));
      ++pairs;
    }
  }
  std::cout << pairs << " pairs in " << watch.Seconds() << " s\n\n";

  std::cout << "--- dC histogram (bin-center count) ---\n"
            << exact_hist.ToAscii() << "\n"
            << "--- dC,h histogram ---\n"
            << heur_hist.ToAscii() << "\n";

  std::cout << "series dC:\n" << exact_hist.ToSeries()
            << "series dC,h:\n" << heur_hist.ToSeries();

  std::cout << "\nintrinsic dimensionality rho = mu^2/(2 sigma^2):\n"
            << "  dC   : " << IntrinsicDimensionality(exact_hist.stats())
            << "\n  dC,h : " << IntrinsicDimensionality(heur_hist.stats())
            << "\n(paper: the two histograms nearly coincide)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
