// Ablation — metric index comparison: LAESA vs AESA vs VP-tree vs BK-tree
// vs exhaustive search, under dE and dC,h.
//
// The paper argues its LAESA conclusions "will apply in similar cases"
// (other triangle-inequality methods). This bench substantiates the claim:
// the distance with the lower intrinsic dimensionality prunes better in
// *every* index family.

#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/aesa.h"
#include "search/bk_tree.h"
#include "search/exhaustive.h"
#include "search/laesa.h"
#include "search/vp_tree.h"

namespace cned {
namespace {

int Run() {
  bench::Banner("Ablation: metric index families",
                "de la Higuera & Mico, ICDE 2008, §4.3 'similar cases'");
  const auto train =
      static_cast<std::size_t>(Config::ScaledInt("ABLI_TRAIN", 600));
  const auto queries =
      static_cast<std::size_t>(Config::ScaledInt("ABLI_QUERIES", 150));

  Dataset dict = bench::MakeDictionary(train, Config::Seed());
  Rng rng(Config::Seed() + 90);
  auto query_set =
      MakeQueries(dict.strings, queries, 2, Alphabet::Latin(), rng);
  std::cout << train << " prototypes, " << queries << " queries\n\n";

  Table table({"Index", "distance", "avg computations / query",
               "preprocessing computations"});
  for (const char* dist_name : {"dE", "dC,h"}) {
    auto dist = MakeDistance(dist_name);
    {
      Laesa laesa(dict.strings, dist, 40);
      Laesa::QueryStats st;
      for (const auto& q : query_set) laesa.Nearest(q, &st);
      table.AddRow({"LAESA (40 pivots)", dist_name,
                    FormatDouble(static_cast<double>(st.distance_computations) /
                                     static_cast<double>(query_set.size()),
                                 1),
                    std::to_string(laesa.preprocessing_computations())});
    }
    {
      Aesa aesa(dict.strings, dist);
      Aesa::QueryStats st;
      for (const auto& q : query_set) aesa.Nearest(q, &st);
      table.AddRow({"AESA (full matrix)", dist_name,
                    FormatDouble(static_cast<double>(st.distance_computations) /
                                     static_cast<double>(query_set.size()),
                                 1),
                    std::to_string(aesa.preprocessing_computations())});
    }
    {
      VpTree tree(dict.strings, dist);
      VpTree::QueryStats st;
      for (const auto& q : query_set) tree.Nearest(q, &st);
      table.AddRow({"VP-tree", dist_name,
                    FormatDouble(static_cast<double>(st.distance_computations) /
                                     static_cast<double>(query_set.size()),
                                 1),
                    std::to_string(tree.preprocessing_computations())});
    }
    if (std::string(dist_name) == "dE") {
      BkTree tree(dict.strings, dist);
      BkTree::QueryStats st;
      for (const auto& q : query_set) tree.Nearest(q, &st);
      table.AddRow({"BK-tree (integer metric only)", dist_name,
                    FormatDouble(static_cast<double>(st.distance_computations) /
                                     static_cast<double>(query_set.size()),
                                 1),
                    std::to_string(train - 1)});
    }
    table.AddRow({"exhaustive", dist_name, std::to_string(train), "0"});
  }
  table.Print(std::cout);
  std::cout << "\n(expected: every index prunes more with dC,h's flatter\n"
            << " histogram than with concentrated normalisations; AESA\n"
            << " prunes most at quadratic preprocessing cost)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
