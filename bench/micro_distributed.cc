// Distributed serving benchmark: one scatter/gather router (serve/router.h)
// over 1/2/4/8 forked shard workers versus the in-process ShardedLaesa,
// on a fig3-style dictionary workload.
//
// Measured:
//   * per-query latency (p50/p99) of the distributed lazy path at each
//     worker count (unreplicated, R=1), against the in-process baseline —
//     the IPC round-trip cost of the scatter/gather sweep;
//   * the same with one deliberately slow shard (an injected per-step
//     delay), showing how a straggler stretches the tail while results
//     stay exact;
//   * a crashed-worker query, checking degradation is *flagged* rather
//     than silent;
//   * the replica-group tier at R=2: healthy replication overhead, the
//     latency of a query that loses a primary mid-sweep and fails over,
//     and the slow-primary Eval tail hedged vs unhedged.
//
// Contracts checked (CI greps the booleans):
//   * "identical_results": every healthy distributed answer is
//     bit-identical — neighbours, distances AND QueryStats — to the
//     in-process index, at every worker count, at R=2, and under the
//     slow shard;
//   * "degraded_flagged": the crashed-shard query reports partial=true
//     and names the missing shard;
//   * "failover_exact": the query whose primary is killed mid-sweep
//     still returns the bit-identical answer, unflagged, with the
//     failover counted;
//   * "hedged_tail_cut": with one shard's primary slow on Evals, the
//     hedged p99 beats the unhedged p99.
//
// Human-readable progress goes to stderr; a single JSON object goes to
// stdout.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <stdlib.h>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datasets/perturb.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/sharded_laesa.h"
#include "serve/router.h"
#include "serve/shard_snapshot.h"

namespace cned {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/cned_mdist_XXXXXX";
    char* p = mkdtemp(tmpl);
    path = p != nullptr ? p : "";
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[i];
}

bool Identical(const ServeResult& got, const std::vector<NeighborResult>& want,
               const QueryStats& want_stats) {
  if (got.partial || !got.missing_shards.empty() ||
      got.neighbors.size() != want.size() || !(got.stats == want_stats)) {
    return false;
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got.neighbors[i].index != want[i].index ||
        got.neighbors[i].distance != want[i].distance) {
      return false;
    }
  }
  return true;
}

int Run() {
  std::ostream& log = std::cerr;
  const auto pool =
      static_cast<std::size_t>(Config::ScaledInt("MDIST_POOL", 3000));
  const auto pivots =
      static_cast<std::size_t>(Config::ScaledInt("MDIST_PIVOTS", 32));
  const auto num_queries =
      static_cast<std::size_t>(Config::ScaledInt("MDIST_QUERIES", 20));
  const int reps = static_cast<int>(Config::Int("MDIST_REPS", 2));
  const std::size_t k = 5;

  log << "micro_distributed: scatter/gather router vs in-process sweep "
         "(scale=" << Config::Scale() << ")\n";

  Dataset dict = bench::MakeDictionary(pool, Config::Seed());
  Rng rng(Config::Seed() + 97);
  const auto queries =
      MakeQueries(dict.strings, num_queries, 2, Alphabet::Latin(), rng);
  auto dist = MakeDistance("dE");

  bool identical = true;
  const std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  std::vector<double> p50_ms, p99_ms;
  double inprocess_p50 = 0.0, inprocess_p99 = 0.0;
  double slow_p50 = 0.0, slow_p99 = 0.0;
  bool degraded_flagged = false;
  double replicated_p50 = 0.0, replicated_p99 = 0.0;
  double failover_query_ms = 0.0;
  bool failover_exact = false;
  double unhedged_slow_p99 = 0.0, hedged_slow_p99 = 0.0;
  std::size_t hedged_evals = 0;
  bool hedged_tail_cut = false;
  std::size_t checked = 0;

  for (std::size_t shards : worker_counts) {
    ShardedPrototypeStore store(dict.strings, shards);
    ShardedLaesa index(store, dist, pivots);
    TempDir dir;
    SaveServingSnapshot(index, dir.path);

    // Reference answers + in-process latency (measured once, at S=4's
    // build — any shard count gives the identical sweep).
    std::vector<std::vector<NeighborResult>> want(queries.size());
    std::vector<QueryStats> want_stats(queries.size());
    std::vector<double> inproc_samples;
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        QueryStats st;
        Stopwatch w;
        auto r = index.KNearest(queries[i], k, &st);
        inproc_samples.push_back(w.Seconds() * 1e3);
        want[i] = std::move(r);
        want_stats[i] = st;
      }
    }
    if (shards == 4) {
      inprocess_p50 = Percentile(inproc_samples, 0.50);
      inprocess_p99 = Percentile(inproc_samples, 0.99);
    }

    ServeOptions opt;
    opt.distance = "dE";
    // The ladder measures the unreplicated tier: R=2 costs an extra
    // process per shard and is benched separately below.
    opt.replicas = 1;
    ServeRouter router(dir.path, opt);
    std::vector<double> samples;
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        Stopwatch w;
        const ServeResult got = router.KNearest(queries[i], k);
        samples.push_back(w.Seconds() * 1e3);
        identical = identical && Identical(got, want[i], want_stats[i]);
        ++checked;
      }
    }
    p50_ms.push_back(Percentile(samples, 0.50));
    p99_ms.push_back(Percentile(samples, 0.99));
    log << "  S=" << shards << ": p50 " << p50_ms.back() << " ms, p99 "
        << p99_ms.back() << " ms\n";

    if (shards == 4) {
      // One slow shard: every 10th Step on shard 3 sleeps a millisecond —
      // a straggler, not a dead worker. Results stay exact; only the tail
      // pays (a sweep is hundreds of steps, so queries slow visibly).
      ServeOptions slow_opt = opt;
      slow_opt.fault_spec = "delay:shard=3,op=step,every=10,ms=1";
      ServeRouter slow(dir.path, slow_opt);
      std::vector<double> slow_samples;
      const std::size_t slow_queries = std::min<std::size_t>(8, queries.size());
      for (std::size_t i = 0; i < slow_queries; ++i) {
        Stopwatch w;
        const ServeResult got = slow.KNearest(queries[i], k);
        slow_samples.push_back(w.Seconds() * 1e3);
        identical = identical && Identical(got, want[i], want_stats[i]);
        ++checked;
      }
      slow_p50 = Percentile(slow_samples, 0.50);
      slow_p99 = Percentile(slow_samples, 0.99);
      log << "  S=4 slow shard: p50 " << slow_p50 << " ms, p99 " << slow_p99
          << " ms\n";

      // One crashed shard: the answer must be flagged, not silently wrong.
      ServeOptions crash_opt = opt;
      crash_opt.fault_spec = "crash:shard=1,op=step,nth=1";
      crash_opt.auto_respawn = false;
      ServeRouter crashed(dir.path, crash_opt);
      const ServeResult got = crashed.KNearest(queries[0], k);
      degraded_flagged =
          got.partial &&
          got.missing_shards == std::vector<std::size_t>{1} &&
          got.stats.shards_degraded == 1;
      log << "  S=4 crashed shard flagged: "
          << (degraded_flagged ? "yes" : "NO") << "\n";

      // --- Replica groups (R=2) ---------------------------------------

      // Healthy replication overhead: every mutating op now fans out to
      // two processes per shard and waits for both.
      ServeOptions rep_opt = opt;
      rep_opt.replicas = 2;
      {
        ServeRouter rep(dir.path, rep_opt);
        std::vector<double> rep_samples;
        for (int rep_i = 0; rep_i < reps; ++rep_i) {
          for (std::size_t i = 0; i < queries.size(); ++i) {
            Stopwatch w;
            const ServeResult got_r = rep.KNearest(queries[i], k);
            rep_samples.push_back(w.Seconds() * 1e3);
            identical = identical && Identical(got_r, want[i], want_stats[i]);
            ++checked;
          }
        }
        replicated_p50 = Percentile(rep_samples, 0.50);
        replicated_p99 = Percentile(rep_samples, 0.99);
        log << "  S=4 R=2: p50 " << replicated_p50 << " ms, p99 "
            << replicated_p99 << " ms\n";
      }

      // Failover latency: shard 2's primary is killed on its 5th visit
      // pass; the standby is promoted mid-sweep and the answer must stay
      // bit-identical and unflagged. The reported time is that one
      // query, end to end — promotion cost included.
      {
        ServeOptions fo_opt = rep_opt;
        fo_opt.fault_spec = "crash:shard=2,op=step,nth=5,replica=0";
        fo_opt.auto_respawn = false;
        ServeRouter fo(dir.path, fo_opt);
        Stopwatch w;
        const ServeResult got_f = fo.KNearest(queries[0], k);
        failover_query_ms = w.Seconds() * 1e3;
        failover_exact = !got_f.partial && got_f.failovers == 1 &&
                         Identical(got_f, want[0], want_stats[0]);
        ++checked;
        log << "  S=4 R=2 failover query: " << failover_query_ms
            << " ms, exact+unflagged: " << (failover_exact ? "yes" : "NO")
            << "\n";
      }

      // Hedged vs unhedged unresponsive-primary tail: shard 3's primary
      // swallows every 20th Eval (the standby is healthy). Unhedged, each
      // lost reply costs a full op timeout plus the retry; hedged, the
      // router races the standby after 5ms and takes its identical
      // answer. (A *delay* fault would not show the win: the worker is
      // single-threaded, so a sleeping primary stalls the next Step
      // broadcast by the same amount whether or not the Eval was hedged.
      // Hedging pays for lost or stalled replies, not for a uniformly
      // slow replica.)
      {
        const std::size_t hedge_queries =
            std::min<std::size_t>(4, queries.size());
        ServeOptions slow_eval = rep_opt;
        slow_eval.fault_spec = "drop:shard=3,op=eval,replica=0,every=20";
        slow_eval.op_timeout_ms = 60;

        slow_eval.hedge_delay_ms = -1;  // hedging off
        {
          ServeRouter unhedged(dir.path, slow_eval);
          std::vector<double> s_samples;
          for (std::size_t i = 0; i < hedge_queries; ++i) {
            Stopwatch w;
            const ServeResult got_u = unhedged.KNearest(queries[i], k);
            s_samples.push_back(w.Seconds() * 1e3);
            identical = identical && Identical(got_u, want[i], want_stats[i]);
            ++checked;
          }
          unhedged_slow_p99 = Percentile(s_samples, 0.99);
        }

        slow_eval.hedge_delay_ms = 5;
        {
          ServeRouter hedged(dir.path, slow_eval);
          std::vector<double> s_samples;
          for (std::size_t i = 0; i < hedge_queries; ++i) {
            Stopwatch w;
            const ServeResult got_h = hedged.KNearest(queries[i], k);
            s_samples.push_back(w.Seconds() * 1e3);
            identical = identical && Identical(got_h, want[i], want_stats[i]);
            hedged_evals += got_h.hedged_evals;
            ++checked;
          }
          hedged_slow_p99 = Percentile(s_samples, 0.99);
        }
        hedged_tail_cut = hedged_evals > 0 && hedged_slow_p99 < unhedged_slow_p99;
        log << "  S=4 R=2 slow-primary evals: unhedged p99 "
            << unhedged_slow_p99 << " ms, hedged p99 " << hedged_slow_p99
            << " ms (" << hedged_evals << " hedges)\n";
      }
    }
  }

  log << "  identical results over " << checked
      << " distributed queries: " << (identical ? "yes" : "NO") << "\n";

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"bench\": \"micro_distributed\",\n"
            << "  \"prototypes\": " << dict.strings.size() << ",\n"
            << "  \"pivots\": " << pivots << ",\n"
            << "  \"queries\": " << queries.size() << ",\n"
            << "  \"workers\": [1, 2, 4, 8],\n"
            << "  \"p50_ms\": [" << p50_ms[0] << ", " << p50_ms[1] << ", "
            << p50_ms[2] << ", " << p50_ms[3] << "],\n"
            << "  \"p99_ms\": [" << p99_ms[0] << ", " << p99_ms[1] << ", "
            << p99_ms[2] << ", " << p99_ms[3] << "],\n"
            << "  \"inprocess_p50_ms\": " << inprocess_p50 << ",\n"
            << "  \"inprocess_p99_ms\": " << inprocess_p99 << ",\n"
            << "  \"slow_shard_p50_ms\": " << slow_p50 << ",\n"
            << "  \"slow_shard_p99_ms\": " << slow_p99 << ",\n"
            << "  \"replicated_p50_ms\": " << replicated_p50 << ",\n"
            << "  \"replicated_p99_ms\": " << replicated_p99 << ",\n"
            << "  \"failover_query_ms\": " << failover_query_ms << ",\n"
            << "  \"unhedged_slow_p99_ms\": " << unhedged_slow_p99 << ",\n"
            << "  \"hedged_slow_p99_ms\": " << hedged_slow_p99 << ",\n"
            << "  \"hedged_evals\": " << hedged_evals << ",\n"
            << "  \"identical_results\": " << (identical ? "true" : "false")
            << ",\n"
            << "  \"degraded_flagged\": "
            << (degraded_flagged ? "true" : "false") << ",\n"
            << "  \"failover_exact\": " << (failover_exact ? "true" : "false")
            << ",\n"
            << "  \"hedged_tail_cut\": "
            << (hedged_tail_cut ? "true" : "false") << "\n}\n";

  return identical && degraded_flagged && failover_exact && hedged_tail_cut
             ? 0
             : 1;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
