// Ablation — Hart's condensed nearest neighbour on the digit task (§4.4
// companion): how far can each distance shrink the training set while
// keeping it 1-NN-consistent, and what does condensing do to the test
// error? A more discriminating distance should need fewer retained
// prototypes, compounding LAESA's per-prototype savings.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "distances/registry.h"
#include "search/condensing.h"
#include "search/exhaustive.h"
#include "search/knn_classifier.h"

namespace cned {
namespace {

int Run() {
  bench::Banner("Ablation: condensed 1-NN (Hart) on digit contours",
                "companion to de la Higuera & Mico 2008, §4.4");
  const auto train_pc =
      static_cast<std::size_t>(Config::ScaledInt("ABLN_TRAIN_PER_CLASS", 12));
  const auto test_pc =
      static_cast<std::size_t>(Config::ScaledInt("ABLN_TEST_PER_CLASS", 8));

  Dataset train = bench::MakeDigits(train_pc, Config::Seed() + 95);
  Dataset test = bench::MakeDigits(test_pc, Config::Seed() + 96);
  std::cout << "train " << train.size() << " / test " << test.size()
            << " contours\n\n";

  Table table({"Distance", "kept prototypes", "kept %", "full err %",
               "condensed err %"});
  for (const char* name : {"dE", "dYB", "dmax", "dC,h"}) {
    auto dist = MakeDistance(name);

    ExhaustiveSearch full_search(train.strings, dist);
    NearestNeighborClassifier full_clf(full_search, train.labels);
    double full_err = full_clf.ErrorRatePercent(test.strings, test.labels);

    CondensedSet sub = Condense(train.strings, train.labels, *dist);
    ExhaustiveSearch sub_search(sub.strings, dist);
    NearestNeighborClassifier sub_clf(sub_search, sub.labels);
    double sub_err = sub_clf.ErrorRatePercent(test.strings, test.labels);

    table.AddRow({name, std::to_string(sub.strings.size()),
                  FormatDouble(100.0 * static_cast<double>(sub.strings.size()) /
                                   static_cast<double>(train.size()),
                               1),
                  FormatDouble(full_err, 2), FormatDouble(sub_err, 2)});
  }
  table.Print(std::cout);
  std::cout << "\n(Hart's rule keeps the subset 1-NN-consistent on the\n"
            << " training data; fewer kept prototypes = cheaper LAESA\n"
            << " preprocessing and queries at some test-error cost)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
