// Figure 4 — LAESA on the handwritten-digit contour strings: average number
// of distance computations and search time per query vs number of pivots.
//
// Same protocol as Figure 3 but on much longer strings (contour chain
// codes), where each distance evaluation is expensive — this is where the
// "fewer computations" advantage of a discriminating metric translates into
// real time savings.
//
// Run with --kernel=scalar|avx2|neon|auto to force a sweep-kernel variant
// (the vectorisation ablation row): computation counts are bit-identical
// across kernels, only the time columns move.
//
// Run with --table-precision=f64|f32|f16|u8 to store the pivot tables
// quantized (search/table_quant.h): results stay exact, computation counts
// may rise slightly, the time columns show the bandwidth gain.

#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "bench/laesa_sweep.h"

namespace cned {
namespace {

int Run(TablePrecision precision) {
  bench::Banner("Figure 4: LAESA pivot sweep (handwritten digits)",
                "de la Higuera & Mico, ICDE 2008, Figure 4");
  const auto per_class =
      static_cast<std::size_t>(Config::ScaledInt("FIG4_PER_CLASS", 30));
  const auto train =
      static_cast<std::size_t>(Config::ScaledInt("FIG4_TRAIN", 200));
  const auto queries =
      static_cast<std::size_t>(Config::ScaledInt("FIG4_QUERIES", 50));
  const auto reps =
      static_cast<std::size_t>(Config::ScaledInt("FIG4_REPS", 2));

  Dataset digits = bench::MakeDigits(per_class, Config::Seed() + 30);
  Dataset query_set = bench::MakeDigits(per_class / 3 + 1, Config::Seed() + 31);
  std::cout << "pool " << digits.size() << " contours (mean length "
            << digits.MeanLength() << "), " << train << " prototypes, "
            << queries << " queries x " << reps << " repetitions\n\n";

  const std::vector<std::size_t> pivot_counts{10, 25, 50, 100};
  std::vector<std::pair<std::string, std::vector<bench::SweepPoint>>> runs;
  for (const auto& dist : EvaluationDistances()) {
    Rng sweep_rng(Config::Seed() + 32);
    runs.emplace_back(dist->name(),
                      bench::RunSweep(dist, digits.strings, query_set.strings,
                                      train, queries, reps, pivot_counts,
                                      sweep_rng, /*shards=*/1, precision));
    std::cout << "swept " << dist->name() << "\n";
  }
  std::cout << '\n';
  bench::PrintSweep(runs);
  std::cout << "\n(paper shape: dE and dC,h lowest computation counts; the\n"
            << " contextual distance costs ~2x dE per evaluation but needs\n"
            << " far fewer evaluations than dYB/dMV/dmax)\n";
  return 0;
}

}  // namespace
}  // namespace cned

int main(int argc, char** argv) {
  cned::TablePrecision precision = cned::DefaultTablePrecision();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string kernel_prefix = "--kernel=";
    const std::string precision_prefix = "--table-precision=";
    if (arg.rfind(kernel_prefix, 0) == 0) {
      if (!cned::bench::ApplySweepKernelFlag(
              arg.substr(kernel_prefix.size()))) {
        return 2;
      }
    } else if (arg.rfind(precision_prefix, 0) == 0) {
      if (!cned::bench::ApplyTablePrecisionFlag(
              arg.substr(precision_prefix.size()), &precision)) {
        return 2;
      }
    } else {
      std::cerr << "fig4: unknown argument " << arg
                << " (supported: --kernel=NAME --table-precision=NAME)\n";
      return 2;
    }
  }
  return cned::Run(precision);
}
