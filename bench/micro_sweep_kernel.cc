// Sweep-kernel benchmark: the dispatched SIMD elimination core vs the
// scalar reference, measured two ways.
//
//  1. Kernel micro loops over synthetic packed candidate slabs: ns per
//     candidate for the dense row update, the gathered (packed) row update
//     and the flagged eliminate-and-compact pass, per kernel variant. The
//     eliminate pass is timed in its keep-all configuration (bound = inf,
//     skip absent), which is idempotent — the slab can be re-swept without
//     rebuilding, and it is the traffic-heavy early-sweep shape.
//  2. The fig3 dictionary workload end to end: flat LAESA and a 4-shard
//     ShardedLaesa answering a query batch through the BatchQueryEngine,
//     lazy and two-stage pivot pipeline, per kernel variant.
//
// Contracts checked (CI greps the booleans):
//   * identical_results — every kernel variant returns bit-identical
//     neighbours, distances AND QueryStats to the scalar reference on the
//     fig3 workload, across flat/sharded and lazy/pivot-stage paths;
//   * kernel_speedup_ok — on a machine where a vector variant is active,
//     the dense row-update kernel beats scalar by a measurable margin
//     (>= 1.05x per candidate; trivially true where only scalar exists);
//   * u8_speedup_ok — the quantized u8 dense row update streams rows at
//     >= 1.5x the f64 per-candidate throughput on the best kernel (the
//     memory-bandwidth payoff of 1-byte table elements; measured over a
//     row set deliberately sized beyond cache, unscaled by CNED_SCALE);
//   * quantized_exact — every quantized precision returns the same nearest
//     DISTANCES as the f64 index on the fig3 workload (admissible
//     round-down never loses the true neighbour on a metric distance).
//
// The quantized section also reports each precision's eliminated fraction
// (1 - distance computations / N per query): how much pruning the widened
// bounds give up relative to the exact f64 table.
//
// Human-readable progress goes to stderr; a single JSON object goes to
// stdout.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datasets/perturb.h"
#include "datasets/prototype_store.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/batch_engine.h"
#include "search/laesa.h"
#include "search/sharded_laesa.h"
#include "search/sweep_kernel.h"
#include "search/table_quant.h"

namespace cned {
namespace {

struct KernelMicro {
  std::string name;
  double dense_ns = 0.0;      // per candidate
  double packed_ns = 0.0;     // per candidate
  double eliminate_ns = 0.0;  // per candidate
};

/// Times the three hot kernels of one variant over n-candidate slabs.
KernelMicro TimeKernels(const SweepKernels& k, std::size_t n,
                        std::size_t reps) {
  KernelMicro out;
  out.name = k.name;
  Rng rng(Config::Seed() + 99);

  AlignedBuffer<std::uint32_t> idx;
  AlignedBuffer<double> lower, row;
  std::vector<std::int32_t> rank(n, -1);
  idx.resize(n);
  lower.resize(n);
  row.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    idx.data()[i] = static_cast<std::uint32_t>(i);
    lower.data()[i] = rng.Uniform();
    row.data()[i] = rng.Uniform() * 4.0;
    if (i % 16 == 0) rank[i] = static_cast<std::int32_t>(i / 16);
  }
  const double inf = std::numeric_limits<double>::infinity();
  const double denom = static_cast<double>(n) * static_cast<double>(reps);

  // Warm-up + steady state: every pass below is idempotent on the slabs.
  k.update_lower_dense(1.0, row.data(), lower.data(), n);
  Stopwatch w_dense;
  for (std::size_t r = 0; r < reps; ++r) {
    k.update_lower_dense(1.0, row.data(), lower.data(), n);
  }
  out.dense_ns = w_dense.Seconds() * 1e9 / denom;

  k.update_lower_packed(1.0, row.data(), idx.data(), 0, lower.data(), n);
  Stopwatch w_packed;
  for (std::size_t r = 0; r < reps; ++r) {
    k.update_lower_packed(1.0, row.data(), idx.data(), 0, lower.data(), n);
  }
  out.packed_ns = w_packed.Seconds() * 1e9 / denom;

  // Keep-all eliminate: finite bounds vs an infinite threshold, skip absent
  // — compacts every candidate onto itself, so the slab survives intact.
  std::uint64_t sink = 0;
  (void)k.eliminate_and_compact_flagged(idx.data(), lower.data(), rank.data(),
                                        n, 0xFFFFFFFFu, 1.0, inf);
  Stopwatch w_elim;
  for (std::size_t r = 0; r < reps; ++r) {
    const SweepCompactResult pass = k.eliminate_and_compact_flagged(
        idx.data(), lower.data(), rank.data(), n, 0xFFFFFFFFu, 1.0, inf);
    sink += pass.live;
  }
  out.eliminate_ns = w_elim.Seconds() * 1e9 / denom;
  if (sink != static_cast<std::uint64_t>(n) * reps) {
    std::cerr << "  (keep-all eliminate dropped candidates?!)\n";
  }
  return out;
}

constexpr TablePrecision kAllPrecisions[] = {
    TablePrecision::kF64, TablePrecision::kF32, TablePrecision::kF16,
    TablePrecision::kU8};

/// One quantized row-streaming measurement: (kernel, precision) -> ns per
/// candidate for the dense update, streaming `n_rows` distinct rows over
/// one shared lower slab. The row set is sized past the last-level cache
/// (MSK_QROWS x MSK_QCAND, deliberately NOT scaled by CNED_SCALE), so the
/// f64 baseline pays full memory bandwidth — the configuration the 1-byte
/// elements exist to win.
struct QuantMicro {
  std::string kernel;
  std::string precision;
  double dense_ns = 0.0;
};

QuantMicro TimeQuantDense(const SweepKernels& k, TablePrecision prec,
                          const std::vector<double>& rows, std::size_t n_rows,
                          std::size_t n, std::size_t reps) {
  QuantMicro out;
  out.kernel = k.name;
  out.precision = TablePrecisionName(prec);

  // Quantize every row off the shared f64 source (f64 passes through).
  std::vector<unsigned char> codes;
  std::vector<QuantRowMeta> meta;
  QuantTableView view;
  view.precision = prec;
  if (prec == TablePrecision::kF64) {
    view.f64 = rows.data();
  } else {
    const std::size_t width = TablePrecisionBytes(prec);
    codes.resize(n_rows * n * width);
    meta.resize(n_rows);
    for (std::size_t r = 0; r < n_rows; ++r) {
      QuantRowEncoder enc;
      enc.Scan(rows.data() + r * n, n);
      enc.Prepare(prec);
      enc.Encode(rows.data() + r * n, n, codes.data() + r * n * width);
      meta[r] = enc.Finish();
    }
    view.q = codes.data();
    view.rows = meta.data();
  }

  AlignedBuffer<double> lower;
  lower.resize(n);
  for (std::size_t i = 0; i < n; ++i) lower.data()[i] = 0.0;

  // Warm-up pass, then steady state (the update is a max, so repeated
  // passes are idempotent on the slab while still reading every element).
  for (std::size_t r = 0; r < n_rows; ++r) {
    QuantUpdateLowerDense(k, view, r, n, 1.0 + 1e-3 * r, lower.data());
  }
  Stopwatch watch;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t r = 0; r < n_rows; ++r) {
      QuantUpdateLowerDense(k, view, r, n, 1.0 + 1e-3 * r, lower.data());
    }
  }
  out.dense_ns = watch.Seconds() * 1e9 /
                 (static_cast<double>(reps) * static_cast<double>(n_rows) *
                  static_cast<double>(n));
  return out;
}

struct Fig3Run {
  std::string kernel;
  double flat_lazy_us = 0.0;     // per query
  double sharded_lazy_us = 0.0;  // per query
  double flat_staged_us = 0.0;
  double sharded_staged_us = 0.0;
  std::vector<NeighborResult> results;  // flat lazy (identity reference)
  QueryStats flat_stats, sharded_stats, staged_stats, sharded_staged_stats;
  std::vector<NeighborResult> staged_results;
};

Fig3Run RunFig3(const Laesa& flat, const ShardedLaesa& sharded,
                const PrototypeStore& queries) {
  Fig3Run run;
  run.kernel = ActiveSweepKernels().name;
  const double q = static_cast<double>(queries.size());

  BatchQueryEngine flat_engine(flat);
  BatchQueryEngine sharded_engine(sharded);
  BatchQueryEngine::Options staged_opt;
  staged_opt.pivot_stage = true;
  BatchQueryEngine flat_staged(flat, staged_opt);
  BatchQueryEngine sharded_staged(sharded, staged_opt);

  (void)flat_engine.Nearest(queries);  // warm-up (scratch, page-in)
  Stopwatch w1;
  run.results = flat_engine.Nearest(queries, &run.flat_stats);
  run.flat_lazy_us = w1.Seconds() * 1e6 / q;

  Stopwatch w2;
  const auto sharded_results = sharded_engine.Nearest(queries,
                                                      &run.sharded_stats);
  run.sharded_lazy_us = w2.Seconds() * 1e6 / q;

  Stopwatch w3;
  run.staged_results = flat_staged.Nearest(queries, &run.staged_stats);
  run.flat_staged_us = w3.Seconds() * 1e6 / q;

  Stopwatch w4;
  const auto sharded_staged_results =
      sharded_staged.Nearest(queries, &run.sharded_staged_stats);
  run.sharded_staged_us = w4.Seconds() * 1e6 / q;

  // The sharded lazy sweep is contractually bit-identical to the flat one,
  // and both staged paths to each other — fold that into the run's results
  // so the cross-kernel comparison covers all four paths.
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    if (sharded_results[i].index != run.results[i].index ||
        sharded_results[i].distance != run.results[i].distance ||
        sharded_staged_results[i].index != run.staged_results[i].index ||
        sharded_staged_results[i].distance != run.staged_results[i].distance) {
      std::cerr << "  sharded/flat divergence at query " << i << "\n";
      run.results.clear();  // poison: identical_results will fail
      break;
    }
  }
  return run;
}

bool SameResults(const std::vector<NeighborResult>& a,
                 const std::vector<NeighborResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index || a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

int Run() {
  std::ostream& log = std::cerr;
  const auto candidates =
      static_cast<std::size_t>(Config::ScaledInt("MSK_CANDIDATES", 8192));
  const auto reps =
      static_cast<std::size_t>(Config::ScaledInt("MSK_REPS", 20000));
  const auto pool =
      static_cast<std::size_t>(Config::ScaledInt("MSK_POOL", 2000));
  const auto train =
      static_cast<std::size_t>(Config::ScaledInt("MSK_TRAIN", 1000));
  const auto num_queries =
      static_cast<std::size_t>(Config::ScaledInt("MSK_QUERIES", 300));
  const auto pivots =
      static_cast<std::size_t>(Config::ScaledInt("MSK_PIVOTS", 50));

  log << "micro_sweep_kernel: dispatched SIMD sweep kernels vs scalar "
         "(scale=" << Config::Scale() << ")\n";
  log << "  available kernels:";
  for (const SweepKernels* k : AvailableSweepKernels()) {
    log << ' ' << k->name;
  }
  log << " (startup active: " << ActiveSweepKernels().name << ")\n";

  // --- 1. Kernel micro loops ---------------------------------------------
  std::vector<KernelMicro> micro;
  for (const SweepKernels* k : AvailableSweepKernels()) {
    micro.push_back(TimeKernels(*k, candidates, reps));
    log << "  " << micro.back().name << ": dense " << micro.back().dense_ns
        << " ns/cand, packed " << micro.back().packed_ns
        << " ns/cand, eliminate " << micro.back().eliminate_ns
        << " ns/cand\n";
  }
  const KernelMicro& scalar_micro = micro.front();
  const KernelMicro& best_micro = micro.back();
  const double dense_speedup =
      best_micro.dense_ns > 0.0 ? scalar_micro.dense_ns / best_micro.dense_ns
                                : 0.0;
  const bool kernel_speedup_ok =
      micro.size() == 1 || dense_speedup >= 1.05;
  log << "  dense speedup (best vs scalar): " << dense_speedup << "x\n";

  // --- 1b. Quantized dense row streaming ---------------------------------
  // Unscaled knobs: the row set must stay bigger than the last-level cache
  // or the f64 baseline reads from cache and the bandwidth comparison is
  // meaningless (CNED_SCALE=0.2 CI runs would otherwise shrink it).
  const auto q_rows =
      static_cast<std::size_t>(Config::Int("MSK_QROWS", 192));
  const auto q_cand =
      static_cast<std::size_t>(Config::Int("MSK_QCAND", 32768));
  const auto q_reps = static_cast<std::size_t>(Config::Int("MSK_QREPS", 8));
  log << "  quantized dense streaming: " << q_rows << " rows x " << q_cand
      << " candidates (f64 row set "
      << (q_rows * q_cand * sizeof(double)) / (1024 * 1024) << " MiB)\n";
  std::vector<double> q_source(q_rows * q_cand);
  {
    Rng qrng(Config::Seed() + 7);
    for (double& v : q_source) v = qrng.Uniform() * 4.0;
  }
  std::vector<QuantMicro> quant_micro;
  double u8_speedup = 0.0;
  for (const SweepKernels* k : AvailableSweepKernels()) {
    double f64_ns = 0.0, u8_ns = 0.0;
    for (TablePrecision prec : kAllPrecisions) {
      quant_micro.push_back(
          TimeQuantDense(*k, prec, q_source, q_rows, q_cand, q_reps));
      const QuantMicro& qm = quant_micro.back();
      log << "  " << qm.kernel << "/" << qm.precision << ": dense "
          << qm.dense_ns << " ns/cand\n";
      if (prec == TablePrecision::kF64) f64_ns = qm.dense_ns;
      if (prec == TablePrecision::kU8) u8_ns = qm.dense_ns;
    }
    // The gate tracks the best (last-listed) kernel — the one serving uses.
    u8_speedup = u8_ns > 0.0 ? f64_ns / u8_ns : 0.0;
  }
  const bool u8_speedup_ok = micro.size() == 1 || u8_speedup >= 1.5;
  log << "  u8 dense speedup vs f64 (best kernel): " << u8_speedup << "x\n";

  // --- 2. fig3 dictionary workload ---------------------------------------
  Dataset dict = bench::MakeDictionary(pool, Config::Seed());
  Rng rng(Config::Seed() + 83);
  std::vector<std::string> sample;
  sample.reserve(train);
  for (std::size_t i = 0; i < train; ++i) {
    sample.push_back(dict.strings[rng.Index(dict.strings.size())]);
  }
  auto query_pool =
      MakeQueries(dict.strings, num_queries, 2, Alphabet::Latin(), rng);
  PrototypeStore queries(query_pool);

  auto dist = MakeDistance("dE");
  PrototypeStore flat_store(sample);
  Laesa flat(flat_store, dist, pivots);
  ShardedPrototypeStore sharded_store(sample, 4);
  ShardedLaesa sharded(sharded_store, dist, pivots);
  log << "  fig3 workload: " << train << " prototypes, " << queries.size()
      << " queries, " << pivots << " pivots, dE, 4 shards\n";

  std::vector<Fig3Run> runs;
  bool identical = true;
  for (const SweepKernels* k : AvailableSweepKernels()) {
    if (!SetActiveSweepKernels(k->name)) continue;
    runs.push_back(RunFig3(flat, sharded, queries));
    const Fig3Run& run = runs.back();
    log << "  " << run.kernel << ": flat lazy " << run.flat_lazy_us
        << " us/q, sharded lazy " << run.sharded_lazy_us
        << " us/q, flat staged " << run.flat_staged_us
        << " us/q, sharded staged " << run.sharded_staged_us << " us/q\n";
    const Fig3Run& ref = runs.front();  // scalar
    const bool same =
        SameResults(ref.results, run.results) &&
        SameResults(ref.staged_results, run.staged_results) &&
        ref.flat_stats == run.flat_stats &&
        ref.sharded_stats == run.sharded_stats &&
        ref.staged_stats == run.staged_stats &&
        ref.sharded_staged_stats == run.sharded_staged_stats;
    if (!same) {
      log << "  MISMATCH vs scalar for kernel " << run.kernel << "\n";
      identical = false;
    }
  }
  SetActiveSweepKernels("auto");

  // --- 3. Per-precision elimination on the fig3 workload ------------------
  // Exactness + pruning cost: each precision's index must return the same
  // nearest distances as f64 (admissible bounds on a metric distance), and
  // the eliminated fraction quantifies how much pruning the widened bounds
  // give up.
  struct PrecisionRun {
    std::string precision;
    double eliminated_fraction = 0.0;
    std::uint64_t computations = 0;
  };
  std::vector<PrecisionRun> precision_runs;
  bool quantized_exact = true;
  const std::vector<NeighborResult>& f64_results = runs.front().results;
  const double total_cand = static_cast<double>(queries.size()) *
                            static_cast<double>(flat_store.size());
  for (TablePrecision prec : kAllPrecisions) {
    PrecisionRun pr;
    pr.precision = TablePrecisionName(prec);
    QueryStats pstats;
    std::vector<NeighborResult> presults;
    if (prec == TablePrecision::kF64) {
      pstats = runs.front().flat_stats;
      presults = f64_results;
    } else {
      Laesa quantized(flat_store, dist, pivots, /*first_pivot=*/0, prec);
      BatchQueryEngine engine(quantized);
      presults = engine.Nearest(queries, &pstats);
    }
    pr.computations = pstats.distance_computations;
    pr.eliminated_fraction =
        1.0 - static_cast<double>(pstats.distance_computations) / total_cand;
    for (std::size_t i = 0; i < presults.size(); ++i) {
      if (presults[i].distance != f64_results[i].distance) {
        log << "  " << pr.precision << ": nearest distance diverged at query "
            << i << "\n";
        quantized_exact = false;
        break;
      }
    }
    log << "  precision " << pr.precision << ": eliminated fraction "
        << pr.eliminated_fraction << " (" << pr.computations
        << " computations)\n";
    precision_runs.push_back(pr);
  }

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"bench\": \"micro_sweep_kernel\",\n"
            << "  \"candidates\": " << candidates << ",\n"
            << "  \"reps\": " << reps << ",\n"
            << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < micro.size(); ++i) {
    std::cout << "    {\"name\": \"" << micro[i].name << "\", \"dense_ns\": "
              << micro[i].dense_ns << ", \"packed_ns\": "
              << micro[i].packed_ns << ", \"eliminate_ns\": "
              << micro[i].eliminate_ns << "}"
              << (i + 1 < micro.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"dense_speedup\": " << dense_speedup << ",\n"
            << "  \"quantized\": [\n";
  for (std::size_t i = 0; i < quant_micro.size(); ++i) {
    std::cout << "    {\"kernel\": \"" << quant_micro[i].kernel
              << "\", \"precision\": \"" << quant_micro[i].precision
              << "\", \"dense_ns\": " << quant_micro[i].dense_ns << "}"
              << (i + 1 < quant_micro.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"u8_speedup\": " << u8_speedup << ",\n"
            << "  \"precisions\": [\n";
  for (std::size_t i = 0; i < precision_runs.size(); ++i) {
    std::cout << "    {\"precision\": \"" << precision_runs[i].precision
              << "\", \"eliminated_fraction\": "
              << precision_runs[i].eliminated_fraction
              << ", \"computations\": " << precision_runs[i].computations
              << "}" << (i + 1 < precision_runs.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"fig3\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Fig3Run& r = runs[i];
    std::cout << "    {\"kernel\": \"" << r.kernel << "\", \"flat_lazy_us\": "
              << r.flat_lazy_us << ", \"sharded_lazy_us\": "
              << r.sharded_lazy_us << ", \"flat_staged_us\": "
              << r.flat_staged_us << ", \"sharded_staged_us\": "
              << r.sharded_staged_us << ", \"computations\": "
              << r.flat_stats.distance_computations << "}"
              << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"identical_results\": " << (identical ? "true" : "false")
            << ",\n"
            << "  \"kernel_speedup_ok\": "
            << (kernel_speedup_ok ? "true" : "false") << ",\n"
            << "  \"u8_speedup_ok\": " << (u8_speedup_ok ? "true" : "false")
            << ",\n"
            << "  \"quantized_exact\": "
            << (quantized_exact ? "true" : "false") << "\n}\n";
  return identical && kernel_speedup_ok && u8_speedup_ok && quantized_exact
             ? 0
             : 1;
}

}  // namespace
}  // namespace cned

int main() { return cned::Run(); }
