// Micro-benchmarks (google-benchmark) — per-evaluation cost of each
// distance as a function of string length.
//
// Supports the paper's §4.3 timing claim: "The computation time of the
// contextual distance is around twice the computation time of the
// Levenshtein distance", while d_MV and the exact d_C are cubic.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/contextual.h"
#include "core/contextual_heuristic.h"
#include "distances/levenshtein.h"
#include "distances/marzal_vidal.h"
#include "distances/normalized.h"
#include "strings/string_gen.h"

namespace cned {
namespace {

std::pair<std::string, std::string> MakePair(std::size_t len) {
  Rng rng(12345 + len);
  Alphabet ab("abcdefgh");
  return {StringGen::Uniform(rng, ab, len), StringGen::Uniform(rng, ab, len)};
}

void BM_Levenshtein(benchmark::State& state) {
  auto [x, y] = MakePair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_ContextualHeuristic(benchmark::State& state) {
  auto [x, y] = MakePair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ContextualHeuristicDistance(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ContextualHeuristic)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Complexity();

void BM_ContextualExact(benchmark::State& state) {
  auto [x, y] = MakePair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ContextualDistance(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ContextualExact)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_MarzalVidal(benchmark::State& state) {
  auto [x, y] = MakePair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MarzalVidalDistance(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MarzalVidal)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_YujianBo(benchmark::State& state) {
  auto [x, y] = MakePair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DybDistance(x, y));
  }
}
BENCHMARK(BM_YujianBo)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_Dmax(benchmark::State& state) {
  auto [x, y] = MakePair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DmaxDistance(x, y));
  }
}
BENCHMARK(BM_Dmax)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_BoundedLevenshtein(benchmark::State& state) {
  auto [x, y] = MakePair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedLevenshtein(x, y, 8));
  }
}
BENCHMARK(BM_BoundedLevenshtein)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace cned
