// Quickstart — the contextual normalised edit distance in five minutes.
//
// Computes d_C and its heuristic between two strings, shows the optimal
// canonical edit script, and compares against the other normalisations of
// the paper.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart [x y]

#include <iostream>
#include <string>

#include "core/contextual.h"
#include "core/contextual_heuristic.h"
#include "core/contextual_script.h"
#include "distances/registry.h"

int main(int argc, char** argv) {
  // The paper's Example 4 strings by default.
  std::string x = argc > 2 ? argv[1] : "ababa";
  std::string y = argc > 2 ? argv[2] : "baab";

  std::cout << "x = \"" << x << "\"  y = \"" << y << "\"\n\n";

  // The exact contextual distance, with the optimal path decomposition.
  cned::ContextualResult r = cned::ContextualDistanceDetailed(x, y);
  std::cout << "d_C(x, y)   = " << r.distance << "   (edit length k=" << r.k
            << ": " << r.insertions << " ins, " << r.substitutions
            << " sub, " << r.deletions << " del)\n";

  // The O(|x||y|) heuristic evaluates the cost only at k = d_E(x, y).
  cned::ContextualHeuristicResult h = cned::ContextualHeuristicDetailed(x, y);
  std::cout << "d_C,h(x, y) = " << h.distance << "   (at k = d_E = " << h.k
            << ")\n\n";

  // Every distance of the paper, via the registry.
  for (const auto& name : cned::AllDistanceNames()) {
    auto d = cned::MakeDistance(name);
    std::cout << "  " << name << (d->is_metric() ? "  [metric]    " : "  [not metric]")
              << "  d(x,y) = " << d->Distance(x, y) << "\n";
  }

  // The optimal canonical edit script: insertions first, then substitutions
  // on the longest intermediate string, then deletions (paper, Lemma 1).
  std::cout << "\noptimal contextual edit script:\n"
            << cned::FormatEditScript(cned::ContextualAlign(x, y)) << "\n";

  // Scripts are executable: replaying on x yields y.
  std::string replayed = cned::ApplyEditScript(x, cned::ContextualAlign(x, y));
  std::cout << "replayed: \"" << replayed << "\" ("
            << (replayed == y ? "matches y" : "MISMATCH") << ")\n";
  return 0;
}
