// Digit classification — the paper's §4.4 application: 1-NN classification
// of handwritten digit contour strings (Freeman chain codes) under
// different normalised edit distances.
//
// Renders synthetic "scribes" (random stroke distortions), trains on one
// set of writers, tests on another, and prints the per-distance error rate
// plus a confusion summary for the contextual distance.

#include <iomanip>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "datasets/digit_contours.h"
#include "distances/registry.h"
#include "search/exhaustive.h"
#include "search/knn_classifier.h"

int main() {
  // Training digits: 20 per class from one batch of scribes; test digits
  // from a disjoint batch (different seed = different writers), with no
  // size or orientation normalisation, as in the paper.
  cned::DigitContourOptions train_opt;
  train_opt.per_class = 20;
  train_opt.seed = 11;
  cned::Dataset train = cned::GenerateDigitContours(train_opt);

  cned::DigitContourOptions test_opt = train_opt;
  test_opt.per_class = 10;
  test_opt.seed = 22;
  cned::Dataset test = cned::GenerateDigitContours(test_opt);

  std::cout << "train " << train.size() << " contours, test " << test.size()
            << " contours (mean chain-code length " << train.MeanLength()
            << ")\nsample contour: " << train.strings[0].substr(0, 60)
            << "...\n\n";

  cned::Table table({"Distance", "error rate %"});
  for (const char* name : {"dE", "dYB", "dMV", "dmax", "dC,h"}) {
    auto dist = cned::MakeDistance(name);
    cned::ExhaustiveSearch search(train.strings, dist);
    cned::NearestNeighborClassifier clf(search, train.labels);
    table.AddRow(name, {clf.ErrorRatePercent(test.strings, test.labels)});
  }
  table.Print(std::cout);

  // Confusion pairs under the contextual heuristic.
  cned::ExhaustiveSearch search(train.strings, cned::MakeDistance("dC,h"));
  cned::NearestNeighborClassifier clf(search, train.labels);
  std::cout << "\nmisclassified digits under dC,h:\n";
  int shown = 0;
  for (std::size_t i = 0; i < test.size() && shown < 10; ++i) {
    int predicted = clf.Classify(test.strings[i]);
    if (predicted != test.labels[i]) {
      std::cout << "  true " << test.labels[i] << " -> predicted "
                << predicted << "\n";
      ++shown;
    }
  }
  if (shown == 0) std::cout << "  (none)\n";
  return 0;
}
