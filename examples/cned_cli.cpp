// cned_cli — command-line utility exposing the library end to end.
//
// Subcommands:
//   distance <name> <x> <y>          one distance value
//   matrix <name> <file>             pairwise distances of a word list
//   nn <name> <file> <query...>      nearest neighbours via LAESA
//   suggest <file> <radius> <word>   BK-tree spelling suggestions (dE)
//   script <x> <y>                   optimal contextual edit script
//   rho <name> <file>                intrinsic dimensionality of a file
//
// <file> is one string per line (e.g. the real SISAP dictionary).

#include <iostream>
#include <string>
#include <vector>

#include "core/contextual_script.h"
#include "datasets/dataset.h"
#include "distances/registry.h"
#include "metric/stats.h"
#include "search/bk_tree.h"
#include "search/laesa.h"

namespace {

int Usage() {
  std::cerr
      << "usage:\n"
         "  cned_cli distance <name> <x> <y>\n"
         "  cned_cli matrix <name> <file>\n"
         "  cned_cli nn <name> <file> <query...>\n"
         "  cned_cli suggest <file> <radius> <word>\n"
         "  cned_cli script <x> <y>\n"
         "  cned_cli rho <name> <file>\n"
         "distance names: ";
  for (const auto& n : cned::AllDistanceNames()) std::cerr << n << ' ';
  std::cerr << '\n';
  return 2;
}

int CmdDistance(const std::vector<std::string>& args) {
  if (args.size() != 3) return Usage();
  auto d = cned::MakeDistance(args[0]);
  std::cout << d->Distance(args[1], args[2]) << '\n';
  return 0;
}

int CmdMatrix(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  auto d = cned::MakeDistance(args[0]);
  cned::Dataset data = cned::Dataset::LoadLines(args[1]);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < data.size(); ++j) {
      std::cout << d->Distance(data.strings[i], data.strings[j])
                << (j + 1 < data.size() ? ' ' : '\n');
    }
  }
  return 0;
}

int CmdNn(const std::vector<std::string>& args) {
  if (args.size() < 3) return Usage();
  auto d = cned::MakeDistance(args[0]);
  cned::Dataset data = cned::Dataset::LoadLines(args[1]);
  std::size_t pivots = std::min<std::size_t>(40, data.size());
  cned::Laesa index(data.strings, d, pivots);
  for (std::size_t q = 2; q < args.size(); ++q) {
    cned::Laesa::QueryStats stats;
    auto r = index.Nearest(args[q], &stats);
    std::cout << args[q] << " -> " << data.strings[r.index]
              << "  d=" << r.distance << "  (" << stats.distance_computations
              << '/' << data.size() << " distances)\n";
  }
  return 0;
}

int CmdSuggest(const std::vector<std::string>& args) {
  if (args.size() != 3) return Usage();
  cned::Dataset data = cned::Dataset::LoadLines(args[0]);
  auto radius = static_cast<std::size_t>(std::stoul(args[1]));
  cned::BkTree tree(data.strings, cned::MakeDistance("dE"));
  for (const auto& hit : tree.RangeSearch(args[2], radius)) {
    std::cout << data.strings[hit.index] << "  (d=" << hit.distance << ")\n";
  }
  return 0;
}

int CmdScript(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  cned::EditScript s = cned::ContextualAlign(args[0], args[1]);
  std::cout << cned::FormatEditScript(s) << '\n';
  return 0;
}

int CmdRho(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  auto d = cned::MakeDistance(args[0]);
  cned::Dataset data = cned::Dataset::LoadLines(args[1]);
  cned::RunningStats stats;
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = i + 1; j < data.size(); ++j) {
      stats.Add(d->Distance(data.strings[i], data.strings[j]));
    }
  }
  std::cout << "pairs=" << stats.count() << " mean=" << stats.mean()
            << " sigma=" << stats.stddev()
            << " rho=" << cned::IntrinsicDimensionality(stats) << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "distance") return CmdDistance(args);
    if (cmd == "matrix") return CmdMatrix(args);
    if (cmd == "nn") return CmdNn(args);
    if (cmd == "suggest") return CmdSuggest(args);
    if (cmd == "script") return CmdScript(args);
    if (cmd == "rho") return CmdRho(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return Usage();
}
