// Spellcheck — nearest-neighbour word correction over a dictionary with
// LAESA, the scenario of the paper's Figure 3, grown into the sharded
// serving flow:
//
//   1. build a ShardedPrototypeStore + ShardedLaesa (4 shards, one pivot
//      table per shard, shared global pivots);
//   2. snapshot both to disk in the mmap-ready binary format
//      (64-byte-aligned sections, versioned headers);
//   3. serve the snapshot zero-copy — Map() points the arena and pivot
//      table views straight into the mapped files, so startup is
//      O(validation) instead of O(index) copying and the pages are shared
//      with every other process mapping the same snapshot (a copy-loading
//      Load() is timed alongside for contrast);
//   4. answer a batch of queries through the BatchQueryEngine's two-stage
//      pipeline: one blocked query x pivot pass shared by the whole batch
//      (duplicate queries evaluated once), then per-query elimination
//      sweeps over all shards.
//
// Usage: ./build/spellcheck [word...]

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/registry.h"
#include "search/batch_engine.h"
#include "search/sharded_laesa.h"

int main(int argc, char** argv) {
  // 1. A deterministic 3000-word synthetic dictionary (drop in the real
  //    SISAP file with cned::Dataset::LoadLines if you have it), packed
  //    into 4 shards — each an independently mmap-able arena.
  cned::DictionaryOptions opt;
  opt.word_count = 3000;
  opt.seed = 42;
  cned::Dataset dict = cned::GenerateDictionary(opt);
  const std::size_t shards = 4;
  cned::ShardedPrototypeStore store(dict.strings, shards);
  std::cout << "dictionary: " << store.size() << " words in "
            << store.shard_count() << " shards (e.g. \"" << store.view(0)
            << "\", \"" << store.view(1) << "\")\n";

  // 2. Index with ShardedLaesa: 40 max-min pivots selected globally — the
  //    same pivots a flat index would pick, so results are bit-identical
  //    to the single-store search — with one table per shard.
  auto distance = cned::MakeDistance("dC,h");
  cned::ShardedLaesa index(store, distance, /*num_pivots=*/40);
  std::cout << "sharded LAESA built (" << index.num_pivots() << " pivots, "
            << index.preprocessing_computations()
            << " preprocessing distance computations)\n";

  // 3. Snapshot prototypes + index, then serve zero-copy from the mapped
  //    snapshot. The copy-loading path is timed alongside: it reads and
  //    copies every section, while Map() validates headers and points the
  //    views into the page cache.
  const std::string store_path = "spellcheck_store.bin";
  const std::string index_path = "spellcheck_index.bin";
  store.SaveBinary(store_path);
  index.Save(index_path);
  double copy_ms = 0.0;
  {
    cned::Stopwatch copy_watch;
    cned::ShardedPrototypeStore copy_store =
        cned::ShardedPrototypeStore::LoadBinary(store_path);
    cned::ShardedLaesa copy_index =
        cned::ShardedLaesa::Load(index_path, copy_store, distance);
    (void)copy_index;
    copy_ms = copy_watch.Millis();
  }
  cned::Stopwatch map_watch;
  cned::ShardedPrototypeStore served_store =
      cned::ShardedPrototypeStore::Map(store_path);
  cned::ShardedLaesa served =
      cned::ShardedLaesa::Map(index_path, served_store, distance);
  const double map_ms = map_watch.Millis();
  std::cout << "snapshot: " << store_path << " + " << index_path
            << " -> mmap-served index with " << served.num_pivots()
            << " pivots over " << served.size() << " prototypes\n"
            << "startup: copy load " << copy_ms << " ms, zero-copy map "
            << map_ms << " ms\n\n";

  // 4. Queries: command-line words, or random 2-edit perturbations (with a
  //    repeat, as serving traffic repeats popular queries).
  std::vector<std::string> query_words;
  for (int i = 1; i < argc; ++i) query_words.emplace_back(argv[i]);
  if (query_words.empty()) {
    cned::Rng rng(7);
    query_words =
        cned::MakeQueries(dict.strings, 8, 2, cned::Alphabet::Latin(), rng);
    query_words.push_back(query_words.front());  // a popular query
  }
  cned::PrototypeStore queries(query_words);

  cned::BatchQueryEngine::Options opts;
  opts.pivot_stage = true;  // the shared blocked query x pivot pass
  cned::BatchQueryEngine engine(served, opts);
  cned::QueryStats stats;
  std::vector<cned::QueryStats> shard_stats;
  const auto results = engine.Nearest(queries, &stats, &shard_stats);

  for (std::size_t i = 0; i < results.size(); ++i) {
    std::cout << "  \"" << queries[i] << "\" -> \""
              << served_store.view(results[i].index)
              << "\"  (d_C,h = " << results[i].distance << ")\n";
  }

  std::cout << "\nbatch cost: " << stats.distance_computations
            << " distance computations (" << stats.pivot_computations
            << " in the shared pivot stage; exhaustive search would need "
            << queries.size() * served.size() << ")\n";
  std::cout << "per-shard sweep evaluations:";
  for (std::size_t s = 0; s < shard_stats.size(); ++s) {
    std::cout << " shard" << s << "="
              << shard_stats[s].distance_computations;
  }
  std::cout << '\n';

  std::remove(store_path.c_str());
  std::remove(index_path.c_str());
  return 0;
}
