// Spellcheck — nearest-neighbour word correction over a dictionary with
// LAESA, the scenario of the paper's Figure 3.
//
// Generates a Spanish-like dictionary, indexes it with LAESA under the
// contextual heuristic distance, then corrects perturbed words, reporting
// how many distance computations the metric index saved versus brute force.
//
// Usage: ./build/examples/spellcheck [word...]

#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/dictionary_gen.h"
#include "datasets/perturb.h"
#include "distances/registry.h"
#include "search/counting_distance.h"
#include "search/exhaustive.h"
#include "search/laesa.h"

int main(int argc, char** argv) {
  // 1. A deterministic 3000-word synthetic dictionary (drop in the real
  //    SISAP file with cned::Dataset::LoadLines if you have it).
  cned::DictionaryOptions opt;
  opt.word_count = 3000;
  opt.seed = 42;
  cned::Dataset dict = cned::GenerateDictionary(opt);
  std::cout << "dictionary: " << dict.size() << " words (e.g. \""
            << dict.strings[0] << "\", \"" << dict.strings[1] << "\")\n";

  // 2. Index with LAESA: 40 max-min pivots, linear preprocessing/memory.
  auto counted = std::make_shared<cned::CountingDistance>(
      cned::MakeDistance("dC,h"));
  cned::Laesa index(dict.strings, counted, /*num_pivots=*/40);
  std::cout << "LAESA index built (" << index.num_pivots() << " pivots, "
            << index.preprocessing_computations()
            << " preprocessing distance computations)\n\n";

  // 3. Queries: command-line words, or random 2-edit perturbations.
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) queries.emplace_back(argv[i]);
  if (queries.empty()) {
    cned::Rng rng(7);
    queries =
        cned::MakeQueries(dict.strings, 8, 2, cned::Alphabet::Latin(), rng);
  }

  counted->Reset();
  for (const auto& q : queries) {
    cned::Laesa::QueryStats stats;
    cned::NeighborResult nn = index.Nearest(q, &stats);
    std::cout << "  \"" << q << "\" -> \"" << dict.strings[nn.index]
              << "\"  (d_C,h = " << nn.distance << ", "
              << stats.distance_computations << " of " << dict.size()
              << " distances computed)\n";
  }

  std::cout << "\ntotal query-time distance computations: " << counted->count()
            << " (exhaustive search would need "
            << queries.size() * dict.size() << ")\n";
  return 0;
}
