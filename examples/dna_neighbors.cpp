// DNA neighbours — gene-family retrieval over DNA sequences, the paper's
// genes workload (§4.2).
//
// Generates mutation families of DNA sequences, then for a held-out mutant
// retrieves its nearest neighbours under the contextual heuristic distance
// and checks they come from the right family. Also reports the intrinsic
// dimensionality of the dataset under each distance, explaining why the
// contextual distance searches faster (Table 1 / Figure 2).

#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "datasets/dna_gen.h"
#include "distances/registry.h"
#include "metric/median_string.h"
#include "metric/stats.h"
#include "search/exhaustive.h"

int main() {
  cned::DnaOptions opt;
  opt.sequence_count = 160;
  opt.family_count = 20;
  opt.seed = 33;
  opt.median_length = 80;
  cned::Dataset genes = cned::GenerateDnaGenes(opt);
  std::cout << "dataset: " << genes.size() << " sequences in "
            << opt.family_count << " families, mean length "
            << genes.MeanLength() << "\n\n";

  // Retrieval demo: query with the last sequence of each of 5 families.
  auto dist = cned::MakeDistance("dC,h");
  cned::ExhaustiveSearch search(genes.strings, dist);
  int correct = 0;
  for (int f = 0; f < 5; ++f) {
    // Members of family f sit at indices f, f+20, f+40, ...
    std::size_t query_idx = static_cast<std::size_t>(f) + 140;
    auto neighbors = search.KNearest(genes.strings[query_idx], 4);
    std::cout << "query (family " << genes.labels[query_idx] << "): nearest ";
    for (const auto& nb : neighbors) {
      if (nb.index == query_idx) continue;  // itself
      std::cout << "family " << genes.labels[nb.index] << " (d=" << nb.distance
                << ") ";
      if (genes.labels[nb.index] == genes.labels[query_idx]) ++correct;
    }
    std::cout << "\n";
  }
  std::cout << "family matches among retrieved neighbours: " << correct
            << "/15\n\n";

  // Why the contextual distance searches well here: low intrinsic dimension.
  cned::Table table({"Distance", "intrinsic dimensionality rho"});
  for (const char* name : {"dE", "dC,h", "dYB", "dmax"}) {
    auto d = cned::MakeDistance(name);
    cned::RunningStats stats;
    for (std::size_t i = 0; i < 80; ++i) {
      for (std::size_t j = i + 1; j < 80; ++j) {
        stats.Add(d->Distance(genes.strings[i], genes.strings[j]));
      }
    }
    table.AddRow(name, {cned::IntrinsicDimensionality(stats)});
  }
  table.Print(std::cout);
  std::cout << "(lower rho = flatter histogram = easier metric search)\n\n";

  // Consensus of a family: the set median is the most central member; the
  // approximate median string hill-climbs beyond the sample — a compact
  // prototype for classification or indexing.
  std::vector<std::string> family;
  for (std::size_t i = 0; i < genes.size(); ++i) {
    if (genes.labels[i] == 0 && family.size() < 6) {
      // Truncate for a quick demo; median search is O(|sample| * edits).
      family.push_back(genes.strings[i].substr(0, 40));
    }
  }
  std::size_t center = cned::SetMedianIndex(family, *dist);
  std::string median =
      cned::ApproximateMedianString(family, *dist, cned::Alphabet::Dna(), 3);
  std::cout << "family-0 consensus (first 40 bases):\n  set median    : "
            << family[center] << "\n  climbed median: " << median
            << "\n  total d_C,h to family: "
            << cned::TotalDistance(family[center], family, *dist) << " -> "
            << cned::TotalDistance(median, family, *dist) << "\n";
  return 0;
}
