#ifndef CNED_DATASETS_DICTIONARY_GEN_H_
#define CNED_DATASETS_DICTIONARY_GEN_H_

#include <cstddef>
#include <cstdint>

#include "datasets/dataset.h"

namespace cned {

/// Synthetic stand-in for the SISAP Spanish dictionary (86,062 words).
///
/// Words are built from a Spanish-flavoured syllable model (weighted
/// onset / nucleus / coda inventories, 1-5 syllables) and a family of common
/// suffixes ("s", "es", "cion", "mente", ...), then deduplicated. This
/// preserves the properties the paper's experiments depend on: short strings
/// (~3-15 symbols), a ~26-symbol alphabet, and heavy clustering through
/// shared stems and inflections. Deterministic per seed.
struct DictionaryOptions {
  std::size_t word_count = 10000;
  std::uint64_t seed = 1;
  std::size_t min_syllables = 1;
  std::size_t max_syllables = 5;
  /// Probability of appending an inflection suffix.
  double suffix_probability = 0.35;
  /// Probability that a new word reuses the stem of a previous word
  /// (creates the inflection families a real dictionary has).
  double family_probability = 0.30;
};

/// Generates the dictionary. Unlabelled.
Dataset GenerateDictionary(const DictionaryOptions& options);

}  // namespace cned

#endif  // CNED_DATASETS_DICTIONARY_GEN_H_
