#ifndef CNED_DATASETS_DIGIT_CONTOURS_H_
#define CNED_DATASETS_DIGIT_CONTOURS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datasets/dataset.h"

namespace cned {

/// Synthetic stand-in for the NIST Special Database 3 handwritten-digit
/// contour strings used in the paper's §4.3/§4.4.
///
/// Each sample renders a digit class (0-9) from hand-designed stroke
/// templates onto a small bitmap with a random affine distortion (scale,
/// rotation, shear, translation), random stroke thickness and per-vertex
/// jitter — mimicking scribe variability; as in the paper there is *no*
/// size or orientation normalisation. The largest connected foreground
/// component's outer boundary is then traced (Moore-neighbour tracing) and
/// emitted as a Freeman 8-direction chain code over the alphabet "01234567",
/// exactly the representation used for the original NIST contour strings.
/// Deterministic per seed.
struct DigitContourOptions {
  /// Samples per class; the dataset has 10 * per_class elements.
  std::size_t per_class = 100;
  std::uint64_t seed = 3;
  /// Bitmap size (width x height).
  std::size_t width = 32;
  std::size_t height = 44;
  /// Distortion intensity in [0, ~1]; 0 renders clean templates.
  double distortion = 0.6;
};

/// Generates the labelled digit dataset (label = digit 0-9).
Dataset GenerateDigitContours(const DigitContourOptions& options);

/// Renders one digit and returns its Freeman chain code (exposed for tests
/// and the examples). `digit` must be in [0, 9].
std::string RenderDigitChainCode(int digit, std::uint64_t seed,
                                 const DigitContourOptions& options);

/// Moore-neighbour boundary tracing of the largest connected component of a
/// binary bitmap (row-major, width*height entries, nonzero = foreground).
/// Returns the Freeman chain code of the closed outer contour ("" when the
/// bitmap has no foreground). Exposed as a reusable substrate.
std::string TraceChainCode(const std::vector<std::uint8_t>& bitmap,
                           std::size_t width, std::size_t height);

}  // namespace cned

#endif  // CNED_DATASETS_DIGIT_CONTOURS_H_
