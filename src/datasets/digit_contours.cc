#include "datasets/digit_contours.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "common/rng.h"

namespace cned {
namespace {

struct Point {
  double x, y;
};

using Polyline = std::vector<Point>;

// Stroke templates in the unit square, y growing downward (0 = top).
const std::vector<std::vector<Polyline>>& DigitTemplates() {
  static const std::vector<std::vector<Polyline>> templates = {
      // 0: closed oval
      {{{0.50, 0.06}, {0.78, 0.18}, {0.88, 0.50}, {0.78, 0.82},
        {0.50, 0.94}, {0.22, 0.82}, {0.12, 0.50}, {0.22, 0.18},
        {0.50, 0.06}}},
      // 1: flag + vertical stroke
      {{{0.30, 0.26}, {0.55, 0.06}}, {{0.55, 0.06}, {0.55, 0.94}}},
      // 2: top arc, diagonal, base bar
      {{{0.15, 0.26}, {0.28, 0.10}, {0.55, 0.05}, {0.80, 0.16},
        {0.84, 0.36}, {0.62, 0.58}, {0.34, 0.76}, {0.15, 0.94}},
       {{0.15, 0.94}, {0.86, 0.94}}},
      // 3: two right-facing bumps
      {{{0.18, 0.12}, {0.50, 0.05}, {0.78, 0.16}, {0.74, 0.38},
        {0.48, 0.48}},
       {{0.48, 0.48}, {0.80, 0.58}, {0.82, 0.80}, {0.52, 0.95},
        {0.18, 0.86}}},
      // 4: vertical, diagonal, crossbar
      {{{0.68, 0.94}, {0.68, 0.06}},
       {{0.68, 0.06}, {0.16, 0.62}},
       {{0.16, 0.62}, {0.88, 0.62}}},
      // 5: top bar, descender, bowl
      {{{0.80, 0.06}, {0.22, 0.06}},
       {{0.22, 0.06}, {0.20, 0.44}},
       {{0.20, 0.44}, {0.56, 0.38}, {0.82, 0.52}, {0.84, 0.74},
        {0.58, 0.94}, {0.20, 0.88}}},
      // 6: sweeping stroke with lower loop
      {{{0.70, 0.06}, {0.40, 0.22}, {0.22, 0.50}, {0.20, 0.76},
        {0.42, 0.94}, {0.68, 0.88}, {0.80, 0.68}, {0.62, 0.52},
        {0.34, 0.58}, {0.22, 0.72}}},
      // 7: top bar + diagonal
      {{{0.14, 0.06}, {0.86, 0.06}}, {{0.86, 0.06}, {0.42, 0.94}}},
      // 8: two stacked loops
      {{{0.50, 0.06}, {0.74, 0.15}, {0.74, 0.34}, {0.50, 0.46},
        {0.26, 0.34}, {0.26, 0.15}, {0.50, 0.06}},
       {{0.50, 0.46}, {0.79, 0.58}, {0.79, 0.82}, {0.50, 0.94},
        {0.21, 0.82}, {0.21, 0.58}, {0.50, 0.46}}},
      // 9: mirrored 6 — upper loop with tail
      {{{0.78, 0.50}, {0.66, 0.42}, {0.38, 0.40}, {0.22, 0.28},
        {0.26, 0.12}, {0.52, 0.05}, {0.76, 0.14}, {0.80, 0.38},
        {0.72, 0.66}, {0.52, 0.94}}},
  };
  return templates;
}

class Bitmap {
 public:
  Bitmap(std::size_t w, std::size_t h) : w_(w), h_(h), px_(w * h, 0) {}

  void Set(std::ptrdiff_t x, std::ptrdiff_t y) {
    if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(w_) ||
        y >= static_cast<std::ptrdiff_t>(h_)) {
      return;
    }
    px_[static_cast<std::size_t>(y) * w_ + static_cast<std::size_t>(x)] = 1;
  }

  /// Draws a thick segment by stamping a disc along the line.
  void DrawSegment(Point a, Point b, double radius) {
    double dx = b.x - a.x, dy = b.y - a.y;
    double len = std::hypot(dx, dy);
    int steps = std::max(2, static_cast<int>(len * 2.0) + 1);
    int r = std::max(0, static_cast<int>(std::lround(radius)));
    for (int s = 0; s <= steps; ++s) {
      double t = static_cast<double>(s) / steps;
      auto cx = static_cast<std::ptrdiff_t>(std::lround(a.x + t * dx));
      auto cy = static_cast<std::ptrdiff_t>(std::lround(a.y + t * dy));
      for (int oy = -r; oy <= r; ++oy) {
        for (int ox = -r; ox <= r; ++ox) {
          if (ox * ox + oy * oy <= r * r) Set(cx + ox, cy + oy);
        }
      }
    }
  }

  const std::vector<std::uint8_t>& pixels() const { return px_; }
  std::size_t width() const { return w_; }
  std::size_t height() const { return h_; }

 private:
  std::size_t w_, h_;
  std::vector<std::uint8_t> px_;
};

// Keeps only the largest 8-connected foreground component.
std::vector<std::uint8_t> LargestComponent(const std::vector<std::uint8_t>& px,
                                           std::size_t w, std::size_t h) {
  std::vector<std::int32_t> comp(px.size(), -1);
  std::int32_t next_id = 0;
  std::size_t best_size = 0;
  std::int32_t best_id = -1;
  std::deque<std::size_t> queue;
  for (std::size_t start = 0; start < px.size(); ++start) {
    if (!px[start] || comp[start] >= 0) continue;
    std::size_t size = 0;
    comp[start] = next_id;
    queue.push_back(start);
    while (!queue.empty()) {
      std::size_t cur = queue.front();
      queue.pop_front();
      ++size;
      auto cx = static_cast<std::ptrdiff_t>(cur % w);
      auto cy = static_cast<std::ptrdiff_t>(cur / w);
      for (int oy = -1; oy <= 1; ++oy) {
        for (int ox = -1; ox <= 1; ++ox) {
          if (ox == 0 && oy == 0) continue;
          std::ptrdiff_t nx = cx + ox, ny = cy + oy;
          if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(w) ||
              ny >= static_cast<std::ptrdiff_t>(h)) {
            continue;
          }
          auto ni = static_cast<std::size_t>(ny) * w +
                    static_cast<std::size_t>(nx);
          if (px[ni] && comp[ni] < 0) {
            comp[ni] = next_id;
            queue.push_back(ni);
          }
        }
      }
    }
    if (size > best_size) {
      best_size = size;
      best_id = next_id;
    }
    ++next_id;
  }
  std::vector<std::uint8_t> out(px.size(), 0);
  for (std::size_t i = 0; i < px.size(); ++i) {
    if (px[i] && comp[i] == best_id) out[i] = 1;
  }
  return out;
}

}  // namespace

std::string TraceChainCode(const std::vector<std::uint8_t>& bitmap,
                           std::size_t width, std::size_t height) {
  if (bitmap.size() != width * height) {
    throw std::invalid_argument("TraceChainCode: bitmap size mismatch");
  }
  std::vector<std::uint8_t> px = LargestComponent(bitmap, width, height);

  // Freeman directions, y growing downward: 0=E, 1=NE, 2=N, 3=NW, 4=W,
  // 5=SW, 6=S, 7=SE.
  static constexpr int kDx[8] = {1, 1, 0, -1, -1, -1, 0, 1};
  static constexpr int kDy[8] = {0, -1, -1, -1, 0, 1, 1, 1};

  // Start pixel: topmost-leftmost foreground pixel.
  std::ptrdiff_t sx = -1, sy = -1;
  for (std::size_t i = 0; i < px.size(); ++i) {
    if (px[i]) {
      sx = static_cast<std::ptrdiff_t>(i % width);
      sy = static_cast<std::ptrdiff_t>(i / width);
      break;
    }
  }
  if (sx < 0) return "";

  auto at = [&](std::ptrdiff_t x, std::ptrdiff_t y) -> bool {
    if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(width) ||
        y >= static_cast<std::ptrdiff_t>(height)) {
      return false;
    }
    return px[static_cast<std::size_t>(y) * width +
              static_cast<std::size_t>(x)] != 0;
  };

  // Direction index of a unit neighbour offset (dx+1, dy+1), -1 for centre.
  static constexpr int kDirOf[3][3] = {
      // dy = -1      0       +1   (rows), dx = -1..+1 (cols)
      {3, 2, 1},  // dy = -1: NW N NE
      {4, -1, 0}, // dy =  0: W  .  E
      {5, 6, 7},  // dy = +1: SW S SE
  };

  // Moore-neighbour tracing with Jacob's stopping criterion. We came into
  // the start pixel "from the west" (the pixel to its left is background by
  // construction). The scan examines the 8 neighbours clockwise (decreasing
  // Freeman index in screen coordinates) starting just after the backtrack
  // point — the last background pixel examined, carried as a coordinate.
  std::string code;
  std::ptrdiff_t cx = sx, cy = sy;
  int backtrack = 4;  // direction from the current pixel to the backtrack
  const std::size_t max_steps = 4 * width * height + 8;
  int first_move = -1;
  for (std::size_t step = 0; step < max_steps; ++step) {
    int found = -1;
    for (int t = 1; t <= 8; ++t) {
      int dir = (backtrack - t + 16) % 8;
      if (at(cx + kDx[dir], cy + kDy[dir])) {
        found = dir;
        break;
      }
    }
    if (found < 0) return "";  // isolated pixel: no boundary to follow
    if (cx == sx && cy == sy && first_move >= 0 && found == first_move) {
      break;  // closed the loop entering with the same move as the start
    }
    if (first_move < 0) first_move = found;
    code.push_back(static_cast<char>('0' + found));
    // The neighbour examined just before `found` — direction (found+1)%8 —
    // is background; it becomes the backtrack point of the next pixel.
    // Consecutive ring positions are 8-adjacent, so the offset from the new
    // pixel to that point is a unit step; translate it back to a direction.
    const int prev_dir = (found + 1) % 8;
    const std::ptrdiff_t bx = cx + kDx[prev_dir], by = cy + kDy[prev_dir];
    cx += kDx[found];
    cy += kDy[found];
    backtrack = kDirOf[by - cy + 1][bx - cx + 1];
  }
  return code;
}

std::string RenderDigitChainCode(int digit, std::uint64_t seed,
                                 const DigitContourOptions& options) {
  if (digit < 0 || digit > 9) {
    throw std::invalid_argument("RenderDigitChainCode: digit out of range");
  }
  Rng rng(seed);
  const double d = options.distortion;
  const auto w = static_cast<double>(options.width);
  const auto h = static_cast<double>(options.height);

  for (int attempt = 0; attempt < 16; ++attempt) {
    // Random affine distortion: scale, rotation, shear, translation. The
    // paper's NIST digits are not size- or orientation-normalised, so both
    // vary widely from scribe to scribe.
    double scale = 0.40 + (0.20 + d * 0.35) * rng.Uniform();
    double sx_scale = scale * (1.0 + d * 0.45 * (rng.Uniform() - 0.5));
    double sy_scale = scale * (1.0 + d * 0.35 * (rng.Uniform() - 0.5));
    double angle = d * 0.9 * (rng.Uniform() - 0.5);  // up to ~±26 degrees
    double shear = d * 0.6 * (rng.Uniform() - 0.5);
    double ca = std::cos(angle), sa = std::sin(angle);
    double tx = w * (0.5 + d * 0.15 * (rng.Uniform() - 0.5));
    double ty = h * (0.5 + d * 0.10 * (rng.Uniform() - 0.5));
    double thickness = 1.0 + (d > 0 ? rng.Index(2) : 0);

    Bitmap bmp(options.width, options.height);
    for (const Polyline& stroke : DigitTemplates()[static_cast<std::size_t>(digit)]) {
      Polyline warped;
      warped.reserve(stroke.size());
      for (const Point& p : stroke) {
        // Centre, jitter, shear, rotate, scale, translate.
        double px = p.x - 0.5 + d * 0.05 * rng.Gaussian(0.0, 1.0);
        double py = p.y - 0.5 + d * 0.05 * rng.Gaussian(0.0, 1.0);
        px += shear * py;
        double rx = ca * px - sa * py;
        double ry = sa * px + ca * py;
        warped.push_back(
            {tx + rx * sx_scale * w * 0.92, ty + ry * sy_scale * h * 0.92});
      }
      for (std::size_t i = 1; i < warped.size(); ++i) {
        bmp.DrawSegment(warped[i - 1], warped[i], thickness);
      }
    }
    std::string code =
        TraceChainCode(bmp.pixels(), options.width, options.height);
    if (code.size() >= 24) return code;  // reject degenerate renders
  }
  throw std::runtime_error("RenderDigitChainCode: degenerate render");
}

Dataset GenerateDigitContours(const DigitContourOptions& options) {
  if (options.per_class == 0) {
    throw std::invalid_argument("GenerateDigitContours: per_class == 0");
  }
  Rng master(options.seed);
  Dataset ds;
  for (std::size_t i = 0; i < options.per_class; ++i) {
    for (int digit = 0; digit <= 9; ++digit) {
      ds.Add(RenderDigitChainCode(digit, master.engine()(), options), digit);
    }
  }
  return ds;
}

}  // namespace cned
