#include "datasets/perturb.h"

#include <stdexcept>

namespace cned {

std::string PerturbString(std::string_view s, std::size_t operations,
                          const Alphabet& alphabet, Rng& rng) {
  std::string w(s);
  for (std::size_t op = 0; op < operations; ++op) {
    int kind = w.empty() ? 0 : static_cast<int>(rng.Index(3));
    switch (kind) {
      case 0: {  // insertion
        std::size_t pos = rng.Index(w.size() + 1);
        w.insert(w.begin() + static_cast<std::ptrdiff_t>(pos),
                 alphabet.symbol(rng.Index(alphabet.size())));
        break;
      }
      case 1: {  // deletion
        std::size_t pos = rng.Index(w.size());
        w.erase(w.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
      }
      default: {  // substitution
        std::size_t pos = rng.Index(w.size());
        w[pos] = alphabet.symbol(rng.Index(alphabet.size()));
        break;
      }
    }
  }
  return w;
}

std::vector<std::string> MakeQueries(const std::vector<std::string>& base,
                                     std::size_t count, std::size_t operations,
                                     const Alphabet& alphabet, Rng& rng) {
  if (base.empty()) throw std::invalid_argument("MakeQueries: empty base");
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(
        PerturbString(base[rng.Index(base.size())], operations, alphabet, rng));
  }
  return out;
}

}  // namespace cned
