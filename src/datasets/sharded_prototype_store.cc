#include "datasets/sharded_prototype_store.h"

#include <algorithm>
#include <stdexcept>

namespace cned {
namespace {

constexpr char kShardedMagic[8] = {'C', 'N', 'E', 'D', 'S', 'P', 'S', '1'};
constexpr std::uint32_t kShardedVersion = 1;

}  // namespace

ShardedPrototypeStore::ShardedPrototypeStore(
    const std::vector<std::string>& strings, std::size_t shard_count,
    std::vector<int> labels)
    : labels_(std::move(labels)), total_(strings.size()) {
  if (shard_count == 0) {
    throw std::invalid_argument(
        "ShardedPrototypeStore: need at least one shard");
  }
  if (!labels_.empty() && labels_.size() != strings.size()) {
    throw std::invalid_argument(
        "ShardedPrototypeStore: labels/strings size mismatch");
  }
  shards_.resize(shard_count);
  bases_.resize(shard_count + 1);
  for (std::size_t s = 0; s <= shard_count; ++s) {
    bases_[s] = s * total_ / shard_count;
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t n = bases_[s + 1] - bases_[s];
    std::size_t chars = 0;
    for (std::size_t j = 0; j < n; ++j) chars += strings[bases_[s] + j].size();
    shards_[s].Reserve(n, chars);
    for (std::size_t j = 0; j < n; ++j) shards_[s].Add(strings[bases_[s] + j]);
  }
}

ShardedPrototypeStore::ShardedPrototypeStore(const PrototypeStore& store,
                                             std::size_t shard_count,
                                             std::vector<int> labels)
    : ShardedPrototypeStore(store.ToStrings(), shard_count,
                            std::move(labels)) {}

std::size_t ShardedPrototypeStore::ShardOf(std::size_t i) const {
  // bases_ is sorted; the owning shard is the last base <= i. Empty shards
  // share a base with their successor, and upper_bound lands past all of
  // them — on the (unique) shard that actually contains i.
  const auto it = std::upper_bound(bases_.begin(), bases_.end(), i);
  return static_cast<std::size_t>(it - bases_.begin()) - 1;
}

PrototypeStore ShardedPrototypeStore::ToFlatStore() const {
  PrototypeStore flat;
  std::size_t chars = 0;
  for (const PrototypeStore& s : shards_) chars += s.arena_bytes();
  flat.Reserve(total_, chars);
  for (const PrototypeStore& s : shards_) {
    for (std::size_t j = 0; j < s.size(); ++j) flat.Add(s.view(j));
  }
  return flat;
}

void ShardedPrototypeStore::SaveBinary(const std::string& path) const {
  BinaryWriter writer(path);
  const std::uint64_t counts[3] = {shards_.size(), total_,
                                   has_labels() ? 1u : 0u};
  writer.Header(kShardedMagic, kShardedVersion, counts, 3);
  std::vector<std::uint64_t> sizes(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) sizes[s] = shards_[s].size();
  writer.Align();
  writer.Raw(sizes.data(), sizes.size() * sizeof(std::uint64_t));
  if (has_labels()) {
    static_assert(sizeof(int) == 4, "32-bit labels expected");
    writer.Align();
    writer.Raw(labels_.data(), labels_.size() * sizeof(int));
  }
  for (const PrototypeStore& s : shards_) s.SaveBinary(writer);
  writer.Finish();
}

ShardedPrototypeStore ShardedPrototypeStore::LoadBinary(
    const std::string& path) {
  BinaryReader reader(path);
  const auto counts = reader.Header(kShardedMagic, kShardedVersion);
  const std::uint64_t shard_count = counts[0];
  const std::uint64_t total = counts[1];
  const bool has_labels = counts[2] != 0;
  if (shard_count == 0) {
    throw std::runtime_error(
        "ShardedPrototypeStore::LoadBinary: zero shard count");
  }
  // Header counts are untrusted until checked against the unread tail —
  // a corrupt count must fail as "truncated", not as a huge allocation.
  reader.RequireArray(shard_count, sizeof(std::uint64_t));
  std::vector<std::uint64_t> sizes(shard_count);
  reader.Align();
  reader.Raw(sizes.data(), shard_count * sizeof(std::uint64_t));
  ShardedPrototypeStore store;
  store.total_ = total;
  if (has_labels) {
    reader.RequireArray(total, sizeof(int));
    store.labels_.resize(total);
    reader.Align();
    reader.Raw(store.labels_.data(), total * sizeof(int));
  }
  store.shards_.reserve(shard_count);
  std::uint64_t sum = 0;
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    store.shards_.push_back(PrototypeStore::LoadBinary(reader));
    if (store.shards_.back().size() != sizes[s]) {
      throw std::runtime_error(
          "ShardedPrototypeStore::LoadBinary: shard size mismatch");
    }
    sum += sizes[s];
  }
  if (sum != total) {
    throw std::runtime_error(
        "ShardedPrototypeStore::LoadBinary: shard sizes do not sum to total");
  }
  store.InitBases();
  return store;
}

ShardedPrototypeStore ShardedPrototypeStore::Map(const std::string& path) {
  MappedReader reader(MappedFile::Open(path));
  const auto counts = reader.Header(kShardedMagic, kShardedVersion);
  const std::uint64_t shard_count = counts[0];
  const std::uint64_t total = counts[1];
  const bool has_labels = counts[2] != 0;
  if (shard_count == 0) {
    throw std::runtime_error("ShardedPrototypeStore::Map: zero shard count");
  }
  // Array() bounds-checks every cumulative extent before a view is formed.
  const std::uint64_t* sizes = reader.Array<std::uint64_t>(shard_count);
  ShardedPrototypeStore store;
  store.total_ = total;
  if (has_labels) {
    static_assert(sizeof(int) == 4, "32-bit labels expected");
    const int* labels = reader.Array<int>(total);
    store.labels_.assign(labels, labels + total);
  }
  store.shards_.reserve(shard_count);
  std::uint64_t sum = 0;
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    store.shards_.push_back(PrototypeStore::Map(reader));
    if (store.shards_.back().size() != sizes[s]) {
      throw std::runtime_error(
          "ShardedPrototypeStore::Map: shard size mismatch");
    }
    sum += sizes[s];
  }
  if (sum != total) {
    throw std::runtime_error(
        "ShardedPrototypeStore::Map: shard sizes do not sum to total");
  }
  store.InitBases();
  return store;
}

void ShardedPrototypeStore::InitBases() {
  bases_.resize(shards_.size() + 1);
  bases_[0] = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    bases_[s + 1] = bases_[s] + shards_[s].size();
  }
}

}  // namespace cned
