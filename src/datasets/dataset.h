#ifndef CNED_DATASETS_DATASET_H_
#define CNED_DATASETS_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

namespace cned {

/// A (possibly labelled) collection of strings — the common currency of the
/// generators, search structures and experiment harnesses.
struct Dataset {
  std::vector<std::string> strings;
  /// Class labels aligned with `strings`; empty for unlabelled data.
  std::vector<int> labels;

  bool labeled() const { return !labels.empty(); }
  std::size_t size() const { return strings.size(); }

  /// Appends one element.
  void Add(std::string s, int label = -1);

  /// Mean string length.
  double MeanLength() const;

  /// Writes "label\tstring" (or "string") lines. Throws on I/O error.
  void SaveText(const std::string& path) const;

  /// Reads the format written by SaveText. Lines without a tab are
  /// unlabelled; mixing labelled and unlabelled lines is an error.
  static Dataset LoadText(const std::string& path);

  /// Reads a plain one-string-per-line file (e.g. the real SISAP Spanish
  /// dictionary, so the genuine benchmark can be dropped in).
  static Dataset LoadLines(const std::string& path);
};

}  // namespace cned

#endif  // CNED_DATASETS_DATASET_H_
