#include "datasets/dictionary_gen.h"

#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace cned {
namespace {

struct WeightedInventory {
  std::vector<std::string> items;
  std::vector<double> weights;
};

const WeightedInventory& Onsets() {
  static const WeightedInventory inv{
      {"",   "b",  "c",  "d",  "f",  "g",  "j",  "l",  "m",  "n",
       "p",  "r",  "s",  "t",  "v",  "z",  "ch", "ll", "rr", "br",
       "cr", "dr", "fr", "gr", "pr", "tr", "bl", "cl", "fl", "gl",
       "pl", "qu", "h"},
      {14, 6, 8, 6, 4, 4, 2, 6, 7, 6, 7, 7, 9, 7, 3, 2, 2, 2, 1, 1,
       1,  1, 1, 1, 2, 2, 1, 1, 1, 1, 1, 2, 2}};
  return inv;
}

const WeightedInventory& Nuclei() {
  static const WeightedInventory inv{
      {"a", "e", "i", "o", "u", "ia", "ie", "io", "ue", "ua", "ei", "au"},
      {22, 20, 9, 16, 6, 2, 3, 2, 3, 1, 1, 1}};
  return inv;
}

const WeightedInventory& Codas() {
  static const WeightedInventory inv{{"", "n", "s", "r", "l", "d", "z", "x"},
                                     {55, 12, 12, 8, 6, 3, 3, 1}};
  return inv;
}

const std::vector<std::string>& Suffixes() {
  static const std::vector<std::string> suffixes{
      "s",    "es",   "ar",   "er",    "ir",   "ado", "ido",  "ando",
      "cion", "dad",  "mente", "oso",  "osa",  "ito", "ita",  "illo",
      "illa", "azo",  "ismo", "ista",  "able", "ible"};
  return suffixes;
}

std::string Pick(Rng& rng, const WeightedInventory& inv) {
  return inv.items[rng.Weighted(inv.weights)];
}

std::string MakeSyllable(Rng& rng) {
  return Pick(rng, Onsets()) + Pick(rng, Nuclei()) + Pick(rng, Codas());
}

std::string MakeStem(Rng& rng, std::size_t min_syllables,
                     std::size_t max_syllables) {
  // Favour 2-3 syllables, like a natural lexicon.
  std::vector<double> weights;
  for (std::size_t s = min_syllables; s <= max_syllables; ++s) {
    weights.push_back(s == 2 || s == 3 ? 4.0 : 1.0);
  }
  std::size_t syllables = min_syllables + rng.Weighted(weights);
  std::string stem;
  for (std::size_t s = 0; s < syllables; ++s) stem += MakeSyllable(rng);
  return stem;
}

}  // namespace

Dataset GenerateDictionary(const DictionaryOptions& options) {
  if (options.min_syllables == 0 ||
      options.min_syllables > options.max_syllables) {
    throw std::invalid_argument("GenerateDictionary: bad syllable bounds");
  }
  Rng rng(options.seed);
  Dataset ds;
  std::unordered_set<std::string> seen;
  std::vector<std::string> stems;

  // A generous retry budget: duplicates become more common as the lexicon
  // fills, but the syllable space is vastly larger than any requested size.
  std::size_t attempts = 0;
  const std::size_t max_attempts = options.word_count * 200 + 1000;
  while (ds.size() < options.word_count && attempts < max_attempts) {
    ++attempts;
    std::string stem;
    if (!stems.empty() && rng.Chance(options.family_probability)) {
      stem = stems[rng.Index(stems.size())];
    } else {
      stem = MakeStem(rng, options.min_syllables, options.max_syllables);
      stems.push_back(stem);
    }
    std::string word = stem;
    if (rng.Chance(options.suffix_probability)) {
      const auto& suffixes = Suffixes();
      word += suffixes[rng.Index(suffixes.size())];
    }
    if (seen.insert(word).second) ds.Add(std::move(word));
  }
  if (ds.size() < options.word_count) {
    throw std::runtime_error("GenerateDictionary: could not reach word_count");
  }
  return ds;
}

}  // namespace cned
