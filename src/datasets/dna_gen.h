#ifndef CNED_DATASETS_DNA_GEN_H_
#define CNED_DATASETS_DNA_GEN_H_

#include <cstddef>
#include <cstdint>

#include "datasets/dataset.h"

namespace cned {

/// Synthetic stand-in for the SISAP Listeria monocytogenes gene set
/// (20,660 DNA sequences).
///
/// Sequences form families: each family grows from a random ancestor whose
/// length is drawn log-normally (genes span a wide length range — this large
/// spread is exactly what separates the length-aware normalisations in the
/// paper's Figure 2 / Table 1), and members are derived by point mutations
/// and indels. Labels carry the family id. Deterministic per seed.
struct DnaOptions {
  std::size_t sequence_count = 1000;
  std::size_t family_count = 50;
  std::uint64_t seed = 2;
  /// Median ancestor length and log-normal spread.
  double median_length = 300.0;
  double log_sigma = 0.7;
  std::size_t min_length = 20;
  std::size_t max_length = 3000;
  /// Per-symbol substitution and indel probabilities when deriving a member.
  double mutation_rate = 0.06;
  double indel_rate = 0.02;
};

Dataset GenerateDnaGenes(const DnaOptions& options);

}  // namespace cned

#endif  // CNED_DATASETS_DNA_GEN_H_
