#ifndef CNED_DATASETS_PROTOTYPE_STORE_H_
#define CNED_DATASETS_PROTOTYPE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/binary_io.h"

namespace cned {

/// Flat, cache-friendly storage for a prototype (or query) set.
///
/// `std::vector<std::string>` scatters every string across the heap: each
/// candidate visited by a search index costs a pointer chase, and the
/// lengths the elimination sweeps need live behind those same pointers. The
/// store instead packs all characters into one contiguous arena and keeps
/// 32-bit offset/length arrays alongside, so
///   * `view(i)` is zero-copy (a `string_view` into the arena),
///   * `lengths_data()` exposes the lengths as one flat array the LAESA
///     elimination sweep (and the length-difference "free pivot") can scan
///     without touching the strings, and
///   * iterating candidates in index order walks the arena forward —
///     hardware-prefetcher friendly, like the packed vector arenas of
///     usearch/pg_embedding.
///
/// 32-bit offsets cap the arena at 4 GiB of characters (hundreds of
/// millions of dictionary words); `Add` throws `std::length_error` beyond
/// that. Views returned by `view`/`operator[]` are invalidated by `Add`
/// (the arena may reallocate) — build the store first, then index it.
///
/// Every read goes through span-like views (`const char* arena`,
/// `const uint32_t* offsets/lengths`) that are backed either by the owned
/// vectors (the build path — unchanged behaviour) or, after `Map`, by
/// sections of a memory-mapped snapshot used in place: a serving process
/// pays O(validation) startup instead of O(store) copying, and the pages
/// are shared through the kernel page cache with every other process
/// mapping the same file. Mapped stores are immutable — `Add` throws.
class PrototypeStore {
 public:
  PrototypeStore() = default;

  /// Packs `strings` into the arena (one copy, then zero-copy reads).
  explicit PrototypeStore(const std::vector<std::string>& strings);

  /// Appends one string. Invalidates previously returned views. Throws
  /// std::logic_error on a mapped store (the mapping is read-only).
  void Add(std::string_view s);

  /// Pre-sizes the arrays (`total_chars` may be 0 when unknown). Throws
  /// std::length_error if `total_chars` exceeds the 32-bit arena cap that
  /// `Add` enforces — reserving past it could never be filled legally.
  void Reserve(std::size_t count, std::size_t total_chars = 0);

  std::size_t size() const { return mapping_ ? map_.size : lengths_.size(); }
  bool empty() const { return size() == 0; }

  /// Zero-copy view of the i-th string.
  std::string_view view(std::size_t i) const {
    return {arena_data() + offsets_data()[i], lengths_data()[i]};
  }
  std::string_view operator[](std::size_t i) const { return view(i); }

  std::uint32_t length(std::size_t i) const { return lengths_data()[i]; }

  /// Flat length array, aligned with indices — the SoA side of the store.
  const std::uint32_t* lengths_data() const {
    return mapping_ ? map_.lengths : lengths_.data();
  }

  /// Flat offset array, aligned with indices.
  const std::uint32_t* offsets_data() const {
    return mapping_ ? map_.offsets : offsets_.data();
  }

  /// Raw arena (diagnostics, serialisation).
  const char* arena_data() const {
    return mapping_ ? map_.arena : arena_.data();
  }
  std::size_t arena_bytes() const {
    return mapping_ ? map_.arena_bytes : arena_.size();
  }

  /// True when the views alias a mapped snapshot instead of owned vectors.
  bool mapped() const { return mapping_ != nullptr; }

  /// Materialises owning strings (convenience for tests and tooling).
  std::vector<std::string> ToStrings() const;

  /// Writes the store to `path` in the shared binary format (versioned
  /// 64-byte header, then offset/length/arena sections each 64-byte
  /// aligned — see common/binary_io.h). A serving process can mmap the file
  /// and use the sections in place.
  void SaveBinary(const std::string& path) const;

  /// Reads a store written by `SaveBinary`. Throws std::runtime_error on
  /// bad magic, version mismatch, truncation or inconsistent sections.
  static PrototypeStore LoadBinary(const std::string& path);

  /// Stream forms used to embed a store section inside a larger file
  /// (the sharded store serializer).
  void SaveBinary(BinaryWriter& writer) const;
  static PrototypeStore LoadBinary(BinaryReader& reader);

  /// Zero-copy load: maps a file written by `SaveBinary` and points the
  /// views at its sections in place — no section is copied. Header, section
  /// extents and per-string bounds are fully validated (same errors as
  /// `LoadBinary`); the store co-owns the mapping, so views stay valid for
  /// the store's lifetime, across copies and moves.
  static PrototypeStore Map(const std::string& path);

  /// Cursor form used to map a store section embedded in a larger file
  /// (the sharded store snapshot). The store retains `reader.file()`.
  static PrototypeStore Map(MappedReader& reader);

 private:
  std::vector<char> arena_;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> lengths_;

  /// Views into `mapping_` when mapped; the owned vectors stay empty then.
  /// Copying a mapped store copies the views and shares the mapping.
  struct MappedView {
    const char* arena = nullptr;
    const std::uint32_t* offsets = nullptr;
    const std::uint32_t* lengths = nullptr;
    std::size_t size = 0;
    std::size_t arena_bytes = 0;
  };
  MappedView map_;
  std::shared_ptr<MappedFile> mapping_;
};

/// Constructor adapter every search index takes its prototypes through.
///
/// Binds either
///   * an existing `PrototypeStore` (borrowed — the caller keeps it alive,
///     zero copies; the production path, one store shared by many indexes
///     and the batch engine), or
///   * a `std::vector<std::string>` (packed once into an owned store; the
///     convenience path that keeps existing call sites source-compatible
///     and removes their lifetime hazard, since the index then owns the
///     arena).
///
/// Copy/move just copy the pointer + shared ownership, so indexes holding a
/// `PrototypeStoreRef` keep their default special members.
class PrototypeStoreRef {
 public:
  /// Borrows `store`; the caller keeps it alive while any index uses it.
  PrototypeStoreRef(const PrototypeStore& store)  // NOLINT(runtime/explicit)
      : store_(&store) {}

  /// Packs `strings` into an owned store (one copy at construction).
  PrototypeStoreRef(  // NOLINT(runtime/explicit)
      const std::vector<std::string>& strings)
      : owned_(std::make_shared<PrototypeStore>(strings)),
        store_(owned_.get()) {}

  const PrototypeStore& get() const { return *store_; }
  const PrototypeStore& operator*() const { return *store_; }
  const PrototypeStore* operator->() const { return store_; }

 private:
  std::shared_ptr<const PrototypeStore> owned_;  // null when borrowed
  const PrototypeStore* store_;
};

}  // namespace cned

#endif  // CNED_DATASETS_PROTOTYPE_STORE_H_
