#ifndef CNED_DATASETS_SHARDED_PROTOTYPE_STORE_H_
#define CNED_DATASETS_SHARDED_PROTOTYPE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/binary_io.h"
#include "datasets/prototype_store.h"

namespace cned {

/// A prototype set partitioned into S contiguous shards, each its own
/// `PrototypeStore` (one arena + offset/length arrays per shard) with its
/// own slice of the class labels.
///
/// One flat arena caps out twice: the 32-bit offsets bound it at 4 GiB of
/// characters, and a single LAESA pivot table over it is one giant
/// allocation every query touches. Sharding splits both — each shard is an
/// independently packed, independently mmap-able unit a serving tier can
/// build, load and search in parallel — while the *global index space*
/// stays intact: shard s covers the contiguous global range
/// [shard_base(s), shard_base(s) + shard(s).size()), so global prototype
/// indices (the currency of `NeighborResult`, labels and the classifier)
/// mean the same thing they mean for a flat store.
///
/// Partitioning is deterministic: shard s gets global indices
/// [floor(s*N/S), floor((s+1)*N/S)) in original order, so a
/// `ShardedPrototypeStore` built from the same strings as a flat
/// `PrototypeStore` enumerates identical views at identical global indices.
class ShardedPrototypeStore {
 public:
  ShardedPrototypeStore() = default;

  /// Partitions `strings` (in order) into `shard_count` contiguous shards.
  /// `labels`, when non-empty, must have one entry per string; each shard
  /// then owns the matching slice. Throws std::invalid_argument on
  /// shard_count == 0 or a label/string size mismatch.
  ShardedPrototypeStore(const std::vector<std::string>& strings,
                        std::size_t shard_count,
                        std::vector<int> labels = {});

  /// Same, re-packing an existing flat store (one copy).
  ShardedPrototypeStore(const PrototypeStore& store, std::size_t shard_count,
                        std::vector<int> labels = {});

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  const PrototypeStore& shard(std::size_t s) const { return shards_[s]; }

  /// Global index of shard s's first prototype.
  std::size_t shard_base(std::size_t s) const { return bases_[s]; }

  /// The shard holding global index `i`.
  std::size_t ShardOf(std::size_t i) const;

  /// Zero-copy view of the prototype at global index `i`.
  std::string_view view(std::size_t i) const {
    const std::size_t s = ShardOf(i);
    return shards_[s].view(i - bases_[s]);
  }
  std::string_view operator[](std::size_t i) const { return view(i); }

  std::uint32_t length(std::size_t i) const {
    const std::size_t s = ShardOf(i);
    return shards_[s].length(i - bases_[s]);
  }

  bool has_labels() const { return !labels_.empty(); }
  /// Global label array (empty when unlabeled).
  const std::vector<int>& labels() const { return labels_; }
  /// Shard s's slice of the labels (size shard(s).size()); null when
  /// unlabeled.
  const int* shard_labels(std::size_t s) const {
    return has_labels() ? labels_.data() + bases_[s] : nullptr;
  }

  /// Materialises the global set as one flat store (pivot selection, tests).
  PrototypeStore ToFlatStore() const;

  /// Writes shard count, labels and every per-shard section to `path` in
  /// the shared 64-byte-aligned binary format (common/binary_io.h).
  void SaveBinary(const std::string& path) const;

  /// Reads a store written by `SaveBinary`. Throws std::runtime_error on
  /// bad magic, version mismatch, truncation or inconsistent sections.
  static ShardedPrototypeStore LoadBinary(const std::string& path);

  /// Zero-copy load: maps a snapshot written by `SaveBinary` and backs
  /// every shard's arena/offset/length views by the file sections in place
  /// (each shard co-owns the one mapping). Labels are the single copied
  /// section — they are returned as a `std::vector<int>&` by `labels()` and
  /// are 4 bytes per prototype, negligible next to the arenas. Validation
  /// matches `LoadBinary`.
  static ShardedPrototypeStore Map(const std::string& path);

  /// True when the shard views alias a mapped snapshot.
  bool mapped() const { return !shards_.empty() && shards_[0].mapped(); }

 private:
  void InitBases();

  std::vector<PrototypeStore> shards_;
  std::vector<std::size_t> bases_;  // bases_[s] = first global index; size S+1
  std::vector<int> labels_;         // global labels, empty when unlabeled
  std::size_t total_ = 0;
};

}  // namespace cned

#endif  // CNED_DATASETS_SHARDED_PROTOTYPE_STORE_H_
