#ifndef CNED_DATASETS_PERTURB_H_
#define CNED_DATASETS_PERTURB_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "strings/alphabet.h"

namespace cned {

/// Applies `operations` random single-symbol edits (insertion, deletion or
/// substitution, uniformly) to `s`, the analogue of the SISAP `genqueries`
/// tool the paper uses to derive dictionary queries ("a perturbation of two
/// operations over the training dataset", §4.3).
std::string PerturbString(std::string_view s, std::size_t operations,
                          const Alphabet& alphabet, Rng& rng);

/// Draws `count` strings from `base` (with replacement) and perturbs each
/// with `operations` random edits.
std::vector<std::string> MakeQueries(const std::vector<std::string>& base,
                                     std::size_t count, std::size_t operations,
                                     const Alphabet& alphabet, Rng& rng);

}  // namespace cned

#endif  // CNED_DATASETS_PERTURB_H_
