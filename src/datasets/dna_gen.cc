#include "datasets/dna_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "strings/alphabet.h"

namespace cned {
namespace {

constexpr char kBases[] = {'A', 'C', 'G', 'T'};

std::string RandomSequence(Rng& rng, std::size_t length) {
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) s.push_back(kBases[rng.Index(4)]);
  return s;
}

std::string Mutate(Rng& rng, const std::string& ancestor, double mutation_rate,
                   double indel_rate) {
  std::string out;
  out.reserve(ancestor.size() + 8);
  for (char c : ancestor) {
    double r = rng.Uniform();
    if (r < indel_rate / 2.0) {
      continue;  // deletion
    }
    if (r < indel_rate) {
      out.push_back(kBases[rng.Index(4)]);  // insertion before c
    }
    if (rng.Chance(mutation_rate)) {
      out.push_back(kBases[rng.Index(4)]);  // substitution (may be silent)
    } else {
      out.push_back(c);
    }
  }
  if (out.empty()) out.push_back(kBases[rng.Index(4)]);
  return out;
}

}  // namespace

Dataset GenerateDnaGenes(const DnaOptions& options) {
  if (options.family_count == 0 || options.sequence_count == 0) {
    throw std::invalid_argument("GenerateDnaGenes: zero counts");
  }
  Rng rng(options.seed);
  Dataset ds;

  std::vector<std::string> ancestors;
  ancestors.reserve(options.family_count);
  for (std::size_t f = 0; f < options.family_count; ++f) {
    double log_len =
        rng.Gaussian(std::log(options.median_length), options.log_sigma);
    auto len = static_cast<std::size_t>(std::lround(std::exp(log_len)));
    len = std::clamp(len, options.min_length, options.max_length);
    ancestors.push_back(RandomSequence(rng, len));
  }

  for (std::size_t i = 0; i < options.sequence_count; ++i) {
    std::size_t f = i % options.family_count;
    ds.Add(Mutate(rng, ancestors[f], options.mutation_rate, options.indel_rate),
           static_cast<int>(f));
  }
  return ds;
}

}  // namespace cned
