#include "datasets/prototype_store.h"

#include <limits>
#include <stdexcept>

namespace cned {

PrototypeStore::PrototypeStore(const std::vector<std::string>& strings) {
  std::size_t total = 0;
  for (const auto& s : strings) total += s.size();
  Reserve(strings.size(), total);
  for (const auto& s : strings) Add(s);
}

void PrototypeStore::Reserve(std::size_t count, std::size_t total_chars) {
  offsets_.reserve(count);
  lengths_.reserve(count);
  arena_.reserve(total_chars);
}

void PrototypeStore::Add(std::string_view s) {
  constexpr std::size_t kMax = std::numeric_limits<std::uint32_t>::max();
  if (s.size() > kMax || arena_.size() > kMax - s.size()) {
    throw std::length_error(
        "PrototypeStore: arena exceeds 32-bit offset range");
  }
  offsets_.push_back(static_cast<std::uint32_t>(arena_.size()));
  lengths_.push_back(static_cast<std::uint32_t>(s.size()));
  arena_.insert(arena_.end(), s.begin(), s.end());
}

std::vector<std::string> PrototypeStore::ToStrings() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.emplace_back(view(i));
  return out;
}

}  // namespace cned
