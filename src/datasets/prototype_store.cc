#include "datasets/prototype_store.h"

#include <limits>
#include <stdexcept>

namespace cned {

namespace {
constexpr std::size_t kArenaMax = std::numeric_limits<std::uint32_t>::max();
}  // namespace

PrototypeStore::PrototypeStore(const std::vector<std::string>& strings) {
  std::size_t total = 0;
  for (const auto& s : strings) {
    // Overflow-safe: the sum itself could wrap std::size_t on 32-bit, and
    // a wrapped total would under-reserve and then mis-report the arena
    // cap. Any input past the 32-bit cap fails here, before Reserve.
    if (s.size() > kArenaMax - total) {
      throw std::length_error(
          "PrototypeStore: arena exceeds 32-bit offset range");
    }
    total += s.size();
  }
  Reserve(strings.size(), total);
  for (const auto& s : strings) Add(s);
}

void PrototypeStore::Reserve(std::size_t count, std::size_t total_chars) {
  // Enforce the same cap Add does: reserving past it would allocate
  // gigabytes for a store that can never legally fill them.
  if (total_chars > kArenaMax) {
    throw std::length_error(
        "PrototypeStore::Reserve: arena exceeds 32-bit offset range");
  }
  offsets_.reserve(count);
  lengths_.reserve(count);
  arena_.reserve(total_chars);
}

void PrototypeStore::Add(std::string_view s) {
  if (mapping_ != nullptr) {
    throw std::logic_error(
        "PrototypeStore::Add: store is a read-only mapped view");
  }
  constexpr std::size_t kMax = std::numeric_limits<std::uint32_t>::max();
  if (s.size() > kMax || arena_.size() > kMax - s.size()) {
    throw std::length_error(
        "PrototypeStore: arena exceeds 32-bit offset range");
  }
  offsets_.push_back(static_cast<std::uint32_t>(arena_.size()));
  lengths_.push_back(static_cast<std::uint32_t>(s.size()));
  arena_.insert(arena_.end(), s.begin(), s.end());
}

std::vector<std::string> PrototypeStore::ToStrings() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.emplace_back(view(i));
  return out;
}

namespace {
constexpr char kStoreMagic[8] = {'C', 'N', 'E', 'D', 'P', 'S', 'T', '1'};
constexpr std::uint32_t kStoreVersion = 1;
}  // namespace

void PrototypeStore::SaveBinary(BinaryWriter& writer) const {
  // Writes through the view accessors, so a mapped store re-snapshots
  // byte-identically without materialising owned copies.
  const std::uint64_t counts[2] = {size(), arena_bytes()};
  writer.Align();
  writer.Header(kStoreMagic, kStoreVersion, counts, 2);
  writer.Align();
  writer.Raw(offsets_data(), size() * sizeof(std::uint32_t));
  writer.Align();
  writer.Raw(lengths_data(), size() * sizeof(std::uint32_t));
  writer.Align();
  writer.Raw(arena_data(), arena_bytes());
}

void PrototypeStore::SaveBinary(const std::string& path) const {
  BinaryWriter writer(path);
  SaveBinary(writer);
  writer.Finish();
}

PrototypeStore PrototypeStore::LoadBinary(BinaryReader& reader) {
  reader.Align();
  const auto counts = reader.Header(kStoreMagic, kStoreVersion);
  const std::uint64_t n = counts[0];
  const std::uint64_t arena_bytes = counts[1];
  if (arena_bytes > std::numeric_limits<std::uint32_t>::max()) {
    throw std::runtime_error(
        "PrototypeStore::LoadBinary: arena exceeds 32-bit offset range");
  }
  // Header counts are untrusted until checked against the unread tail —
  // a corrupt count must fail as "truncated", not as a huge allocation.
  // Each section is checked (padding included) right before its
  // allocation, so the extents accumulate against the actual file length.
  PrototypeStore store;
  reader.RequireArray(n, sizeof(std::uint32_t));
  store.offsets_.resize(n);
  reader.Align();
  reader.Raw(store.offsets_.data(), n * sizeof(std::uint32_t));
  reader.RequireArray(n, sizeof(std::uint32_t));
  store.lengths_.resize(n);
  reader.Align();
  reader.Raw(store.lengths_.data(), n * sizeof(std::uint32_t));
  reader.RequireArray(arena_bytes, 1);
  store.arena_.resize(arena_bytes);
  reader.Align();
  reader.Raw(store.arena_.data(), arena_bytes);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (static_cast<std::uint64_t>(store.offsets_[i]) + store.lengths_[i] >
        arena_bytes) {
      throw std::runtime_error(
          "PrototypeStore::LoadBinary: string section out of arena bounds");
    }
  }
  return store;
}

PrototypeStore PrototypeStore::LoadBinary(const std::string& path) {
  BinaryReader reader(path);
  return LoadBinary(reader);
}

PrototypeStore PrototypeStore::Map(MappedReader& reader) {
  const auto counts = reader.Header(kStoreMagic, kStoreVersion);
  const std::uint64_t n = counts[0];
  const std::uint64_t arena_bytes = counts[1];
  if (arena_bytes > std::numeric_limits<std::uint32_t>::max()) {
    throw std::runtime_error(
        "PrototypeStore::Map: arena exceeds 32-bit offset range");
  }
  // Section() range-checks each cumulative extent against the file length
  // before forming the view — corrupt counts fail as "truncated file".
  PrototypeStore store;
  store.map_.offsets = reader.Array<std::uint32_t>(n);
  store.map_.lengths = reader.Array<std::uint32_t>(n);
  store.map_.arena = reader.Array<char>(arena_bytes);
  store.map_.size = static_cast<std::size_t>(n);
  store.map_.arena_bytes = static_cast<std::size_t>(arena_bytes);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (static_cast<std::uint64_t>(store.map_.offsets[i]) +
            store.map_.lengths[i] >
        arena_bytes) {
      throw std::runtime_error(
          "PrototypeStore::Map: string section out of arena bounds");
    }
  }
  store.mapping_ = reader.file();
  return store;
}

PrototypeStore PrototypeStore::Map(const std::string& path) {
  MappedReader reader(MappedFile::Open(path));
  return Map(reader);
}

}  // namespace cned
