#include "datasets/dataset.h"

#include <fstream>
#include <stdexcept>

namespace cned {

void Dataset::Add(std::string s, int label) {
  strings.push_back(std::move(s));
  if (label >= 0) {
    if (labels.size() + 1 != strings.size()) {
      throw std::logic_error("Dataset::Add: mixing labelled and unlabelled");
    }
    labels.push_back(label);
  } else if (!labels.empty()) {
    throw std::logic_error("Dataset::Add: mixing labelled and unlabelled");
  }
}

double Dataset::MeanLength() const {
  if (strings.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& s : strings) total += s.size();
  return static_cast<double>(total) / static_cast<double>(strings.size());
}

void Dataset::SaveText(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Dataset::SaveText: cannot open " + path);
  for (std::size_t i = 0; i < strings.size(); ++i) {
    if (labeled()) out << labels[i] << '\t';
    out << strings[i] << '\n';
  }
  if (!out) throw std::runtime_error("Dataset::SaveText: write failed");
}

Dataset Dataset::LoadText(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Dataset::LoadText: cannot open " + path);
  Dataset ds;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto tab = line.find('\t');
    if (tab == std::string::npos) {
      ds.Add(line);
    } else {
      int label = std::stoi(line.substr(0, tab));
      ds.Add(line.substr(tab + 1), label);
    }
  }
  return ds;
}

Dataset Dataset::LoadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Dataset::LoadLines: cannot open " + path);
  Dataset ds;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
      line.pop_back();
    }
    if (!line.empty()) ds.Add(line);
  }
  return ds;
}

}  // namespace cned
