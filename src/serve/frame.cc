#include "serve/frame.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/crc32.h"

namespace cned {
namespace {

constexpr std::size_t kHeaderBytes = 20;

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, rounded *up* (sub-millisecond
/// remainders poll for 1ms instead of truncating to a premature 0);
/// clamped at 0 once the deadline passed; -1 for "no deadline".
int RemainingMs(bool bounded, Clock::time_point deadline) {
  if (!bounded) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>((left + 999) / 1000);
}

/// Reads exactly `n` bytes, polling against the deadline between chunks.
RecvStatus RecvExact(int fd, char* out, std::size_t n, bool bounded,
                     Clock::time_point deadline) {
  std::size_t got = 0;
  bool polled = false;
  while (got < n) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int wait = RemainingMs(bounded, deadline);
    // Even with the deadline already passed, poll once non-blockingly: a
    // frame that is fully buffered in the socket must still be drained
    // (timeout_ms == 0 means "take what's there", not "fail").
    if (bounded && wait == 0 && polled) return RecvStatus::kTimeout;
    const int pr = ::poll(&pfd, 1, wait);
    polled = true;
    if (pr == 0) {
      if (RemainingMs(bounded, deadline) > 0) continue;  // woke early
      return RecvStatus::kTimeout;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kClosed;
    }
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) return RecvStatus::kClosed;
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return RecvStatus::kClosed;
    }
    got += static_cast<std::size_t>(r);
  }
  return RecvStatus::kOk;
}

bool SendExact(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that died between frames must surface as an
    // error return, not a SIGPIPE that kills the router.
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

void EncodeHeader(char* header, std::uint32_t len, std::uint32_t type,
                  std::uint32_t seq, std::uint32_t qid, std::uint32_t crc) {
  std::memcpy(header + 0, &len, 4);
  std::memcpy(header + 4, &type, 4);
  std::memcpy(header + 8, &seq, 4);
  std::memcpy(header + 12, &qid, 4);
  std::memcpy(header + 16, &crc, 4);
}

}  // namespace

bool EncodeFrame(std::vector<char>* out, FrameType type, std::uint32_t seq,
                 std::uint32_t qid, const void* payload,
                 std::size_t payload_bytes, bool corrupt_crc) {
  if (payload_bytes > kMaxFramePayload) return false;
  std::uint32_t crc = Crc32(payload, payload_bytes);
  if (corrupt_crc) crc ^= 0xDEADBEEFu;
  char header[kHeaderBytes];
  EncodeHeader(header, static_cast<std::uint32_t>(payload_bytes),
               static_cast<std::uint32_t>(type), seq, qid, crc);
  out->insert(out->end(), header, header + sizeof(header));
  const char* p = static_cast<const char*>(payload);
  out->insert(out->end(), p, p + payload_bytes);
  return true;
}

bool SendFrame(int fd, FrameType type, std::uint32_t seq, std::uint32_t qid,
               const void* payload, std::size_t payload_bytes,
               bool corrupt_crc) {
  if (payload_bytes > kMaxFramePayload) return false;
  std::uint32_t crc = Crc32(payload, payload_bytes);
  if (corrupt_crc) crc ^= 0xDEADBEEFu;
  char header[kHeaderBytes];
  EncodeHeader(header, static_cast<std::uint32_t>(payload_bytes),
               static_cast<std::uint32_t>(type), seq, qid, crc);
  if (!SendExact(fd, header, sizeof(header))) return false;
  return payload_bytes == 0 ||
         SendExact(fd, static_cast<const char*>(payload), payload_bytes);
}

bool SendBytes(int fd, const void* data, std::size_t n) {
  return SendExact(fd, static_cast<const char*>(data), n);
}

RecvStatus RecvFrame(int fd, Frame* out, int timeout_ms) {
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);

  char header[kHeaderBytes];
  RecvStatus st = RecvExact(fd, header, sizeof(header), bounded, deadline);
  if (st != RecvStatus::kOk) return st;
  std::uint32_t len = 0, type = 0, seq = 0, qid = 0, crc = 0;
  std::memcpy(&len, header + 0, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&seq, header + 8, 4);
  std::memcpy(&qid, header + 12, 4);
  std::memcpy(&crc, header + 16, 4);
  if (len > kMaxFramePayload || type == 0 || type > kMaxFrameType) {
    return RecvStatus::kMalformed;
  }
  out->type = type;
  out->seq = seq;
  out->qid = qid;
  out->payload.resize(len);
  if (len > 0) {
    st = RecvExact(fd, out->payload.data(), len, bounded, deadline);
    if (st != RecvStatus::kOk) return st;
  }
  if (Crc32(out->payload.data(), out->payload.size()) != crc) {
    return RecvStatus::kMalformed;
  }
  return RecvStatus::kOk;
}

void FrameBuffer::Append(const void* data, std::size_t n) {
  // Compact the consumed prefix before growing; keeps the buffer bounded
  // by the in-flight frames, not by connection lifetime.
  if (off_ > 0 && (off_ >= buf_.size() || off_ > (buf_.size() >> 1))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  const char* p = static_cast<const char*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

FrameBuffer::Next FrameBuffer::Pop(Frame* out) {
  if (poisoned_) return Next::kMalformed;
  const std::size_t avail = buf_.size() - off_;
  if (avail < kHeaderBytes) return Next::kNeedMore;
  const char* header = buf_.data() + off_;
  std::uint32_t len = 0, type = 0, seq = 0, qid = 0, crc = 0;
  std::memcpy(&len, header + 0, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&seq, header + 8, 4);
  std::memcpy(&qid, header + 12, 4);
  std::memcpy(&crc, header + 16, 4);
  if (len > kMaxFramePayload || type == 0 || type > kMaxFrameType) {
    poisoned_ = true;
    return Next::kMalformed;
  }
  if (avail < kHeaderBytes + len) return Next::kNeedMore;
  const char* payload = header + kHeaderBytes;
  if (Crc32(payload, len) != crc) {
    poisoned_ = true;
    return Next::kMalformed;
  }
  out->type = type;
  out->seq = seq;
  out->qid = qid;
  out->payload.assign(payload, payload + len);
  off_ += kHeaderBytes + len;
  return Next::kFrame;
}

void PayloadWriter::Raw(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  buf.insert(buf.end(), p, p + n);
}

std::string PayloadReader::Str() {
  const std::uint32_t n = U32();
  const char* p = Raw(n);
  return ok_ ? std::string(p, n) : std::string();
}

const char* PayloadReader::Raw(std::size_t n) {
  if (!ok_ || size_ - off_ < n) {
    ok_ = false;
    return nullptr;
  }
  const char* p = data_ + off_;
  off_ += n;
  return p;
}

}  // namespace cned
