#include "serve/frame.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/crc32.h"

namespace cned {
namespace {

constexpr std::size_t kHeaderBytes = 16;

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped at 0; -1 for "no deadline".
int RemainingMs(bool bounded, Clock::time_point deadline) {
  if (!bounded) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

/// Reads exactly `n` bytes, polling against the deadline between chunks.
RecvStatus RecvExact(int fd, char* out, std::size_t n, bool bounded,
                     Clock::time_point deadline) {
  std::size_t got = 0;
  while (got < n) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int wait = RemainingMs(bounded, deadline);
    if (bounded && wait == 0) return RecvStatus::kTimeout;
    const int pr = ::poll(&pfd, 1, wait);
    if (pr == 0) return RecvStatus::kTimeout;
    if (pr < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kClosed;
    }
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) return RecvStatus::kClosed;
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return RecvStatus::kClosed;
    }
    got += static_cast<std::size_t>(r);
  }
  return RecvStatus::kOk;
}

bool SendExact(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that died between frames must surface as an
    // error return, not a SIGPIPE that kills the router.
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool SendFrame(int fd, FrameType type, std::uint32_t seq, const void* payload,
               std::size_t payload_bytes, bool corrupt_crc) {
  if (payload_bytes > kMaxFramePayload) return false;
  char header[kHeaderBytes];
  const std::uint32_t len = static_cast<std::uint32_t>(payload_bytes);
  const std::uint32_t type_u = static_cast<std::uint32_t>(type);
  std::uint32_t crc = Crc32(payload, payload_bytes);
  if (corrupt_crc) crc ^= 0xDEADBEEFu;
  std::memcpy(header + 0, &len, 4);
  std::memcpy(header + 4, &type_u, 4);
  std::memcpy(header + 8, &seq, 4);
  std::memcpy(header + 12, &crc, 4);
  if (!SendExact(fd, header, sizeof(header))) return false;
  return payload_bytes == 0 ||
         SendExact(fd, static_cast<const char*>(payload), payload_bytes);
}

RecvStatus RecvFrame(int fd, Frame* out, int timeout_ms) {
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);

  char header[kHeaderBytes];
  RecvStatus st = RecvExact(fd, header, sizeof(header), bounded, deadline);
  if (st != RecvStatus::kOk) return st;
  std::uint32_t len = 0, type = 0, seq = 0, crc = 0;
  std::memcpy(&len, header + 0, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&seq, header + 8, 4);
  std::memcpy(&crc, header + 12, 4);
  if (len > kMaxFramePayload || type == 0 || type > kMaxFrameType) {
    return RecvStatus::kMalformed;
  }
  out->type = type;
  out->seq = seq;
  out->payload.resize(len);
  if (len > 0) {
    st = RecvExact(fd, out->payload.data(), len, bounded, deadline);
    if (st != RecvStatus::kOk) return st;
  }
  if (Crc32(out->payload.data(), out->payload.size()) != crc) {
    return RecvStatus::kMalformed;
  }
  return RecvStatus::kOk;
}

void PayloadWriter::Raw(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  buf.insert(buf.end(), p, p + n);
}

std::string PayloadReader::Str() {
  const std::uint32_t n = U32();
  const char* p = Raw(n);
  return ok_ ? std::string(p, n) : std::string();
}

const char* PayloadReader::Raw(std::size_t n) {
  if (!ok_ || size_ - off_ < n) {
    ok_ = false;
    return nullptr;
  }
  const char* p = data_ + off_;
  off_ += n;
  return p;
}

}  // namespace cned
