#ifndef CNED_SERVE_REPLICA_H_
#define CNED_SERVE_REPLICA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/mapped_file.h"
#include "datasets/prototype_store.h"
#include "distances/distance.h"
#include "search/nn_searcher.h"
#include "search/sweep_kernel.h"
#include "search/table_quant.h"

namespace cned {

/// The worker-process half of the distributed LAESA sweep: one shard's
/// prototypes, its slice of the pivot table, and that shard's segment of
/// the candidate slabs.
///
/// A replica is the per-shard loop body of `ShardedLaesa::Sweep` /
/// `SweepWithRow` cut out and given its own state. It runs exactly the
/// same dispatched kernels over exactly the same per-shard values
/// (sweep_kernel.h), and the router merges its `SweepCompactResult`s the
/// same way the in-process index merges its per-shard passes — which is
/// what makes a healthy distributed query bit-identical (neighbours,
/// distances AND QueryStats) to the in-process `ShardedLaesa`.
///
/// Multiplexing: sweep state lives in per-query slots keyed by the frame
/// layer's query id, so one replica serves any number of interleaved
/// sweeps over a single connection. Each slot is an independent copy of
/// the segment slabs — a sweep's trajectory is a pure function of its own
/// (Begin*, Step*...) sequence, untouched by whatever other queries do in
/// between — which is exactly what keeps interleaved queries bit-identical
/// to running them back to back. Mutable-tier state (delta, tombstones) is
/// shared across slots; the router's writer lock guarantees mutations
/// never interleave with a sweep that has already begun.
///
/// Construction verifies both snapshot files' CRC footers with a full
/// `VerifySnapshotChecksum` pass before mapping them: a worker serving a
/// silently corrupted shard would poison every merged result, so the
/// serving tier pays the one sequential read up front.
class ShardReplica {
 public:
  /// Maps shard files written by `SaveServingSnapshot`. Throws
  /// std::runtime_error on checksum or validation failure, or when the two
  /// files disagree about the deployment shape.
  ShardReplica(const std::string& store_path, const std::string& index_path,
               const std::string& distance_name);

  std::size_t shard_id() const { return shard_id_; }
  std::size_t base() const { return base_; }
  std::size_t size() const { return store_.size(); }
  std::size_t total_size() const { return n_total_; }
  std::size_t num_pivots() const { return pivots_.size(); }

  /// Storage precision of the mapped table slice (shard_snapshot.h v2
  /// carries quantized tables; v1 is always f64).
  TablePrecision table_precision() const { return precision_; }

  /// Candidates still live in query `qid`'s slot. Throws std::out_of_range
  /// for an unknown qid.
  std::size_t live(std::uint32_t qid) const;
  /// Live candidates of `qid`'s slot that are pivots. The router sums
  /// these across shards; when a shard dies its contribution drops out of
  /// the sum automatically, keeping the global pivot accounting exact
  /// under degrade.
  std::size_t live_pivots(std::uint32_t qid) const;

  /// Active sweep slots (monitoring; the overflow guard's input).
  std::size_t sweep_count() const { return sweeps_.size(); }

  /// Hard cap on concurrent sweep slots per replica: a Begin* past it
  /// throws (the worker answers kError) instead of letting a router that
  /// leaks query ids grow the worker without bound.
  static constexpr std::size_t kMaxSweeps = 4096;

  /// Starts a lazy sweep in `qid`'s slot (created, or reset if the id is
  /// being reused): length lower bounds over the segment, all candidates
  /// live. With `masked_start` false this is the legacy path: the returned
  /// pass only carries `live` (the router starts at the first pivot),
  /// bit-identical to the pre-mutability protocol. With it true the
  /// shard's base tombstones are masked out by an initial compaction at
  /// bound=+inf (sweep_kernel.h) and the returned pass carries this
  /// segment's minimal-bound survivors so the router can pick a live start
  /// across shards.
  SweepCompactResult BeginLazy(std::uint32_t qid, std::string_view query,
                               bool masked_start);

  /// Retires `qid`'s slot. Idempotent — the router's end-of-sweep frame is
  /// fire-and-forget, so a duplicate or a never-begun id is a no-op.
  void EndSweep(std::uint32_t qid);

  /// --- Live mutability (mutable tier ops, replicated by the router). ----

  /// Appends one prototype to this shard's delta under its router-assigned
  /// global id. Idempotent: per-shard ids arrive ascending, so a re-sent id
  /// is recognised and ignored. Returns true when newly applied.
  bool Insert(std::uint64_t id, std::string_view s);

  /// Tombstones a global id in this shard's base segment or delta.
  /// Idempotent; returns true when newly applied, false for unknown or
  /// already-dead ids.
  bool Remove(std::uint64_t id);

  /// Bounded exhaustive scan of the live delta in ascending-id order: the
  /// scattered form of the mutable tier's delta phase. Each evaluation is
  /// capped by min(cap0, the local k-th hit); `>= cap` abandons, exactly
  /// the sweeps' semantics, so the result is a deterministic pure function
  /// of (delta, query, cap0, k) — safe to retry and to byte-compare across
  /// group members. Hits report global ids in `index`.
  void DeltaScan(std::string_view query, double cap0, std::size_t k,
                 std::vector<NeighborResult>* hits,
                 std::uint64_t* computations, std::uint64_t* abandons) const;

  std::size_t base_dead() const { return base_dead_; }
  std::size_t delta_count() const { return delta_store_.size(); }
  std::size_t delta_dead() const { return delta_dead_; }
  std::size_t total_dead() const { return base_dead_ + delta_dead_; }

  /// Starts a row sweep in `qid`'s slot: length bounds, every pivot row
  /// applied dense, then the seed compaction against `seed_bound`. Returns
  /// the segment's compact result.
  SweepCompactResult BeginRow(std::uint32_t qid, std::string_view query,
                              const double* row, double seed_bound);

  /// d(slot query, prototype at global id) bounded by `cap` — the
  /// scattered form of the sweep's visit evaluation. Pure (idempotent):
  /// safe for the router to retry. Throws std::out_of_range for an id
  /// outside the segment or an unknown qid.
  double Eval(std::uint32_t qid, std::size_t global_id, double cap) const;

  /// One lazy visit pass on `qid`'s slot: if `rank` >= 0 the visited
  /// candidate was pivot `rank`, so its table row tightens the segment's
  /// bounds first; then eliminate-and-compact against `bound` with
  /// `slack`, dropping `skip` (the visited candidate). Mutates slot state
  /// — not idempotent. Throws std::out_of_range for an unknown qid.
  SweepCompactResult Step(std::uint32_t qid, std::uint32_t skip,
                          std::int32_t rank, double d, double slack,
                          double bound);

  /// One row-sweep visit pass: eliminate-and-compact only.
  SweepCompactResult StepRow(std::uint32_t qid, std::uint32_t skip,
                             double bound);

 private:
  std::size_t shard_id_ = 0;
  std::size_t base_ = 0;
  std::size_t n_total_ = 0;
  std::size_t shard_count_ = 0;

  /// The any-precision view of the mapped table slice (table_quant.h). The
  /// row meta is the GLOBAL per-row meta the build computed, so a worker's
  /// bounds match the in-process sharded index bit for bit.
  QuantTableView table_view() const {
    QuantTableView view;
    view.precision = precision_;
    if (precision_ == TablePrecision::kF64) {
      view.f64 = table_;
    } else {
      view.q = qtable_;
      view.rows = row_meta_;
    }
    return view;
  }

  PrototypeStore store_;  // mapped shard store
  StringDistancePtr distance_;
  std::vector<std::size_t> pivots_;       // global pivot ids
  std::vector<std::int32_t> pivot_rank_;  // global id -> ordinal or -1
  TablePrecision precision_ = TablePrecision::kF64;
  const double* table_ = nullptr;         // row-major np x n_s, mapped (f64)
  const void* qtable_ = nullptr;          // quantized codes, mapped (v2)
  const QuantRowMeta* row_meta_ = nullptr;  // global per-row meta, mapped
  std::shared_ptr<MappedFile> index_mapping_;

  /// One in-flight sweep: this query's private copy of the segment slabs.
  struct SweepSlot {
    std::string query;
    AlignedBuffer<std::uint32_t> idx;
    AlignedBuffer<double> lower;
    std::size_t live = 0;
    std::size_t live_pivots = 0;
  };
  SweepSlot& NewSlot(std::uint32_t qid);
  SweepSlot& SlotOf(std::uint32_t qid);
  const SweepSlot& SlotOf(std::uint32_t qid) const;

  std::unordered_map<std::uint32_t, std::unique_ptr<SweepSlot>> sweeps_;

  // Mutable-tier state, process-local (rebuilt by the router's op-journal
  // replay when a replica respawns). Tombstone bitmaps are allocated on
  // first use; empty means no deletes.
  std::vector<std::uint64_t> tombs_;  // over base slots
  std::size_t base_dead_ = 0;
  PrototypeStore delta_store_;               // owned, appendable
  std::vector<std::uint64_t> delta_ids_;     // global id per delta slot
  std::vector<std::uint64_t> delta_tombs_;   // over delta slots
  std::size_t delta_dead_ = 0;
};

}  // namespace cned

#endif  // CNED_SERVE_REPLICA_H_
