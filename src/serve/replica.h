#ifndef CNED_SERVE_REPLICA_H_
#define CNED_SERVE_REPLICA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/mapped_file.h"
#include "datasets/prototype_store.h"
#include "distances/distance.h"
#include "search/nn_searcher.h"
#include "search/sweep_kernel.h"
#include "search/table_quant.h"

namespace cned {

/// The worker-process half of the distributed LAESA sweep: one shard's
/// prototypes, its slice of the pivot table, and that shard's segment of
/// the candidate slabs.
///
/// A replica is the per-shard loop body of `ShardedLaesa::Sweep` /
/// `SweepWithRow` cut out and given its own state. It runs exactly the
/// same dispatched kernels over exactly the same per-shard values
/// (sweep_kernel.h), and the router merges its `SweepCompactResult`s the
/// same way the in-process index merges its per-shard passes — which is
/// what makes a healthy distributed query bit-identical (neighbours,
/// distances AND QueryStats) to the in-process `ShardedLaesa`.
///
/// Construction verifies both snapshot files' CRC footers with a full
/// `VerifySnapshotChecksum` pass before mapping them: a worker serving a
/// silently corrupted shard would poison every merged result, so the
/// serving tier pays the one sequential read up front.
class ShardReplica {
 public:
  /// Maps shard files written by `SaveServingSnapshot`. Throws
  /// std::runtime_error on checksum or validation failure, or when the two
  /// files disagree about the deployment shape.
  ShardReplica(const std::string& store_path, const std::string& index_path,
               const std::string& distance_name);

  std::size_t shard_id() const { return shard_id_; }
  std::size_t base() const { return base_; }
  std::size_t size() const { return store_.size(); }
  std::size_t total_size() const { return n_total_; }
  std::size_t num_pivots() const { return pivots_.size(); }

  /// Storage precision of the mapped table slice (shard_snapshot.h v2
  /// carries quantized tables; v1 is always f64).
  TablePrecision table_precision() const { return precision_; }

  /// Candidates still live in this shard's segment.
  std::size_t live() const { return live_; }
  /// Live candidates of this segment that are pivots. The router sums
  /// these across shards; when a shard dies its contribution drops out of
  /// the sum automatically, keeping the global pivot accounting exact
  /// under degrade.
  std::size_t live_pivots() const { return live_pivots_; }

  /// Starts a lazy sweep: length lower bounds over the segment, all
  /// candidates live. With `masked_start` false this is the legacy path:
  /// the returned pass only carries `live` (the router starts at the first
  /// pivot), bit-identical to the pre-mutability protocol. With it true the
  /// shard's base tombstones are masked out by an initial compaction at
  /// bound=+inf (sweep_kernel.h) and the returned pass carries this
  /// segment's minimal-bound survivors so the router can pick a live start
  /// across shards.
  SweepCompactResult BeginLazy(std::string_view query, bool masked_start);

  /// --- Live mutability (mutable tier ops, replicated by the router). ----

  /// Appends one prototype to this shard's delta under its router-assigned
  /// global id. Idempotent: per-shard ids arrive ascending, so a re-sent id
  /// is recognised and ignored. Returns true when newly applied.
  bool Insert(std::uint64_t id, std::string_view s);

  /// Tombstones a global id in this shard's base segment or delta.
  /// Idempotent; returns true when newly applied, false for unknown or
  /// already-dead ids.
  bool Remove(std::uint64_t id);

  /// Bounded exhaustive scan of the live delta in ascending-id order: the
  /// scattered form of the mutable tier's delta phase. Each evaluation is
  /// capped by min(cap0, the local k-th hit); `>= cap` abandons, exactly
  /// the sweeps' semantics, so the result is a deterministic pure function
  /// of (delta, query, cap0, k) — safe to retry and to byte-compare across
  /// group members. Hits report global ids in `index`.
  void DeltaScan(std::string_view query, double cap0, std::size_t k,
                 std::vector<NeighborResult>* hits,
                 std::uint64_t* computations, std::uint64_t* abandons) const;

  std::size_t base_dead() const { return base_dead_; }
  std::size_t delta_count() const { return delta_store_.size(); }
  std::size_t delta_dead() const { return delta_dead_; }
  std::size_t total_dead() const { return base_dead_ + delta_dead_; }

  /// Starts a row sweep: length bounds, every pivot row applied dense,
  /// then the seed compaction against `seed_bound`. Returns the segment's
  /// compact result.
  SweepCompactResult BeginRow(std::string_view query, const double* row,
                              double seed_bound);

  /// d(query, prototype at global id) bounded by `cap` — the scattered
  /// form of the sweep's visit evaluation. Pure (idempotent): safe for the
  /// router to retry. Throws std::out_of_range for an id outside the
  /// segment.
  double Eval(std::size_t global_id, double cap) const;

  /// One lazy visit pass: if `rank` >= 0 the visited candidate was pivot
  /// `rank`, so its table row tightens the segment's bounds first; then
  /// eliminate-and-compact against `bound` with `slack`, dropping `skip`
  /// (the visited candidate). Mutates segment state — not idempotent.
  SweepCompactResult Step(std::uint32_t skip, std::int32_t rank, double d,
                          double slack, double bound);

  /// One row-sweep visit pass: eliminate-and-compact only.
  SweepCompactResult StepRow(std::uint32_t skip, double bound);

 private:
  std::size_t shard_id_ = 0;
  std::size_t base_ = 0;
  std::size_t n_total_ = 0;
  std::size_t shard_count_ = 0;

  /// The any-precision view of the mapped table slice (table_quant.h). The
  /// row meta is the GLOBAL per-row meta the build computed, so a worker's
  /// bounds match the in-process sharded index bit for bit.
  QuantTableView table_view() const {
    QuantTableView view;
    view.precision = precision_;
    if (precision_ == TablePrecision::kF64) {
      view.f64 = table_;
    } else {
      view.q = qtable_;
      view.rows = row_meta_;
    }
    return view;
  }

  PrototypeStore store_;  // mapped shard store
  StringDistancePtr distance_;
  std::vector<std::size_t> pivots_;       // global pivot ids
  std::vector<std::int32_t> pivot_rank_;  // global id -> ordinal or -1
  TablePrecision precision_ = TablePrecision::kF64;
  const double* table_ = nullptr;         // row-major np x n_s, mapped (f64)
  const void* qtable_ = nullptr;          // quantized codes, mapped (v2)
  const QuantRowMeta* row_meta_ = nullptr;  // global per-row meta, mapped
  std::shared_ptr<MappedFile> index_mapping_;

  std::string query_;  // current query (set by Begin*)
  AlignedBuffer<std::uint32_t> idx_;
  AlignedBuffer<double> lower_;
  std::size_t live_ = 0;
  std::size_t live_pivots_ = 0;

  // Mutable-tier state, process-local (rebuilt by the router's op-journal
  // replay when a replica respawns). Tombstone bitmaps are allocated on
  // first use; empty means no deletes.
  std::vector<std::uint64_t> tombs_;  // over base slots
  std::size_t base_dead_ = 0;
  PrototypeStore delta_store_;               // owned, appendable
  std::vector<std::uint64_t> delta_ids_;     // global id per delta slot
  std::vector<std::uint64_t> delta_tombs_;   // over delta slots
  std::size_t delta_dead_ = 0;
};

}  // namespace cned

#endif  // CNED_SERVE_REPLICA_H_
