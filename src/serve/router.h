#ifndef CNED_SERVE_ROUTER_H_
#define CNED_SERVE_ROUTER_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "distances/distance.h"
#include "search/nn_searcher.h"
#include "search/sweep_kernel.h"

namespace cned {

/// Tuning and robustness knobs of the scatter/gather router.
struct ServeOptions {
  /// Distance registry name (distances/registry.h). Required; must match
  /// the distance the snapshot was built with.
  std::string distance;

  /// Per-operation reply timeout. A shard that misses it on an idempotent
  /// op (ping / begin / eval) is retried; on a sweep-mutating op (step) it
  /// is degraded immediately — its slab state can no longer be trusted to
  /// match the router's accounting.
  int op_timeout_ms = 2000;
  /// Whole-query deadline. When it expires mid-sweep the router returns
  /// the incumbents it has, flagged partial, with every shard that still
  /// held live candidates listed as missing.
  int query_deadline_ms = 10000;
  /// Extra attempts (beyond the first) for idempotent ops.
  int op_retries = 2;
  /// Exponential backoff between retries: `backoff_base_ms << attempt`.
  int backoff_base_ms = 5;
  /// Respawn dead workers (kill, waitpid, fork, re-Map, ping) before each
  /// query, so one crash degrades one query, not the rest of the session.
  bool auto_respawn = true;

  /// CNED_FAULT-grammar fault schedule for the initial workers
  /// (serve/fault.h); empty = fault-free.
  std::string fault_spec;
  /// Fault schedule handed to *respawned* workers. Kept separate (and
  /// default clean) so an nth-based crash directive does not re-fire on
  /// every respawn.
  std::string respawn_fault_spec;
  /// Path to the `cned_shard_worker` binary. Empty (the default) forks
  /// workers in-process — no exec, the test/bench path; non-empty
  /// fork+execs the binary per shard.
  std::string worker_binary;
};

/// One query's answer plus its degradation record.
struct ServeResult {
  std::vector<NeighborResult> neighbors;
  QueryStats stats;
  /// True when any shard's candidates were not (fully) considered — the
  /// neighbours are then exact over the surviving shards only, possibly
  /// improved by evaluations that landed before a shard was lost.
  bool partial = false;
  /// The shards this query is missing, ascending. A shard appears here if
  /// it was dead at query start, failed mid-sweep, or still held live
  /// candidates when the deadline expired.
  std::vector<std::size_t> missing_shards;
};

/// Fault-tolerant scatter/gather serving tier over a per-shard snapshot
/// directory (serve/shard_snapshot.h).
///
/// Topology: this router process + one forked worker process per shard,
/// each pair connected by a socketpair speaking the checksummed framing of
/// serve/frame.h. Workers map only their own shard's store and index
/// slice; the router loads only the manifest (shard shapes + pivot ids +
/// pivot strings), so no process ever materialises the whole index.
///
/// A query runs the exact `ShardedLaesa` sweep with the per-shard passes
/// scattered: the router makes every global decision (incumbents,
/// elimination bound, next candidate — merged over the per-shard compact
/// results in shard order with strict '<', the lowest-global-index tie
/// rule), workers run the kernel passes over their segments, and the
/// elimination radius tightens incrementally between rounds exactly as it
/// does in process. A healthy router is therefore bit-identical —
/// neighbours, distances AND QueryStats — to the in-process index,
/// regardless of worker count.
///
/// Failure semantics (the robustness contract the tests pin down):
///   * per-op timeouts; idempotent ops retry with exponential backoff,
///     sweep-mutating ops never retry;
///   * a crashed / timed-out / malformed-reply shard is degraded: dropped
///     from the rest of the query and named in `missing_shards`;
///   * the per-query deadline degrades to partial results instead of
///     blocking;
///   * dead workers are respawned (fresh fork + checksum-verified re-map)
///     before the next query when `auto_respawn` is set;
///   * `stats.shards_degraded` counts the missing shards, so healthy
///     queries still compare bit-equal to in-process stats (0 == 0).
class ServeRouter {
 public:
  /// Loads the manifest and spawns one worker per shard. Throws
  /// std::runtime_error on a malformed manifest or if *every* worker fails
  /// to come up; individual dead workers only degrade queries.
  ServeRouter(const std::string& snapshot_dir, const ServeOptions& options);
  ~ServeRouter();
  ServeRouter(const ServeRouter&) = delete;
  ServeRouter& operator=(const ServeRouter&) = delete;

  std::size_t size() const { return n_; }
  std::size_t shard_count() const { return shard_sizes_.size(); }
  std::size_t num_pivots() const { return pivots_.size(); }
  const std::vector<std::size_t>& pivots() const { return pivots_; }

  /// Lazy (per-query) path — the distributed `ShardedLaesa::Nearest`.
  ServeResult Nearest(std::string_view query);
  ServeResult KNearest(std::string_view query, std::size_t k);

  /// Batched pivot-stage path — the distributed `*WithPivotRow` pipeline:
  /// the router evaluates each query's pivot row once (locally, from the
  /// manifest's pivot strings) and scatters it; workers seed and sweep.
  /// Equivalent to the in-process pivot-row path per query; stats include
  /// the row evaluations, as the batch engine counts them.
  std::vector<ServeResult> NearestBatch(
      const std::vector<std::string>& queries);
  std::vector<ServeResult> KNearestBatch(
      const std::vector<std::string>& queries, std::size_t k);

  /// Heartbeat: pings every worker (retrying per options), marking the
  /// ones that miss as dead. Returns true when all workers are healthy.
  bool PingAll();

  /// Kills (SIGKILL + waitpid) and respawns every dead worker, re-mapping
  /// its shard. Returns the number brought back to healthy.
  std::size_t RespawnDead();

  /// Worker inspection hooks for tests and monitoring.
  pid_t worker_pid(std::size_t s) const { return workers_[s].pid; }
  bool worker_alive(std::size_t s) const { return workers_[s].alive; }

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    std::uint32_t seq = 0;
  };

  /// Per-query view of one shard's sweep state, mirrored from its worker's
  /// replies.
  struct ShardView {
    bool active = false;
    std::size_t live = 0;
    std::size_t live_pivots = 0;
    SweepCompactResult last;
  };

  void SpawnWorker(std::size_t s, const std::string& fault_spec);
  void MarkDead(std::size_t s);
  void ReapWorker(std::size_t s);

  /// One request/reply exchange with worker `s`. Retries (with backoff)
  /// only when `retryable`; marks the worker dead on any unrecoverable
  /// failure. Replies with stale sequence numbers (from a timed-out
  /// earlier attempt) are discarded.
  bool SendRecv(std::size_t s, std::uint32_t type,
                const std::vector<char>& payload, std::vector<char>* reply,
                int timeout_ms, bool retryable);

  /// Scatters one identical request to every active shard, then gathers.
  /// Shards that fail are flipped inactive in `views` and appended to
  /// `missing`. Replies land in `replies[s]`.
  void Broadcast(std::uint32_t type, const std::vector<char>& payload,
                 bool retryable, int timeout_ms, std::vector<ShardView>& views,
                 std::vector<std::vector<char>>& replies,
                 std::vector<std::size_t>& missing);

  std::size_t ShardOf(std::size_t global) const;
  int RemainingMs(std::int64_t deadline_ms) const;

  ServeResult QueryLazy(std::string_view query, std::size_t k, double slack);
  ServeResult QueryRow(std::string_view query, std::size_t k);

  // Manifest state.
  std::size_t n_ = 0;
  std::vector<std::size_t> shard_sizes_;
  std::vector<std::size_t> bases_;        // size S+1
  std::vector<std::size_t> pivots_;       // global pivot ids
  std::vector<std::int32_t> pivot_rank_;  // global id -> ordinal or -1
  std::vector<std::string> pivot_strings_;
  StringDistancePtr distance_;

  std::string dir_;
  ServeOptions options_;
  std::vector<Worker> workers_;
};

}  // namespace cned

#endif  // CNED_SERVE_ROUTER_H_
