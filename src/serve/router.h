#ifndef CNED_SERVE_ROUTER_H_
#define CNED_SERVE_ROUTER_H_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "distances/distance.h"
#include "search/nn_searcher.h"
#include "search/sweep_kernel.h"
#include "serve/reactor.h"

namespace cned {

/// Tuning and robustness knobs of the scatter/gather router. Validated at
/// router construction: an out-of-range field throws std::invalid_argument
/// naming the offending field.
struct ServeOptions {
  /// Distance registry name (distances/registry.h). Required; must match
  /// the distance the snapshot was built with.
  std::string distance;

  /// Replica-group size: every shard is served by `replicas` worker
  /// processes over the same snapshot files. State-machine replication —
  /// the router scatters the begin and every sweep-mutating step to all
  /// live members, so standbys hold bit-identical slab state and a dead
  /// primary is replaced mid-query with no loss. 1 = the unreplicated
  /// scatter/gather tier; must be >= 1.
  int replicas = 2;

  /// Per-operation reply timeout. A replica that misses it on an
  /// idempotent op (ping / begin / eval) is retried; on a sweep-mutating
  /// op (step) it is marked dead immediately — its slab state can no
  /// longer be trusted to match the router's accounting. The *shard*
  /// degrades only when its whole replica group is lost.
  int op_timeout_ms = 2000;
  /// Whole-query deadline. When it expires mid-sweep the router returns
  /// the incumbents it has, flagged partial, with every shard that still
  /// held live candidates listed as missing.
  int query_deadline_ms = 10000;
  /// Extra attempts (beyond the first) for idempotent ops.
  int op_retries = 2;
  /// Exponential backoff between retries: `backoff_base_ms << attempt`,
  /// with each sleep capped at the time remaining until the query
  /// deadline so retries can never sleep a query past its budget.
  int backoff_base_ms = 5;
  /// Hedging for idempotent Eval ops: when the primary has not replied
  /// after this long (and a live standby exists), the router races the
  /// same request to a standby and takes whichever reply lands first —
  /// either answer is exact, so this only cuts the slow-shard tail.
  /// Negative disables hedging.
  int hedge_delay_ms = 25;
  /// Respawn dead workers (kill, waitpid, fork, re-Map, ping) before each
  /// query, so one crash degrades one query, not the rest of the session.
  /// A replica respawned between queries rejoins its group at the next
  /// query's begin; a replica respawned while *other* queries are in
  /// flight never joins those sweeps — each query pinned its participants
  /// (and their connections) at its own begin.
  bool auto_respawn = true;
  /// > 0 runs a background health loop at this period: ping-based failure
  /// detection plus respawn/re-map of dead replicas. The loop is
  /// drift-free (each tick is scheduled from the previous deadline, not
  /// from when the work finished) and runs *concurrently* with queries —
  /// pings multiplex over the shared connections, and a replica it
  /// revives only joins queries that begin afterwards. 0 disables the
  /// thread — the synchronous `auto_respawn` path alone keeps groups at
  /// full strength.
  int health_interval_ms = 0;
  /// Caps how many dead replicas one health tick will respawn, bounding
  /// the fork/re-map/replay work a tick can inject into a loaded server;
  /// the remainder waits for the next tick (or for a query-path respawn,
  /// which is never capped — a caller already paying for a query wants
  /// full strength). 0 = uncapped.
  int max_respawns_per_tick = 4;

  /// CNED_FAULT-grammar fault schedule for the initial workers
  /// (serve/fault.h); empty = fault-free.
  std::string fault_spec;
  /// Fault schedule handed to *respawned* workers. Kept separate (and
  /// default clean) so an nth-based crash directive does not re-fire on
  /// every respawn.
  std::string respawn_fault_spec;
  /// Path to the `cned_shard_worker` binary. Empty (the default) forks
  /// workers in-process — no exec, the test/bench path; non-empty
  /// fork+execs the binary per shard replica.
  std::string worker_binary;
};

/// One query's answer plus its degradation and failover record.
struct ServeResult {
  std::vector<NeighborResult> neighbors;
  QueryStats stats;
  /// True when any shard's candidates were not (fully) considered — the
  /// neighbours are then exact over the surviving shards only, possibly
  /// improved by evaluations that landed before a shard was lost. A shard
  /// whose primary failed but whose standby took over is NOT partial.
  bool partial = false;
  /// True when the admission front end (serve/engine.h) refused the query
  /// under overload instead of running it; neighbors/stats are empty. The
  /// router itself never sheds — only the engine sets this.
  bool shed = false;
  /// The shards this query is missing, ascending. A shard appears here
  /// only when its *entire replica group* was lost: dead at query start,
  /// failed mid-sweep, or still live at the deadline.
  std::vector<std::size_t> missing_shards;
  /// Primary promotions performed during this query (a standby with
  /// bit-identical slab state took over mid-sweep; the result stayed
  /// exact and unflagged).
  std::size_t failovers = 0;
  /// Eval requests that were raced to a standby after the hedge delay.
  std::size_t hedged_evals = 0;
  /// Standby replicas evicted because their reply disagreed byte-for-byte
  /// with the primary's (corrupt state; the primary's reply drove the
  /// merge).
  std::size_t replicas_evicted = 0;
};

/// Fault-tolerant scatter/gather serving tier over a per-shard snapshot
/// directory (serve/shard_snapshot.h).
///
/// Topology: this router process + a replica group of R worker processes
/// per shard (ServeOptions::replicas), each connected by a socketpair
/// speaking the checksummed framing of serve/frame.h. All members of a
/// group map the *same* shard snapshot files; the router loads only the
/// manifest (shard shapes + pivot ids + pivot strings), so no process
/// ever materialises the whole index.
///
/// A query runs the exact `ShardedLaesa` sweep with the per-shard passes
/// scattered: the router makes every global decision (incumbents,
/// elimination bound, next candidate — merged over the per-shard compact
/// results in shard order with strict '<', the lowest-global-index tie
/// rule), workers run the kernel passes over their segments, and the
/// elimination radius tightens incrementally between rounds exactly as it
/// does in process. A healthy router is therefore bit-identical —
/// neighbours, distances AND QueryStats — to the in-process index,
/// regardless of worker or replica count.
///
/// Concurrency model (the concurrent pipelined router): N caller threads
/// drive N simultaneous scatter/gather sweeps over the *shared* worker
/// connections. Every query multiplexes through three mechanisms:
///   * a router-assigned nonzero query id stamped on every frame; workers
///     keep per-query sweep slots keyed on it (serve/replica.h), so
///     interleaved sweeps cannot see each other's slab state;
///   * a per-connection reactor (serve/reactor.h) that matches replies to
///     callers by sequence number and coalesces concurrent sends, so N
///     in-flight queries cost far fewer syscalls than N serialized ones;
///   * a query context captured at begin: the set of (connection, alive)
///     participants this query may ever talk to. Failover and hedging act
///     only inside the context; a replica respawned mid-flight (new
///     connection) never joins an in-flight sweep — its slab state would
///     be stale.
/// Lock hierarchy (outer to inner): `world_mu_` (shared for queries,
/// exclusive for mutations — sweeps never interleave with Insert/Remove,
/// which keeps bit-identity and the per-shard journal order), then
/// `respawn_mu_` (spawn/reap/replay; the health loop takes only this, so
/// it pings and revives without blocking queries), then each group's
/// `mu` (membership snapshots, short).
///
/// Replication model (state-machine): a shard's slab state is a pure
/// deterministic function of its op sequence (Begin*, then the Step*s),
/// so the router scatters the begin and every mutating step to ALL live
/// members of each group. The primary's reply drives the merge; every
/// standby's reply is checked for byte agreement (a disagreeing standby
/// is evicted as corrupt). When the primary crashes, times out, or
/// returns a malformed frame mid-sweep, the router promotes a standby
/// whose state is bit-identical by construction — the query completes
/// exact and unflagged. Idempotent Evals go to the primary only and are
/// hedged to a standby after `hedge_delay_ms`.
///
/// Failure semantics (the robustness contract the tests pin down):
///   * per-op timeouts; idempotent ops retry with exponential backoff
///     (each sleep capped at the remaining query deadline), sweep-
///     mutating ops never retry on the same replica;
///   * a crashed / timed-out / malformed-reply replica is marked dead; if
///     it was the primary a standby is promoted and the query continues
///     exact;
///   * `partial` / `missing_shards` fire only when a whole replica group
///     is lost; the per-query deadline degrades to partial results
///     instead of blocking;
///   * dead replicas are respawned (fresh fork + checksum-verified
///     re-map) and rejoin at a later query's begin — synchronously before
///     a query when `auto_respawn` is set, and/or from the background
///     health loop;
///   * `stats.shards_degraded` counts the missing shards, so healthy
///     queries still compare bit-equal to in-process stats (0 == 0).
/// One sweep for the multiplexed driver to run. `query` and `row` are
/// borrowed — they must stay valid until the job's result is Delivered.
struct SweepJob {
  std::string_view query;
  std::size_t k = 0;
  /// d(query, pivot p) for every pivot, `num_pivots()` entries.
  const double* row = nullptr;
  /// Opaque caller identifier, echoed back through Deliver.
  std::uint64_t tag = 0;
};

/// The pull/deliver seam between `ServeRouter::DriveSweeps` and an
/// admission front end. All methods are invoked from the single driver
/// thread; implementations that share state with other threads (an
/// admission queue) do their own locking.
class SweepFeed {
 public:
  virtual ~SweepFeed() = default;
  /// Pops the next job to admit. False when nothing is queued right now
  /// (the driver parks and asks again later).
  virtual bool Next(SweepJob* out) = 0;
  /// True once no further jobs will ever arrive: the driver finishes the
  /// sweeps it already admitted, delivers them, and returns.
  virtual bool Finished() = 0;
  /// One settled job. `bailed` means the fast path refused or aborted it
  /// (`res` is then empty) and the caller must rerun it on the robust
  /// per-query path (`KNearestWithRow`). Called with the router's world
  /// lock held shared — do not call back into the router from here.
  virtual void Deliver(std::uint64_t tag, ServeResult res, bool bailed) = 0;
  /// Optional readable fd the driver adds to its park poll, made readable
  /// by producers when Next() may have new jobs (self-pipe). The driver
  /// drains it when it polls readable. -1 = none; the driver then relies
  /// on its short park cap to notice new work.
  virtual int wake_fd() { return -1; }
};

class ServeRouter {
 public:
  /// Loads the manifest and spawns `options.replicas` workers per shard.
  /// Throws std::invalid_argument on out-of-range options,
  /// std::runtime_error on a malformed manifest or if *every* worker
  /// fails to come up; individual dead workers only degrade queries.
  ServeRouter(const std::string& snapshot_dir, const ServeOptions& options);
  ~ServeRouter();
  ServeRouter(const ServeRouter&) = delete;
  ServeRouter& operator=(const ServeRouter&) = delete;

  std::size_t size() const { return n_; }
  std::size_t shard_count() const { return shard_sizes_.size(); }
  std::size_t replica_count() const { return replicas_per_shard_; }
  std::size_t num_pivots() const { return pivots_.size(); }
  const std::vector<std::size_t>& pivots() const { return pivots_; }
  /// The manifest's pivot strings (immutable), in pivot-ordinal order —
  /// what the admission front end needs to run the pivot stage itself.
  const std::vector<std::string>& pivot_strings() const {
    return pivot_strings_;
  }
  /// The router's distance (immutable after construction).
  const StringDistance& metric() const { return *distance_; }

  /// Lazy (per-query) path — the distributed `ShardedLaesa::Nearest`.
  /// Thread-safe: concurrent calls multiplex over the shared connections.
  ServeResult Nearest(std::string_view query);
  ServeResult KNearest(std::string_view query, std::size_t k);

  /// --- Live mutability (the distributed mutable tier). -------------------
  ///
  /// The router is the source of truth: every op is journaled per owner
  /// shard before it is replicated to all live members of that shard's
  /// group (like begins and steps), and a respawned replica is replayed
  /// from the journal before it rejoins — so a crash never loses a
  /// mutation the router acknowledged. Ops are idempotent worker-side
  /// (dedup by stable id) with dedup-stable replies, which keeps both the
  /// retry path and the group byte-agreement check sound. Mutations take
  /// the world lock exclusively: they are globally serialized in journal
  /// order and never interleave with an in-flight sweep.

  /// Appends one prototype; returns its stable global id (ids start at
  /// size() and are never reused). The owner shard is id-round-robin.
  std::uint64_t Insert(std::string_view s);

  /// Tombstones a stable id (base or delta). Returns false when the id is
  /// unknown or already removed. A removed prototype is masked inside the
  /// workers' sweep compactions — it can never surface as a neighbour.
  bool Remove(std::uint64_t id);

  /// Live prototypes: base + inserts - removals. (size() stays the frozen
  /// base count, mirroring the snapshot.)
  std::size_t live_size() const;
  /// The id the next Insert will assign.
  std::uint64_t next_insert_id() const;

  /// Batched pivot-stage path — the distributed `*WithPivotRow` pipeline:
  /// the router evaluates each query's pivot row once (locally, from the
  /// manifest's pivot strings) and scatters it; workers seed and sweep.
  /// Equivalent to the in-process pivot-row path per query; stats include
  /// the row evaluations, as the batch engine counts them.
  std::vector<ServeResult> NearestBatch(
      const std::vector<std::string>& queries);
  std::vector<ServeResult> KNearestBatch(
      const std::vector<std::string>& queries, std::size_t k);

  /// One pivot-row query whose row the caller already computed (`row[p]` =
  /// d(query, pivot p), all pivots) — the seam the admission-batching
  /// front end (serve/engine.h) drives after its blocked query×pivot
  /// pass. Stats still count the `num_pivots()` row evaluations, exactly
  /// as the in-process batch engine charges them per query, so results
  /// stay bit-identical to KNearestBatch of the same query. Throws
  /// std::invalid_argument when `row.size() != num_pivots()`.
  ServeResult KNearestWithRow(std::string_view query, std::size_t k,
                              const std::vector<double>& row);

  /// The multiplexed sweep driver — the engine's throughput path. ONE
  /// caller thread drives every query's row-consuming sweep concurrently
  /// over the shared connections: each round it advances every sweep that
  /// has its replies, encodes the whole round's requests per connection,
  /// flushes each connection with a single write, and parks in one poll
  /// across all of them. N in-flight sweeps thus cost one wakeup and a
  /// handful of syscalls per round instead of N parked threads paying two
  /// context switches per exchange — on a single core this, not parallel
  /// compute, is where concurrent throughput comes from.
  ///
  /// Exactness: per query the driver replays the exact KNearestWithRow
  /// exchange sequence (begin, eval, step, in the same order with the
  /// same payloads), so healthy results are bit-identical to it. The fast
  /// path requires a fully healthy world (every replica alive, no
  /// mutations pending); a query that cannot run on it — or that hits
  /// any anomaly mid-sweep (timeout, death, byte disagreement, deadline)
  /// — abandons its sweep slots and reruns through the robust per-query
  /// path (retries, failover, hedging, partial flagging), whose result
  /// is returned instead. `rows[i]` must hold `num_pivots()` entries for
  /// `queries[i]`; `max_concurrent` caps simultaneously driven sweeps
  /// (0 = all). Throws std::invalid_argument on mismatched input sizes.
  std::vector<ServeResult> KNearestManyWithRows(
      const std::vector<std::string_view>& queries,
      const std::vector<std::size_t>& ks,
      const std::vector<const double*>& rows, std::size_t max_concurrent = 0);

  /// The continuous form of the multiplexed driver: pulls jobs from
  /// `feed` as sweeps settle (admission refills mid-flight, so rounds
  /// stay full instead of draining to a batch tail), delivers each result
  /// through the feed, and returns once the feed is Finished and every
  /// admitted sweep has settled. `max_concurrent` caps in-flight sweeps
  /// (0 = a default cap). ServeEngine runs this on a dedicated thread.
  ///
  /// World-lock fairness: the driver holds the world lock shared while
  /// sweeps are in flight, which (on a reader-preferring rwlock) would
  /// starve Insert/Remove (exclusive) under sustained load; writers
  /// therefore announce themselves (`writers_waiting_`) before blocking,
  /// and the driver checks the counter each round — when one is waiting
  /// it stops admitting, drains, and releases with a real gap so the
  /// writer wins the lock. In read-only steady state the hold is never
  /// cycled. When the world is not fast-path eligible (a replica down,
  /// mutations applied), jobs are delivered back `bailed` immediately and
  /// run robustly on their callers' threads instead.
  void DriveSweeps(SweepFeed& feed, std::size_t max_concurrent = 0);

  /// Heartbeat: pings every replica (retrying per options), marking the
  /// ones that miss as dead. Returns true when all replicas are healthy.
  bool PingAll();

  /// Kills (SIGKILL + waitpid) and respawns every dead replica, re-mapping
  /// its shard. Returns the number of processes brought back to healthy.
  std::size_t RespawnDead();

  /// Group inspection hooks for tests and monitoring. `worker_pid` /
  /// `worker_alive` keep their PR-6 per-shard meaning: the pid of the
  /// current *primary*, and whether *any* member of the group is alive.
  pid_t worker_pid(std::size_t s) const;
  bool worker_alive(std::size_t s) const;
  std::size_t primary_of(std::size_t s) const;
  pid_t replica_pid(std::size_t s, std::size_t r) const;
  bool replica_alive(std::size_t s, std::size_t r) const;

 private:
  struct Replica {
    pid_t pid = -1;
    std::shared_ptr<Conn> conn;
    bool alive = false;
  };

  /// One shard's replica group. `primary` indexes `members`; promotion
  /// just moves it. Membership is fixed at construction — respawn revives
  /// dead members in place (with a *fresh* connection, so queries that
  /// pinned the old one keep failing cleanly instead of talking to a
  /// process with no slab state). `mu` guards members and primary; it is
  /// the innermost lock and is never held across an exchange.
  struct Group {
    mutable std::mutex mu;
    std::vector<Replica> members;
    std::size_t primary = 0;
  };

  /// One group member as pinned by a query at begin: the connection this
  /// query (and only this query's failover/hedging) may use, plus the
  /// query-local alive flag.
  struct Participant {
    std::shared_ptr<Conn> conn;
    bool alive = false;
  };
  struct GroupCtx {
    std::vector<Participant> members;
    std::size_t primary = 0;

    bool AnyAlive() const {
      for (const Participant& m : members) {
        if (m.alive) return true;
      }
      return false;
    }
  };
  /// A query's pinned world: its id and its participant snapshot.
  struct QueryCtx {
    std::uint32_t qid = 0;
    std::vector<GroupCtx> groups;
  };

  /// Per-query view of one shard's sweep state, mirrored from its
  /// primary's replies.
  struct ShardView {
    bool active = false;
    std::size_t live = 0;
    std::size_t live_pivots = 0;
    SweepCompactResult last;
  };

  /// Spawn/reap run under `respawn_mu_`.
  void SpawnReplica(std::size_t s, std::size_t r,
                    const std::string& fault_spec);
  void ReapReplica(std::size_t s, std::size_t r);

  /// Global death: fails the member's connection (waking every query
  /// waiting on it) and clears the alive flag.
  void MarkDeadGlobal(std::size_t s, std::size_t r);
  /// Query-context death: fails the pinned connection and clears the ctx
  /// flag; propagates to the global member only if it still holds the
  /// *same* connection (a respawn may already have replaced it — the
  /// fresh process must not be condemned for its predecessor's death).
  void MarkDead(QueryCtx& ctx, std::size_t s, std::size_t r);

  /// New query id (nonzero) + participant snapshot under each group's mu.
  void SnapshotCtx(QueryCtx* ctx) const;
  /// Fire-and-forget kEndSweep to every pinned participant whose
  /// connection still works: retires the workers' per-query sweep slots.
  void EndSweeps(const QueryCtx& ctx);

  /// If the ctx group's primary is dead, promote the first live ctx
  /// member (in member order — deterministic), mirroring to the global
  /// group when its connection is unchanged. Returns true when a live
  /// primary exists afterwards; counts the promotion in `res` when one
  /// happened.
  bool EnsurePrimary(QueryCtx& ctx, std::size_t s, ServeResult* res);
  /// Promote ctx member `r` to ctx primary and, identity permitting, to
  /// global primary.
  void Promote(QueryCtx& ctx, std::size_t s, std::size_t r);

  /// One request/reply exchange with the query's pinned replica (s, r).
  /// Retries (with backoff, each sleep capped at the remaining time
  /// before `deadline_ms`; pass -1 for no deadline) only when
  /// `retryable`; marks the replica dead on any unrecoverable failure.
  /// Replies with stale sequence numbers (from a timed-out earlier
  /// attempt) are discarded by the reactor.
  bool SendRecv(QueryCtx& ctx, std::size_t s, std::size_t r, FrameType type,
                const std::vector<char>& payload, std::vector<char>* reply,
                int timeout_ms, bool retryable, std::int64_t deadline_ms);
  /// The control-plane (query id 0) form against the *current* global
  /// member — ping, respawn replay, mutation replication. Caller holds
  /// `respawn_mu_`, so membership is stable across the exchange.
  bool ControlSendRecv(std::size_t s, std::size_t r, FrameType type,
                       const std::vector<char>& payload,
                       std::vector<char>* reply, bool retryable);

  /// Scatters one identical request to every live pinned member of every
  /// active shard (the state-machine replication step), gathers, then
  /// reconciles each group: the primary's reply drives (landing in
  /// `replies[s]`), standbys are byte-checked against it (disagreement =
  /// eviction), and a failed primary is replaced by a standby that
  /// answered. Shards whose whole group failed are flipped inactive in
  /// `views` and appended to `missing`.
  void Broadcast(QueryCtx& ctx, FrameType type,
                 const std::vector<char>& payload, bool retryable,
                 int timeout_ms, std::int64_t deadline_ms,
                 std::vector<ShardView>& views,
                 std::vector<std::vector<char>>& replies,
                 std::vector<std::size_t>& missing, ServeResult* res);

  /// One idempotent read (`kEval` or `kDeltaScan`) against shard `s`:
  /// primary first, hedged to a standby after `hedge_delay_ms`, first
  /// valid reply wins — both ops are pure functions of the shard's state,
  /// so either answer is exact. Falls back to plain retries when the group
  /// has no standby or hedging is off.
  bool GroupEval(QueryCtx& ctx, std::size_t s, FrameType type,
                 const std::vector<char>& payload, std::vector<char>* reply,
                 std::int64_t deadline_ms, ServeResult* res);

  /// One journaled mutation, replicated to every live member of the owner
  /// shard's group.
  struct MutationOp {
    bool insert = false;
    std::uint64_t id = 0;
    std::string s;
  };
  void ReplicateMutation(std::size_t owner, const MutationOp& op);
  /// Replays the owner shard's journal to a freshly respawned member —
  /// delta and tombstone state is process-local, so the journal is what
  /// brings the new process to the group's current state. Returns false
  /// (replica already marked dead) when any op fails to apply.
  bool ReplayMutations(std::size_t s, std::size_t r);

  /// The delta-scan phase both query paths share: scatters a bounded scan
  /// to every shard holding live delta entries and strict-merges the
  /// gathered hits into `best` in global NeighborLess order.
  void DeltaPhase(QueryCtx& ctx, std::string_view query, std::size_t k,
                  std::int64_t deadline, std::vector<ShardView>& views,
                  std::vector<NeighborResult>& best,
                  std::uint64_t* computations, std::uint64_t* abandons,
                  ServeResult* res);

  std::size_t ShardOf(std::size_t global) const;
  int RemainingMs(std::int64_t deadline_ms) const;

  /// Cheap any-dead scan; only when one exists does the query path take
  /// `respawn_mu_` and run a full (uncapped) respawn.
  void MaybeRespawn();
  bool AnyDead() const;

  bool PingAllLocked();
  /// Respawns up to `limit` dead replicas (0 = all), then re-aims every
  /// group's primary at a live member. Caller holds `respawn_mu_`.
  std::size_t RespawnDeadLocked(std::size_t limit);
  void HealthLoop();

  ServeResult QueryLazy(QueryCtx& ctx, std::string_view query, std::size_t k,
                        double slack);
  /// The pivot-row sweep given an already-computed row (`row` has
  /// num_pivots() entries). Charges the row evaluations to the stats.
  ServeResult QueryRow(QueryCtx& ctx, std::string_view query, std::size_t k,
                       const double* row);
  /// One robust pivot-row query (respawn check, fresh ctx, QueryRow,
  /// sweep-slot cleanup). Caller holds `world_mu_` shared.
  ServeResult RobustRowQuery(std::string_view query, std::size_t k,
                             const double* row);
  /// True when the multiplexed fast path may run: no tombstones, no
  /// delta entries, every replica alive on a healthy connection. Caller
  /// holds `world_mu_` shared.
  bool FastWorldLocked() const;

  // Manifest state (immutable after construction — read lock-free).
  std::size_t n_ = 0;
  std::vector<std::size_t> shard_sizes_;
  std::vector<std::size_t> bases_;        // size S+1
  std::vector<std::size_t> pivots_;       // global pivot ids
  std::vector<std::int32_t> pivot_rank_;  // global id -> ordinal or -1
  std::vector<std::string> pivot_strings_;
  StringDistancePtr distance_;

  std::string dir_;
  ServeOptions options_;
  std::size_t replicas_per_shard_ = 1;
  /// unique_ptr: Group owns a mutex and must not move when the vector is
  /// sized. The vector itself is construction-immutable.
  std::vector<std::unique_ptr<Group>> groups_;

  /// Router-wide query-id source; 0 is reserved for the control plane.
  mutable std::atomic<std::uint32_t> qid_counter_{0};

  // Mutable-tier bookkeeping (the router-side mirror of the workers'
  // delta/tombstone state; drives the masked begin, the k clamp, pivot
  // seeding, and respawn replay). Guarded by `world_mu_`.
  std::uint64_t next_insert_id_ = 0;       // initialised to n_
  std::vector<std::uint64_t> base_tombs_;  // bitmap over base ids; lazy
  std::vector<std::size_t> shard_dead_;    // base tombstones per shard
  std::size_t base_dead_total_ = 0;
  std::vector<std::size_t> delta_live_;        // live delta per shard
  std::vector<std::uint64_t> dead_delta_ids_;  // sorted, Remove dedup
  std::vector<std::vector<MutationOp>> shard_ops_;  // per-shard journal

  /// Queries hold this shared (N sweeps in flight at once); mutations
  /// hold it exclusive — a mutation never interleaves with a sweep, which
  /// preserves bit-identity and the per-shard journal/writer order.
  mutable std::shared_mutex world_mu_;
  /// Writers about to block on `world_mu_` announce themselves here
  /// (incremented before the exclusive lock call, decremented once it is
  /// held). glibc's rwlock is reader-preferring, so a continuously-held
  /// shared lock — which is exactly what DriveSweeps wants in steady
  /// state — would starve writers forever; the driver instead checks this
  /// counter each round and backs off (drain, release, yield) only when a
  /// writer is actually waiting.
  std::atomic<std::size_t> writers_waiting_{0};
  /// Serializes spawn/reap/replay (and the fork itself). Journal appends
  /// hold world-exclusive AND this, so holding either is enough to read
  /// the journal. The health loop takes only this — never the world lock.
  mutable std::mutex respawn_mu_;

  std::mutex health_mu_;  // stop flag + cv only
  std::condition_variable health_cv_;
  bool stop_health_ = false;
  std::thread health_thread_;
};

}  // namespace cned

#endif  // CNED_SERVE_ROUTER_H_
