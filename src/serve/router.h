#ifndef CNED_SERVE_ROUTER_H_
#define CNED_SERVE_ROUTER_H_

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "distances/distance.h"
#include "search/nn_searcher.h"
#include "search/sweep_kernel.h"

namespace cned {

/// Tuning and robustness knobs of the scatter/gather router. Validated at
/// router construction: an out-of-range field throws std::invalid_argument
/// naming the offending field.
struct ServeOptions {
  /// Distance registry name (distances/registry.h). Required; must match
  /// the distance the snapshot was built with.
  std::string distance;

  /// Replica-group size: every shard is served by `replicas` worker
  /// processes over the same snapshot files. State-machine replication —
  /// the router scatters the begin and every sweep-mutating step to all
  /// live members, so standbys hold bit-identical slab state and a dead
  /// primary is replaced mid-query with no loss. 1 = the unreplicated
  /// scatter/gather tier; must be >= 1.
  int replicas = 2;

  /// Per-operation reply timeout. A replica that misses it on an
  /// idempotent op (ping / begin / eval) is retried; on a sweep-mutating
  /// op (step) it is marked dead immediately — its slab state can no
  /// longer be trusted to match the router's accounting. The *shard*
  /// degrades only when its whole replica group is lost.
  int op_timeout_ms = 2000;
  /// Whole-query deadline. When it expires mid-sweep the router returns
  /// the incumbents it has, flagged partial, with every shard that still
  /// held live candidates listed as missing.
  int query_deadline_ms = 10000;
  /// Extra attempts (beyond the first) for idempotent ops.
  int op_retries = 2;
  /// Exponential backoff between retries: `backoff_base_ms << attempt`,
  /// with each sleep capped at the time remaining until the query
  /// deadline so retries can never sleep a query past its budget.
  int backoff_base_ms = 5;
  /// Hedging for idempotent Eval ops: when the primary has not replied
  /// after this long (and a live standby exists), the router races the
  /// same request to a standby and takes whichever reply lands first —
  /// either answer is exact, so this only cuts the slow-shard tail.
  /// Negative disables hedging.
  int hedge_delay_ms = 25;
  /// Respawn dead workers (kill, waitpid, fork, re-Map, ping) before each
  /// query, so one crash degrades one query, not the rest of the session.
  /// A replica respawned between queries rejoins its group at the next
  /// query's begin (never mid-query — its slab state would be stale).
  bool auto_respawn = true;
  /// > 0 runs a background health loop at this period: ping-based failure
  /// detection plus respawn/re-map of dead replicas, serialized against
  /// queries (the loop takes the router lock, so respawn still only
  /// happens between queries). 0 disables the thread — the synchronous
  /// `auto_respawn` path alone keeps groups at full strength.
  int health_interval_ms = 0;

  /// CNED_FAULT-grammar fault schedule for the initial workers
  /// (serve/fault.h); empty = fault-free.
  std::string fault_spec;
  /// Fault schedule handed to *respawned* workers. Kept separate (and
  /// default clean) so an nth-based crash directive does not re-fire on
  /// every respawn.
  std::string respawn_fault_spec;
  /// Path to the `cned_shard_worker` binary. Empty (the default) forks
  /// workers in-process — no exec, the test/bench path; non-empty
  /// fork+execs the binary per shard replica.
  std::string worker_binary;
};

/// One query's answer plus its degradation and failover record.
struct ServeResult {
  std::vector<NeighborResult> neighbors;
  QueryStats stats;
  /// True when any shard's candidates were not (fully) considered — the
  /// neighbours are then exact over the surviving shards only, possibly
  /// improved by evaluations that landed before a shard was lost. A shard
  /// whose primary failed but whose standby took over is NOT partial.
  bool partial = false;
  /// The shards this query is missing, ascending. A shard appears here
  /// only when its *entire replica group* was lost: dead at query start,
  /// failed mid-sweep, or still live at the deadline.
  std::vector<std::size_t> missing_shards;
  /// Primary promotions performed during this query (a standby with
  /// bit-identical slab state took over mid-sweep; the result stayed
  /// exact and unflagged).
  std::size_t failovers = 0;
  /// Eval requests that were raced to a standby after the hedge delay.
  std::size_t hedged_evals = 0;
  /// Standby replicas evicted because their reply disagreed byte-for-byte
  /// with the primary's (corrupt state; the primary's reply drove the
  /// merge).
  std::size_t replicas_evicted = 0;
};

/// Fault-tolerant scatter/gather serving tier over a per-shard snapshot
/// directory (serve/shard_snapshot.h).
///
/// Topology: this router process + a replica group of R worker processes
/// per shard (ServeOptions::replicas), each connected by a socketpair
/// speaking the checksummed framing of serve/frame.h. All members of a
/// group map the *same* shard snapshot files; the router loads only the
/// manifest (shard shapes + pivot ids + pivot strings), so no process
/// ever materialises the whole index.
///
/// A query runs the exact `ShardedLaesa` sweep with the per-shard passes
/// scattered: the router makes every global decision (incumbents,
/// elimination bound, next candidate — merged over the per-shard compact
/// results in shard order with strict '<', the lowest-global-index tie
/// rule), workers run the kernel passes over their segments, and the
/// elimination radius tightens incrementally between rounds exactly as it
/// does in process. A healthy router is therefore bit-identical —
/// neighbours, distances AND QueryStats — to the in-process index,
/// regardless of worker or replica count.
///
/// Replication model (state-machine): a shard's slab state is a pure
/// deterministic function of its op sequence (Begin*, then the Step*s),
/// so the router scatters the begin and every mutating step to ALL live
/// members of each group. The primary's reply drives the merge; every
/// standby's reply is checked for byte agreement (a disagreeing standby
/// is evicted as corrupt). When the primary crashes, times out, or
/// returns a malformed frame mid-sweep, the router promotes a standby
/// whose state is bit-identical by construction — the query completes
/// exact and unflagged. Idempotent Evals go to the primary only and are
/// hedged to a standby after `hedge_delay_ms`.
///
/// Failure semantics (the robustness contract the tests pin down):
///   * per-op timeouts; idempotent ops retry with exponential backoff
///     (each sleep capped at the remaining query deadline), sweep-
///     mutating ops never retry on the same replica;
///   * a crashed / timed-out / malformed-reply replica is marked dead; if
///     it was the primary a standby is promoted and the query continues
///     exact;
///   * `partial` / `missing_shards` fire only when a whole replica group
///     is lost; the per-query deadline degrades to partial results
///     instead of blocking;
///   * dead replicas are respawned (fresh fork + checksum-verified
///     re-map) between queries — synchronously when `auto_respawn` is
///     set, and/or from the background health loop — and rejoin their
///     group at the next query's begin;
///   * `stats.shards_degraded` counts the missing shards, so healthy
///     queries still compare bit-equal to in-process stats (0 == 0).
class ServeRouter {
 public:
  /// Loads the manifest and spawns `options.replicas` workers per shard.
  /// Throws std::invalid_argument on out-of-range options,
  /// std::runtime_error on a malformed manifest or if *every* worker
  /// fails to come up; individual dead workers only degrade queries.
  ServeRouter(const std::string& snapshot_dir, const ServeOptions& options);
  ~ServeRouter();
  ServeRouter(const ServeRouter&) = delete;
  ServeRouter& operator=(const ServeRouter&) = delete;

  std::size_t size() const { return n_; }
  std::size_t shard_count() const { return shard_sizes_.size(); }
  std::size_t replica_count() const { return replicas_per_shard_; }
  std::size_t num_pivots() const { return pivots_.size(); }
  const std::vector<std::size_t>& pivots() const { return pivots_; }

  /// Lazy (per-query) path — the distributed `ShardedLaesa::Nearest`.
  ServeResult Nearest(std::string_view query);
  ServeResult KNearest(std::string_view query, std::size_t k);

  /// --- Live mutability (the distributed mutable tier). -------------------
  ///
  /// The router is the source of truth: every op is journaled per owner
  /// shard before it is replicated to all live members of that shard's
  /// group (like begins and steps), and a respawned replica is replayed
  /// from the journal before it rejoins — so a crash never loses a
  /// mutation the router acknowledged. Ops are idempotent worker-side
  /// (dedup by stable id) with dedup-stable replies, which keeps both the
  /// retry path and the group byte-agreement check sound.

  /// Appends one prototype; returns its stable global id (ids start at
  /// size() and are never reused). The owner shard is id-round-robin.
  std::uint64_t Insert(std::string_view s);

  /// Tombstones a stable id (base or delta). Returns false when the id is
  /// unknown or already removed. A removed prototype is masked inside the
  /// workers' sweep compactions — it can never surface as a neighbour.
  bool Remove(std::uint64_t id);

  /// Live prototypes: base + inserts - removals. (size() stays the frozen
  /// base count, mirroring the snapshot.)
  std::size_t live_size() const;
  /// The id the next Insert will assign.
  std::uint64_t next_insert_id() const;

  /// Batched pivot-stage path — the distributed `*WithPivotRow` pipeline:
  /// the router evaluates each query's pivot row once (locally, from the
  /// manifest's pivot strings) and scatters it; workers seed and sweep.
  /// Equivalent to the in-process pivot-row path per query; stats include
  /// the row evaluations, as the batch engine counts them.
  std::vector<ServeResult> NearestBatch(
      const std::vector<std::string>& queries);
  std::vector<ServeResult> KNearestBatch(
      const std::vector<std::string>& queries, std::size_t k);

  /// Heartbeat: pings every replica (retrying per options), marking the
  /// ones that miss as dead. Returns true when all replicas are healthy.
  bool PingAll();

  /// Kills (SIGKILL + waitpid) and respawns every dead replica, re-mapping
  /// its shard. Returns the number of processes brought back to healthy.
  std::size_t RespawnDead();

  /// Group inspection hooks for tests and monitoring. `worker_pid` /
  /// `worker_alive` keep their PR-6 per-shard meaning: the pid of the
  /// current *primary*, and whether *any* member of the group is alive.
  pid_t worker_pid(std::size_t s) const;
  bool worker_alive(std::size_t s) const;
  std::size_t primary_of(std::size_t s) const;
  pid_t replica_pid(std::size_t s, std::size_t r) const;
  bool replica_alive(std::size_t s, std::size_t r) const;

 private:
  struct Replica {
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    std::uint32_t seq = 0;
  };

  /// One shard's replica group. `primary` indexes `members`; promotion
  /// just moves it. Membership is fixed at construction — respawn revives
  /// dead members in place.
  struct Group {
    std::vector<Replica> members;
    std::size_t primary = 0;

    bool AnyAlive() const {
      for (const Replica& m : members) {
        if (m.alive) return true;
      }
      return false;
    }
  };

  /// Per-query view of one shard's sweep state, mirrored from its
  /// primary's replies.
  struct ShardView {
    bool active = false;
    std::size_t live = 0;
    std::size_t live_pivots = 0;
    SweepCompactResult last;
  };

  void SpawnReplica(std::size_t s, std::size_t r,
                    const std::string& fault_spec);
  void MarkDead(std::size_t s, std::size_t r);
  void ReapReplica(std::size_t s, std::size_t r);

  /// If the group's primary is dead, promote the first live member (in
  /// member order — deterministic). Returns true when a live primary
  /// exists afterwards; counts the promotion in `res` when one happened.
  bool EnsurePrimary(std::size_t s, ServeResult* res);

  /// One request/reply exchange with replica (s, r). Retries (with
  /// backoff, each sleep capped at the remaining time before
  /// `deadline_ms`; pass -1 for no deadline) only when `retryable`; marks
  /// the replica dead on any unrecoverable failure. Replies with stale
  /// sequence numbers (from a timed-out earlier attempt) are discarded.
  bool SendRecv(std::size_t s, std::size_t r, std::uint32_t type,
                const std::vector<char>& payload, std::vector<char>* reply,
                int timeout_ms, bool retryable, std::int64_t deadline_ms);

  /// Scatters one identical request to every live member of every active
  /// shard (the state-machine replication step), gathers, then reconciles
  /// each group: the primary's reply drives (landing in `replies[s]`),
  /// standbys are byte-checked against it (disagreement = eviction), and
  /// a failed primary is replaced by a standby that answered. Shards
  /// whose whole group failed are flipped inactive in `views` and
  /// appended to `missing`.
  void Broadcast(std::uint32_t type, const std::vector<char>& payload,
                 bool retryable, int timeout_ms, std::int64_t deadline_ms,
                 std::vector<ShardView>& views,
                 std::vector<std::vector<char>>& replies,
                 std::vector<std::size_t>& missing, ServeResult* res);

  /// One idempotent read (`kEval` or `kDeltaScan`) against shard `s`:
  /// primary first, hedged to a standby after `hedge_delay_ms`, first
  /// valid reply wins — both ops are pure functions of the shard's state,
  /// so either answer is exact. Falls back to plain retries when the group
  /// has no standby or hedging is off.
  bool GroupEval(std::size_t s, std::uint32_t type,
                 const std::vector<char>& payload, std::vector<char>* reply,
                 std::int64_t deadline_ms, ServeResult* res);

  /// One journaled mutation, replicated to every live member of the owner
  /// shard's group.
  struct MutationOp {
    bool insert = false;
    std::uint64_t id = 0;
    std::string s;
  };
  void ReplicateMutation(std::size_t owner, const MutationOp& op);
  /// Replays the owner shard's journal to a freshly respawned member —
  /// delta and tombstone state is process-local, so the journal is what
  /// brings the new process to the group's current state. Returns false
  /// (replica already marked dead) when any op fails to apply.
  bool ReplayMutations(std::size_t s, std::size_t r);

  /// The delta-scan phase both query paths share: scatters a bounded scan
  /// to every shard holding live delta entries and strict-merges the
  /// gathered hits into `best` in global NeighborLess order.
  void DeltaPhase(std::string_view query, std::size_t k,
                  std::int64_t deadline, std::vector<ShardView>& views,
                  std::vector<NeighborResult>& best,
                  std::uint64_t* computations, std::uint64_t* abandons,
                  ServeResult* res);

  std::size_t ShardOf(std::size_t global) const;
  int RemainingMs(std::int64_t deadline_ms) const;

  bool PingAllLocked();
  std::size_t RespawnDeadLocked();
  void HealthLoop();

  ServeResult QueryLazy(std::string_view query, std::size_t k, double slack);
  ServeResult QueryRow(std::string_view query, std::size_t k);

  // Manifest state.
  std::size_t n_ = 0;
  std::vector<std::size_t> shard_sizes_;
  std::vector<std::size_t> bases_;        // size S+1
  std::vector<std::size_t> pivots_;       // global pivot ids
  std::vector<std::int32_t> pivot_rank_;  // global id -> ordinal or -1
  std::vector<std::string> pivot_strings_;
  StringDistancePtr distance_;

  std::string dir_;
  ServeOptions options_;
  std::size_t replicas_per_shard_ = 1;
  std::vector<Group> groups_;

  // Mutable-tier bookkeeping (the router-side mirror of the workers'
  // delta/tombstone state; drives the masked begin, the k clamp, pivot
  // seeding, and respawn replay).
  std::uint64_t next_insert_id_ = 0;       // initialised to n_
  std::vector<std::uint64_t> base_tombs_;  // bitmap over base ids; lazy
  std::vector<std::size_t> shard_dead_;    // base tombstones per shard
  std::size_t base_dead_total_ = 0;
  std::vector<std::size_t> delta_live_;        // live delta per shard
  std::vector<std::uint64_t> dead_delta_ids_;  // sorted, Remove dedup
  std::vector<std::vector<MutationOp>> shard_ops_;  // per-shard journal

  /// Serializes queries, respawn, and the health loop: a replica is never
  /// respawned mid-query, so every live member of a group has seen the
  /// current query's full op sequence.
  mutable std::mutex mu_;
  std::condition_variable health_cv_;
  bool stop_health_ = false;
  std::thread health_thread_;
};

}  // namespace cned

#endif  // CNED_SERVE_ROUTER_H_
