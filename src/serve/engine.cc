#include "serve/engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace cned {
namespace {

using Clock = std::chrono::steady_clock;

ServeResult ShedResult() {
  ServeResult res;
  res.shed = true;
  return res;
}

}  // namespace

/// The driver side of the admission queue. `Next` claims queued entries
/// in admission batches (one blocked pivot pass per claim) and hands them
/// to `DriveSweeps` one at a time; `Deliver` posts the result back to the
/// caller parked in KNearest. The entry pointer itself travels as the
/// job tag — entries are pinned to their caller's stack until done.
class ServeEngine::Feed : public SweepFeed {
 public:
  explicit Feed(ServeEngine& engine) : e_(engine) {}

  bool Next(SweepJob* out) override {
    if (stash_.empty()) {
      std::vector<Pending*> batch;
      {
        std::lock_guard<std::mutex> lock(e_.mu_);
        while (!e_.queue_.empty() && batch.size() < e_.options_.max_batch) {
          Pending* p = e_.queue_.front();
          e_.queue_.pop_front();
          p->claimed = true;
          batch.push_back(p);
        }
      }
      if (batch.empty()) return false;
      // Rows are computed here, off the admission lock, while the claimed
      // entries are exclusively ours — and while any already-admitted
      // sweeps' replies simply buffer in their sockets; the workers keep
      // computing concurrently.
      e_.ComputeRows(batch);
      e_.batches_.fetch_add(1, std::memory_order_relaxed);
      e_.batched_queries_.fetch_add(batch.size(), std::memory_order_relaxed);
      stash_.assign(batch.begin(), batch.end());
    }
    Pending* p = stash_.front();
    stash_.pop_front();
    out->query = p->query;
    out->k = p->k;
    out->row = p->row.data();
    out->tag = reinterpret_cast<std::uintptr_t>(p);
    return true;
  }

  bool Finished() override {
    return e_.stop_.load(std::memory_order_acquire);
  }

  void Deliver(std::uint64_t tag, ServeResult res, bool bailed) override {
    Pending* p = reinterpret_cast<Pending*>(static_cast<std::uintptr_t>(tag));
    std::lock_guard<std::mutex> lock(e_.mu_);
    p->result = std::move(res);
    p->bailed = bailed;
    p->done = true;
    p->cv.notify_one();  // precise: only the caller whose result this is
  }

  int wake_fd() override { return e_.wake_r_; }

 private:
  ServeEngine& e_;
  std::deque<Pending*> stash_;
};

ServeEngine::ServeEngine(ServeRouter& router, const ServeEngineOptions& options)
    : router_(router), options_(options) {
  if (options.max_batch < 1) {
    throw std::invalid_argument("ServeEngineOptions::max_batch must be >= 1");
  }
  if (options.max_inflight < 1) {
    throw std::invalid_argument(
        "ServeEngineOptions::max_inflight must be >= 1");
  }
  if (options.max_queue < 1) {
    throw std::invalid_argument("ServeEngineOptions::max_queue must be >= 1");
  }
  if (options.admission_timeout_ms < 1) {
    throw std::invalid_argument(
        "ServeEngineOptions::admission_timeout_ms must be >= 1");
  }
  int fds[2];
  if (::pipe(fds) != 0) {
    throw std::runtime_error("ServeEngine: pipe() failed");
  }
  wake_r_ = fds[0];
  wake_w_ = fds[1];
  ::fcntl(wake_r_, F_SETFL, O_NONBLOCK);
  ::fcntl(wake_w_, F_SETFL, O_NONBLOCK);
  driver_ = std::thread(&ServeEngine::DriverMain, this);
}

ServeEngine::~ServeEngine() {
  stop_.store(true, std::memory_order_release);
  const char b = 0;
  (void)!::write(wake_w_, &b, 1);
  if (driver_.joinable()) driver_.join();
  ::close(wake_r_);
  ::close(wake_w_);
}

void ServeEngine::DriverMain() {
  Feed feed(*this);
  router_.DriveSweeps(feed, options_.max_inflight);
}

void ServeEngine::ComputeRows(const std::vector<Pending*>& batch) {
  const std::vector<std::string>& pivots = router_.pivot_strings();
  const StringDistance& metric = router_.metric();
  const std::size_t np = pivots.size();

  // Duplicate query strings collapse to one row for the whole claim.
  std::vector<Pending*> uniques;
  std::vector<std::size_t> owner_of(batch.size());
  std::unordered_map<std::string_view, std::size_t> first;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto it = first.emplace(batch[i]->query, uniques.size());
    owner_of[i] = it.first->second;
    if (it.second) uniques.push_back(batch[i]);
  }
  for (Pending* u : uniques) u->row.resize(np);

  // The blocked pass, pivot-major: each pivot string streams once across
  // the whole claim while it is hot in cache — the serving-side mirror of
  // BatchQueryEngine's stage 1. Entries are independent per (query, pivot)
  // pair, so the traversal order cannot perturb a single bit.
  for (std::size_t p = 0; p < np; ++p) {
    for (Pending* u : uniques) {
      u->row[p] = metric.Distance(u->query, pivots[p]);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending* owner = uniques[owner_of[i]];
    if (batch[i] != owner) batch[i]->row = owner->row;
  }
  deduped_rows_.fetch_add(batch.size() - uniques.size(),
                          std::memory_order_relaxed);
}

ServeResult ServeEngine::KNearest(std::string_view query, std::size_t k) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.admission_timeout_ms);

  Pending entry;
  entry.query.assign(query.data(), query.size());
  entry.k = k;

  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.size() >= options_.max_queue) {
    // Overload answer #1: a full admission queue sheds on arrival —
    // refusing fast keeps the queue wait of admitted queries bounded.
    shed_queries_.fetch_add(1, std::memory_order_relaxed);
    return ShedResult();
  }
  queue_.push_back(&entry);
  // Nudge the driver's park. EAGAIN on a full pipe is fine — unread
  // bytes already make the fd readable.
  const char b = 0;
  (void)!::write(wake_w_, &b, 1);

  while (!entry.done) {
    if (entry.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        !entry.done) {
      if (entry.claimed) {
        // The driver holds the pointer and will deliver the result;
        // shedding now would dangle it. The wait is bounded by the
        // router's own query deadline.
        entry.cv.wait(lock, [&] { return entry.done; });
        break;
      }
      // Overload answer #2: the admission deadline expired while still
      // unclaimed — withdraw and refuse.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == &entry) {
          queue_.erase(it);
          break;
        }
      }
      shed_queries_.fetch_add(1, std::memory_order_relaxed);
      return ShedResult();
    }
  }
  if (entry.bailed) {
    // The world was not fast-path eligible (or the sweep hit an anomaly):
    // rerun robustly on this thread, reusing the computed pivot row.
    // Robust queries from concurrent callers proceed concurrently, with
    // all the retry/failover/hedging machinery.
    lock.unlock();
    return router_.KNearestWithRow(entry.query, entry.k, entry.row);
  }
  return std::move(entry.result);
}

}  // namespace cned
