#ifndef CNED_SERVE_REACTOR_H_
#define CNED_SERVE_REACTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/frame.h"

namespace cned {

/// A multiplexed router-side connection to one worker process: many
/// threads exchange frames over one socket concurrently, matched back to
/// their callers by sequence number (with the query id echoed as a sanity
/// check). This is the reactor seam of the concurrent serving tier —
/// everything above it (per-group failover, broadcast, hedging) works in
/// terms of Expect/Send/Wait and never touches the fd.
///
/// Receive side — a reactor with a *migrating leader* instead of a
/// dedicated thread: whichever thread is waiting becomes the reader,
/// polls, drains every buffered frame in one recv, completes all matching
/// waiters (not just its own), and hands the reader role to another
/// waiter when it leaves. On a loaded connection N replies cost one
/// syscall and one wakeup, not N of each; with a single in-flight
/// exchange it degenerates to exactly the old blocking RecvFrame. A
/// reply whose sequence (or echoed query id) matches no registered
/// waiter is a stale leftover of a timed-out attempt and is discarded.
///
/// Send side — flat-combining writes: a sender that finds another thread
/// mid-flush appends its encoded frame to the shared outbox and returns;
/// the active flusher keeps flushing until the outbox is empty. Frames
/// from concurrent queries to the same worker thus merge into fewer
/// syscalls, and the frame layer's self-delimiting byte stream makes the
/// concatenation invisible to the worker.
///
/// Failure: any stream error (EOF, reset, malformed frame) or an explicit
/// Fail() poisons the connection — every current and future Wait returns
/// kClosed. Fail() uses shutdown(2), not close(2): the fd stays valid (and
/// uniquely owned) until the last shared_ptr drops, so a query still
/// holding the connection can never race a respawn reusing the fd number.
class Conn {
 public:
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn();
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_; }

  /// Fresh sequence number, unique across all threads using this conn.
  std::uint32_t NextSeq() { return ++seq_; }

  /// Registers interest in the reply carrying `seq` — MUST be called
  /// before the request is sent, or a fast reply could be discarded as
  /// stale. Pair with exactly one Wait or Cancel.
  void Expect(std::uint32_t seq, std::uint32_t qid);

  /// Encodes and sends one frame (coalescing with concurrent senders).
  /// False only when the connection has failed; the caller should Cancel
  /// any matching Expect and mark the replica dead.
  bool Send(FrameType type, std::uint32_t seq, std::uint32_t qid,
            const void* payload, std::size_t payload_bytes);

  /// Sends `n` bytes of already-encoded frames (EncodeFrame output) as one
  /// write — the batching seam of the multiplexed sweep driver, which
  /// encodes a whole round's requests per connection and flushes them with
  /// a single syscall. Same failure contract as Send.
  bool SendRaw(const char* data, std::size_t n);

  /// Blocks until the expected reply for `seq` arrives, the connection
  /// fails (kClosed), or `timeout_ms` elapses (kTimeout; < 0 waits
  /// forever; 0 still drains a reply already buffered in the socket).
  /// kOk and kClosed deregister the waiter; kTimeout leaves it registered
  /// so the caller can Wait again (hedging alternates between two
  /// connections) — every kTimeout must eventually be followed by another
  /// Wait or a Cancel.
  RecvStatus Wait(std::uint32_t seq, int timeout_ms, Frame* out);

  /// Completed-check without reading: returns kOk or kClosed and retires
  /// the waiter exactly like Wait, or kTimeout (registration kept) when
  /// the reply has not been drained from the socket yet. Never takes the
  /// reader role, never blocks, never issues a syscall — the multiplexed
  /// sweep driver's scan loop uses this to collect replies some reader
  /// (its own earlier probe, or another thread) already delivered.
  RecvStatus TryWait(std::uint32_t seq, Frame* out);

  /// Drops a registered waiter without waiting (send failed, caller gave
  /// up, or a timed-out Wait will not be retried) — a later reply for
  /// `seq` becomes stale. Idempotent.
  void Cancel(std::uint32_t seq);

  /// Poisons the connection: wakes every waiter with kClosed and
  /// shutdown(2)s the socket so the worker sees EOF. Does NOT close the
  /// fd (see class comment). Idempotent.
  void Fail();

  bool failed() const { return failed_.load(std::memory_order_acquire); }

 private:
  /// Wakeups are precise, not broadcast: each waiter sleeps on its own
  /// condition variable, the reader notifies exactly the waiters whose
  /// frames arrived, and the reader role is handed to exactly one other
  /// in-Wait waiter when the current reader leaves. With N queries parked
  /// on one connection a broadcast per received frame would wake all N
  /// threads to re-check and re-sleep — on a single core that is ~2N
  /// context switches per frame, more than the multiplexing saves.
  struct Waiter {
    std::uint32_t qid = 0;
    bool done = false;
    /// True while the owning thread is blocked inside Wait for this seq.
    /// The reader handoff only considers waiting=true entries: a waiter
    /// registered but currently unattended (a hedge leg, or a broadcast
    /// reply whose gatherer is still on an earlier connection) cannot
    /// take the role, and its frames simply stay buffered until its
    /// thread comes back.
    bool waiting = false;
    RecvStatus status = RecvStatus::kTimeout;
    Frame frame;
    std::condition_variable cv;
  };

  /// Reads once (poll + recv) as the reader leader and completes every
  /// waiter whose frame arrived. Called with `mu_` held; unlocks around
  /// the syscalls. Returns false when the poll window expired first.
  void ReadOnce(std::unique_lock<std::mutex>& lock, int wait_ms);

  const int fd_;
  std::atomic<std::uint32_t> seq_{0};
  std::atomic<bool> failed_{false};

  /// Wakes one eligible (waiting, not done) waiter to take the reader
  /// role. Called with `mu_` held when the role is free.
  void HandOffReader();

  /// Drains `outbox_` to the socket (or joins an active flusher). Called
  /// with `send_mu_` held; unlocks around the write syscalls. Returns
  /// false on a stream failure (after Fail()).
  bool FlushOutboxLocked(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;  // receive state: waiters, inbuf, reader flag
  bool reader_active_ = false;
  FrameBuffer inbuf_;
  std::unordered_map<std::uint32_t, Waiter> waiters_;

  std::mutex send_mu_;  // send state: outbox, flusher flag
  bool sending_ = false;
  std::vector<char> outbox_;
};

}  // namespace cned

#endif  // CNED_SERVE_REACTOR_H_
