#ifndef CNED_SERVE_FAULT_H_
#define CNED_SERVE_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cned {

/// Deterministic fault injection for the shard workers, driven by the
/// `CNED_FAULT` environment variable (or the equivalent router option).
///
/// Grammar — directives joined by '|', each `kind:key=val,key=val,...`:
///
///   CNED_FAULT='crash:shard=1,op=step,nth=3|delay:op=eval,every=2,ms=50'
///
/// kinds:
///   delay    sleep `ms` milliseconds before handling the request
///   drop     swallow the request (no reply — the router times out)
///   crash    _exit the worker process immediately (a kill -9 equivalent)
///   corrupt  reply with a deliberately wrong frame CRC
///   mangle   flip a byte of the reply payload but keep the CRC valid —
///            the frame decodes cleanly and the router's replica
///            agreement check is what must catch it
/// keys:
///   shard=S    only fire in shard S (default: any shard)
///   replica=R  only fire in replica ordinal R of its group (default: any
///              replica — note a directive without this key fires on
///              *every* member of a replica group, since state-machine
///              replication feeds all members the same request sequence)
///   op=NAME    only fire on requests of this class: ping, begin (both
///              BeginLazy and BeginRow), eval, step (both Step and
///              StepRow) (default: any request)
///   nth=K      fire exactly once, on the K-th matching request (1-based)
///   every=K    fire on every K-th matching request
///   ms=T       delay duration (delay only; default 0)
///
/// Matching requests are counted per directive, so a schedule is a pure
/// function of the request sequence — two runs over the same queries see
/// identical faults, which is what makes the degraded-mode determinism
/// tests possible. A directive with neither nth nor every fires on every
/// match.
struct FaultDirective {
  enum class Kind { kDelay, kDrop, kCrash, kCorrupt, kMangle };
  Kind kind = Kind::kDelay;
  std::int64_t shard = -1;    ///< -1 = any shard
  std::int64_t replica = -1;  ///< -1 = any replica of the group
  std::string op;             ///< "" = any op
  std::uint64_t nth = 0;      ///< 0 = unset
  std::uint64_t every = 0;    ///< 0 = unset
  std::uint64_t ms = 0;       ///< delay duration
};

struct FaultSpec {
  std::vector<FaultDirective> directives;

  bool empty() const { return directives.empty(); }

  /// Parses the CNED_FAULT grammar above; the empty string yields an empty
  /// spec. Throws std::invalid_argument on unknown kinds, keys, or
  /// non-numeric values.
  static FaultSpec Parse(const std::string& text);
};

/// One worker's runtime fault state: the spec filtered to this shard and
/// replica plus the per-directive match counters.
class FaultInjector {
 public:
  /// What the worker must do with the current request.
  struct Action {
    std::uint64_t delay_ms = 0;
    bool drop = false;
    bool crash = false;
    bool corrupt = false;
    bool mangle = false;
  };

  FaultInjector(FaultSpec spec, std::size_t shard, std::size_t replica = 0)
      : spec_(std::move(spec)), shard_(static_cast<std::int64_t>(shard)),
        replica_(static_cast<std::int64_t>(replica)),
        counts_(spec_.directives.size(), 0) {}

  /// Advances every matching directive's counter and merges the actions
  /// that fire. `op` is the request class name ("ping", "begin", "eval",
  /// "step").
  Action OnRequest(const std::string& op);

 private:
  FaultSpec spec_;
  std::int64_t shard_;
  std::int64_t replica_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace cned

#endif  // CNED_SERVE_FAULT_H_
