#ifndef CNED_SERVE_ENGINE_H_
#define CNED_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/router.h"

namespace cned {

/// Admission front-end knobs. Validated at construction: an out-of-range
/// field throws std::invalid_argument naming it.
struct ServeEngineOptions {
  /// Queries claimed per admission pass. The driver pulls up to this many
  /// queued queries at once and computes all their pivot rows in one
  /// blocked, deduplicated pass before their sweeps start. Must be >= 1.
  std::size_t max_batch = 8;
  /// Sweeps the driver keeps in flight at once — passed to
  /// `ServeRouter::DriveSweeps` as its wave cap, bounding the per-worker
  /// sweep-slot pressure. Must be >= 1.
  std::size_t max_inflight = 16;
  /// Admission-queue capacity. A query arriving when this many are
  /// already queued is shed immediately — the overload answer is a fast
  /// refusal, not an unbounded queue. Must be >= 1.
  std::size_t max_queue = 256;
  /// Per-query admission deadline: the longest a query may wait *to be
  /// claimed by the driver*. Once claimed it always completes — the sweep
  /// itself is bounded by the router's own query deadline, not this one.
  /// Must be >= 1. (A healthy engine never comes near it.)
  int admission_timeout_ms = 1000;
};

/// The admission front end of the concurrent serving tier: a thread-safe
/// facade over `ServeRouter` that multiplexes concurrent callers' sweeps
/// through one persistent driver thread and sheds load under overload
/// instead of collapsing.
///
/// Mechanism — a persistent driver with continuous admission:
///   1. every caller enqueues its query, nudges the driver's wake pipe,
///      and parks;
///   2. the driver thread runs `ServeRouter::DriveSweeps` forever, pulling
///      queries through a `SweepFeed`: each claim takes up to `max_batch`
///      queued entries and runs one blocked query x pivot pass for all of
///      them — pivots iterate in the outer loop so each pivot string
///      streams once per claim while hot in cache, and duplicate query
///      strings are computed once — then feeds the sweeps to the driver
///      one at a time, which admits them *into the running wave as
///      earlier sweeps settle*. Rounds stay full from admission to drain:
///      there is no batch boundary to empty them at, and no linger delay
///      to fill them;
///   3. results come back through the feed; each caller wakes once, when
///      its own result lands.
/// Callers thus park exactly once per query, and all sweep traffic costs
/// one thread's worth of context switches — on a single core this, not
/// parallel compute, is where the concurrent speedup comes from.
///
/// Exactness: the driver replays the single-query exchange bit-exactly
/// per sweep and charges the row evaluations to each query's stats
/// exactly as `KNearestBatch` does; row entries are independent per
/// (query, pivot) pair — so every non-shed result is bit-identical
/// (neighbours, distances AND stats) to calling
/// `ServeRouter::KNearestBatch` with the same query, regardless of how
/// claims formed or rows were deduplicated.
///
/// Degraded worlds: when the router's fast gate fails (a dead replica, a
/// tombstone, delta entries), the driver hands queries straight back and
/// each caller reruns its own robustly on its own thread, reusing the
/// already-computed pivot row — robust queries keep their pre-existing
/// concurrency instead of serializing through the driver.
///
/// Overload: a query is shed — returned immediately with
/// `ServeResult::shed` set and nothing else — when the admission queue is
/// full on arrival, or when its `admission_timeout_ms` deadline expires
/// before the driver claims it. Shedding is the *front end's* contract
/// only; the router beneath never sheds.
class ServeEngine {
 public:
  /// Borrows `router` (caller keeps it alive and outliving the engine)
  /// and starts the driver thread. Throws std::invalid_argument on
  /// out-of-range options.
  ServeEngine(ServeRouter& router, const ServeEngineOptions& options);
  /// Stops and joins the driver. No KNearest call may be outstanding.
  ~ServeEngine();
  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// k nearest neighbours of `query`, closest first — or a shed refusal.
  /// Thread-safe; this is the serving entry point.
  ServeResult KNearest(std::string_view query, std::size_t k);
  ServeResult Nearest(std::string_view query) { return KNearest(query, 1); }

  /// Monitoring counters (cumulative since construction).
  /// Admission claims the driver made (each claims >= 1 queries).
  std::uint64_t batches() const { return batches_.load(); }
  /// Queries claimed by the driver (every non-shed query counts once;
  /// batches_ <= batched_queries_).
  std::uint64_t batched_queries() const { return batched_queries_.load(); }
  /// Row computations saved by duplicate-query dedup within claims.
  std::uint64_t deduped_rows() const { return deduped_rows_.load(); }
  /// Queries refused under overload (queue full or admission deadline).
  std::uint64_t shed_queries() const { return shed_queries_.load(); }

 private:
  /// One queued query: its string, its k, and its result once the driver
  /// delivered it. Lives on the caller's stack — the queue holds
  /// pointers, and an entry leaves the queue either by being claimed by
  /// the driver (`claimed`) or by its caller shedding it on deadline,
  /// never both.
  struct Pending {
    std::string query;
    std::size_t k = 0;
    std::vector<double> row;
    ServeResult result;
    bool claimed = false;  // the driver owns it; the caller must wait
    bool done = false;     // result delivered; caller may act on it
    bool bailed = false;   // fast path declined; caller reruns robustly
    /// Precise wakeup (mirrors the reactor's per-waiter cvs): the driver
    /// notifies exactly the caller whose result landed — a shared cv
    /// would wake every parked caller per delivery, ~2N context switches
    /// a round on one core.
    std::condition_variable cv;
  };

  /// The driver's pull/deliver seam (defined in engine.cc).
  class Feed;

  /// Body of the driver thread: runs DriveSweeps until stop_.
  void DriverMain();

  /// Runs one blocked, deduplicated pivot pass over `batch` (entries are
  /// claimed, so only the driver touches them).
  void ComputeRows(const std::vector<Pending*>& batch);

  ServeRouter& router_;
  const ServeEngineOptions options_;

  std::mutex mu_;
  std::deque<Pending*> queue_;
  std::atomic<bool> stop_{false};
  int wake_r_ = -1, wake_w_ = -1;  // non-blocking self-pipe: enqueue -> driver

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_queries_{0};
  std::atomic<std::uint64_t> deduped_rows_{0};
  std::atomic<std::uint64_t> shed_queries_{0};

  std::thread driver_;  // last member: joins before the rest tears down
};

}  // namespace cned

#endif  // CNED_SERVE_ENGINE_H_
