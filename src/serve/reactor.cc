#include "serve/reactor.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

namespace cned {
namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds until `deadline`, rounded up (the frame layer's fixed
/// semantics: a sub-millisecond remainder polls once, never truncates to
/// a premature 0); clamped at 0 once passed.
int CeilMsLeft(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>((left + 999) / 1000);
}

}  // namespace

Conn::~Conn() {
  if (fd_ >= 0) ::close(fd_);
}

void Conn::Expect(std::uint32_t seq, std::uint32_t qid) {
  std::lock_guard<std::mutex> lock(mu_);
  Waiter& w = waiters_[seq];
  w.qid = qid;
  w.done = false;
  w.waiting = false;
}

void Conn::Cancel(std::uint32_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  waiters_.erase(seq);
}

void Conn::Fail() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_.exchange(true, std::memory_order_acq_rel)) return;
  // shutdown, not close: wakes the current reader's poll and gives the
  // worker EOF, while the fd number stays reserved until the last
  // shared_ptr owner drops the Conn.
  ::shutdown(fd_, SHUT_RDWR);
  for (auto& [seq, w] : waiters_) w.cv.notify_one();
}

void Conn::HandOffReader() {
  for (auto& [seq, w] : waiters_) {
    if (w.waiting && !w.done) {
      w.cv.notify_one();
      return;
    }
  }
}

bool Conn::FlushOutboxLocked(std::unique_lock<std::mutex>& lock) {
  if (sending_) return true;  // the active flusher will carry these bytes
  sending_ = true;
  bool ok = true;
  std::vector<char> local;
  while (ok && !outbox_.empty()) {
    local.clear();
    local.swap(outbox_);
    lock.unlock();
    ok = SendBytes(fd_, local.data(), local.size());
    lock.lock();
  }
  sending_ = false;
  lock.unlock();
  if (!ok) {
    Fail();
    return false;
  }
  return true;
}

bool Conn::Send(FrameType type, std::uint32_t seq, std::uint32_t qid,
                const void* payload, std::size_t payload_bytes) {
  if (failed()) return false;
  std::unique_lock<std::mutex> lock(send_mu_);
  if (!EncodeFrame(&outbox_, type, seq, qid, payload, payload_bytes)) {
    return false;
  }
  return FlushOutboxLocked(lock);
}

bool Conn::SendRaw(const char* data, std::size_t n) {
  if (failed()) return false;
  std::unique_lock<std::mutex> lock(send_mu_);
  outbox_.insert(outbox_.end(), data, data + n);
  return FlushOutboxLocked(lock);
}

void Conn::ReadOnce(std::unique_lock<std::mutex>& lock, int wait_ms) {
  reader_active_ = true;
  lock.unlock();

  // Optimistic recv first: on a loaded connection the worker's batched
  // reply is usually already buffered, and skipping the poll halves the
  // read-side syscalls. Poll only when the socket is dry and we may wait.
  char chunk[64 * 1024];
  ssize_t r = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
  bool have_bytes = false, stream_dead = false;
  if (r > 0) {
    have_bytes = true;
  } else if (r == 0) {
    stream_dead = true;  // EOF
  } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
    if (wait_ms == 0) {
      // Non-blocking probe and the socket is dry — done. (A zero-length
      // poll here could only catch bytes that landed in the last few
      // instructions; the caller's next probe or park catches them.)
      lock.lock();
      reader_active_ = false;
      return;
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr > 0) {
      r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r > 0) {
        have_bytes = true;
      } else if (r == 0) {
        stream_dead = true;
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        stream_dead = true;
      }
    } else if (pr < 0 && errno != EINTR) {
      stream_dead = true;
    }
  } else if (errno != EINTR) {
    stream_dead = true;
  }

  lock.lock();
  reader_active_ = false;
  if (have_bytes) {
    inbuf_.Append(chunk, static_cast<std::size_t>(r));
    Frame f;
    for (;;) {
      const FrameBuffer::Next next = inbuf_.Pop(&f);
      if (next == FrameBuffer::Next::kNeedMore) break;
      if (next == FrameBuffer::Next::kMalformed) {
        stream_dead = true;  // no resync, as everywhere in the tier
        break;
      }
      const auto it = waiters_.find(f.seq);
      // No waiter, or an echoed query id that doesn't match the one
      // registered: a stale reply from a timed-out attempt — drop it.
      if (it == waiters_.end() || it->second.done || it->second.qid != f.qid) {
        continue;
      }
      it->second.status = RecvStatus::kOk;
      it->second.frame = std::move(f);
      it->second.done = true;
      // Precise wakeup: only the thread whose reply this is. The reader
      // (us) re-checks its own waiter on loop re-entry without a signal.
      it->second.cv.notify_one();
    }
  }
  if (stream_dead && !failed_.exchange(true, std::memory_order_acq_rel)) {
    ::shutdown(fd_, SHUT_RDWR);
    for (auto& [seq, w] : waiters_) w.cv.notify_one();
  }
}

RecvStatus Conn::TryWait(std::uint32_t seq, Frame* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = waiters_.find(seq);
  if (it == waiters_.end()) return RecvStatus::kClosed;
  if (it->second.done) {
    const RecvStatus st = it->second.status;
    if (st == RecvStatus::kOk && out != nullptr) {
      *out = std::move(it->second.frame);
    }
    waiters_.erase(it);
    return st;
  }
  if (failed_.load(std::memory_order_acquire)) {
    waiters_.erase(it);
    return RecvStatus::kClosed;
  }
  return RecvStatus::kTimeout;
}

RecvStatus Conn::Wait(std::uint32_t seq, int timeout_ms, Frame* out) {
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);

  std::unique_lock<std::mutex> lock(mu_);
  RecvStatus st = RecvStatus::kTimeout;
  bool tried_read = false;
  for (;;) {
    const auto it = waiters_.find(seq);
    if (it == waiters_.end()) {
      st = RecvStatus::kClosed;  // Cancelled under us — treat as failed
      break;
    }
    if (it->second.done) {
      st = it->second.status;
      if (st == RecvStatus::kOk && out != nullptr) {
        *out = std::move(it->second.frame);
      }
      break;
    }
    if (failed_.load(std::memory_order_acquire)) {
      st = RecvStatus::kClosed;
      break;
    }
    int wait_ms = -1;
    if (bounded) {
      wait_ms = CeilMsLeft(deadline);
      // Expired — but take the read role once with a zero-length poll
      // first, so a reply already buffered in the socket still lands
      // (mirrors RecvFrame's timeout-0 drain semantics).
      if (wait_ms == 0 && (tried_read || reader_active_)) {
        st = RecvStatus::kTimeout;
        break;
      }
    }
    if (!reader_active_) {
      tried_read = true;
      ReadOnce(lock, wait_ms);
    } else {
      it->second.waiting = true;
      if (bounded) {
        it->second.cv.wait_until(lock, deadline);
      } else {
        it->second.cv.wait(lock);
      }
      it->second.waiting = false;
    }
  }
  // The registration survives a timeout: the caller either Waits again
  // (hedging alternates between two connections) or Cancels, at which
  // point a late reply becomes stale. kOk and kClosed retire it here.
  if (st != RecvStatus::kTimeout) waiters_.erase(seq);
  // If we were (or could have been) the reader, the role is now free:
  // wake exactly one parked waiter to take it, or buffered frames would
  // sit until someone's deadline fired.
  if (!reader_active_) HandOffReader();
  return st;
}

}  // namespace cned
