#ifndef CNED_SERVE_WIRE_H_
#define CNED_SERVE_WIRE_H_

#include <cstdint>

#include "search/sweep_kernel.h"
#include "serve/frame.h"

namespace cned {

/// Payload encoding of one shard's sweep pass result — the reply body of
/// kBeginRow, kStep and kStepRow. `live_pivots` rides along so the router
/// always has each shard's absolute live-pivot count (the quantity that
/// keeps the global next-candidate rule exact when shards drop out).
struct WireCompact {
  SweepCompactResult pass;
  std::uint64_t live_pivots = 0;
};

inline void EncodeCompact(PayloadWriter& w, const SweepCompactResult& pass,
                          std::uint64_t live_pivots) {
  w.U64(pass.live);
  w.U64(pass.pivots_died);
  w.U64(pass.next);
  w.F64(pass.next_key);
  w.U64(pass.next_pivot);
  w.F64(pass.next_pivot_key);
  w.U64(live_pivots);
}

inline WireCompact DecodeCompact(PayloadReader& r) {
  WireCompact out;
  out.pass.live = r.U64();
  out.pass.pivots_died = r.U64();
  out.pass.next = r.U64();
  out.pass.next_key = r.F64();
  out.pass.next_pivot = r.U64();
  out.pass.next_pivot_key = r.F64();
  out.live_pivots = r.U64();
  return out;
}

}  // namespace cned

#endif  // CNED_SERVE_WIRE_H_
