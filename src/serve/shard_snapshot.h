#ifndef CNED_SERVE_SHARD_SNAPSHOT_H_
#define CNED_SERVE_SHARD_SNAPSHOT_H_

#include <cstdint>
#include <string>

namespace cned {

/// On-disk layout of a distributed serving snapshot (binary_io format).
///
/// `SaveServingSnapshot` splits a `ShardedLaesa` + its store into one
/// directory:
///   manifest.bin      router half (magic CNEDSRM1): counts {n, shards,
///                     np, pivot_arena_bytes}; sections shard sizes
///                     u64[shards], pivot ids u64[np], pivot lengths
///                     u64[np], pivot characters char[arena_bytes]
///   shard<s>.store.bin   shard s's prototypes — a standalone
///                     `PrototypeStore::SaveBinary` file
///   shard<s>.index.bin   shard s's index slice (magic CNEDSHW1): counts
///                     {n, shards, np, shard_id, n_s, base}; sections
///                     pivot ids u64[np], table f64[np * n_s]
///
/// Version 2 of the shard slice carries a quantized table (table_quant.h):
/// all six header counts are occupied, so the precision rides in an extra
/// leading section u64[2] = {precision, reserved}, followed by pivot ids
/// u64[np], the GLOBAL per-row decode meta QuantRowMeta[np], and the code
/// table elem[np * n_s] at the precision's element width. f64 snapshots
/// keep writing version 1 byte-identically.
///
/// Each worker process opens only its own two shard files (checksum-
/// verified, then mapped in place); the router opens only the manifest.
/// No process ever holds the whole index.

inline constexpr char kShardSliceMagic[8] = {'C', 'N', 'E', 'D',
                                             'S', 'H', 'W', '1'};
inline constexpr std::uint32_t kShardSliceVersion = 1;
inline constexpr std::uint32_t kShardSliceVersionQuant = 2;
inline constexpr char kRouterManifestMagic[8] = {'C', 'N', 'E', 'D',
                                                 'S', 'R', 'M', '1'};
inline constexpr std::uint32_t kRouterManifestVersion = 1;

/// Standard file names inside a snapshot directory.
std::string ManifestPath(const std::string& dir);
std::string ShardStorePath(const std::string& dir, std::size_t shard);
std::string ShardIndexPath(const std::string& dir, std::size_t shard);

class ShardedLaesa;

/// Writes the full distributed snapshot for `index` into `dir` (which must
/// exist): the router manifest plus every shard's store and index-slice
/// file, under the standard names above.
void SaveServingSnapshot(const ShardedLaesa& index, const std::string& dir);

}  // namespace cned

#endif  // CNED_SERVE_SHARD_SNAPSHOT_H_
