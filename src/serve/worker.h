#ifndef CNED_SERVE_WORKER_H_
#define CNED_SERVE_WORKER_H_

#include <string>

namespace cned {

/// Configuration of one shard-worker process.
struct WorkerConfig {
  std::size_t shard_id = 0;
  /// Ordinal of this worker inside its shard's replica group (0 = the
  /// initial primary). Every member of a group maps the *same* snapshot
  /// files; the ordinal only names the process for fault selection
  /// (`replica=` in serve/fault.h) and for the ping identity echo.
  std::size_t replica_id = 0;
  std::string store_path;
  std::string index_path;
  std::string distance;    ///< registry name (distances/registry.h)
  std::string fault_spec;  ///< CNED_FAULT grammar (serve/fault.h); "" = clean
};

/// Runs the shard-worker protocol loop on `fd` (one end of the router's
/// socketpair) until the router sends kShutdown, the socket closes, or an
/// injected crash fires. Maps the shard snapshot (checksum-verified), then
/// serves Ping/BeginLazy/BeginRow/Eval/Step/StepRow requests, applying the
/// fault spec's deterministic schedule to each. Returns the process exit
/// code (0 on clean shutdown). Never throws: a snapshot or protocol
/// failure is reported as a kError frame where possible and a nonzero
/// return otherwise.
int RunShardWorker(int fd, const WorkerConfig& config);

}  // namespace cned

#endif  // CNED_SERVE_WORKER_H_
