#ifndef CNED_SERVE_FRAME_H_
#define CNED_SERVE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace cned {

/// Length-prefixed, checksummed framing for the scatter/gather serving
/// tier's router <-> shard-worker sockets (src/serve/router.h).
///
/// Every message is one frame:
///   bytes  0..3   payload length (uint32, <= kMaxFramePayload)
///   bytes  4..7   message type (uint32, a FrameType value)
///   bytes  8..11  sequence number (uint32, echoed by the reply)
///   bytes 12..15  query id (uint32, echoed by the reply)
///   bytes 16..19  CRC-32 (common/crc32.h) of the payload bytes
/// followed by the payload. Native (little-endian) byte order, as the
/// snapshot format: router and workers share one machine or one
/// architecture.
///
/// The query id multiplexes a connection between concurrent sweeps: every
/// in-flight query owns a router-assigned nonzero id, workers key their
/// per-sweep slab state on it, and replies echo it alongside the sequence
/// number. Id 0 is the control plane (ping, shutdown, mutations, scans —
/// anything that is not per-sweep state). A reply whose sequence or query
/// id matches no waiting exchange is discarded exactly like a stale
/// sequence number from a timed-out attempt.
///
/// The failure contract the router builds on:
///   * `RecvFrame` is deadline-bounded (poll + monotonic clock), so a
///     stalled worker surfaces as kTimeout, never a hang;
///   * a closed/reset socket surfaces as kClosed;
///   * a frame whose CRC does not match its payload, whose type is
///     outside the known range, or whose length field exceeds
///     kMaxFramePayload surfaces as kMalformed — the router treats all
///     three as a dead shard (no attempt to resynchronise a corrupt
///     byte stream is ever made).
/// Sends use MSG_NOSIGNAL: writing to a crashed worker returns an error
/// instead of raising SIGPIPE in the router.
///
/// Frames are self-delimiting, so writers may concatenate several frames
/// into one send and readers may pull several frames out of one receive —
/// the concurrent tier's coalescing (serve/reactor.h, the worker drain
/// loop) rides on exactly that property; the byte stream is unchanged.

/// Hard cap on a frame payload (1 GiB); a length field beyond this is
/// treated as stream corruption, not an allocation request.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// Message types. Requests flow router -> worker; every request gets
/// exactly one reply frame (kReply or kError) echoing its sequence
/// number, unless a fault drops it. The single exception is kEndSweep,
/// which is fire-and-forget: it retires per-query worker state after the
/// router has already merged the sweep, so a reply would only add a
/// round trip with nothing to gate on.
enum class FrameType : std::uint32_t {
  kPing = 1,       ///< health check; reply: u64 shard id, u64 replica id
  kBeginLazy = 2,  ///< start a lazy sweep: str query
  kBeginRow = 3,   ///< start a row sweep: str query, f64 seed_bound, row
  kEval = 4,       ///< evaluate: u64 global id, f64 cap -> f64 distance
  kStep = 5,       ///< lazy visit pass: skip/rank/d/slack/bound -> compact
  kStepRow = 6,    ///< row visit pass: skip/bound -> compact
  kShutdown = 7,   ///< clean worker exit; empty reply, then close
  kReply = 8,      ///< successful response (payload per request type)
  kError = 9,      ///< worker-side exception; payload: str message
  // --- Live-mutability ops (the mutable tier, search/mutable_laesa.h). ---
  // Replicated to every member of the owning shard's group like begins and
  // steps; replies are dedup-stable (re-delivery after a lost reply gives
  // the same bytes), so the ops are retryable and byte-agreement across
  // the group keeps working.
  kInsert = 10,     ///< append to the shard delta: u64 id, str s -> u64 count
  kRemove = 11,     ///< tombstone an id: u64 id -> u64 total dead
  kDeltaScan = 12,  ///< bounded live-delta scan: str query, f64 cap, u64 k
                    ///< -> u64 hits, hits x (u64 id, f64 d), u64 comps,
                    ///< u64 abandons
  kEndSweep = 13,   ///< retire the sweep slot for this frame's query id;
                    ///< empty payload, NO reply (fire-and-forget), and
                    ///< exempt from fault injection (it is router-side
                    ///< cleanup, not a replicated state-machine op)
};
inline constexpr std::uint32_t kMaxFrameType =
    static_cast<std::uint32_t>(FrameType::kEndSweep);

/// One received frame.
struct Frame {
  std::uint32_t type = 0;
  std::uint32_t seq = 0;
  std::uint32_t qid = 0;
  std::vector<char> payload;
};

/// Outcome of a deadline-bounded receive.
enum class RecvStatus {
  kOk,
  kTimeout,    ///< deadline expired before a full frame arrived
  kClosed,     ///< EOF / connection reset
  kMalformed,  ///< bad length, unknown type, or CRC mismatch
};

/// Appends one encoded frame (header + payload) to `out` without sending
/// it — the building block for coalesced writes, where several frames are
/// flushed with one send. `corrupt_crc`, used only by the fault injector,
/// stamps a deliberately wrong payload CRC so the receiver's kMalformed
/// path is exercised end to end. Returns false (appending nothing) only
/// when the payload exceeds kMaxFramePayload.
bool EncodeFrame(std::vector<char>* out, FrameType type, std::uint32_t seq,
                 std::uint32_t qid, const void* payload,
                 std::size_t payload_bytes, bool corrupt_crc = false);

/// Writes one frame. Returns false on any send error (the caller marks
/// the peer dead).
bool SendFrame(int fd, FrameType type, std::uint32_t seq, std::uint32_t qid,
               const void* payload, std::size_t payload_bytes,
               bool corrupt_crc = false);

/// Writes raw pre-encoded bytes (one or more EncodeFrame outputs) with the
/// same MSG_NOSIGNAL/EINTR handling as SendFrame — the flush half of a
/// coalesced writer.
bool SendBytes(int fd, const void* data, std::size_t n);

/// Reads one frame, waiting at most `timeout_ms` (< 0 waits forever).
/// Partial reads continue against the same deadline. Sub-millisecond
/// remainders round *up* to the next poll tick, so a small positive
/// budget polls at least once instead of reporting a premature timeout
/// (and `timeout_ms == 0` still performs one non-blocking poll, draining
/// a frame that is already buffered).
RecvStatus RecvFrame(int fd, Frame* out, int timeout_ms);

/// Incremental frame parser over a raw byte stream: append whatever bytes
/// a receive produced, then pull out as many complete frames as arrived.
/// This is how the multiplexed paths (worker drain loop, router reactor)
/// read many frames per syscall without ever losing a partial frame at a
/// read boundary — leftover bytes simply wait for the next Append.
class FrameBuffer {
 public:
  enum class Next {
    kFrame,     ///< a complete, CRC-valid frame was produced
    kNeedMore,  ///< buffer holds only a partial frame (or nothing)
    kMalformed, ///< bad length/type/CRC — the stream is unrecoverable
  };

  void Append(const void* data, std::size_t n);
  /// Pops the next complete frame into `out`. After kMalformed the buffer
  /// is poisoned: every further Pop returns kMalformed (callers drop the
  /// connection, matching RecvFrame's no-resync contract).
  Next Pop(Frame* out);

  std::size_t buffered_bytes() const { return buf_.size() - off_; }

 private:
  std::vector<char> buf_;
  std::size_t off_ = 0;  ///< consumed prefix, compacted lazily
  bool poisoned_ = false;
};

/// Append-only payload encoder (native byte order, packed).
struct PayloadWriter {
  std::vector<char> buf;

  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(std::int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  /// u32 length + bytes.
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* data, std::size_t n);
};

/// Bounds-checked payload decoder. Reads past the end set `ok()` false and
/// return zero values; callers check `ok()` once after decoding a message
/// and treat failure as a malformed frame.
class PayloadReader {
 public:
  PayloadReader(const char* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<char>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  std::uint32_t U32() { return Fixed<std::uint32_t>(); }
  std::uint64_t U64() { return Fixed<std::uint64_t>(); }
  std::int32_t I32() { return Fixed<std::int32_t>(); }
  double F64() { return Fixed<double>(); }
  std::string Str();
  /// In-place view of `n` raw bytes (valid while the payload lives).
  const char* Raw(std::size_t n);

  bool ok() const { return ok_; }
  /// True when the whole payload was consumed cleanly — the strict form
  /// message handlers use (trailing garbage is as malformed as a short
  /// read).
  bool Done() const { return ok_ && off_ == size_; }

 private:
  template <typename T>
  T Fixed() {
    if (!ok_ || size_ - off_ < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }

  const char* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

}  // namespace cned

#endif  // CNED_SERVE_FRAME_H_
