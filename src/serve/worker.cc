#include "serve/worker.h"

#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/fault.h"
#include "serve/frame.h"
#include "serve/replica.h"
#include "serve/wire.h"

namespace cned {
namespace {

/// Request class for fault matching (serve/fault.h).
const char* OpClass(FrameType type) {
  switch (type) {
    case FrameType::kPing:
      return "ping";
    case FrameType::kBeginLazy:
    case FrameType::kBeginRow:
      return "begin";
    case FrameType::kEval:
      return "eval";
    case FrameType::kStep:
    case FrameType::kStepRow:
      return "step";
    case FrameType::kInsert:
      return "insert";
    case FrameType::kRemove:
      return "remove";
    case FrameType::kDeltaScan:
      return "scan";
    default:
      return "other";
  }
}

void SleepMs(std::uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  while (nanosleep(&ts, &ts) != 0) {
  }
}

/// Flush the reply outbox past this size even with more requests pending,
/// bounding worker memory under a slow router.
constexpr std::size_t kFlushBytes = std::size_t{256} * 1024;

void EncodeError(std::vector<char>* out, std::uint32_t seq, std::uint32_t qid,
                 const std::string& message, bool corrupt) {
  PayloadWriter w;
  w.Str(message);
  EncodeFrame(out, FrameType::kError, seq, qid, w.buf.data(), w.buf.size(),
              corrupt);
}

}  // namespace

// The worker is a single-threaded drain loop: read whatever the socket
// holds, process EVERY complete buffered request, then flush all replies
// with one send. Under one in-flight query this is byte-for-byte the old
// one-frame-at-a-time loop; under the router's multiplexed load it is the
// serving tier's throughput lever — N interleaved queries cost one worker
// wakeup and two syscalls per batch instead of N of each. Sweep state is
// per-query-id (ShardReplica slots), so interleaved sweeps can't see each
// other. A crash fault inside a batch loses the batch's unflushed replies
// too — exactly the kill -9 semantics the router already handles.
int RunShardWorker(int fd, const WorkerConfig& config) {
  FaultInjector injector(FaultSpec::Parse(config.fault_spec),
                         config.shard_id, config.replica_id);

  // Snapshot load failures are reported on the first request rather than
  // silently dying: keep the error and answer every request with it.
  std::unique_ptr<ShardReplica> replica;
  std::string load_error;
  try {
    replica = std::make_unique<ShardReplica>(
        config.store_path, config.index_path, config.distance);
  } catch (const std::exception& e) {
    load_error = e.what();
  }

  FrameBuffer inbuf;
  std::vector<char> outbox;
  char chunk[64 * 1024];
  for (;;) {
    Frame req;
    const FrameBuffer::Next next = inbuf.Pop(&req);
    if (next == FrameBuffer::Next::kMalformed) return 1;
    if (next == FrameBuffer::Next::kNeedMore) {
      // Out of complete requests: flush everything we owe before blocking,
      // or the router would wait on replies we are sitting on.
      if (!outbox.empty()) {
        if (!SendBytes(fd, outbox.data(), outbox.size())) return 1;
        outbox.clear();
      }
      const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
      if (r == 0) return 0;  // clean EOF: router closed the connection
      if (r < 0) {
        if (errno == EINTR) continue;
        return 1;
      }
      inbuf.Append(chunk, static_cast<std::size_t>(r));
      continue;
    }
    const FrameType type = static_cast<FrameType>(req.type);

    if (type == FrameType::kEndSweep) {
      // Fire-and-forget cleanup: no reply, and exempt from fault injection
      // — it is not a replicated state-machine op, so it must not consume
      // a deterministic schedule's nth/every counts.
      if (replica != nullptr) replica->EndSweep(req.qid);
      continue;
    }

    const FaultInjector::Action action = injector.OnRequest(OpClass(type));
    if (action.crash) _exit(137);  // the kill -9 stand-in
    if (action.delay_ms > 0) SleepMs(action.delay_ms);
    if (action.drop) continue;

    if (type == FrameType::kShutdown) {
      EncodeFrame(&outbox, FrameType::kReply, req.seq, req.qid, nullptr, 0);
      SendBytes(fd, outbox.data(), outbox.size());
      return 0;
    }
    if (replica == nullptr) {
      EncodeError(&outbox, req.seq, req.qid,
                  "shard snapshot load failed: " + load_error, action.corrupt);
      continue;
    }

    PayloadWriter reply;
    bool ok = true;
    std::string error;
    try {
      PayloadReader r(req.payload);
      switch (type) {
        case FrameType::kPing: {
          reply.U64(replica->shard_id());
          reply.U64(config.replica_id);
          break;
        }
        case FrameType::kBeginLazy: {
          const std::string query = r.Str();
          const std::uint32_t masked = r.U32();
          if (!r.Done()) throw std::runtime_error("malformed BeginLazy");
          const SweepCompactResult pass =
              replica->BeginLazy(req.qid, query, masked != 0);
          if (masked != 0) {
            // Mutations exist somewhere: the router needs this segment's
            // post-mask survivors to pick a live start.
            EncodeCompact(reply, pass, replica->live_pivots(req.qid));
          } else {
            // Legacy reply shape — healthy immutable deployments stay
            // byte-identical on the wire.
            reply.U64(replica->live(req.qid));
            reply.U64(replica->live_pivots(req.qid));
          }
          break;
        }
        case FrameType::kBeginRow: {
          const std::string query = r.Str();
          const double seed_bound = r.F64();
          const std::uint64_t np = r.U64();
          const char* row_bytes =
              r.ok() && np == replica->num_pivots()
                  ? r.Raw(np * sizeof(double))
                  : nullptr;
          if (row_bytes == nullptr || !r.Done()) {
            throw std::runtime_error("malformed BeginRow");
          }
          // The row sits at an arbitrary offset inside the frame payload
          // (behind the length-prefixed query); copy it out so the sweep
          // kernels get a properly aligned double array.
          std::vector<double> row(np);
          std::memcpy(row.data(), row_bytes, np * sizeof(double));
          const SweepCompactResult pass =
              replica->BeginRow(req.qid, query, row.data(), seed_bound);
          EncodeCompact(reply, pass, replica->live_pivots(req.qid));
          break;
        }
        case FrameType::kEval: {
          const std::uint64_t id = r.U64();
          const double cap = r.F64();
          if (!r.Done()) throw std::runtime_error("malformed Eval");
          reply.F64(replica->Eval(req.qid, id, cap));
          break;
        }
        case FrameType::kStep: {
          const std::uint32_t skip = r.U32();
          const std::int32_t rank = r.I32();
          const double d = r.F64();
          const double slack = r.F64();
          const double bound = r.F64();
          if (!r.Done()) throw std::runtime_error("malformed Step");
          const SweepCompactResult pass =
              replica->Step(req.qid, skip, rank, d, slack, bound);
          EncodeCompact(reply, pass, replica->live_pivots(req.qid));
          break;
        }
        case FrameType::kStepRow: {
          const std::uint32_t skip = r.U32();
          const double bound = r.F64();
          if (!r.Done()) throw std::runtime_error("malformed StepRow");
          const SweepCompactResult pass =
              replica->StepRow(req.qid, skip, bound);
          EncodeCompact(reply, pass, replica->live_pivots(req.qid));
          break;
        }
        case FrameType::kInsert: {
          const std::uint64_t id = r.U64();
          const std::string s = r.Str();
          if (!r.Done()) throw std::runtime_error("malformed Insert");
          replica->Insert(id, s);
          // Dedup-stable reply: the delta count after this id is applied is
          // the same whether this delivery was first or a retry, so a lost
          // reply re-sent still byte-agrees across the group.
          reply.U64(replica->delta_count());
          break;
        }
        case FrameType::kRemove: {
          const std::uint64_t id = r.U64();
          if (!r.Done()) throw std::runtime_error("malformed Remove");
          replica->Remove(id);
          // Dedup-stable for the same reason as kInsert.
          reply.U64(replica->total_dead());
          break;
        }
        case FrameType::kDeltaScan: {
          const std::string query = r.Str();
          const double cap0 = r.F64();
          const std::uint64_t k = r.U64();
          if (!r.Done()) throw std::runtime_error("malformed DeltaScan");
          std::vector<NeighborResult> hits;
          std::uint64_t comps = 0;
          std::uint64_t abandons = 0;
          replica->DeltaScan(query, cap0, static_cast<std::size_t>(k), &hits,
                             &comps, &abandons);
          reply.U64(hits.size());
          for (const NeighborResult& h : hits) {
            reply.U64(h.index);
            reply.F64(h.distance);
          }
          reply.U64(comps);
          reply.U64(abandons);
          break;
        }
        default: {
          throw std::runtime_error("unexpected frame type " +
                                   std::to_string(req.type));
        }
      }
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }

    // A mangled reply is byte-wrong but CRC-valid: the frame layer cannot
    // catch it, only the router's replica agreement check can.
    if (action.mangle && !reply.buf.empty()) reply.buf[0] ^= 0x01;
    if (ok) {
      EncodeFrame(&outbox, FrameType::kReply, req.seq, req.qid,
                  reply.buf.data(), reply.buf.size(), action.corrupt);
    } else {
      EncodeError(&outbox, req.seq, req.qid, error, action.corrupt);
    }
    if (outbox.size() >= kFlushBytes) {
      if (!SendBytes(fd, outbox.data(), outbox.size())) return 1;
      outbox.clear();
    }
  }
}

}  // namespace cned
