#include "serve/worker.h"

#include <time.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/fault.h"
#include "serve/frame.h"
#include "serve/replica.h"
#include "serve/wire.h"

namespace cned {
namespace {

/// Request class for fault matching (serve/fault.h).
const char* OpClass(FrameType type) {
  switch (type) {
    case FrameType::kPing:
      return "ping";
    case FrameType::kBeginLazy:
    case FrameType::kBeginRow:
      return "begin";
    case FrameType::kEval:
      return "eval";
    case FrameType::kStep:
    case FrameType::kStepRow:
      return "step";
    case FrameType::kInsert:
      return "insert";
    case FrameType::kRemove:
      return "remove";
    case FrameType::kDeltaScan:
      return "scan";
    default:
      return "other";
  }
}

void SleepMs(std::uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  while (nanosleep(&ts, &ts) != 0) {
  }
}

bool SendError(int fd, std::uint32_t seq, const std::string& message,
               bool corrupt) {
  PayloadWriter w;
  w.Str(message);
  return SendFrame(fd, FrameType::kError, seq, w.buf.data(), w.buf.size(),
                   corrupt);
}

}  // namespace

int RunShardWorker(int fd, const WorkerConfig& config) {
  FaultInjector injector(FaultSpec::Parse(config.fault_spec),
                         config.shard_id, config.replica_id);

  // Snapshot load failures are reported on the first request rather than
  // silently dying: keep the error and answer every request with it.
  std::unique_ptr<ShardReplica> replica;
  std::string load_error;
  try {
    replica = std::make_unique<ShardReplica>(
        config.store_path, config.index_path, config.distance);
  } catch (const std::exception& e) {
    load_error = e.what();
  }

  for (;;) {
    Frame req;
    const RecvStatus st = RecvFrame(fd, &req, /*timeout_ms=*/-1);
    if (st != RecvStatus::kOk) return st == RecvStatus::kClosed ? 0 : 1;
    const FrameType type = static_cast<FrameType>(req.type);

    const FaultInjector::Action action = injector.OnRequest(OpClass(type));
    if (action.crash) _exit(137);  // the kill -9 stand-in
    if (action.delay_ms > 0) SleepMs(action.delay_ms);
    if (action.drop) continue;

    if (type == FrameType::kShutdown) {
      SendFrame(fd, FrameType::kReply, req.seq, nullptr, 0);
      return 0;
    }
    if (replica == nullptr) {
      if (!SendError(fd, req.seq, "shard snapshot load failed: " + load_error,
                     action.corrupt)) {
        return 1;
      }
      continue;
    }

    PayloadWriter reply;
    bool ok = true;
    std::string error;
    try {
      PayloadReader r(req.payload);
      switch (type) {
        case FrameType::kPing: {
          reply.U64(replica->shard_id());
          reply.U64(config.replica_id);
          break;
        }
        case FrameType::kBeginLazy: {
          const std::string query = r.Str();
          const std::uint32_t masked = r.U32();
          if (!r.Done()) throw std::runtime_error("malformed BeginLazy");
          const SweepCompactResult pass =
              replica->BeginLazy(query, masked != 0);
          if (masked != 0) {
            // Mutations exist somewhere: the router needs this segment's
            // post-mask survivors to pick a live start.
            EncodeCompact(reply, pass, replica->live_pivots());
          } else {
            // Legacy reply shape — healthy immutable deployments stay
            // byte-identical on the wire.
            reply.U64(replica->live());
            reply.U64(replica->live_pivots());
          }
          break;
        }
        case FrameType::kBeginRow: {
          const std::string query = r.Str();
          const double seed_bound = r.F64();
          const std::uint64_t np = r.U64();
          const char* row_bytes =
              r.ok() && np == replica->num_pivots()
                  ? r.Raw(np * sizeof(double))
                  : nullptr;
          if (row_bytes == nullptr || !r.Done()) {
            throw std::runtime_error("malformed BeginRow");
          }
          // The row sits at an arbitrary offset inside the frame payload
          // (behind the length-prefixed query); copy it out so the sweep
          // kernels get a properly aligned double array.
          std::vector<double> row(np);
          std::memcpy(row.data(), row_bytes, np * sizeof(double));
          const SweepCompactResult pass =
              replica->BeginRow(query, row.data(), seed_bound);
          EncodeCompact(reply, pass, replica->live_pivots());
          break;
        }
        case FrameType::kEval: {
          const std::uint64_t id = r.U64();
          const double cap = r.F64();
          if (!r.Done()) throw std::runtime_error("malformed Eval");
          reply.F64(replica->Eval(id, cap));
          break;
        }
        case FrameType::kStep: {
          const std::uint32_t skip = r.U32();
          const std::int32_t rank = r.I32();
          const double d = r.F64();
          const double slack = r.F64();
          const double bound = r.F64();
          if (!r.Done()) throw std::runtime_error("malformed Step");
          const SweepCompactResult pass =
              replica->Step(skip, rank, d, slack, bound);
          EncodeCompact(reply, pass, replica->live_pivots());
          break;
        }
        case FrameType::kStepRow: {
          const std::uint32_t skip = r.U32();
          const double bound = r.F64();
          if (!r.Done()) throw std::runtime_error("malformed StepRow");
          const SweepCompactResult pass = replica->StepRow(skip, bound);
          EncodeCompact(reply, pass, replica->live_pivots());
          break;
        }
        case FrameType::kInsert: {
          const std::uint64_t id = r.U64();
          const std::string s = r.Str();
          if (!r.Done()) throw std::runtime_error("malformed Insert");
          replica->Insert(id, s);
          // Dedup-stable reply: the delta count after this id is applied is
          // the same whether this delivery was first or a retry, so a lost
          // reply re-sent still byte-agrees across the group.
          reply.U64(replica->delta_count());
          break;
        }
        case FrameType::kRemove: {
          const std::uint64_t id = r.U64();
          if (!r.Done()) throw std::runtime_error("malformed Remove");
          replica->Remove(id);
          // Dedup-stable for the same reason as kInsert.
          reply.U64(replica->total_dead());
          break;
        }
        case FrameType::kDeltaScan: {
          const std::string query = r.Str();
          const double cap0 = r.F64();
          const std::uint64_t k = r.U64();
          if (!r.Done()) throw std::runtime_error("malformed DeltaScan");
          std::vector<NeighborResult> hits;
          std::uint64_t comps = 0;
          std::uint64_t abandons = 0;
          replica->DeltaScan(query, cap0, static_cast<std::size_t>(k), &hits,
                             &comps, &abandons);
          reply.U64(hits.size());
          for (const NeighborResult& h : hits) {
            reply.U64(h.index);
            reply.F64(h.distance);
          }
          reply.U64(comps);
          reply.U64(abandons);
          break;
        }
        default: {
          throw std::runtime_error("unexpected frame type " +
                                   std::to_string(req.type));
        }
      }
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }

    // A mangled reply is byte-wrong but CRC-valid: the frame layer cannot
    // catch it, only the router's replica agreement check can.
    if (action.mangle && !reply.buf.empty()) reply.buf[0] ^= 0x01;
    const bool sent =
        ok ? SendFrame(fd, FrameType::kReply, req.seq, reply.buf.data(),
                       reply.buf.size(), action.corrupt)
           : SendError(fd, req.seq, error, action.corrupt);
    if (!sent) return 1;
  }
}

}  // namespace cned
