#include "serve/replica.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/binary_io.h"
#include "distances/registry.h"
#include "search/sharded_laesa.h"
#include "serve/shard_snapshot.h"

namespace cned {

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.bin";
}

std::string ShardStorePath(const std::string& dir, std::size_t shard) {
  return dir + "/shard" + std::to_string(shard) + ".store.bin";
}

std::string ShardIndexPath(const std::string& dir, std::size_t shard) {
  return dir + "/shard" + std::to_string(shard) + ".index.bin";
}

void SaveServingSnapshot(const ShardedLaesa& index, const std::string& dir) {
  index.SaveRouterManifest(ManifestPath(dir));
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    index.store().shard(s).SaveBinary(ShardStorePath(dir, s));
    index.SaveShard(s, ShardIndexPath(dir, s));
  }
}

ShardReplica::ShardReplica(const std::string& store_path,
                           const std::string& index_path,
                           const std::string& distance_name)
    : distance_(MakeDistance(distance_name)) {
  // Full checksum pass over both files before any section is interpreted:
  // the worker is the tier's integrity gate (the mapped loaders below
  // validate structure, not payload bytes).
  VerifySnapshotChecksum(store_path);
  VerifySnapshotChecksum(index_path);
  store_ = PrototypeStore::Map(store_path);

  MappedReader reader(MappedFile::Open(index_path));
  std::uint32_t version = 0;
  const auto counts = reader.Header(kShardSliceMagic, kShardSliceVersion,
                                    kShardSliceVersionQuant, &version);
  n_total_ = counts[0];
  shard_count_ = counts[1];
  const std::uint64_t np = counts[2];
  shard_id_ = counts[3];
  const std::uint64_t n_s = counts[4];
  base_ = counts[5];
  if (shard_id_ >= shard_count_ || base_ > n_total_ ||
      n_s > n_total_ - base_) {
    throw std::runtime_error("ShardReplica: inconsistent shard header (" +
                             index_path + ")");
  }
  if (n_s != store_.size()) {
    throw std::runtime_error(
        "ShardReplica: index slice and store disagree on shard size (" +
        index_path + ")");
  }
  if (np == 0 || np > n_total_) {
    throw std::runtime_error("ShardReplica: bad pivot count (" + index_path +
                             ")");
  }
  if (version == kShardSliceVersionQuant) {
    // v2 leads with the {precision, reserved} section (shard_snapshot.h).
    const std::uint64_t* prec = reader.Array<std::uint64_t>(2);
    if (prec[0] < 1 || prec[0] > 3) {
      throw std::runtime_error("ShardReplica: bad table precision (" +
                               index_path + ")");
    }
    precision_ =
        static_cast<TablePrecision>(static_cast<std::uint32_t>(prec[0]));
  }
  const std::uint64_t* pivots = reader.Array<std::uint64_t>(np);
  pivots_.assign(pivots, pivots + np);
  // Full-length rank array, exactly as the in-process index keeps it: the
  // flagged kernel gathers rank[global id] for ids in this segment, and the
  // seed kernel reads the slice at base_ — both stay in bounds.
  pivot_rank_.assign(n_total_, -1);
  for (std::size_t p = 0; p < np; ++p) {
    if (pivots_[p] >= n_total_ || pivot_rank_[pivots_[p]] >= 0) {
      throw std::runtime_error("ShardReplica: bad pivot ids (" + index_path +
                               ")");
    }
    pivot_rank_[pivots_[p]] = static_cast<std::int32_t>(p);
  }
  if (version == kShardSliceVersion) {
    table_ = reader.Array<double>(np * n_s);
  } else {
    row_meta_ = reader.Array<QuantRowMeta>(np);
    qtable_ = reader.Section(np * n_s, TablePrecisionBytes(precision_));
  }
  index_mapping_ = reader.file();
}

ShardReplica::SweepSlot& ShardReplica::NewSlot(std::uint32_t qid) {
  auto it = sweeps_.find(qid);
  if (it == sweeps_.end()) {
    if (sweeps_.size() >= kMaxSweeps) {
      throw std::runtime_error("ShardReplica: sweep slot table full");
    }
    it = sweeps_.emplace(qid, std::make_unique<SweepSlot>()).first;
  }
  SweepSlot& slot = *it->second;
  slot.idx.resize(store_.size());
  slot.lower.resize(store_.size());
  return slot;
}

ShardReplica::SweepSlot& ShardReplica::SlotOf(std::uint32_t qid) {
  const auto it = sweeps_.find(qid);
  if (it == sweeps_.end()) {
    throw std::out_of_range("ShardReplica: unknown query id " +
                            std::to_string(qid));
  }
  return *it->second;
}

const ShardReplica::SweepSlot& ShardReplica::SlotOf(std::uint32_t qid) const {
  const auto it = sweeps_.find(qid);
  if (it == sweeps_.end()) {
    throw std::out_of_range("ShardReplica: unknown query id " +
                            std::to_string(qid));
  }
  return *it->second;
}

std::size_t ShardReplica::live(std::uint32_t qid) const {
  return SlotOf(qid).live;
}

std::size_t ShardReplica::live_pivots(std::uint32_t qid) const {
  return SlotOf(qid).live_pivots;
}

void ShardReplica::EndSweep(std::uint32_t qid) { sweeps_.erase(qid); }

SweepCompactResult ShardReplica::BeginLazy(std::uint32_t qid,
                                           std::string_view query,
                                           bool masked_start) {
  SweepSlot& slot = NewSlot(qid);
  slot.query.assign(query);
  const std::size_t n_s = store_.size();
  distance_->LengthLowerBounds(slot.query.size(), store_.lengths_data(), n_s,
                               slot.lower.data());
  slot.live_pivots = 0;
  for (std::size_t j = 0; j < n_s; ++j) {
    slot.idx.data()[j] = static_cast<std::uint32_t>(base_ + j);
    slot.live_pivots += pivot_rank_[base_ + j] >= 0 ? 1 : 0;
  }
  slot.live = n_s;
  SweepCompactResult pass;
  pass.live = slot.live;
  if (!masked_start) return pass;  // legacy start: router begins at pivot 0
  // Mask this shard's base tombstones out of the slab before anything is
  // visited, and hand the router this segment's minimal-bound survivors so
  // it can choose a live starting candidate across shards (a dead global
  // pivot 0 must not be visited anywhere).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (base_dead_ > 0) {
    ApplyTombstoneMask(tombs_.data(), n_s, slot.lower.data());
  }
  const SweepKernels& kern = ActiveSweepKernels();
  pass = kern.eliminate_and_compact_flagged(slot.idx.data(), slot.lower.data(),
                                            pivot_rank_.data(), slot.live,
                                            /*skip=*/0xFFFFFFFFu,
                                            /*slack=*/1.0, kInf);
  slot.live = pass.live;
  slot.live_pivots -= pass.pivots_died;
  return pass;
}

bool ShardReplica::Insert(std::uint64_t id, std::string_view s) {
  // Per-shard ids are assigned (and replayed) in ascending order, so a
  // duplicate delivery — a retry after a lost reply — is exactly an id that
  // is not past the current tail.
  if (!delta_ids_.empty() && id <= delta_ids_.back()) return false;
  delta_store_.Add(s);
  delta_ids_.push_back(id);
  if (!delta_tombs_.empty()) {
    delta_tombs_.resize(TombstoneWords(delta_store_.size()), 0);
  }
  return true;
}

bool ShardReplica::Remove(std::uint64_t id) {
  if (id >= base_ && id - base_ < store_.size()) {
    const std::size_t j = id - base_;
    if (tombs_.empty()) tombs_.assign(TombstoneWords(store_.size()), 0);
    if (TestTombstone(tombs_.data(), j)) return false;
    SetTombstone(tombs_.data(), j);
    ++base_dead_;
    return true;
  }
  const auto it = std::lower_bound(delta_ids_.begin(), delta_ids_.end(), id);
  if (it == delta_ids_.end() || *it != id) return false;
  const std::size_t j = static_cast<std::size_t>(it - delta_ids_.begin());
  if (delta_tombs_.empty()) {
    delta_tombs_.assign(TombstoneWords(delta_store_.size()), 0);
  }
  if (TestTombstone(delta_tombs_.data(), j)) return false;
  SetTombstone(delta_tombs_.data(), j);
  ++delta_dead_;
  return true;
}

void ShardReplica::DeltaScan(std::string_view query, double cap0,
                             std::size_t k, std::vector<NeighborResult>* hits,
                             std::uint64_t* computations,
                             std::uint64_t* abandons) const {
  hits->clear();
  *computations = 0;
  *abandons = 0;
  if (k == 0) return;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < delta_store_.size(); ++j) {
    if (!delta_tombs_.empty() && TestTombstone(delta_tombs_.data(), j)) {
      continue;
    }
    const double local =
        hits->size() < k ? kInf : hits->back().distance;
    const double cap = cap0 < local ? cap0 : local;
    const double d = distance_->DistanceBounded(query, delta_store_.view(j),
                                                cap);
    ++*computations;
    if (d >= cap) {
      ++*abandons;
      continue;
    }
    InsertNeighborTopK(*hits, k,
                       {static_cast<std::size_t>(delta_ids_[j]), d});
  }
}

SweepCompactResult ShardReplica::BeginRow(std::uint32_t qid,
                                          std::string_view query,
                                          const double* row,
                                          double seed_bound) {
  SweepSlot& slot = NewSlot(qid);
  slot.query.assign(query);
  const std::size_t n_s = store_.size();
  const SweepKernels& kern = ActiveSweepKernels();
  distance_->LengthLowerBounds(slot.query.size(), store_.lengths_data(), n_s,
                               slot.lower.data());
  const QuantTableView view = table_view();
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    QuantUpdateLowerDense(kern, view, p, n_s, row[p], slot.lower.data());
  }
  // Tombstoned base slots go to +inf before the seed compaction, so the
  // row path can never admit a deleted prototype either — no protocol
  // change needed: the mask rides the shard's own state.
  if (base_dead_ > 0) {
    ApplyTombstoneMask(tombs_.data(), n_s, slot.lower.data());
  }
  const SweepCompactResult out = kern.compact_seed(
      slot.lower.data(), pivot_rank_.data() + base_, n_s,
      static_cast<std::uint32_t>(base_), seed_bound, slot.idx.data(),
      slot.lower.data());
  slot.live = out.live;
  slot.live_pivots = 0;  // the row sweep's adaptive phase never revisits
                         // pivots
  return out;
}

double ShardReplica::Eval(std::uint32_t qid, std::size_t global_id,
                          double cap) const {
  if (global_id < base_ || global_id - base_ >= store_.size()) {
    throw std::out_of_range("ShardReplica::Eval: id outside this shard");
  }
  const SweepSlot& slot = SlotOf(qid);
  return distance_->DistanceBounded(slot.query, store_.view(global_id - base_),
                                    cap);
}

SweepCompactResult ShardReplica::Step(std::uint32_t qid, std::uint32_t skip,
                                      std::int32_t rank, double d,
                                      double slack, double bound) {
  SweepSlot& slot = SlotOf(qid);
  const SweepKernels& kern = ActiveSweepKernels();
  if (rank >= 0) {
    QuantUpdateLowerPacked(kern, table_view(),
                           static_cast<std::size_t>(rank), store_.size(), d,
                           slot.idx.data(), static_cast<std::uint32_t>(base_),
                           slot.lower.data(), slot.live);
  }
  const SweepCompactResult out = kern.eliminate_and_compact_flagged(
      slot.idx.data(), slot.lower.data(), pivot_rank_.data(), slot.live, skip,
      slack, bound);
  slot.live = out.live;
  slot.live_pivots -= out.pivots_died;
  return out;
}

SweepCompactResult ShardReplica::StepRow(std::uint32_t qid, std::uint32_t skip,
                                         double bound) {
  SweepSlot& slot = SlotOf(qid);
  const SweepKernels& kern = ActiveSweepKernels();
  const SweepCompactResult out = kern.eliminate_and_compact(
      slot.idx.data(), slot.lower.data(), slot.live, skip, bound);
  slot.live = out.live;
  return out;
}

}  // namespace cned
