// Standalone shard-worker executable (`cned_shard_worker`).
//
// The router normally forks workers in-process; this binary is the exec
// form (ServeOptions::worker_binary) for deployments where workers must be
// separate executables — container sidecars, setuid isolation, or running
// a worker under a debugger. The protocol socket arrives as an inherited
// file descriptor.
//
// Usage:
//   cned_shard_worker --fd=N --shard=S --store=PATH --index=PATH
//                     --distance=NAME [--replica=R] [--fault=SPEC]
// The fault spec may also come from the CNED_FAULT environment variable
// (the flag wins when both are set).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/worker.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string fd_text, shard_text, replica_text;
  cned::WorkerConfig config;
  if (const char* env = std::getenv("CNED_FAULT")) config.fault_spec = env;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--fd", &fd_text) ||
        ParseFlag(argv[i], "--shard", &shard_text) ||
        ParseFlag(argv[i], "--replica", &replica_text) ||
        ParseFlag(argv[i], "--store", &config.store_path) ||
        ParseFlag(argv[i], "--index", &config.index_path) ||
        ParseFlag(argv[i], "--distance", &config.distance) ||
        ParseFlag(argv[i], "--fault", &config.fault_spec)) {
      continue;
    }
    std::fprintf(stderr, "cned_shard_worker: unknown argument '%s'\n",
                 argv[i]);
    return 2;
  }
  if (fd_text.empty() || shard_text.empty() || config.store_path.empty() ||
      config.index_path.empty() || config.distance.empty()) {
    std::fprintf(stderr,
                 "usage: cned_shard_worker --fd=N --shard=S --store=PATH "
                 "--index=PATH --distance=NAME [--replica=R] [--fault=SPEC]\n");
    return 2;
  }
  const int fd = std::atoi(fd_text.c_str());
  config.shard_id = static_cast<std::size_t>(std::atoi(shard_text.c_str()));
  if (!replica_text.empty()) {
    config.replica_id =
        static_cast<std::size_t>(std::atoi(replica_text.c_str()));
  }
  return cned::RunShardWorker(fd, config);
}
