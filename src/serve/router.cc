#include "serve/router.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/binary_io.h"
#include "distances/registry.h"
#include "serve/frame.h"
#include "serve/shard_snapshot.h"
#include "serve/wire.h"
#include "serve/worker.h"

namespace cned {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

void ValidateServeOptions(const ServeOptions& o) {
  auto fail = [](const char* field, long long got, const char* want) {
    throw std::invalid_argument(std::string("ServeOptions.") + field + " " +
                                want + " (got " + std::to_string(got) + ")");
  };
  if (o.distance.empty()) {
    throw std::invalid_argument(
        "ServeOptions.distance must name a registered distance");
  }
  if (o.replicas < 1) fail("replicas", o.replicas, "must be >= 1");
  if (o.op_timeout_ms <= 0) fail("op_timeout_ms", o.op_timeout_ms, "must be > 0");
  if (o.query_deadline_ms <= 0) {
    fail("query_deadline_ms", o.query_deadline_ms, "must be > 0");
  }
  if (o.op_retries < 0) fail("op_retries", o.op_retries, "must be >= 0");
  if (o.backoff_base_ms < 0) {
    fail("backoff_base_ms", o.backoff_base_ms, "must be >= 0");
  }
  if (o.health_interval_ms < 0) {
    fail("health_interval_ms", o.health_interval_ms, "must be >= 0");
  }
}

/// Exponential backoff before retry `attempt` (1-based), capped at the
/// time remaining before `deadline_ms` (-1 = unbounded) so a retrying op
/// can never sleep a query past its budget.
void BackoffSleep(int backoff_base_ms, int attempt, std::int64_t deadline_ms) {
  const int shift = attempt - 1 < 20 ? attempt - 1 : 20;
  std::int64_t sleep_ms = static_cast<std::int64_t>(backoff_base_ms) << shift;
  if (deadline_ms >= 0) {
    const std::int64_t left = deadline_ms - NowMs();
    if (left <= 0) return;
    if (sleep_ms > left) sleep_ms = left;
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

/// RecvFrame that discards replies whose sequence number belongs to a
/// timed-out earlier attempt.
RecvStatus RecvMatching(int fd, std::uint32_t seq, int timeout_ms,
                        Frame* frame) {
  for (;;) {
    const RecvStatus st = RecvFrame(fd, frame, timeout_ms);
    if (st == RecvStatus::kOk && frame->seq != seq) continue;
    return st;
  }
}

}  // namespace

ServeRouter::ServeRouter(const std::string& snapshot_dir,
                         const ServeOptions& options)
    : distance_((ValidateServeOptions(options), MakeDistance(options.distance))),
      dir_(snapshot_dir),
      options_(options),
      replicas_per_shard_(static_cast<std::size_t>(options.replicas)) {
  // The manifest is small (pivot ids + strings); the copying reader also
  // gives the router the same always-on checksum verification the workers
  // run on their shard files.
  BinaryReader reader(ManifestPath(dir_));
  const auto counts =
      reader.Header(kRouterManifestMagic, kRouterManifestVersion);
  n_ = counts[0];
  const std::uint64_t shards = counts[1];
  const std::uint64_t np = counts[2];
  const std::uint64_t arena_bytes = counts[3];
  if (shards == 0 || np == 0 || np > n_) {
    throw std::runtime_error("ServeRouter: malformed manifest counts");
  }
  reader.RequireArray(shards, sizeof(std::uint64_t));
  shard_sizes_.resize(shards);
  reader.Align();
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "64-bit shard sizes expected");
  reader.Raw(shard_sizes_.data(), shards * sizeof(std::uint64_t));
  bases_.resize(shards + 1);
  bases_[0] = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    bases_[s + 1] = bases_[s] + shard_sizes_[s];
  }
  if (bases_[shards] != n_) {
    throw std::runtime_error("ServeRouter: shard sizes do not sum to n");
  }
  reader.RequireArray(np, sizeof(std::uint64_t));
  pivots_.resize(np);
  reader.Align();
  reader.Raw(pivots_.data(), np * sizeof(std::uint64_t));
  pivot_rank_.assign(n_, -1);
  for (std::size_t p = 0; p < np; ++p) {
    if (pivots_[p] >= n_ || pivot_rank_[pivots_[p]] >= 0) {
      throw std::runtime_error("ServeRouter: bad manifest pivot ids");
    }
    pivot_rank_[pivots_[p]] = static_cast<std::int32_t>(p);
  }
  reader.RequireArray(np, sizeof(std::uint64_t));
  std::vector<std::uint64_t> lens(np);
  reader.Align();
  reader.Raw(lens.data(), np * sizeof(std::uint64_t));
  std::uint64_t lens_total = 0;
  for (std::uint64_t l : lens) lens_total += l;
  if (lens_total != arena_bytes) {
    throw std::runtime_error("ServeRouter: manifest pivot arena mismatch");
  }
  reader.Align();
  pivot_strings_.resize(np);
  for (std::size_t p = 0; p < np; ++p) {
    pivot_strings_[p].resize(lens[p]);
    reader.Raw(pivot_strings_[p].data(), lens[p]);
  }

  next_insert_id_ = n_;
  shard_dead_.assign(shards, 0);
  delta_live_.assign(shards, 0);
  shard_ops_.resize(shards);

  groups_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    groups_[s].members.resize(replicas_per_shard_);
    for (std::size_t r = 0; r < replicas_per_shard_; ++r) {
      SpawnReplica(s, r, options_.fault_spec);
    }
  }
  if (!PingAllLocked()) {
    bool any = false;
    for (const Group& g : groups_) any = any || g.AnyAlive();
    if (!any) {
      throw std::runtime_error("ServeRouter: no worker came up");
    }
  }
  if (options_.health_interval_ms > 0) {
    health_thread_ = std::thread(&ServeRouter::HealthLoop, this);
  }
}

ServeRouter::~ServeRouter() {
  if (health_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_health_ = true;
    }
    health_cv_.notify_all();
    health_thread_.join();
  }
  for (Group& g : groups_) {
    for (Replica& m : g.members) {
      if (m.fd >= 0) {
        // Best-effort clean shutdown; the SIGKILL below is the guarantee.
        SendFrame(m.fd, FrameType::kShutdown, ++m.seq, nullptr, 0);
        close(m.fd);
        m.fd = -1;
      }
      if (m.pid > 0) {
        kill(m.pid, SIGKILL);
        int status = 0;
        waitpid(m.pid, &status, 0);
      }
    }
  }
}

void ServeRouter::HealthLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_health_) {
    health_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.health_interval_ms));
    if (stop_health_) break;
    // Ping-based failure detection (a silently-dead replica surfaces
    // here), then respawn. Holding the router lock means this never runs
    // mid-query, so a revived replica always rejoins at a query boundary.
    PingAllLocked();
    RespawnDeadLocked();
  }
}

void ServeRouter::SpawnReplica(std::size_t s, std::size_t r,
                               const std::string& fault_spec) {
  Replica& rep = groups_[s].members[r];
  int sv[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    rep.alive = false;
    return;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(sv[0]);
    close(sv[1]);
    rep.alive = false;
    return;
  }
  if (pid == 0) {
    // Child: drop every fd belonging to the router's other replicas so a
    // crashed sibling's socket still reads EOF at the router.
    close(sv[0]);
    for (const Group& g : groups_) {
      for (const Replica& other : g.members) {
        if (other.fd >= 0) close(other.fd);
      }
    }
    WorkerConfig config;
    config.shard_id = s;
    config.replica_id = r;
    config.store_path = ShardStorePath(dir_, s);
    config.index_path = ShardIndexPath(dir_, s);
    config.distance = options_.distance;
    config.fault_spec = fault_spec;
    if (!options_.worker_binary.empty()) {
      // Exec form: hand the socket over as fd 3.
      if (sv[1] != 3) {
        dup2(sv[1], 3);
        close(sv[1]);
      }
      execl(options_.worker_binary.c_str(), options_.worker_binary.c_str(),
            "--fd=3", ("--shard=" + std::to_string(s)).c_str(),
            ("--replica=" + std::to_string(r)).c_str(),
            ("--store=" + config.store_path).c_str(),
            ("--index=" + config.index_path).c_str(),
            ("--distance=" + config.distance).c_str(),
            ("--fault=" + config.fault_spec).c_str(), (char*)nullptr);
      _exit(127);
    }
    _exit(RunShardWorker(sv[1], config));
  }
  close(sv[1]);
  rep.pid = pid;
  rep.fd = sv[0];
  rep.alive = true;
  rep.seq = 0;
}

void ServeRouter::MarkDead(std::size_t s, std::size_t r) {
  Replica& rep = groups_[s].members[r];
  rep.alive = false;
  if (rep.fd >= 0) {
    close(rep.fd);
    rep.fd = -1;
  }
}

void ServeRouter::ReapReplica(std::size_t s, std::size_t r) {
  Replica& rep = groups_[s].members[r];
  if (rep.fd >= 0) {
    close(rep.fd);
    rep.fd = -1;
  }
  if (rep.pid > 0) {
    kill(rep.pid, SIGKILL);
    int status = 0;
    waitpid(rep.pid, &status, 0);
    rep.pid = -1;
  }
  rep.alive = false;
}

bool ServeRouter::EnsurePrimary(std::size_t s, ServeResult* res) {
  Group& g = groups_[s];
  if (g.members[g.primary].alive) return true;
  for (std::size_t r = 0; r < g.members.size(); ++r) {
    if (g.members[r].alive) {
      g.primary = r;
      if (res != nullptr) ++res->failovers;
      return true;
    }
  }
  return false;
}

bool ServeRouter::SendRecv(std::size_t s, std::size_t r, std::uint32_t type,
                           const std::vector<char>& payload,
                           std::vector<char>* reply, int timeout_ms,
                           bool retryable, std::int64_t deadline_ms) {
  Replica& w = groups_[s].members[r];
  const int attempts = retryable ? 1 + options_.op_retries : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (!w.alive) return false;
    // Gate on the remaining deadline before sleeping or sending: an
    // already-expired query must not burn a full send+recv window (with
    // backoff_base_ms=0 the old post-sleep check never fired in time).
    // The break still reaches the MarkDead below — GroupEval's retry loop
    // relies on a false return leaving the replica dead.
    std::int64_t left = timeout_ms;
    if (deadline_ms >= 0) {
      left = deadline_ms - NowMs();
      if (left <= 0) break;
    }
    if (attempt > 0) {
      BackoffSleep(options_.backoff_base_ms, attempt, deadline_ms);
      if (deadline_ms >= 0) {
        left = deadline_ms - NowMs();
        if (left <= 0) break;
      }
    }
    const std::uint32_t seq = ++w.seq;
    if (!SendFrame(w.fd, static_cast<FrameType>(type), seq, payload.data(),
                   payload.size())) {
      MarkDead(s, r);
      return false;
    }
    // Cap the per-attempt recv window at the remaining deadline, so one
    // slow attempt cannot overshoot the whole query budget.
    const int window =
        deadline_ms >= 0 && left < timeout_ms ? static_cast<int>(left)
                                              : timeout_ms;
    Frame frame;
    const RecvStatus st = RecvMatching(w.fd, seq, window, &frame);
    if (st == RecvStatus::kOk) {
      if (frame.type != static_cast<std::uint32_t>(FrameType::kReply)) {
        // kError (a worker-side exception) or an unexpected type: the
        // replica's state is suspect either way.
        MarkDead(s, r);
        return false;
      }
      if (reply != nullptr) *reply = std::move(frame.payload);
      return true;
    }
    if (st == RecvStatus::kClosed || st == RecvStatus::kMalformed) {
      // A corrupt stream is never resynchronised: dead replica.
      MarkDead(s, r);
      return false;
    }
    // kTimeout: retry when the op allows it.
    if (!retryable) {
      MarkDead(s, r);
      return false;
    }
  }
  MarkDead(s, r);
  return false;
}

void ServeRouter::Broadcast(std::uint32_t type,
                            const std::vector<char>& payload, bool retryable,
                            int timeout_ms, std::int64_t deadline_ms,
                            std::vector<ShardView>& views,
                            std::vector<std::vector<char>>& replies,
                            std::vector<std::size_t>& missing,
                            ServeResult* res) {
  const std::size_t shards = views.size();
  const std::size_t R = replicas_per_shard_;
  // Per (shard, member) scatter state, flat-indexed s * R + r.
  std::vector<std::uint32_t> sent_seq(shards * R, 0);
  std::vector<char> pending(shards * R, 0), good(shards * R, 0),
      retry(shards * R, 0);
  std::vector<std::vector<char>> member_reply(shards * R);

  // Scatter to every live member of every active shard first, so all
  // replicas compute their pass concurrently — this is the state-machine
  // replication step: standbys consume the identical op stream.
  for (std::size_t s = 0; s < shards; ++s) {
    if (!views[s].active) continue;
    Group& g = groups_[s];
    for (std::size_t r = 0; r < g.members.size(); ++r) {
      Replica& m = g.members[r];
      if (!m.alive) continue;
      const std::size_t i = s * R + r;
      sent_seq[i] = ++m.seq;
      if (SendFrame(m.fd, static_cast<FrameType>(type), sent_seq[i],
                    payload.data(), payload.size())) {
        pending[i] = 1;
      } else {
        MarkDead(s, r);
      }
    }
  }
  // ...then gather in (shard, member) order.
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t r = 0; r < R; ++r) {
      const std::size_t i = s * R + r;
      if (!pending[i]) continue;
      Frame frame;
      const RecvStatus st =
          RecvMatching(groups_[s].members[r].fd, sent_seq[i], timeout_ms,
                       &frame);
      if (st == RecvStatus::kOk &&
          frame.type == static_cast<std::uint32_t>(FrameType::kReply)) {
        member_reply[i] = std::move(frame.payload);
        good[i] = 1;
      } else if (st == RecvStatus::kTimeout && retryable) {
        retry[i] = 1;
      } else {
        MarkDead(s, r);
      }
    }
  }
  // Individual retries for idempotent ops that timed out; a mutating op
  // that timed out already cost that replica its life in the gather.
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t r = 0; r < R; ++r) {
      const std::size_t i = s * R + r;
      if (!retry[i]) continue;
      if (SendRecv(s, r, type, payload, &member_reply[i], timeout_ms,
                   /*retryable=*/true, deadline_ms)) {
        good[i] = 1;
      }
    }
  }
  // Reconcile each group: the primary's reply drives the merge; standbys
  // must agree byte-for-byte or be evicted as corrupt; a failed primary
  // is replaced by the first standby that answered (whose slab state is
  // bit-identical by construction) — the failover that keeps the query
  // exact and unflagged.
  for (std::size_t s = 0; s < shards; ++s) {
    if (!views[s].active) continue;
    Group& g = groups_[s];
    std::size_t driver = g.members.size();
    if (good[s * R + g.primary]) {
      driver = g.primary;
    } else {
      for (std::size_t r = 0; r < g.members.size(); ++r) {
        if (good[s * R + r]) {
          driver = r;
          break;
        }
      }
      if (driver < g.members.size()) {
        g.primary = driver;
        if (res != nullptr) ++res->failovers;
      }
    }
    if (driver == g.members.size()) {
      // The whole replica group is gone: only now does the shard degrade.
      views[s].active = false;
      missing.push_back(s);
      continue;
    }
    for (std::size_t r = 0; r < g.members.size(); ++r) {
      if (r == driver || !good[s * R + r]) continue;
      if (member_reply[s * R + r] != member_reply[s * R + driver]) {
        MarkDead(s, r);
        if (res != nullptr) ++res->replicas_evicted;
      }
    }
    replies[s] = std::move(member_reply[s * R + driver]);
  }
}

bool ServeRouter::GroupEval(std::size_t s, std::uint32_t type,
                            const std::vector<char>& payload,
                            std::vector<char>* reply, std::int64_t deadline_ms,
                            ServeResult* res) {
  Group& g = groups_[s];
  const FrameType ftype = static_cast<FrameType>(type);
  if (!EnsurePrimary(s, res)) return false;

  auto pick_standby = [&]() -> std::size_t {
    for (std::size_t r = 0; r < g.members.size(); ++r) {
      if (r != g.primary && g.members[r].alive) return r;
    }
    return g.members.size();
  };

  if (options_.hedge_delay_ms < 0 || pick_standby() == g.members.size()) {
    // No hedging possible: plain retried exchange, failing over to the
    // next member while any remains (the op is pure, so a promoted standby
    // answers identically).
    while (EnsurePrimary(s, res)) {
      if (SendRecv(s, g.primary, type, payload, reply,
                   RemainingMs(deadline_ms), /*retryable=*/true,
                   deadline_ms)) {
        return true;
      }
    }
    return false;
  }

  const int attempts = 1 + options_.op_retries;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      BackoffSleep(options_.backoff_base_ms, attempt, deadline_ms);
    }
    if (!EnsurePrimary(s, res)) return false;
    const int window = RemainingMs(deadline_ms);
    if (window == 0) break;
    const std::int64_t attempt_end = NowMs() + window;

    Replica* prim = &g.members[g.primary];
    const std::size_t prim_idx = g.primary;
    const std::uint32_t pseq = ++prim->seq;
    if (!SendFrame(prim->fd, ftype, pseq, payload.data(),
                   payload.size())) {
      MarkDead(s, prim_idx);
      continue;
    }
    bool p_pending = true;

    // Phase 1: give the primary the hedge window to itself.
    {
      const std::int64_t left = attempt_end - NowMs();
      int hedge = options_.hedge_delay_ms;
      if (hedge > left) hedge = static_cast<int>(left > 0 ? left : 0);
      Frame frame;
      const RecvStatus st = RecvMatching(prim->fd, pseq, hedge, &frame);
      if (st == RecvStatus::kOk) {
        if (frame.type == static_cast<std::uint32_t>(FrameType::kReply)) {
          *reply = std::move(frame.payload);
          return true;
        }
        MarkDead(s, prim_idx);
        p_pending = false;
      } else if (st != RecvStatus::kTimeout) {
        MarkDead(s, prim_idx);
        p_pending = false;
      }
    }

    // Phase 2: race the standby against the (slow or dead) primary and
    // take the first valid reply — both hold the same snapshot, so either
    // answer is exact. The loser's late reply is discarded by sequence
    // number on the next exchange.
    const std::size_t stand_idx = pick_standby();
    bool s_pending = false;
    std::uint32_t sseq = 0;
    if (stand_idx < g.members.size()) {
      Replica& stand = g.members[stand_idx];
      sseq = ++stand.seq;
      if (SendFrame(stand.fd, ftype, sseq, payload.data(),
                    payload.size())) {
        s_pending = true;
        if (res != nullptr) ++res->hedged_evals;
      } else {
        MarkDead(s, stand_idx);
      }
    }

    while (p_pending || s_pending) {
      const std::int64_t left = attempt_end - NowMs();
      if (left <= 0) break;
      struct pollfd pfds[2];
      nfds_t nfds = 0;
      int who[2] = {0, 0};  // 0 = primary, 1 = standby
      if (p_pending) {
        pfds[nfds].fd = g.members[prim_idx].fd;
        pfds[nfds].events = POLLIN;
        pfds[nfds].revents = 0;
        who[nfds++] = 0;
      }
      if (s_pending) {
        pfds[nfds].fd = g.members[stand_idx].fd;
        pfds[nfds].events = POLLIN;
        pfds[nfds].revents = 0;
        who[nfds++] = 1;
      }
      const int pr = ::poll(pfds, nfds, static_cast<int>(left));
      if (pr == 0) break;
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (nfds_t i = 0; i < nfds; ++i) {
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const bool is_primary = who[i] == 0;
        const std::size_t idx = is_primary ? prim_idx : stand_idx;
        const std::uint32_t seq = is_primary ? pseq : sseq;
        Frame frame;
        const std::int64_t now_left = attempt_end - NowMs();
        const RecvStatus st = RecvMatching(
            g.members[idx].fd, seq,
            static_cast<int>(now_left > 0 ? now_left : 0), &frame);
        if (st == RecvStatus::kOk) {
          if (frame.type == static_cast<std::uint32_t>(FrameType::kReply)) {
            *reply = std::move(frame.payload);
            return true;
          }
          MarkDead(s, idx);
        } else if (st != RecvStatus::kTimeout) {
          MarkDead(s, idx);
        }
        if (is_primary) {
          p_pending = p_pending && g.members[idx].alive && st == RecvStatus::kTimeout;
        } else {
          s_pending = s_pending && g.members[idx].alive && st == RecvStatus::kTimeout;
        }
      }
    }
    // Attempt window exhausted with no valid reply from either side.
  }
  // All attempts burned: whatever is still nominally pending has missed
  // every window — treat the participants as unresponsive, exactly as the
  // unreplicated tier treats a worker that exhausts its retries.
  MarkDead(s, g.primary);
  const std::size_t stand_idx = pick_standby();
  if (stand_idx < g.members.size()) MarkDead(s, stand_idx);
  return false;
}

std::size_t ServeRouter::ShardOf(std::size_t global) const {
  const auto it =
      std::upper_bound(bases_.begin() + 1, bases_.end(), global);
  return static_cast<std::size_t>(it - (bases_.begin() + 1));
}

int ServeRouter::RemainingMs(std::int64_t deadline_ms) const {
  const std::int64_t left = deadline_ms - NowMs();
  if (left <= 0) return 0;
  const int cap = options_.op_timeout_ms;
  return left < cap ? static_cast<int>(left) : cap;
}

pid_t ServeRouter::worker_pid(std::size_t s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_[s].members[groups_[s].primary].pid;
}

bool ServeRouter::worker_alive(std::size_t s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_[s].AnyAlive();
}

std::size_t ServeRouter::primary_of(std::size_t s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_[s].primary;
}

pid_t ServeRouter::replica_pid(std::size_t s, std::size_t r) const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_[s].members[r].pid;
}

bool ServeRouter::replica_alive(std::size_t s, std::size_t r) const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_[s].members[r].alive;
}

ServeResult ServeRouter::Nearest(std::string_view query) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.auto_respawn) RespawnDeadLocked();
  return QueryLazy(query, 1, /*slack=*/1.0);
}

ServeResult ServeRouter::KNearest(std::string_view query, std::size_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.auto_respawn) RespawnDeadLocked();
  return QueryLazy(query, k, /*slack=*/1.0);
}

std::vector<ServeResult> ServeRouter::NearestBatch(
    const std::vector<std::string>& queries) {
  return KNearestBatch(queries, 1);
}

std::vector<ServeResult> ServeRouter::KNearestBatch(
    const std::vector<std::string>& queries, std::size_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServeResult> out;
  out.reserve(queries.size());
  for (const std::string& q : queries) {
    // Respawn between queries: one lost group costs one partial answer,
    // and revived replicas (re-mapped, checksum-verified) rejoin their
    // groups at the next begin.
    if (options_.auto_respawn) RespawnDeadLocked();
    out.push_back(QueryRow(q, k));
  }
  return out;
}

bool ServeRouter::PingAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return PingAllLocked();
}

bool ServeRouter::PingAllLocked() {
  bool all = true;
  for (std::size_t s = 0; s < groups_.size(); ++s) {
    for (std::size_t r = 0; r < groups_[s].members.size(); ++r) {
      if (!groups_[s].members[r].alive) {
        all = false;
        continue;
      }
      std::vector<char> reply;
      if (!SendRecv(s, r, static_cast<std::uint32_t>(FrameType::kPing), {},
                    &reply, options_.op_timeout_ms, /*retryable=*/true,
                    /*deadline_ms=*/-1)) {
        all = false;
        continue;
      }
      PayloadReader pr(reply);
      // The ping reply echoes the worker's identity: a replica serving
      // the wrong shard (or the wrong group slot) is as dead as one
      // serving nothing.
      if (pr.U64() != s || pr.U64() != r || !pr.Done()) {
        MarkDead(s, r);
        all = false;
      }
    }
  }
  return all;
}

std::size_t ServeRouter::RespawnDead() {
  std::lock_guard<std::mutex> lock(mu_);
  return RespawnDeadLocked();
}

std::size_t ServeRouter::RespawnDeadLocked() {
  std::size_t revived = 0;
  for (std::size_t s = 0; s < groups_.size(); ++s) {
    for (std::size_t r = 0; r < groups_[s].members.size(); ++r) {
      if (groups_[s].members[r].alive) continue;
      ReapReplica(s, r);
      SpawnReplica(s, r, options_.respawn_fault_spec);
      if (!groups_[s].members[r].alive) continue;
      std::vector<char> reply;
      if (SendRecv(s, r, static_cast<std::uint32_t>(FrameType::kPing), {},
                   &reply, options_.op_timeout_ms, /*retryable=*/true,
                   /*deadline_ms=*/-1)) {
        // A fresh fork maps only the immutable snapshot; replay the
        // shard's mutation journal so it rejoins at the group's current
        // delta/tombstone state (ops are idempotent by id, so a partial
        // previous life is harmless).
        if (ReplayMutations(s, r)) ++revived;
      }
    }
    // A fully-restored group keeps its current primary; a group whose
    // primary slot is still dead points at the first live member so the
    // next query starts on a live primary without a mid-query promotion.
    EnsurePrimary(s, nullptr);
  }
  return revived;
}

std::uint64_t ServeRouter::Insert(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.auto_respawn) RespawnDeadLocked();
  const std::uint64_t id = next_insert_id_++;
  const std::size_t owner =
      static_cast<std::size_t>((id - n_) % shard_sizes_.size());
  ++delta_live_[owner];
  MutationOp op;
  op.insert = true;
  op.id = id;
  op.s.assign(s);
  // Journal before replicating: even if the whole group is down right now,
  // the next respawn replays the journal, so the id is durably assigned
  // from the router's point of view either way.
  shard_ops_[owner].push_back(std::move(op));
  ReplicateMutation(owner, shard_ops_[owner].back());
  return id;
}

bool ServeRouter::Remove(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.auto_respawn) RespawnDeadLocked();
  std::size_t owner = 0;
  if (id < n_) {
    if (base_tombs_.empty()) base_tombs_.assign(TombstoneWords(n_), 0);
    if (TestTombstone(base_tombs_.data(), id)) return false;
    SetTombstone(base_tombs_.data(), id);
    owner = ShardOf(id);
    ++shard_dead_[owner];
    ++base_dead_total_;
  } else if (id < next_insert_id_) {
    const auto it =
        std::lower_bound(dead_delta_ids_.begin(), dead_delta_ids_.end(), id);
    if (it != dead_delta_ids_.end() && *it == id) return false;
    dead_delta_ids_.insert(it, id);
    owner = static_cast<std::size_t>((id - n_) % shard_sizes_.size());
    --delta_live_[owner];
  } else {
    return false;
  }
  MutationOp op;
  op.id = id;
  shard_ops_[owner].push_back(std::move(op));
  ReplicateMutation(owner, shard_ops_[owner].back());
  return true;
}

std::size_t ServeRouter::live_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t delta = 0;
  for (const std::size_t v : delta_live_) delta += v;
  return n_ - base_dead_total_ + delta;
}

std::uint64_t ServeRouter::next_insert_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_insert_id_;
}

void ServeRouter::ReplicateMutation(std::size_t owner, const MutationOp& op) {
  const std::size_t shards = shard_sizes_.size();
  std::vector<ShardView> views(shards);
  views[owner].active = groups_[owner].AnyAlive();
  if (!views[owner].active) return;  // journal replay repairs at respawn
  PayloadWriter w;
  w.U64(op.id);
  if (op.insert) w.Str(op.s);
  std::vector<std::vector<char>> replies(shards);
  std::vector<std::size_t> missing;
  // The usual replication step: every live member applies the op, replies
  // are byte-checked (dedup-stable, so retries after lost replies still
  // agree), and a member that fails is dead — to be replayed at respawn.
  Broadcast(static_cast<std::uint32_t>(op.insert ? FrameType::kInsert
                                                 : FrameType::kRemove),
            w.buf, /*retryable=*/true, options_.op_timeout_ms,
            /*deadline_ms=*/-1, views, replies, missing, nullptr);
}

bool ServeRouter::ReplayMutations(std::size_t s, std::size_t r) {
  for (const MutationOp& op : shard_ops_[s]) {
    PayloadWriter w;
    w.U64(op.id);
    if (op.insert) w.Str(op.s);
    std::vector<char> reply;
    if (!SendRecv(s, r,
                  static_cast<std::uint32_t>(op.insert ? FrameType::kInsert
                                                       : FrameType::kRemove),
                  w.buf, &reply, options_.op_timeout_ms, /*retryable=*/true,
                  /*deadline_ms=*/-1)) {
      return false;  // SendRecv already marked the replica dead
    }
  }
  return true;
}

// The distributed form of the mutable tier's delta phase: every shard
// holding live delta entries runs one bounded scan (hedged like Eval —
// the scan is a pure function of the shard's delta), capped by the base
// sweep's incumbents. The gathered hits are sorted globally by
// NeighborLess and strict-merged, which reproduces the (distance, id)
// tie-break exactly: all base ids < all delta ids, and within the delta
// the sort puts the lower id first at equal distance.
void ServeRouter::DeltaPhase(std::string_view query, std::size_t k,
                             std::int64_t deadline,
                             std::vector<ShardView>& views,
                             std::vector<NeighborResult>& best,
                             std::uint64_t* computations,
                             std::uint64_t* abandons, ServeResult* res) {
  const std::size_t shards = shard_sizes_.size();
  const double cap0 = best.size() < k ? kInf : best.back().distance;
  std::vector<NeighborResult> hits;
  for (std::size_t s = 0; s < shards; ++s) {
    if (delta_live_[s] == 0) continue;
    // A shard already lost to the base sweep is in missing_shards; its
    // delta is unreachable through the same dead group.
    if (!views[s].active) continue;
    if (RemainingMs(deadline) == 0) {
      res->missing_shards.push_back(s);
      continue;
    }
    PayloadWriter w;
    w.Str(query);
    w.F64(cap0);
    w.U64(k);
    std::vector<char> reply;
    bool ok = GroupEval(s, static_cast<std::uint32_t>(FrameType::kDeltaScan),
                        w.buf, &reply, deadline, res);
    if (ok) {
      PayloadReader r(reply);
      const std::size_t mark = hits.size();
      const std::uint64_t count = r.U64();
      ok = r.ok() && count <= k;  // a worker returns at most k hits
      for (std::uint64_t i = 0; ok && i < count; ++i) {
        const std::uint64_t id = r.U64();
        const double d = r.F64();
        ok = r.ok();
        if (ok) hits.push_back({static_cast<std::size_t>(id), d});
      }
      const std::uint64_t comps = r.U64();
      const std::uint64_t ab = r.U64();
      ok = ok && r.Done();
      if (ok) {
        *computations += comps;
        *abandons += ab;
      } else {
        // Partially decoded garbage: drop what it contributed.
        hits.resize(mark);
        MarkDead(s, groups_[s].primary);
      }
    }
    if (!ok) {
      views[s].active = false;
      res->missing_shards.push_back(s);
    }
  }
  std::sort(hits.begin(), hits.end(), NeighborLess);
  for (const NeighborResult& h : hits) InsertNeighborTopK(best, k, h);
}

// The distributed `ShardedLaesa::Sweep`: identical decisions on identical
// values in identical order — only the per-shard kernel passes run in the
// workers (on every live member of each replica group). Read side by side
// with sharded_laesa.cc.
ServeResult ServeRouter::QueryLazy(std::string_view query, std::size_t k,
                                   double slack) {
  ServeResult res;
  std::size_t delta_total = 0;
  for (const std::size_t v : delta_live_) delta_total += v;
  k = std::min(k, n_ - base_dead_total_ + delta_total);
  if (k == 0) return res;
  const std::int64_t deadline = NowMs() + options_.query_deadline_ms;
  const std::size_t shards = shard_sizes_.size();
  // Any base tombstone anywhere switches the begin to its masked form:
  // every worker compacts the deleted slots out before anything is
  // visited and reports its surviving minima, so the router can pick a
  // live start (a dead global pivot 0 must not be visited). Without
  // tombstones the legacy begin runs — the healthy immutable path stays
  // bit-identical, stats included.
  const bool masked = base_dead_total_ > 0;

  std::vector<ShardView> views(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    views[s].active = groups_[s].AnyAlive();
    if (!views[s].active) res.missing_shards.push_back(s);
  }

  // Scatter the sweep start to every live replica. Idempotent: a member
  // that misses the timeout is retried before being declared dead.
  {
    PayloadWriter w;
    w.Str(query);
    w.U32(masked ? 1u : 0u);
    std::vector<std::vector<char>> replies(shards);
    Broadcast(static_cast<std::uint32_t>(FrameType::kBeginLazy), w.buf,
              /*retryable=*/true, RemainingMs(deadline), deadline, views,
              replies, res.missing_shards, &res);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      bool ok;
      if (masked) {
        const WireCompact wc = DecodeCompact(r);
        views[s].last = wc.pass;
        views[s].live = wc.pass.live;
        views[s].live_pivots = wc.live_pivots;
        // The mask pass drops exactly the tombstoned slots (every live
        // slot's length bound is finite), so the survivor count is an
        // integrity check just like the legacy full count.
        ok = r.Done() && views[s].live == shard_sizes_[s] - shard_dead_[s];
      } else {
        views[s].live = r.U64();
        views[s].live_pivots = r.U64();
        ok = r.Done() && views[s].live == shard_sizes_[s];
      }
      if (!ok) {
        // The driving reply decoded to garbage (CRC-valid but wrong):
        // with the primary's stream suspect there is no quorum to promote
        // on, so the shard sits this query out. EnsurePrimary (without
        // counting a failover — nothing was saved) leaves the group
        // pointing at a live member for the next query.
        MarkDead(s, groups_[s].primary);
        EnsurePrimary(s, nullptr);
        views[s].active = false;
        res.missing_shards.push_back(s);
      }
    }
  }

  std::size_t total_live = 0, live_pivots = 0;
  auto recount = [&]() {
    total_live = 0;
    live_pivots = 0;
    for (const ShardView& v : views) {
      if (!v.active) continue;
      total_live += v.live;
      live_pivots += v.live_pivots;
    }
  };
  recount();

  // Merge per-shard minima in shard order with strict '<' — the lowest
  // global index wins ties, exactly as in process.
  auto select_next = [&]() -> std::size_t {
    std::size_t next = kSweepNone, next_pivot = kSweepNone;
    double next_key = kInf, next_pivot_key = kInf;
    for (const ShardView& v : views) {
      if (!v.active) continue;
      if (v.last.next != kSweepNone && v.last.next_key < next_key) {
        next_key = v.last.next_key;
        next = v.last.next;
      }
      if (v.last.next_pivot != kSweepNone &&
          v.last.next_pivot_key < next_pivot_key) {
        next_pivot_key = v.last.next_pivot_key;
        next_pivot = v.last.next_pivot;
      }
    }
    return live_pivots > 0 ? next_pivot : next;
  };

  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? kInf : best.back().distance; };
  std::uint64_t computations = 0, abandons = 0, pivot_computations = 0;

  // Legacy start: the first pivot, as in process. Masked start: the best
  // survivor of the begin passes — tombstoned slots are already gone.
  std::size_t s_cand = masked ? select_next() : pivots_[0];
  while (total_live > 0 && s_cand != kSweepNone) {
    if (RemainingMs(deadline) == 0) {
      // Deadline: degrade to the incumbents; every shard still holding
      // live candidates is missing from the answer.
      for (std::size_t s = 0; s < shards; ++s) {
        if (views[s].active && views[s].live > 0) {
          res.missing_shards.push_back(s);
        }
      }
      break;
    }
    const std::int32_t rank = pivot_rank_[s_cand];
    const bool is_pivot = rank >= 0;
    const double cap = is_pivot ? kInf : kth();
    double d;
    if (is_pivot) {
      // Pivot strings live in the manifest: the visit evaluation runs
      // router-side, like the pivot stage.
      d = distance_->DistanceBounded(query, pivot_strings_[rank], cap);
    } else {
      const std::size_t owner = ShardOf(s_cand);
      PayloadWriter w;
      w.U64(s_cand);
      w.F64(cap);
      std::vector<char> reply;
      bool ok = views[owner].active &&
                GroupEval(owner, static_cast<std::uint32_t>(FrameType::kEval),
                          w.buf, &reply, deadline, &res);
      if (ok) {
        PayloadReader r(reply);
        d = r.F64();
        ok = r.Done();
        if (!ok) MarkDead(owner, groups_[owner].primary);
      }
      if (!ok) {
        // The candidate's whole group is gone: drop the shard from the
        // sweep and pick the best survivor from the remaining shards'
        // last passes. No visit happened, so no counters move.
        views[owner].active = false;
        res.missing_shards.push_back(owner);
        recount();
        s_cand = select_next();
        continue;
      }
    }
    ++computations;
    pivot_computations += is_pivot ? 1 : 0;
    const bool abandoned = d >= cap;
    if (abandoned) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s_cand, d});
    }

    // Scatter the visit pass to every live replica; the elimination
    // radius tightens with the new incumbent. Mutating — never retried: a
    // member that misses the timeout here is dead on the spot, and only a
    // whole lost group degrades the shard.
    const double bound = kth();
    PayloadWriter w;
    w.U32(static_cast<std::uint32_t>(s_cand));
    w.I32(rank);
    w.F64(d);
    w.F64(slack);
    w.F64(bound);
    std::vector<std::vector<char>> replies(shards);
    Broadcast(static_cast<std::uint32_t>(FrameType::kStep), w.buf,
              /*retryable=*/false, RemainingMs(deadline), deadline, views,
              replies, res.missing_shards, &res);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) {
        MarkDead(s, groups_[s].primary);
        views[s].active = false;
        res.missing_shards.push_back(s);
        continue;
      }
      views[s].last = wc.pass;
      views[s].live = wc.pass.live;
      views[s].live_pivots = wc.live_pivots;
    }
    recount();
    if (total_live == 0) break;
    s_cand = select_next();
  }

  // The delta phase: everything inserted since the snapshot lives in the
  // workers' in-memory deltas, scanned bounded by the base incumbents.
  DeltaPhase(query, k, deadline, views, best, &computations, &abandons, &res);

  res.stats.distance_computations += computations;
  res.stats.bounded_abandons += abandons;
  res.stats.pivot_computations += pivot_computations;
  std::sort(res.missing_shards.begin(), res.missing_shards.end());
  res.missing_shards.erase(
      std::unique(res.missing_shards.begin(), res.missing_shards.end()),
      res.missing_shards.end());
  res.partial = !res.missing_shards.empty();
  res.stats.shards_degraded = res.missing_shards.size();
  res.neighbors = std::move(best);
  return res;
}

// The distributed `ShardedLaesa::SweepWithRow`: the router evaluates the
// pivot row locally, seeds the incumbents (ties admitted, as the row is
// already paid for), scatters row + seed bound, then runs the same
// adaptive loop over the merged survivors.
ServeResult ServeRouter::QueryRow(std::string_view query, std::size_t k) {
  ServeResult res;
  std::size_t delta_total = 0;
  for (const std::size_t v : delta_live_) delta_total += v;
  k = std::min(k, n_ - base_dead_total_ + delta_total);
  if (k == 0) return res;
  const std::int64_t deadline = NowMs() + options_.query_deadline_ms;
  const std::size_t shards = shard_sizes_.size();
  const std::size_t np = pivots_.size();

  std::vector<ShardView> views(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    views[s].active = groups_[s].AnyAlive();
    if (!views[s].active) res.missing_shards.push_back(s);
  }

  // Pivot stage, router-side (counted as the batch engine counts it).
  std::vector<double> row(np);
  for (std::size_t p = 0; p < np; ++p) {
    row[p] = distance_->Distance(query, pivot_strings_[p]);
  }
  res.stats.distance_computations += np;
  res.stats.pivot_computations += np;

  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? kInf : best.back().distance; };
  for (std::size_t p = 0; p < np; ++p) {
    // A tombstoned pivot's evaluation still tightens every worker's bounds
    // (its row is broadcast below, an admissible use), but it must never
    // become an incumbent — it is no longer a member of the live set.
    if (!base_tombs_.empty() && TestTombstone(base_tombs_.data(), pivots_[p])) {
      continue;
    }
    InsertNeighborTopK(best, k, {pivots_[p], row[p]}, /*admit_ties=*/true);
  }
  const double seed_bound = kth();

  {
    PayloadWriter w;
    w.Str(query);
    w.F64(seed_bound);
    w.U64(np);
    w.Raw(row.data(), np * sizeof(double));
    std::vector<std::vector<char>> replies(shards);
    Broadcast(static_cast<std::uint32_t>(FrameType::kBeginRow), w.buf,
              /*retryable=*/true, RemainingMs(deadline), deadline, views,
              replies, res.missing_shards, &res);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) {
        MarkDead(s, groups_[s].primary);
        views[s].active = false;
        res.missing_shards.push_back(s);
        continue;
      }
      views[s].last = wc.pass;
      views[s].live = wc.pass.live;
      views[s].live_pivots = 0;
    }
  }

  std::size_t total_live = 0;
  auto recount = [&]() {
    total_live = 0;
    for (const ShardView& v : views) {
      if (v.active) total_live += v.live;
    }
  };
  auto select_next = [&]() -> std::size_t {
    std::size_t next = kSweepNone;
    double next_key = kInf;
    for (const ShardView& v : views) {
      if (!v.active) continue;
      if (v.last.next != kSweepNone && v.last.next_key < next_key) {
        next_key = v.last.next_key;
        next = v.last.next;
      }
    }
    return next;
  };
  recount();
  std::size_t s_cand = select_next();

  std::uint64_t computations = 0, abandons = 0;
  while (total_live > 0 && s_cand != kSweepNone) {
    if (RemainingMs(deadline) == 0) {
      for (std::size_t s = 0; s < shards; ++s) {
        if (views[s].active && views[s].live > 0) {
          res.missing_shards.push_back(s);
        }
      }
      break;
    }
    const double cap = kth();
    const std::size_t owner = ShardOf(s_cand);
    PayloadWriter ew;
    ew.U64(s_cand);
    ew.F64(cap);
    std::vector<char> reply;
    bool ok = views[owner].active &&
              GroupEval(owner, static_cast<std::uint32_t>(FrameType::kEval),
                        ew.buf, &reply, deadline, &res);
    double d = 0.0;
    if (ok) {
      PayloadReader r(reply);
      d = r.F64();
      ok = r.Done();
      if (!ok) MarkDead(owner, groups_[owner].primary);
    }
    if (!ok) {
      views[owner].active = false;
      res.missing_shards.push_back(owner);
      recount();
      s_cand = select_next();
      continue;
    }
    ++computations;
    const bool abandoned = d >= cap;
    if (abandoned) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s_cand, d});
    }

    const double bound = kth();
    PayloadWriter w;
    w.U32(static_cast<std::uint32_t>(s_cand));
    w.F64(bound);
    std::vector<std::vector<char>> replies(shards);
    Broadcast(static_cast<std::uint32_t>(FrameType::kStepRow), w.buf,
              /*retryable=*/false, RemainingMs(deadline), deadline, views,
              replies, res.missing_shards, &res);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) {
        MarkDead(s, groups_[s].primary);
        views[s].active = false;
        res.missing_shards.push_back(s);
        continue;
      }
      views[s].last = wc.pass;
      views[s].live = wc.pass.live;
    }
    recount();
    if (total_live == 0) break;
    s_cand = select_next();
  }

  DeltaPhase(query, k, deadline, views, best, &computations, &abandons, &res);

  res.stats.distance_computations += computations;
  res.stats.bounded_abandons += abandons;
  std::sort(res.missing_shards.begin(), res.missing_shards.end());
  res.missing_shards.erase(
      std::unique(res.missing_shards.begin(), res.missing_shards.end()),
      res.missing_shards.end());
  res.partial = !res.missing_shards.empty();
  res.stats.shards_degraded = res.missing_shards.size();
  res.neighbors = std::move(best);
  return res;
}

}  // namespace cned
