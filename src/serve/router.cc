#include "serve/router.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <list>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/binary_io.h"
#include "distances/registry.h"
#include "serve/frame.h"
#include "serve/shard_snapshot.h"
#include "serve/wire.h"
#include "serve/worker.h"

namespace cned {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

void ValidateServeOptions(const ServeOptions& o) {
  auto fail = [](const char* field, long long got, const char* want) {
    throw std::invalid_argument(std::string("ServeOptions.") + field + " " +
                                want + " (got " + std::to_string(got) + ")");
  };
  if (o.distance.empty()) {
    throw std::invalid_argument(
        "ServeOptions.distance must name a registered distance");
  }
  if (o.replicas < 1) fail("replicas", o.replicas, "must be >= 1");
  if (o.op_timeout_ms <= 0) fail("op_timeout_ms", o.op_timeout_ms, "must be > 0");
  if (o.query_deadline_ms <= 0) {
    fail("query_deadline_ms", o.query_deadline_ms, "must be > 0");
  }
  if (o.op_retries < 0) fail("op_retries", o.op_retries, "must be >= 0");
  if (o.backoff_base_ms < 0) {
    fail("backoff_base_ms", o.backoff_base_ms, "must be >= 0");
  }
  if (o.health_interval_ms < 0) {
    fail("health_interval_ms", o.health_interval_ms, "must be >= 0");
  }
  if (o.max_respawns_per_tick < 0) {
    fail("max_respawns_per_tick", o.max_respawns_per_tick, "must be >= 0");
  }
}

/// Exponential backoff before retry `attempt` (1-based), capped at the
/// time remaining before `deadline_ms` (-1 = unbounded) so a retrying op
/// can never sleep a query past its budget.
void BackoffSleep(int backoff_base_ms, int attempt, std::int64_t deadline_ms) {
  const int shift = attempt - 1 < 20 ? attempt - 1 : 20;
  std::int64_t sleep_ms = static_cast<std::int64_t>(backoff_base_ms) << shift;
  if (deadline_ms >= 0) {
    const std::int64_t left = deadline_ms - NowMs();
    if (left <= 0) return;
    if (sleep_ms > left) sleep_ms = left;
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

constexpr std::uint32_t kReplyType =
    static_cast<std::uint32_t>(FrameType::kReply);

}  // namespace

ServeRouter::ServeRouter(const std::string& snapshot_dir,
                         const ServeOptions& options)
    : distance_((ValidateServeOptions(options), MakeDistance(options.distance))),
      dir_(snapshot_dir),
      options_(options),
      replicas_per_shard_(static_cast<std::size_t>(options.replicas)) {
  // The manifest is small (pivot ids + strings); the copying reader also
  // gives the router the same always-on checksum verification the workers
  // run on their shard files.
  BinaryReader reader(ManifestPath(dir_));
  const auto counts =
      reader.Header(kRouterManifestMagic, kRouterManifestVersion);
  n_ = counts[0];
  const std::uint64_t shards = counts[1];
  const std::uint64_t np = counts[2];
  const std::uint64_t arena_bytes = counts[3];
  if (shards == 0 || np == 0 || np > n_) {
    throw std::runtime_error("ServeRouter: malformed manifest counts");
  }
  reader.RequireArray(shards, sizeof(std::uint64_t));
  shard_sizes_.resize(shards);
  reader.Align();
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "64-bit shard sizes expected");
  reader.Raw(shard_sizes_.data(), shards * sizeof(std::uint64_t));
  bases_.resize(shards + 1);
  bases_[0] = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    bases_[s + 1] = bases_[s] + shard_sizes_[s];
  }
  if (bases_[shards] != n_) {
    throw std::runtime_error("ServeRouter: shard sizes do not sum to n");
  }
  reader.RequireArray(np, sizeof(std::uint64_t));
  pivots_.resize(np);
  reader.Align();
  reader.Raw(pivots_.data(), np * sizeof(std::uint64_t));
  pivot_rank_.assign(n_, -1);
  for (std::size_t p = 0; p < np; ++p) {
    if (pivots_[p] >= n_ || pivot_rank_[pivots_[p]] >= 0) {
      throw std::runtime_error("ServeRouter: bad manifest pivot ids");
    }
    pivot_rank_[pivots_[p]] = static_cast<std::int32_t>(p);
  }
  reader.RequireArray(np, sizeof(std::uint64_t));
  std::vector<std::uint64_t> lens(np);
  reader.Align();
  reader.Raw(lens.data(), np * sizeof(std::uint64_t));
  std::uint64_t lens_total = 0;
  for (std::uint64_t l : lens) lens_total += l;
  if (lens_total != arena_bytes) {
    throw std::runtime_error("ServeRouter: manifest pivot arena mismatch");
  }
  reader.Align();
  pivot_strings_.resize(np);
  for (std::size_t p = 0; p < np; ++p) {
    pivot_strings_[p].resize(lens[p]);
    reader.Raw(pivot_strings_[p].data(), lens[p]);
  }

  next_insert_id_ = n_;
  shard_dead_.assign(shards, 0);
  delta_live_.assign(shards, 0);
  shard_ops_.resize(shards);

  groups_.resize(shards);
  {
    std::lock_guard<std::mutex> rlock(respawn_mu_);
    for (std::size_t s = 0; s < shards; ++s) {
      groups_[s] = std::make_unique<Group>();
      groups_[s]->members.resize(replicas_per_shard_);
      for (std::size_t r = 0; r < replicas_per_shard_; ++r) {
        SpawnReplica(s, r, options_.fault_spec);
      }
    }
    if (!PingAllLocked()) {
      bool any = false;
      for (const auto& gp : groups_) {
        for (const Replica& m : gp->members) any = any || m.alive;
      }
      if (!any) {
        throw std::runtime_error("ServeRouter: no worker came up");
      }
    }
  }
  if (options_.health_interval_ms > 0) {
    health_thread_ = std::thread(&ServeRouter::HealthLoop, this);
  }
}

ServeRouter::~ServeRouter() {
  if (health_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      stop_health_ = true;
    }
    health_cv_.notify_all();
    health_thread_.join();
  }
  for (auto& gp : groups_) {
    for (Replica& m : gp->members) {
      if (m.conn != nullptr && !m.conn->failed()) {
        // Best-effort clean shutdown; the SIGKILL below is the guarantee.
        m.conn->Send(FrameType::kShutdown, m.conn->NextSeq(), 0, nullptr, 0);
      }
      m.conn.reset();
      if (m.pid > 0) {
        kill(m.pid, SIGKILL);
        int status = 0;
        waitpid(m.pid, &status, 0);
      }
    }
  }
}

// Drift-free ticking: each deadline is the previous deadline plus the
// interval, not "now + interval" after the work finished, so slow ticks
// do not stretch the period; ticks missed entirely are skipped (never
// bunched). The loop takes only respawn_mu_ — pings multiplex over the
// shared connections at query id 0 while queries are mid-sweep, and a
// replica revived here joins at a later query's begin.
void ServeRouter::HealthLoop() {
  const auto interval = std::chrono::milliseconds(options_.health_interval_ms);
  const std::size_t cap =
      options_.max_respawns_per_tick > 0
          ? static_cast<std::size_t>(options_.max_respawns_per_tick)
          : 0;
  auto next = Clock::now() + interval;
  std::unique_lock<std::mutex> lock(health_mu_);
  for (;;) {
    if (health_cv_.wait_until(lock, next, [this] { return stop_health_; })) {
      return;
    }
    lock.unlock();
    {
      std::lock_guard<std::mutex> rlock(respawn_mu_);
      PingAllLocked();
      RespawnDeadLocked(cap);
    }
    lock.lock();
    next += interval;
    const auto now = Clock::now();
    if (next <= now) {
      const auto behind = now - next;
      next += interval * (behind / interval + 1);
    }
  }
}

void ServeRouter::SpawnReplica(std::size_t s, std::size_t r,
                               const std::string& fault_spec) {
  // Gather every router-side fd before forking so the child can drop
  // them: a crashed sibling's socket must still read EOF at the router.
  // Connections cannot be retired concurrently — that happens only under
  // respawn_mu_, which the caller holds — so the fds stay valid across
  // the fork (a query marking one failed uses shutdown(2), not close(2)).
  std::vector<int> router_fds;
  for (const auto& gp : groups_) {
    if (gp == nullptr) continue;
    std::lock_guard<std::mutex> lock(gp->mu);
    for (const Replica& other : gp->members) {
      if (other.conn != nullptr) router_fds.push_back(other.conn->fd());
    }
  }
  Group& g = *groups_[s];
  int sv[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    std::lock_guard<std::mutex> lock(g.mu);
    g.members[r].alive = false;
    return;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(sv[0]);
    close(sv[1]);
    std::lock_guard<std::mutex> lock(g.mu);
    g.members[r].alive = false;
    return;
  }
  if (pid == 0) {
    close(sv[0]);
    for (const int fd : router_fds) close(fd);
    WorkerConfig config;
    config.shard_id = s;
    config.replica_id = r;
    config.store_path = ShardStorePath(dir_, s);
    config.index_path = ShardIndexPath(dir_, s);
    config.distance = options_.distance;
    config.fault_spec = fault_spec;
    if (!options_.worker_binary.empty()) {
      // Exec form: hand the socket over as fd 3.
      if (sv[1] != 3) {
        dup2(sv[1], 3);
        close(sv[1]);
      }
      execl(options_.worker_binary.c_str(), options_.worker_binary.c_str(),
            "--fd=3", ("--shard=" + std::to_string(s)).c_str(),
            ("--replica=" + std::to_string(r)).c_str(),
            ("--store=" + config.store_path).c_str(),
            ("--index=" + config.index_path).c_str(),
            ("--distance=" + config.distance).c_str(),
            ("--fault=" + config.fault_spec).c_str(), (char*)nullptr);
      _exit(127);
    }
    _exit(RunShardWorker(sv[1], config));
  }
  close(sv[1]);
  std::lock_guard<std::mutex> lock(g.mu);
  Replica& rep = g.members[r];
  rep.pid = pid;
  rep.conn = std::make_shared<Conn>(sv[0]);
  rep.alive = true;
}

void ServeRouter::ReapReplica(std::size_t s, std::size_t r) {
  std::shared_ptr<Conn> conn;
  pid_t pid = -1;
  {
    Group& g = *groups_[s];
    std::lock_guard<std::mutex> lock(g.mu);
    Replica& rep = g.members[r];
    conn = std::move(rep.conn);
    rep.conn.reset();
    pid = rep.pid;
    rep.pid = -1;
    rep.alive = false;
  }
  // Fail before dropping our reference: queries still pinned to this
  // connection wake with kClosed instead of waiting out their timeouts.
  if (conn != nullptr) conn->Fail();
  conn.reset();
  if (pid > 0) {
    kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
  }
}

void ServeRouter::MarkDeadGlobal(std::size_t s, std::size_t r) {
  std::shared_ptr<Conn> conn;
  {
    Group& g = *groups_[s];
    std::lock_guard<std::mutex> lock(g.mu);
    g.members[r].alive = false;
    conn = g.members[r].conn;
  }
  if (conn != nullptr) conn->Fail();
}

void ServeRouter::MarkDead(QueryCtx& ctx, std::size_t s, std::size_t r) {
  Participant& m = ctx.groups[s].members[r];
  m.alive = false;
  if (m.conn != nullptr) m.conn->Fail();
  // Propagate to the global member only while it still holds the same
  // connection: a respawn may already have replaced it, and the fresh
  // process must not be condemned for its predecessor's death.
  Group& g = *groups_[s];
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.members[r].conn == m.conn) g.members[r].alive = false;
}

void ServeRouter::SnapshotCtx(QueryCtx* ctx) const {
  std::uint32_t qid = ++qid_counter_;
  if (qid == 0) qid = ++qid_counter_;  // 0 is the control plane
  ctx->qid = qid;
  ctx->groups.resize(groups_.size());
  for (std::size_t s = 0; s < groups_.size(); ++s) {
    Group& g = *groups_[s];
    GroupCtx& gc = ctx->groups[s];
    std::lock_guard<std::mutex> lock(g.mu);
    gc.members.resize(g.members.size());
    for (std::size_t r = 0; r < g.members.size(); ++r) {
      gc.members[r].conn = g.members[r].conn;
      gc.members[r].alive = g.members[r].alive &&
                            g.members[r].conn != nullptr &&
                            !g.members[r].conn->failed();
    }
    gc.primary = g.primary;
  }
}

void ServeRouter::EndSweeps(const QueryCtx& ctx) {
  for (const GroupCtx& g : ctx.groups) {
    for (const Participant& m : g.members) {
      if (m.conn == nullptr || m.conn->failed()) continue;
      // Fire-and-forget (no Expect): the worker retires the sweep slot
      // and sends nothing back.
      m.conn->Send(FrameType::kEndSweep, m.conn->NextSeq(), ctx.qid, nullptr,
                   0);
    }
  }
}

void ServeRouter::Promote(QueryCtx& ctx, std::size_t s, std::size_t r) {
  ctx.groups[s].primary = r;
  // Mirror to the global group when its member is unchanged, steering
  // later queries (and the monitoring accessors) at the live member.
  Group& g = *groups_[s];
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.members[r].conn == ctx.groups[s].members[r].conn &&
      g.members[r].alive) {
    g.primary = r;
  }
}

bool ServeRouter::EnsurePrimary(QueryCtx& ctx, std::size_t s,
                                ServeResult* res) {
  GroupCtx& g = ctx.groups[s];
  if (g.members[g.primary].alive) return true;
  for (std::size_t r = 0; r < g.members.size(); ++r) {
    if (g.members[r].alive) {
      Promote(ctx, s, r);
      if (res != nullptr) ++res->failovers;
      return true;
    }
  }
  return false;
}

bool ServeRouter::SendRecv(QueryCtx& ctx, std::size_t s, std::size_t r,
                           FrameType type, const std::vector<char>& payload,
                           std::vector<char>* reply, int timeout_ms,
                           bool retryable, std::int64_t deadline_ms) {
  Participant& m = ctx.groups[s].members[r];
  const int attempts = retryable ? 1 + options_.op_retries : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (!m.alive) return false;
    // Gate on the remaining deadline before sleeping or sending: an
    // already-expired query must not burn a full send+recv window. The
    // break still reaches the MarkDead below — GroupEval's retry loop
    // relies on a false return leaving the replica dead.
    std::int64_t left = timeout_ms;
    if (deadline_ms >= 0) {
      left = deadline_ms - NowMs();
      if (left <= 0) break;
    }
    if (attempt > 0) {
      BackoffSleep(options_.backoff_base_ms, attempt, deadline_ms);
      if (deadline_ms >= 0) {
        left = deadline_ms - NowMs();
        if (left <= 0) break;
      }
    }
    const std::uint32_t seq = m.conn->NextSeq();
    m.conn->Expect(seq, ctx.qid);
    if (!m.conn->Send(type, seq, ctx.qid, payload.data(), payload.size())) {
      m.conn->Cancel(seq);
      MarkDead(ctx, s, r);
      return false;
    }
    // Cap the per-attempt recv window at the remaining deadline, so one
    // slow attempt cannot overshoot the whole query budget.
    const int window =
        deadline_ms >= 0 && left < timeout_ms ? static_cast<int>(left)
                                              : timeout_ms;
    Frame frame;
    const RecvStatus st = m.conn->Wait(seq, window, &frame);
    if (st == RecvStatus::kOk) {
      if (frame.type != kReplyType) {
        // kError (a worker-side exception) or an unexpected type: the
        // replica's state is suspect either way.
        MarkDead(ctx, s, r);
        return false;
      }
      if (reply != nullptr) *reply = std::move(frame.payload);
      return true;
    }
    if (st != RecvStatus::kTimeout) {
      // A corrupt or closed stream is never resynchronised: dead replica.
      MarkDead(ctx, s, r);
      return false;
    }
    // kTimeout: deregister (a late reply becomes stale) and retry when
    // the op allows it.
    m.conn->Cancel(seq);
    if (!retryable) {
      MarkDead(ctx, s, r);
      return false;
    }
  }
  MarkDead(ctx, s, r);
  return false;
}

bool ServeRouter::ControlSendRecv(std::size_t s, std::size_t r, FrameType type,
                                  const std::vector<char>& payload,
                                  std::vector<char>* reply, bool retryable) {
  std::shared_ptr<Conn> conn;
  {
    Group& g = *groups_[s];
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.members[r].alive) return false;
    conn = g.members[r].conn;
  }
  if (conn == nullptr || conn->failed()) {
    MarkDeadGlobal(s, r);
    return false;
  }
  const int attempts = retryable ? 1 + options_.op_retries : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      BackoffSleep(options_.backoff_base_ms, attempt, /*deadline_ms=*/-1);
    }
    const std::uint32_t seq = conn->NextSeq();
    conn->Expect(seq, /*qid=*/0);
    if (!conn->Send(type, seq, /*qid=*/0, payload.data(), payload.size())) {
      conn->Cancel(seq);
      MarkDeadGlobal(s, r);
      return false;
    }
    Frame frame;
    const RecvStatus st = conn->Wait(seq, options_.op_timeout_ms, &frame);
    if (st == RecvStatus::kOk) {
      if (frame.type != kReplyType) {
        MarkDeadGlobal(s, r);
        return false;
      }
      if (reply != nullptr) *reply = std::move(frame.payload);
      return true;
    }
    if (st != RecvStatus::kTimeout) {
      MarkDeadGlobal(s, r);
      return false;
    }
    conn->Cancel(seq);
    if (!retryable) break;
  }
  MarkDeadGlobal(s, r);
  return false;
}

void ServeRouter::Broadcast(QueryCtx& ctx, FrameType type,
                            const std::vector<char>& payload, bool retryable,
                            int timeout_ms, std::int64_t deadline_ms,
                            std::vector<ShardView>& views,
                            std::vector<std::vector<char>>& replies,
                            std::vector<std::size_t>& missing,
                            ServeResult* res) {
  const std::size_t shards = views.size();
  const std::size_t R = replicas_per_shard_;
  // Per (shard, member) scatter state, flat-indexed s * R + r.
  std::vector<std::uint32_t> sent_seq(shards * R, 0);
  std::vector<char> pending(shards * R, 0), good(shards * R, 0);
  std::vector<std::vector<char>> member_reply(shards * R);

  // Scatter to every live pinned member of every active shard first, so
  // all replicas compute their pass concurrently — this is the
  // state-machine replication step: standbys consume the identical op
  // stream. With concurrent queries in flight, the reactor's send
  // coalescing merges these frames with other queries' into fewer
  // syscalls.
  for (std::size_t s = 0; s < shards; ++s) {
    if (!views[s].active) continue;
    GroupCtx& g = ctx.groups[s];
    for (std::size_t r = 0; r < g.members.size(); ++r) {
      Participant& m = g.members[r];
      if (!m.alive) continue;
      const std::size_t i = s * R + r;
      sent_seq[i] = m.conn->NextSeq();
      m.conn->Expect(sent_seq[i], ctx.qid);
      if (m.conn->Send(type, sent_seq[i], ctx.qid, payload.data(),
                       payload.size())) {
        pending[i] = 1;
      } else {
        m.conn->Cancel(sent_seq[i]);
        MarkDead(ctx, s, r);
      }
    }
  }
  // ...then gather in (shard, member) order. Later waits usually complete
  // instantly: whichever thread reads the socket completes every waiter
  // whose frame arrived in the same drain.
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t r = 0; r < R; ++r) {
      const std::size_t i = s * R + r;
      if (!pending[i]) continue;
      Participant& m = ctx.groups[s].members[r];
      Frame frame;
      const RecvStatus st = m.conn->Wait(sent_seq[i], timeout_ms, &frame);
      if (st == RecvStatus::kOk && frame.type == kReplyType) {
        member_reply[i] = std::move(frame.payload);
        good[i] = 1;
      } else if (st == RecvStatus::kTimeout) {
        // Deregister — the late reply becomes stale — then retry fresh
        // when the op is idempotent; a mutating op that timed out costs
        // the replica its life on the spot.
        m.conn->Cancel(sent_seq[i]);
        if (retryable) {
          if (SendRecv(ctx, s, r, type, payload, &member_reply[i], timeout_ms,
                       /*retryable=*/true, deadline_ms)) {
            good[i] = 1;
          }
        } else {
          MarkDead(ctx, s, r);
        }
      } else if (st == RecvStatus::kOk) {
        // kError or an unexpected type.
        MarkDead(ctx, s, r);
      } else {
        MarkDead(ctx, s, r);
      }
    }
  }
  // Reconcile each group: the primary's reply drives the merge; standbys
  // must agree byte-for-byte or be evicted as corrupt; a failed primary
  // is replaced by the first standby that answered (whose slab state is
  // bit-identical by construction) — the failover that keeps the query
  // exact and unflagged.
  for (std::size_t s = 0; s < shards; ++s) {
    if (!views[s].active) continue;
    GroupCtx& g = ctx.groups[s];
    std::size_t driver = g.members.size();
    if (good[s * R + g.primary]) {
      driver = g.primary;
    } else {
      for (std::size_t r = 0; r < g.members.size(); ++r) {
        if (good[s * R + r]) {
          driver = r;
          break;
        }
      }
      if (driver < g.members.size()) {
        Promote(ctx, s, driver);
        if (res != nullptr) ++res->failovers;
      }
    }
    if (driver == g.members.size()) {
      // The whole replica group is gone: only now does the shard degrade.
      views[s].active = false;
      missing.push_back(s);
      continue;
    }
    for (std::size_t r = 0; r < g.members.size(); ++r) {
      if (r == driver || !good[s * R + r]) continue;
      if (member_reply[s * R + r] != member_reply[s * R + driver]) {
        MarkDead(ctx, s, r);
        if (res != nullptr) ++res->replicas_evicted;
      }
    }
    replies[s] = std::move(member_reply[s * R + driver]);
  }
}

bool ServeRouter::GroupEval(QueryCtx& ctx, std::size_t s, FrameType type,
                            const std::vector<char>& payload,
                            std::vector<char>* reply, std::int64_t deadline_ms,
                            ServeResult* res) {
  GroupCtx& g = ctx.groups[s];
  if (!EnsurePrimary(ctx, s, res)) return false;

  auto pick_standby = [&]() -> std::size_t {
    for (std::size_t r = 0; r < g.members.size(); ++r) {
      if (r != g.primary && g.members[r].alive) return r;
    }
    return g.members.size();
  };

  if (options_.hedge_delay_ms < 0 || pick_standby() == g.members.size()) {
    // No hedging possible: plain retried exchange, failing over to the
    // next member while any remains (the op is pure, so a promoted standby
    // answers identically).
    while (EnsurePrimary(ctx, s, res)) {
      if (SendRecv(ctx, s, g.primary, type, payload, reply,
                   RemainingMs(deadline_ms), /*retryable=*/true,
                   deadline_ms)) {
        return true;
      }
    }
    return false;
  }

  const int attempts = 1 + options_.op_retries;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      BackoffSleep(options_.backoff_base_ms, attempt, deadline_ms);
    }
    if (!EnsurePrimary(ctx, s, res)) return false;
    const int window = RemainingMs(deadline_ms);
    if (window == 0) break;
    const std::int64_t attempt_end = NowMs() + window;

    const std::size_t prim_idx = g.primary;
    Participant& prim = g.members[prim_idx];
    const std::uint32_t pseq = prim.conn->NextSeq();
    prim.conn->Expect(pseq, ctx.qid);
    if (!prim.conn->Send(type, pseq, ctx.qid, payload.data(),
                         payload.size())) {
      prim.conn->Cancel(pseq);
      MarkDead(ctx, s, prim_idx);
      continue;
    }
    bool p_pending = true;

    // Phase 1: give the primary the hedge window to itself.
    {
      const std::int64_t left = attempt_end - NowMs();
      int hedge = options_.hedge_delay_ms;
      if (hedge > left) hedge = static_cast<int>(left > 0 ? left : 0);
      Frame frame;
      const RecvStatus st = prim.conn->Wait(pseq, hedge, &frame);
      if (st == RecvStatus::kOk) {
        if (frame.type == kReplyType) {
          *reply = std::move(frame.payload);
          return true;
        }
        MarkDead(ctx, s, prim_idx);
        p_pending = false;
      } else if (st != RecvStatus::kTimeout) {
        MarkDead(ctx, s, prim_idx);
        p_pending = false;
      }
    }

    // Phase 2: race the standby against the (slow or dead) primary and
    // take the first valid reply — both hold the same snapshot, so either
    // answer is exact. Each connection has its own reactor (no
    // cross-connection poll), so the race alternates short waits between
    // the two sides; a winner is noticed at worst ~2ms late. When only
    // one side remains pending, its wait spans the rest of the window.
    const std::size_t stand_idx = pick_standby();
    bool s_pending = false;
    std::uint32_t sseq = 0;
    if (stand_idx < g.members.size()) {
      Participant& stand = g.members[stand_idx];
      sseq = stand.conn->NextSeq();
      stand.conn->Expect(sseq, ctx.qid);
      if (stand.conn->Send(type, sseq, ctx.qid, payload.data(),
                           payload.size())) {
        s_pending = true;
        if (res != nullptr) ++res->hedged_evals;
      } else {
        stand.conn->Cancel(sseq);
        MarkDead(ctx, s, stand_idx);
      }
    }

    auto poll_side = [&](std::size_t idx, std::uint32_t seq, bool* pend,
                         int wait_ms) -> bool {
      Frame frame;
      const RecvStatus st = g.members[idx].conn->Wait(seq, wait_ms, &frame);
      if (st == RecvStatus::kOk) {
        if (frame.type == kReplyType) {
          *reply = std::move(frame.payload);
          return true;
        }
        MarkDead(ctx, s, idx);
        *pend = false;
      } else if (st != RecvStatus::kTimeout) {
        MarkDead(ctx, s, idx);
        *pend = false;
      }
      return false;
    };
    while (p_pending || s_pending) {
      const std::int64_t left = attempt_end - NowMs();
      if (left <= 0) break;
      const int slice = left < 2 ? static_cast<int>(left) : 2;
      if (p_pending &&
          poll_side(prim_idx, pseq, &p_pending,
                    s_pending ? slice : static_cast<int>(left))) {
        if (s_pending) g.members[stand_idx].conn->Cancel(sseq);
        return true;
      }
      if (s_pending &&
          poll_side(stand_idx, sseq, &s_pending,
                    p_pending ? slice : static_cast<int>(left))) {
        if (p_pending) g.members[prim_idx].conn->Cancel(pseq);
        return true;
      }
    }
    // Attempt window exhausted with no valid reply from either side:
    // deregister both (late replies become stale) and try again fresh.
    if (p_pending) g.members[prim_idx].conn->Cancel(pseq);
    if (s_pending) g.members[stand_idx].conn->Cancel(sseq);
  }
  // All attempts burned: whatever is still nominally pending has missed
  // every window — treat the participants as unresponsive, exactly as the
  // unreplicated tier treats a worker that exhausts its retries.
  MarkDead(ctx, s, g.primary);
  const std::size_t stand_idx = pick_standby();
  if (stand_idx < g.members.size()) MarkDead(ctx, s, stand_idx);
  return false;
}

std::size_t ServeRouter::ShardOf(std::size_t global) const {
  const auto it =
      std::upper_bound(bases_.begin() + 1, bases_.end(), global);
  return static_cast<std::size_t>(it - (bases_.begin() + 1));
}

int ServeRouter::RemainingMs(std::int64_t deadline_ms) const {
  const std::int64_t left = deadline_ms - NowMs();
  if (left <= 0) return 0;
  const int cap = options_.op_timeout_ms;
  return left < cap ? static_cast<int>(left) : cap;
}

pid_t ServeRouter::worker_pid(std::size_t s) const {
  Group& g = *groups_[s];
  std::lock_guard<std::mutex> lock(g.mu);
  return g.members[g.primary].pid;
}

bool ServeRouter::worker_alive(std::size_t s) const {
  Group& g = *groups_[s];
  std::lock_guard<std::mutex> lock(g.mu);
  for (const Replica& m : g.members) {
    if (m.alive) return true;
  }
  return false;
}

std::size_t ServeRouter::primary_of(std::size_t s) const {
  Group& g = *groups_[s];
  std::lock_guard<std::mutex> lock(g.mu);
  return g.primary;
}

pid_t ServeRouter::replica_pid(std::size_t s, std::size_t r) const {
  Group& g = *groups_[s];
  std::lock_guard<std::mutex> lock(g.mu);
  return g.members[r].pid;
}

bool ServeRouter::replica_alive(std::size_t s, std::size_t r) const {
  Group& g = *groups_[s];
  std::lock_guard<std::mutex> lock(g.mu);
  return g.members[r].alive;
}

bool ServeRouter::AnyDead() const {
  for (const auto& gp : groups_) {
    std::lock_guard<std::mutex> lock(gp->mu);
    for (const Replica& m : gp->members) {
      if (!m.alive) return true;
    }
  }
  return false;
}

void ServeRouter::MaybeRespawn() {
  // Cheap any-dead scan first: the common healthy query never touches
  // respawn_mu_ and never serializes behind another caller's respawn.
  if (!options_.auto_respawn || !AnyDead()) return;
  std::lock_guard<std::mutex> lock(respawn_mu_);
  RespawnDeadLocked(/*limit=*/0);
}

ServeResult ServeRouter::Nearest(std::string_view query) {
  return KNearest(query, 1);
}

ServeResult ServeRouter::KNearest(std::string_view query, std::size_t k) {
  // Shared world lock: N callers sweep concurrently; mutations (which
  // take it exclusive) never interleave with a sweep.
  std::shared_lock<std::shared_mutex> world(world_mu_);
  MaybeRespawn();
  QueryCtx ctx;
  SnapshotCtx(&ctx);
  ServeResult res = QueryLazy(ctx, query, k, /*slack=*/1.0);
  EndSweeps(ctx);
  return res;
}

std::vector<ServeResult> ServeRouter::NearestBatch(
    const std::vector<std::string>& queries) {
  return KNearestBatch(queries, 1);
}

std::vector<ServeResult> ServeRouter::KNearestBatch(
    const std::vector<std::string>& queries, std::size_t k) {
  std::vector<ServeResult> out;
  out.reserve(queries.size());
  const std::size_t np = pivots_.size();
  std::vector<double> row(np);
  for (const std::string& q : queries) {
    std::shared_lock<std::shared_mutex> world(world_mu_);
    // Respawn between queries: one lost group costs one partial answer,
    // and revived replicas (re-mapped, checksum-verified) rejoin at the
    // next query's begin.
    MaybeRespawn();
    QueryCtx ctx;
    SnapshotCtx(&ctx);
    // Pivot stage, router-side (counted inside QueryRow as the batch
    // engine counts it).
    for (std::size_t p = 0; p < np; ++p) {
      row[p] = distance_->Distance(q, pivot_strings_[p]);
    }
    out.push_back(QueryRow(ctx, q, k, row.data()));
    EndSweeps(ctx);
  }
  return out;
}

ServeResult ServeRouter::RobustRowQuery(std::string_view query, std::size_t k,
                                        const double* row) {
  MaybeRespawn();
  QueryCtx ctx;
  SnapshotCtx(&ctx);
  ServeResult res = QueryRow(ctx, query, k, row);
  EndSweeps(ctx);
  return res;
}

ServeResult ServeRouter::KNearestWithRow(std::string_view query, std::size_t k,
                                         const std::vector<double>& row) {
  if (row.size() != pivots_.size()) {
    throw std::invalid_argument(
        "ServeRouter::KNearestWithRow: row must have num_pivots() entries");
  }
  std::shared_lock<std::shared_mutex> world(world_mu_);
  return RobustRowQuery(query, k, row.data());
}

bool ServeRouter::FastWorldLocked() const {
  if (base_dead_total_ != 0) return false;
  for (const std::size_t d : delta_live_) {
    if (d != 0) return false;
  }
  for (const auto& g : groups_) {
    std::lock_guard<std::mutex> glock(g->mu);
    for (const Replica& m : g->members) {
      if (!m.alive || m.conn == nullptr || m.conn->failed()) return false;
    }
  }
  return true;
}

void ServeRouter::DriveSweeps(SweepFeed& feed, std::size_t max_concurrent) {
  const std::size_t wave = max_concurrent == 0 ? 16 : max_concurrent;
  const std::size_t shards = shard_sizes_.size();
  const std::size_t np = pivots_.size();

  /// One outstanding request leg of a sweep's current phase.
  struct Leg {
    std::size_t s = 0, r = 0;
    std::uint32_t seq = 0;
    Conn* conn = nullptr;
    bool done = false;
    std::vector<char> payload;
  };
  enum class St { kBegin, kEval, kStep, kDone, kBail };
  struct Sweep {
    SweepJob job;
    St st = St::kBegin;
    std::size_t k = 0;
    std::int64_t deadline = 0;
    QueryCtx ctx;
    std::vector<ShardView> views;
    std::vector<NeighborResult> best;
    ServeResult res;
    std::vector<Leg> legs;
    std::uint64_t computations = 0, abandons = 0;
    std::size_t s_cand = kSweepNone;
    double cap = 0.0;
    std::int64_t last_progress_ms = 0;
    bool settled = false;  // kDone or kBail, awaiting delivery
  };

  std::list<Sweep> sweeps;
  std::shared_lock<std::shared_mutex> world(world_mu_, std::defer_lock);
  bool fast = false;

  // Per-connection request buffers for the current round; flushed as one
  // write per connection.
  std::vector<Conn*> flush_order;
  std::unordered_map<Conn*, std::vector<char>> outgoing;

  auto enqueue = [&](Sweep& sw, std::size_t s, std::size_t r, FrameType type,
                     const PayloadWriter& w) {
    const Participant& m = sw.ctx.groups[s].members[r];
    Leg leg;
    leg.s = s;
    leg.r = r;
    leg.conn = m.conn.get();
    leg.seq = m.conn->NextSeq();
    m.conn->Expect(leg.seq, sw.ctx.qid);
    auto& buf = outgoing[leg.conn];
    if (buf.empty()) flush_order.push_back(leg.conn);
    EncodeFrame(&buf, type, leg.seq, sw.ctx.qid, w.buf.data(), w.buf.size());
    sw.legs.push_back(leg);
  };
  auto flush = [&] {
    for (Conn* conn : flush_order) {
      auto& buf = outgoing[conn];
      if (!buf.empty()) conn->SendRaw(buf.data(), buf.size());
      buf.clear();
    }
    flush_order.clear();
  };
  auto kth = [](const Sweep& sw) {
    return sw.best.size() < sw.k ? kInf : sw.best.back().distance;
  };
  auto total_live = [](const Sweep& sw) {
    std::size_t live = 0;
    for (const ShardView& v : sw.views) {
      if (v.active) live += v.live;
    }
    return live;
  };
  auto select_next = [](const Sweep& sw) {
    std::size_t next = kSweepNone;
    double next_key = kInf;
    for (const ShardView& v : sw.views) {
      if (!v.active) continue;
      if (v.last.next != kSweepNone && v.last.next_key < next_key) {
        next_key = v.last.next_key;
        next = v.last.next;
      }
    }
    return next;
  };
  // EndSweeps, but riding the next round's flush instead of paying its
  // own write syscall per connection: the kEndSweep frames are
  // fire-and-forget, and the worker's slot table tolerates one round of
  // retirement lag. Every finish/bail is followed by a flush in the same
  // driver iteration, so nothing lingers.
  auto end_sweeps_buffered = [&](const QueryCtx& ctx) {
    for (const GroupCtx& g : ctx.groups) {
      for (const Participant& m : g.members) {
        if (m.conn == nullptr || m.conn->failed()) continue;
        auto& buf = outgoing[m.conn.get()];
        if (buf.empty()) flush_order.push_back(m.conn.get());
        EncodeFrame(&buf, FrameType::kEndSweep, m.conn->NextSeq(), ctx.qid,
                    nullptr, 0);
      }
    }
  };
  auto bail = [&](Sweep& sw) {
    for (const Leg& leg : sw.legs) {
      if (!leg.done) leg.conn->Cancel(leg.seq);
    }
    sw.legs.clear();
    end_sweeps_buffered(sw.ctx);
    sw.res = ServeResult();
    sw.st = St::kBail;
    sw.settled = true;
    // A bail usually means a replica died under us: re-gate admission now
    // rather than feeding more sweeps into a world that will bail them.
    fast = FastWorldLocked();
  };
  auto finish = [&](Sweep& sw) {
    sw.res.stats.distance_computations += sw.computations;
    sw.res.stats.bounded_abandons += sw.abandons;
    sw.res.neighbors = std::move(sw.best);
    std::sort(sw.res.missing_shards.begin(), sw.res.missing_shards.end());
    sw.res.partial = !sw.res.missing_shards.empty();
    sw.res.stats.shards_degraded = sw.res.missing_shards.size();
    end_sweeps_buffered(sw.ctx);
    sw.st = St::kDone;
    sw.settled = true;
  };
  auto issue_eval = [&](Sweep& sw) {
    sw.cap = kth(sw);
    PayloadWriter w;
    w.U64(sw.s_cand);
    w.F64(sw.cap);
    sw.legs.clear();
    enqueue(sw, ShardOf(sw.s_cand), sw.ctx.groups[ShardOf(sw.s_cand)].primary,
            FrameType::kEval, w);
    sw.st = St::kEval;
  };
  auto start_sweep = [&](Sweep& sw) {
    sw.st = St::kBegin;
    sw.deadline = NowMs() + options_.query_deadline_ms;
    sw.last_progress_ms = NowMs();
    sw.k = std::min(sw.job.k, n_);
    if (sw.k == 0) {
      finish(sw);
      return;
    }
    SnapshotCtx(&sw.ctx);
    // The fast gate held when this wave's world lock was taken, but a
    // replica can die right up to the snapshot; an incomplete snapshot
    // bails to the robust path, which owns failover.
    for (std::size_t s = 0; s < shards; ++s) {
      for (const Participant& m : sw.ctx.groups[s].members) {
        if (!m.alive) {
          bail(sw);
          return;
        }
      }
    }
    sw.views.assign(shards, ShardView());
    for (ShardView& v : sw.views) v.active = true;
    sw.res.stats.distance_computations += np;
    sw.res.stats.pivot_computations += np;
    const double* row = sw.job.row;
    sw.best.reserve(sw.k + 1);
    for (std::size_t p = 0; p < np; ++p) {
      if (!base_tombs_.empty() &&
          TestTombstone(base_tombs_.data(), pivots_[p])) {
        continue;  // unreachable under the fast gate; kept for parity
      }
      InsertNeighborTopK(sw.best, sw.k, {pivots_[p], row[p]},
                         /*admit_ties=*/true);
    }
    PayloadWriter w;
    w.Str(sw.job.query);
    w.F64(kth(sw));
    w.U64(np);
    w.Raw(row, np * sizeof(double));
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t r = 0; r < sw.ctx.groups[s].members.size(); ++r) {
        enqueue(sw, s, r, FrameType::kBeginRow, w);
      }
    }
  };

  // Reconciles a completed begin/step round: the primary's reply drives
  // the shard view, every standby must byte-agree (the state-machine
  // replication check). Returns false on any malformed or disagreeing
  // reply — the caller bails to the robust path, which evicts properly.
  auto absorb_compacts = [&](Sweep& sw) {
    for (std::size_t s = 0; s < shards; ++s) {
      const Leg* primary = nullptr;
      for (const Leg& leg : sw.legs) {
        if (leg.s == s && leg.r == sw.ctx.groups[s].primary) primary = &leg;
      }
      if (primary == nullptr) return false;
      for (const Leg& leg : sw.legs) {
        if (leg.s == s && &leg != primary && leg.payload != primary->payload) {
          return false;
        }
      }
      PayloadReader r(primary->payload);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) return false;
      sw.views[s].last = wc.pass;
      sw.views[s].live = wc.pass.live;
    }
    return true;
  };

  auto deliver_settled = [&] {
    for (auto it = sweeps.begin(); it != sweeps.end();) {
      if (it->settled) {
        feed.Deliver(it->job.tag, std::move(it->res), it->st == St::kBail);
        it = sweeps.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (;;) {
    if (sweeps.empty() && feed.Finished()) break;

    if (!world.owns_lock()) {
      world.lock();
      MaybeRespawn();
      fast = FastWorldLocked();
    }
    // A writer announced itself: stop admitting so the wave drains and
    // the shared hold can be released below. In read-only steady state
    // this branch never fires and the driver keeps the lock indefinitely
    // — cycling it on a timer would decay the wave to nothing once per
    // cycle for no one's benefit.
    const bool writer_waiting =
        writers_waiting_.load(std::memory_order_relaxed) > 0;

    // Admit until the wave is full (or, when the world is not fast-path
    // eligible, hand every queued job straight back for a robust rerun on
    // its caller's thread — serializing robust queries through this one
    // thread would be a step backwards).
    if (!writer_waiting) {
      SweepJob job;
      while (sweeps.size() < wave && feed.Next(&job)) {
        if (!fast) {
          feed.Deliver(job.tag, ServeResult(), /*bailed=*/true);
          continue;
        }
        sweeps.emplace_back();
        Sweep& sw = sweeps.back();
        sw.job = job;
        start_sweep(sw);
      }
    }
    flush();
    deliver_settled();

    if (sweeps.empty()) {
      // Nothing in flight: give the world back (a writer may be waiting
      // on it) and park for new work. The deliberate gap after a
      // writer-forced drain lets the blocked Insert/Remove actually win
      // the lock before we re-take it.
      world.unlock();
      if (writer_waiting) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      if (feed.Finished()) break;
      const int wfd = feed.wake_fd();
      if (wfd >= 0) {
        struct pollfd pfd{wfd, POLLIN, 0};
        ::poll(&pfd, 1, 50);
        if ((pfd.revents & POLLIN) != 0) {
          char buf[256];
          while (::read(wfd, buf, sizeof(buf)) > 0) {
          }
        }
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }

    // Park: one poll across every connection that still owes a reply,
    // plus the feed's wake fd so a fresh admission interrupts the park.
    // Readiness results then drive the scan — only a flagged connection
    // is worth a read syscall. The short cap bounds the stall if some
    // other reader (a robust rerun, the control plane) drains our frames
    // between the scan below and the next park.
    std::vector<struct pollfd> pfds;
    for (const Sweep& sw : sweeps) {
      for (const Leg& leg : sw.legs) {
        if (leg.done) continue;
        bool seen = false;
        for (const struct pollfd& p : pfds) {
          if (p.fd == leg.conn->fd()) seen = true;
        }
        if (!seen) pfds.push_back({leg.conn->fd(), POLLIN, 0});
      }
    }
    const std::size_t conn_pfds = pfds.size();
    const int wfd = feed.wake_fd();
    if (wfd >= 0 && !writer_waiting && sweeps.size() < wave &&
        !feed.Finished()) {
      pfds.push_back({wfd, POLLIN, 0});
    }
    if (!pfds.empty()) {
      ::poll(pfds.data(), pfds.size(), 20);
    }
    if (pfds.size() > conn_pfds && (pfds.back().revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wfd, buf, sizeof(buf)) > 0) {
      }
    }
    const auto readable = [&](Conn* c) {
      for (std::size_t i = 0; i < conn_pfds; ++i) {
        if (pfds[i].fd == c->fd()) {
          return (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
        }
      }
      return false;
    };

    // Scan to quiescence: TryWait collects replies some reader already
    // drained for free, each readable connection is read at most once
    // per park (one recv empties it), and newly issued requests stay
    // buffered until the flush below — their replies cannot land
    // mid-scan, so the rescans are pure flag checks and the loop
    // terminates once every arrived reply is absorbed.
    std::vector<Conn*> probed;
    const auto conn_probed = [&](Conn* c) {
      for (Conn* d : probed) {
        if (d == c) return true;
      }
      return false;
    };
    bool progress = true;
    while (progress) {
      progress = false;
      for (Sweep& sw : sweeps) {
        if (sw.st != St::kBegin && sw.st != St::kEval && sw.st != St::kStep) {
          continue;
        }
        bool all_done = true;
        bool dead = false;
        for (Leg& leg : sw.legs) {
          if (leg.done) continue;
          Frame f;
          RecvStatus st = leg.conn->TryWait(leg.seq, &f);
          if (st == RecvStatus::kTimeout && readable(leg.conn) &&
              !conn_probed(leg.conn)) {
            probed.push_back(leg.conn);
            st = leg.conn->Wait(leg.seq, 0, &f);
          }
          if (st == RecvStatus::kOk) {
            if (f.type != kReplyType) {
              dead = true;
              break;
            }
            leg.payload = std::move(f.payload);
            leg.done = true;
            // A probe here may have drained replies for sweeps scanned
            // earlier in this pass; one more (syscall-free) pass picks
            // those up rather than stalling them into the next park.
            progress = true;
          } else if (st == RecvStatus::kClosed) {
            dead = true;
            break;
          } else {
            all_done = false;
          }
        }
        if (dead) {
          bail(sw);
          progress = true;
          continue;
        }
        if (!all_done) {
          const std::int64_t now = NowMs();
          if (now - sw.last_progress_ms >
                  static_cast<std::int64_t>(options_.op_timeout_ms) ||
              now >= sw.deadline) {
            bail(sw);
            progress = true;
          }
          continue;
        }

        // Phase complete: absorb the replies and issue the next round.
        progress = true;
        sw.last_progress_ms = NowMs();
        if (sw.st == St::kBegin || sw.st == St::kStep) {
          if (!absorb_compacts(sw)) {
            bail(sw);
            continue;
          }
          sw.legs.clear();
          if (total_live(sw) == 0) {
            finish(sw);
            continue;
          }
          sw.s_cand = select_next(sw);
          if (sw.s_cand == kSweepNone) {
            finish(sw);
            continue;
          }
          issue_eval(sw);
        } else {  // kEval
          PayloadReader r(sw.legs[0].payload);
          const double d = r.F64();
          if (!r.Done()) {
            bail(sw);
            continue;
          }
          ++sw.computations;
          if (d >= sw.cap) {
            ++sw.abandons;
          } else {
            InsertNeighborTopK(sw.best, sw.k, {sw.s_cand, d});
          }
          PayloadWriter w;
          w.U32(static_cast<std::uint32_t>(sw.s_cand));
          w.F64(kth(sw));
          sw.legs.clear();
          for (std::size_t s = 0; s < shards; ++s) {
            for (std::size_t r2 = 0; r2 < sw.ctx.groups[s].members.size();
                 ++r2) {
              enqueue(sw, s, r2, FrameType::kStepRow, w);
            }
          }
          sw.st = St::kStep;
        }
      }
    }
    flush();
    deliver_settled();
  }
}

namespace {

/// Static feed over parallel vectors — the one-shot batch entry point.
class VectorSweepFeed : public SweepFeed {
 public:
  VectorSweepFeed(const std::vector<std::string_view>& queries,
                  const std::vector<std::size_t>& ks,
                  const std::vector<const double*>& rows,
                  std::vector<ServeResult>* out, std::vector<char>* bailed)
      : queries_(queries), ks_(ks), rows_(rows), out_(out), bailed_(bailed) {}

  bool Next(SweepJob* out) override {
    if (next_ >= queries_.size()) return false;
    out->query = queries_[next_];
    out->k = ks_[next_];
    out->row = rows_[next_];
    out->tag = next_;
    ++next_;
    return true;
  }
  bool Finished() override { return next_ >= queries_.size(); }
  void Deliver(std::uint64_t tag, ServeResult res, bool bailed) override {
    (*out_)[tag] = std::move(res);
    (*bailed_)[tag] = bailed ? 1 : 0;
  }

 private:
  const std::vector<std::string_view>& queries_;
  const std::vector<std::size_t>& ks_;
  const std::vector<const double*>& rows_;
  std::vector<ServeResult>* out_;
  std::vector<char>* bailed_;
  std::size_t next_ = 0;
};

}  // namespace

std::vector<ServeResult> ServeRouter::KNearestManyWithRows(
    const std::vector<std::string_view>& queries,
    const std::vector<std::size_t>& ks, const std::vector<const double*>& rows,
    std::size_t max_concurrent) {
  const std::size_t n = queries.size();
  if (ks.size() != n || rows.size() != n) {
    throw std::invalid_argument(
        "ServeRouter::KNearestManyWithRows: queries/ks/rows sizes differ");
  }
  std::vector<ServeResult> out(n);
  if (n == 0) return out;
  std::vector<char> bailed(n, 0);
  VectorSweepFeed feed(queries, ks, rows, &out, &bailed);
  DriveSweeps(feed, max_concurrent);

  // Robust reruns: everything the fast path refused or abandoned. Each
  // gets a fresh context and query id — the bailed sweep's slots were
  // already retired — and the full retry/failover/hedging treatment.
  std::shared_lock<std::shared_mutex> world(world_mu_);
  for (std::size_t i = 0; i < n; ++i) {
    if (bailed[i]) out[i] = RobustRowQuery(queries[i], ks[i], rows[i]);
  }
  return out;
}

bool ServeRouter::PingAll() {
  std::lock_guard<std::mutex> lock(respawn_mu_);
  return PingAllLocked();
}

bool ServeRouter::PingAllLocked() {
  bool all = true;
  for (std::size_t s = 0; s < groups_.size(); ++s) {
    for (std::size_t r = 0; r < groups_[s]->members.size(); ++r) {
      {
        std::lock_guard<std::mutex> lock(groups_[s]->mu);
        if (!groups_[s]->members[r].alive) {
          all = false;
          continue;
        }
      }
      std::vector<char> reply;
      if (!ControlSendRecv(s, r, FrameType::kPing, {}, &reply,
                           /*retryable=*/true)) {
        all = false;
        continue;
      }
      PayloadReader pr(reply);
      // The ping reply echoes the worker's identity: a replica serving
      // the wrong shard (or the wrong group slot) is as dead as one
      // serving nothing.
      if (pr.U64() != s || pr.U64() != r || !pr.Done()) {
        MarkDeadGlobal(s, r);
        all = false;
      }
    }
  }
  return all;
}

std::size_t ServeRouter::RespawnDead() {
  std::lock_guard<std::mutex> lock(respawn_mu_);
  return RespawnDeadLocked(/*limit=*/0);
}

std::size_t ServeRouter::RespawnDeadLocked(std::size_t limit) {
  std::size_t revived = 0, attempts = 0;
  for (std::size_t s = 0; s < groups_.size(); ++s) {
    Group& g = *groups_[s];
    for (std::size_t r = 0; r < g.members.size(); ++r) {
      {
        std::lock_guard<std::mutex> lock(g.mu);
        if (g.members[r].alive) continue;
      }
      // The cap counts respawn *attempts*, so a permanently failing spawn
      // cannot loop one tick forever; the remainder waits its turn.
      if (limit > 0 && attempts >= limit) continue;
      ++attempts;
      ReapReplica(s, r);
      SpawnReplica(s, r, options_.respawn_fault_spec);
      {
        std::lock_guard<std::mutex> lock(g.mu);
        if (!g.members[r].alive) continue;
      }
      std::vector<char> reply;
      if (ControlSendRecv(s, r, FrameType::kPing, {}, &reply,
                          /*retryable=*/true)) {
        // A fresh fork maps only the immutable snapshot; replay the
        // shard's mutation journal so it rejoins at the group's current
        // delta/tombstone state (ops are idempotent by id, so a partial
        // previous life is harmless).
        if (ReplayMutations(s, r)) ++revived;
      }
    }
    // A fully-restored group keeps its current primary; a group whose
    // primary slot is still dead points at the first live member so the
    // next query starts on a live primary without a mid-query promotion.
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.members[g.primary].alive) {
      for (std::size_t r = 0; r < g.members.size(); ++r) {
        if (g.members[r].alive) {
          g.primary = r;
          break;
        }
      }
    }
  }
  return revived;
}

std::uint64_t ServeRouter::Insert(std::string_view s) {
  // World-exclusive: mutations are globally serialized in journal order
  // and never interleave with an in-flight sweep (per-shard writer order
  // is a consequence). respawn_mu_ follows in the lock hierarchy — the
  // journal append below is thereby visible to both lock holders. The
  // waiting-writer announcement is what makes the sweep driver drain and
  // release its shared hold (see writers_waiting_).
  writers_waiting_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> world(world_mu_);
  writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> rlock(respawn_mu_);
  if (options_.auto_respawn) RespawnDeadLocked(/*limit=*/0);
  const std::uint64_t id = next_insert_id_++;
  const std::size_t owner =
      static_cast<std::size_t>((id - n_) % shard_sizes_.size());
  ++delta_live_[owner];
  MutationOp op;
  op.insert = true;
  op.id = id;
  op.s.assign(s);
  // Journal before replicating: even if the whole group is down right now,
  // the next respawn replays the journal, so the id is durably assigned
  // from the router's point of view either way.
  shard_ops_[owner].push_back(std::move(op));
  ReplicateMutation(owner, shard_ops_[owner].back());
  return id;
}

bool ServeRouter::Remove(std::uint64_t id) {
  writers_waiting_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> world(world_mu_);
  writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> rlock(respawn_mu_);
  if (options_.auto_respawn) RespawnDeadLocked(/*limit=*/0);
  std::size_t owner = 0;
  if (id < n_) {
    if (base_tombs_.empty()) base_tombs_.assign(TombstoneWords(n_), 0);
    if (TestTombstone(base_tombs_.data(), id)) return false;
    SetTombstone(base_tombs_.data(), id);
    owner = ShardOf(id);
    ++shard_dead_[owner];
    ++base_dead_total_;
  } else if (id < next_insert_id_) {
    const auto it =
        std::lower_bound(dead_delta_ids_.begin(), dead_delta_ids_.end(), id);
    if (it != dead_delta_ids_.end() && *it == id) return false;
    dead_delta_ids_.insert(it, id);
    owner = static_cast<std::size_t>((id - n_) % shard_sizes_.size());
    --delta_live_[owner];
  } else {
    return false;
  }
  MutationOp op;
  op.id = id;
  shard_ops_[owner].push_back(std::move(op));
  ReplicateMutation(owner, shard_ops_[owner].back());
  return true;
}

std::size_t ServeRouter::live_size() const {
  std::shared_lock<std::shared_mutex> world(world_mu_);
  std::size_t delta = 0;
  for (const std::size_t v : delta_live_) delta += v;
  return n_ - base_dead_total_ + delta;
}

std::uint64_t ServeRouter::next_insert_id() const {
  std::shared_lock<std::shared_mutex> world(world_mu_);
  return next_insert_id_;
}

void ServeRouter::ReplicateMutation(std::size_t owner, const MutationOp& op) {
  // The usual replication step at query id 0: every live member applies
  // the op, replies are byte-checked (dedup-stable, so retries after lost
  // replies still agree), and a member that fails is dead — to be
  // replayed at respawn. Caller holds respawn_mu_, so membership is
  // stable across the exchange.
  Group& g = *groups_[owner];
  const std::size_t R = replicas_per_shard_;
  std::vector<std::shared_ptr<Conn>> conns(R);
  std::vector<char> live(R, 0);
  std::size_t primary = 0;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    for (std::size_t r = 0; r < R; ++r) {
      conns[r] = g.members[r].conn;
      live[r] = g.members[r].alive ? 1 : 0;
    }
    primary = g.primary;
  }
  PayloadWriter w;
  w.U64(op.id);
  if (op.insert) w.Str(op.s);
  const FrameType type = op.insert ? FrameType::kInsert : FrameType::kRemove;
  std::vector<std::uint32_t> seqs(R, 0);
  std::vector<char> pending(R, 0), good(R, 0);
  std::vector<std::vector<char>> reply(R);
  for (std::size_t r = 0; r < R; ++r) {
    if (!live[r] || conns[r] == nullptr || conns[r]->failed()) continue;
    seqs[r] = conns[r]->NextSeq();
    conns[r]->Expect(seqs[r], /*qid=*/0);
    if (conns[r]->Send(type, seqs[r], /*qid=*/0, w.buf.data(),
                       w.buf.size())) {
      pending[r] = 1;
    } else {
      conns[r]->Cancel(seqs[r]);
      MarkDeadGlobal(owner, r);
    }
  }
  for (std::size_t r = 0; r < R; ++r) {
    if (!pending[r]) continue;
    Frame f;
    const RecvStatus st = conns[r]->Wait(seqs[r], options_.op_timeout_ms, &f);
    if (st == RecvStatus::kOk && f.type == kReplyType) {
      reply[r] = std::move(f.payload);
      good[r] = 1;
    } else if (st == RecvStatus::kTimeout) {
      conns[r]->Cancel(seqs[r]);
      if (ControlSendRecv(owner, r, type, w.buf, &reply[r],
                          /*retryable=*/true)) {
        good[r] = 1;
      }
    } else {
      MarkDeadGlobal(owner, r);
    }
  }
  std::size_t driver = R;
  if (good[primary]) {
    driver = primary;
  } else {
    for (std::size_t r = 0; r < R; ++r) {
      if (good[r]) {
        driver = r;
        break;
      }
    }
  }
  if (driver == R) return;  // journal replay repairs at respawn
  if (driver != primary) {
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.members[driver].alive) g.primary = driver;
  }
  for (std::size_t r = 0; r < R; ++r) {
    if (r == driver || !good[r]) continue;
    if (reply[r] != reply[driver]) MarkDeadGlobal(owner, r);
  }
}

bool ServeRouter::ReplayMutations(std::size_t s, std::size_t r) {
  for (const MutationOp& op : shard_ops_[s]) {
    PayloadWriter w;
    w.U64(op.id);
    if (op.insert) w.Str(op.s);
    std::vector<char> reply;
    if (!ControlSendRecv(s, r,
                         op.insert ? FrameType::kInsert : FrameType::kRemove,
                         w.buf, &reply, /*retryable=*/true)) {
      return false;  // ControlSendRecv already marked the replica dead
    }
  }
  return true;
}

// The distributed form of the mutable tier's delta phase: every shard
// holding live delta entries runs one bounded scan (hedged like Eval —
// the scan is a pure function of the shard's delta), capped by the base
// sweep's incumbents. The gathered hits are sorted globally by
// NeighborLess and strict-merged, which reproduces the (distance, id)
// tie-break exactly: all base ids < all delta ids, and within the delta
// the sort puts the lower id first at equal distance.
void ServeRouter::DeltaPhase(QueryCtx& ctx, std::string_view query,
                             std::size_t k, std::int64_t deadline,
                             std::vector<ShardView>& views,
                             std::vector<NeighborResult>& best,
                             std::uint64_t* computations,
                             std::uint64_t* abandons, ServeResult* res) {
  const std::size_t shards = shard_sizes_.size();
  const double cap0 = best.size() < k ? kInf : best.back().distance;
  std::vector<NeighborResult> hits;
  for (std::size_t s = 0; s < shards; ++s) {
    if (delta_live_[s] == 0) continue;
    // A shard already lost to the base sweep is in missing_shards; its
    // delta is unreachable through the same dead group.
    if (!views[s].active) continue;
    if (RemainingMs(deadline) == 0) {
      res->missing_shards.push_back(s);
      continue;
    }
    PayloadWriter w;
    w.Str(query);
    w.F64(cap0);
    w.U64(k);
    std::vector<char> reply;
    bool ok = GroupEval(ctx, s, FrameType::kDeltaScan, w.buf, &reply,
                        deadline, res);
    if (ok) {
      PayloadReader r(reply);
      const std::size_t mark = hits.size();
      const std::uint64_t count = r.U64();
      ok = r.ok() && count <= k;  // a worker returns at most k hits
      for (std::uint64_t i = 0; ok && i < count; ++i) {
        const std::uint64_t id = r.U64();
        const double d = r.F64();
        ok = r.ok();
        if (ok) hits.push_back({static_cast<std::size_t>(id), d});
      }
      const std::uint64_t comps = r.U64();
      const std::uint64_t ab = r.U64();
      ok = ok && r.Done();
      if (ok) {
        *computations += comps;
        *abandons += ab;
      } else {
        // Partially decoded garbage: drop what it contributed.
        hits.resize(mark);
        MarkDead(ctx, s, ctx.groups[s].primary);
      }
    }
    if (!ok) {
      views[s].active = false;
      res->missing_shards.push_back(s);
    }
  }
  std::sort(hits.begin(), hits.end(), NeighborLess);
  for (const NeighborResult& h : hits) InsertNeighborTopK(best, k, h);
}

// The distributed `ShardedLaesa::Sweep`: identical decisions on identical
// values in identical order — only the per-shard kernel passes run in the
// workers (on every live member of each replica group). Read side by side
// with sharded_laesa.cc.
ServeResult ServeRouter::QueryLazy(QueryCtx& ctx, std::string_view query,
                                   std::size_t k, double slack) {
  ServeResult res;
  std::size_t delta_total = 0;
  for (const std::size_t v : delta_live_) delta_total += v;
  k = std::min(k, n_ - base_dead_total_ + delta_total);
  if (k == 0) return res;
  const std::int64_t deadline = NowMs() + options_.query_deadline_ms;
  const std::size_t shards = shard_sizes_.size();
  // Any base tombstone anywhere switches the begin to its masked form:
  // every worker compacts the deleted slots out before anything is
  // visited and reports its surviving minima, so the router can pick a
  // live start (a dead global pivot 0 must not be visited). Without
  // tombstones the legacy begin runs — the healthy immutable path stays
  // bit-identical, stats included.
  const bool masked = base_dead_total_ > 0;

  std::vector<ShardView> views(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    views[s].active = ctx.groups[s].AnyAlive();
    if (!views[s].active) res.missing_shards.push_back(s);
  }

  // Scatter the sweep start to every live replica. Idempotent: a member
  // that misses the timeout is retried before being declared dead.
  {
    PayloadWriter w;
    w.Str(query);
    w.U32(masked ? 1u : 0u);
    std::vector<std::vector<char>> replies(shards);
    Broadcast(ctx, FrameType::kBeginLazy, w.buf,
              /*retryable=*/true, RemainingMs(deadline), deadline, views,
              replies, res.missing_shards, &res);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      bool ok;
      if (masked) {
        const WireCompact wc = DecodeCompact(r);
        views[s].last = wc.pass;
        views[s].live = wc.pass.live;
        views[s].live_pivots = wc.live_pivots;
        // The mask pass drops exactly the tombstoned slots (every live
        // slot's length bound is finite), so the survivor count is an
        // integrity check just like the legacy full count.
        ok = r.Done() && views[s].live == shard_sizes_[s] - shard_dead_[s];
      } else {
        views[s].live = r.U64();
        views[s].live_pivots = r.U64();
        ok = r.Done() && views[s].live == shard_sizes_[s];
      }
      if (!ok) {
        // The driving reply decoded to garbage (CRC-valid but wrong):
        // with the primary's stream suspect there is no quorum to promote
        // on, so the shard sits this query out. EnsurePrimary (without
        // counting a failover — nothing was saved) leaves the group
        // pointing at a live member for the next query.
        MarkDead(ctx, s, ctx.groups[s].primary);
        EnsurePrimary(ctx, s, nullptr);
        views[s].active = false;
        res.missing_shards.push_back(s);
      }
    }
  }

  std::size_t total_live = 0, live_pivots = 0;
  auto recount = [&]() {
    total_live = 0;
    live_pivots = 0;
    for (const ShardView& v : views) {
      if (!v.active) continue;
      total_live += v.live;
      live_pivots += v.live_pivots;
    }
  };
  recount();

  // Merge per-shard minima in shard order with strict '<' — the lowest
  // global index wins ties, exactly as in process.
  auto select_next = [&]() -> std::size_t {
    std::size_t next = kSweepNone, next_pivot = kSweepNone;
    double next_key = kInf, next_pivot_key = kInf;
    for (const ShardView& v : views) {
      if (!v.active) continue;
      if (v.last.next != kSweepNone && v.last.next_key < next_key) {
        next_key = v.last.next_key;
        next = v.last.next;
      }
      if (v.last.next_pivot != kSweepNone &&
          v.last.next_pivot_key < next_pivot_key) {
        next_pivot_key = v.last.next_pivot_key;
        next_pivot = v.last.next_pivot;
      }
    }
    return live_pivots > 0 ? next_pivot : next;
  };

  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? kInf : best.back().distance; };
  std::uint64_t computations = 0, abandons = 0, pivot_computations = 0;

  // Legacy start: the first pivot, as in process. Masked start: the best
  // survivor of the begin passes — tombstoned slots are already gone.
  std::size_t s_cand = masked ? select_next() : pivots_[0];
  while (total_live > 0 && s_cand != kSweepNone) {
    if (RemainingMs(deadline) == 0) {
      // Deadline: degrade to the incumbents; every shard still holding
      // live candidates is missing from the answer.
      for (std::size_t s = 0; s < shards; ++s) {
        if (views[s].active && views[s].live > 0) {
          res.missing_shards.push_back(s);
        }
      }
      break;
    }
    const std::int32_t rank = pivot_rank_[s_cand];
    const bool is_pivot = rank >= 0;
    const double cap = is_pivot ? kInf : kth();
    double d;
    if (is_pivot) {
      // Pivot strings live in the manifest: the visit evaluation runs
      // router-side, like the pivot stage.
      d = distance_->DistanceBounded(query, pivot_strings_[rank], cap);
    } else {
      const std::size_t owner = ShardOf(s_cand);
      PayloadWriter w;
      w.U64(s_cand);
      w.F64(cap);
      std::vector<char> reply;
      bool ok = views[owner].active &&
                GroupEval(ctx, owner, FrameType::kEval, w.buf, &reply,
                          deadline, &res);
      if (ok) {
        PayloadReader r(reply);
        d = r.F64();
        ok = r.Done();
        if (!ok) MarkDead(ctx, owner, ctx.groups[owner].primary);
      }
      if (!ok) {
        // The candidate's whole group is gone: drop the shard from the
        // sweep and pick the best survivor from the remaining shards'
        // last passes. No visit happened, so no counters move.
        views[owner].active = false;
        res.missing_shards.push_back(owner);
        recount();
        s_cand = select_next();
        continue;
      }
    }
    ++computations;
    pivot_computations += is_pivot ? 1 : 0;
    const bool abandoned = d >= cap;
    if (abandoned) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s_cand, d});
    }

    // Scatter the visit pass to every live replica; the elimination
    // radius tightens with the new incumbent. Mutating — never retried: a
    // member that misses the timeout here is dead on the spot, and only a
    // whole lost group degrades the shard.
    const double bound = kth();
    PayloadWriter w;
    w.U32(static_cast<std::uint32_t>(s_cand));
    w.I32(rank);
    w.F64(d);
    w.F64(slack);
    w.F64(bound);
    std::vector<std::vector<char>> replies(shards);
    Broadcast(ctx, FrameType::kStep, w.buf,
              /*retryable=*/false, RemainingMs(deadline), deadline, views,
              replies, res.missing_shards, &res);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) {
        MarkDead(ctx, s, ctx.groups[s].primary);
        views[s].active = false;
        res.missing_shards.push_back(s);
        continue;
      }
      views[s].last = wc.pass;
      views[s].live = wc.pass.live;
      views[s].live_pivots = wc.live_pivots;
    }
    recount();
    if (total_live == 0) break;
    s_cand = select_next();
  }

  // The delta phase: everything inserted since the snapshot lives in the
  // workers' in-memory deltas, scanned bounded by the base incumbents.
  DeltaPhase(ctx, query, k, deadline, views, best, &computations, &abandons,
             &res);

  res.stats.distance_computations += computations;
  res.stats.bounded_abandons += abandons;
  res.stats.pivot_computations += pivot_computations;
  std::sort(res.missing_shards.begin(), res.missing_shards.end());
  res.missing_shards.erase(
      std::unique(res.missing_shards.begin(), res.missing_shards.end()),
      res.missing_shards.end());
  res.partial = !res.missing_shards.empty();
  res.stats.shards_degraded = res.missing_shards.size();
  res.neighbors = std::move(best);
  return res;
}

// The distributed `ShardedLaesa::SweepWithRow`: the pivot row (computed
// by the caller — the batch path router-side, the admission front end for
// its coalesced batches) seeds the incumbents (ties admitted, as the row
// is already paid for), then the same adaptive loop runs over the merged
// survivors. The row evaluations are charged here, once per query, as the
// in-process batch engine charges them.
ServeResult ServeRouter::QueryRow(QueryCtx& ctx, std::string_view query,
                                  std::size_t k, const double* row) {
  ServeResult res;
  std::size_t delta_total = 0;
  for (const std::size_t v : delta_live_) delta_total += v;
  k = std::min(k, n_ - base_dead_total_ + delta_total);
  if (k == 0) return res;
  const std::int64_t deadline = NowMs() + options_.query_deadline_ms;
  const std::size_t shards = shard_sizes_.size();
  const std::size_t np = pivots_.size();

  std::vector<ShardView> views(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    views[s].active = ctx.groups[s].AnyAlive();
    if (!views[s].active) res.missing_shards.push_back(s);
  }

  res.stats.distance_computations += np;
  res.stats.pivot_computations += np;

  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? kInf : best.back().distance; };
  for (std::size_t p = 0; p < np; ++p) {
    // A tombstoned pivot's evaluation still tightens every worker's bounds
    // (its row is broadcast below, an admissible use), but it must never
    // become an incumbent — it is no longer a member of the live set.
    if (!base_tombs_.empty() && TestTombstone(base_tombs_.data(), pivots_[p])) {
      continue;
    }
    InsertNeighborTopK(best, k, {pivots_[p], row[p]}, /*admit_ties=*/true);
  }
  const double seed_bound = kth();

  {
    PayloadWriter w;
    w.Str(query);
    w.F64(seed_bound);
    w.U64(np);
    w.Raw(row, np * sizeof(double));
    std::vector<std::vector<char>> replies(shards);
    Broadcast(ctx, FrameType::kBeginRow, w.buf,
              /*retryable=*/true, RemainingMs(deadline), deadline, views,
              replies, res.missing_shards, &res);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) {
        MarkDead(ctx, s, ctx.groups[s].primary);
        views[s].active = false;
        res.missing_shards.push_back(s);
        continue;
      }
      views[s].last = wc.pass;
      views[s].live = wc.pass.live;
      views[s].live_pivots = 0;
    }
  }

  std::size_t total_live = 0;
  auto recount = [&]() {
    total_live = 0;
    for (const ShardView& v : views) {
      if (v.active) total_live += v.live;
    }
  };
  auto select_next = [&]() -> std::size_t {
    std::size_t next = kSweepNone;
    double next_key = kInf;
    for (const ShardView& v : views) {
      if (!v.active) continue;
      if (v.last.next != kSweepNone && v.last.next_key < next_key) {
        next_key = v.last.next_key;
        next = v.last.next;
      }
    }
    return next;
  };
  recount();
  std::size_t s_cand = select_next();

  std::uint64_t computations = 0, abandons = 0;
  while (total_live > 0 && s_cand != kSweepNone) {
    if (RemainingMs(deadline) == 0) {
      for (std::size_t s = 0; s < shards; ++s) {
        if (views[s].active && views[s].live > 0) {
          res.missing_shards.push_back(s);
        }
      }
      break;
    }
    const double cap = kth();
    const std::size_t owner = ShardOf(s_cand);
    PayloadWriter ew;
    ew.U64(s_cand);
    ew.F64(cap);
    std::vector<char> reply;
    bool ok = views[owner].active &&
              GroupEval(ctx, owner, FrameType::kEval, ew.buf, &reply,
                        deadline, &res);
    double d = 0.0;
    if (ok) {
      PayloadReader r(reply);
      d = r.F64();
      ok = r.Done();
      if (!ok) MarkDead(ctx, owner, ctx.groups[owner].primary);
    }
    if (!ok) {
      views[owner].active = false;
      res.missing_shards.push_back(owner);
      recount();
      s_cand = select_next();
      continue;
    }
    ++computations;
    const bool abandoned = d >= cap;
    if (abandoned) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s_cand, d});
    }

    const double bound = kth();
    PayloadWriter w;
    w.U32(static_cast<std::uint32_t>(s_cand));
    w.F64(bound);
    std::vector<std::vector<char>> replies(shards);
    Broadcast(ctx, FrameType::kStepRow, w.buf,
              /*retryable=*/false, RemainingMs(deadline), deadline, views,
              replies, res.missing_shards, &res);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) {
        MarkDead(ctx, s, ctx.groups[s].primary);
        views[s].active = false;
        res.missing_shards.push_back(s);
        continue;
      }
      views[s].last = wc.pass;
      views[s].live = wc.pass.live;
    }
    recount();
    if (total_live == 0) break;
    s_cand = select_next();
  }

  DeltaPhase(ctx, query, k, deadline, views, best, &computations, &abandons,
             &res);

  res.stats.distance_computations += computations;
  res.stats.bounded_abandons += abandons;
  std::sort(res.missing_shards.begin(), res.missing_shards.end());
  res.missing_shards.erase(
      std::unique(res.missing_shards.begin(), res.missing_shards.end()),
      res.missing_shards.end());
  res.partial = !res.missing_shards.empty();
  res.stats.shards_degraded = res.missing_shards.size();
  res.neighbors = std::move(best);
  return res;
}

}  // namespace cned
