#include "serve/router.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/binary_io.h"
#include "distances/registry.h"
#include "serve/frame.h"
#include "serve/shard_snapshot.h"
#include "serve/wire.h"
#include "serve/worker.h"

namespace cned {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeRouter::ServeRouter(const std::string& snapshot_dir,
                         const ServeOptions& options)
    : distance_(MakeDistance(options.distance)),
      dir_(snapshot_dir),
      options_(options) {
  // The manifest is small (pivot ids + strings); the copying reader also
  // gives the router the same always-on checksum verification the workers
  // run on their shard files.
  BinaryReader reader(ManifestPath(dir_));
  const auto counts =
      reader.Header(kRouterManifestMagic, kRouterManifestVersion);
  n_ = counts[0];
  const std::uint64_t shards = counts[1];
  const std::uint64_t np = counts[2];
  const std::uint64_t arena_bytes = counts[3];
  if (shards == 0 || np == 0 || np > n_) {
    throw std::runtime_error("ServeRouter: malformed manifest counts");
  }
  reader.RequireArray(shards, sizeof(std::uint64_t));
  shard_sizes_.resize(shards);
  reader.Align();
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "64-bit shard sizes expected");
  reader.Raw(shard_sizes_.data(), shards * sizeof(std::uint64_t));
  bases_.resize(shards + 1);
  bases_[0] = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    bases_[s + 1] = bases_[s] + shard_sizes_[s];
  }
  if (bases_[shards] != n_) {
    throw std::runtime_error("ServeRouter: shard sizes do not sum to n");
  }
  reader.RequireArray(np, sizeof(std::uint64_t));
  pivots_.resize(np);
  reader.Align();
  reader.Raw(pivots_.data(), np * sizeof(std::uint64_t));
  pivot_rank_.assign(n_, -1);
  for (std::size_t p = 0; p < np; ++p) {
    if (pivots_[p] >= n_ || pivot_rank_[pivots_[p]] >= 0) {
      throw std::runtime_error("ServeRouter: bad manifest pivot ids");
    }
    pivot_rank_[pivots_[p]] = static_cast<std::int32_t>(p);
  }
  reader.RequireArray(np, sizeof(std::uint64_t));
  std::vector<std::uint64_t> lens(np);
  reader.Align();
  reader.Raw(lens.data(), np * sizeof(std::uint64_t));
  std::uint64_t lens_total = 0;
  for (std::uint64_t l : lens) lens_total += l;
  if (lens_total != arena_bytes) {
    throw std::runtime_error("ServeRouter: manifest pivot arena mismatch");
  }
  reader.Align();
  pivot_strings_.resize(np);
  for (std::size_t p = 0; p < np; ++p) {
    pivot_strings_[p].resize(lens[p]);
    reader.Raw(pivot_strings_[p].data(), lens[p]);
  }

  workers_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    SpawnWorker(s, options_.fault_spec);
  }
  if (!PingAll()) {
    bool any = false;
    for (const Worker& w : workers_) any = any || w.alive;
    if (!any) {
      throw std::runtime_error("ServeRouter: no worker came up");
    }
  }
}

ServeRouter::~ServeRouter() {
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    Worker& w = workers_[s];
    if (w.fd >= 0) {
      // Best-effort clean shutdown; the SIGKILL below is the guarantee.
      SendFrame(w.fd, FrameType::kShutdown, ++w.seq, nullptr, 0);
      close(w.fd);
      w.fd = -1;
    }
    if (w.pid > 0) {
      kill(w.pid, SIGKILL);
      int status = 0;
      waitpid(w.pid, &status, 0);
    }
  }
}

void ServeRouter::SpawnWorker(std::size_t s, const std::string& fault_spec) {
  int sv[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    workers_[s].alive = false;
    return;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(sv[0]);
    close(sv[1]);
    workers_[s].alive = false;
    return;
  }
  if (pid == 0) {
    // Child: drop every fd belonging to the router's other workers so a
    // crashed sibling's socket still reads EOF at the router.
    close(sv[0]);
    for (const Worker& other : workers_) {
      if (other.fd >= 0) close(other.fd);
    }
    WorkerConfig config;
    config.shard_id = s;
    config.store_path = ShardStorePath(dir_, s);
    config.index_path = ShardIndexPath(dir_, s);
    config.distance = options_.distance;
    config.fault_spec = fault_spec;
    if (!options_.worker_binary.empty()) {
      // Exec form: hand the socket over as fd 3.
      if (sv[1] != 3) {
        dup2(sv[1], 3);
        close(sv[1]);
      }
      execl(options_.worker_binary.c_str(), options_.worker_binary.c_str(),
            "--fd=3", ("--shard=" + std::to_string(s)).c_str(),
            ("--store=" + config.store_path).c_str(),
            ("--index=" + config.index_path).c_str(),
            ("--distance=" + config.distance).c_str(),
            ("--fault=" + config.fault_spec).c_str(), (char*)nullptr);
      _exit(127);
    }
    _exit(RunShardWorker(sv[1], config));
  }
  close(sv[1]);
  workers_[s].pid = pid;
  workers_[s].fd = sv[0];
  workers_[s].alive = true;
  workers_[s].seq = 0;
}

void ServeRouter::MarkDead(std::size_t s) {
  Worker& w = workers_[s];
  w.alive = false;
  if (w.fd >= 0) {
    close(w.fd);
    w.fd = -1;
  }
}

void ServeRouter::ReapWorker(std::size_t s) {
  Worker& w = workers_[s];
  if (w.fd >= 0) {
    close(w.fd);
    w.fd = -1;
  }
  if (w.pid > 0) {
    kill(w.pid, SIGKILL);
    int status = 0;
    waitpid(w.pid, &status, 0);
    w.pid = -1;
  }
  w.alive = false;
}

bool ServeRouter::SendRecv(std::size_t s, std::uint32_t type,
                           const std::vector<char>& payload,
                           std::vector<char>* reply, int timeout_ms,
                           bool retryable) {
  Worker& w = workers_[s];
  const int attempts = retryable ? 1 + options_.op_retries : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (!w.alive) return false;
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<std::int64_t>(options_.backoff_base_ms)
          << (attempt - 1)));
    }
    const std::uint32_t seq = ++w.seq;
    if (!SendFrame(w.fd, static_cast<FrameType>(type), seq, payload.data(),
                   payload.size())) {
      MarkDead(s);
      return false;
    }
    Frame frame;
    RecvStatus st;
    for (;;) {
      st = RecvFrame(w.fd, &frame, timeout_ms);
      // Replies to a timed-out earlier attempt carry an older sequence
      // number; discard them and keep reading.
      if (st == RecvStatus::kOk && frame.seq != seq) continue;
      break;
    }
    if (st == RecvStatus::kOk) {
      if (frame.type != static_cast<std::uint32_t>(FrameType::kReply)) {
        // kError (a worker-side exception) or an unexpected type: the
        // shard's state is suspect either way.
        MarkDead(s);
        return false;
      }
      if (reply != nullptr) *reply = std::move(frame.payload);
      return true;
    }
    if (st == RecvStatus::kClosed || st == RecvStatus::kMalformed) {
      // A corrupt stream is never resynchronised: dead shard.
      MarkDead(s);
      return false;
    }
    // kTimeout: retry when the op allows it.
    if (!retryable) {
      MarkDead(s);
      return false;
    }
  }
  MarkDead(s);
  return false;
}

void ServeRouter::Broadcast(std::uint32_t type,
                            const std::vector<char>& payload, bool retryable,
                            int timeout_ms, std::vector<ShardView>& views,
                            std::vector<std::vector<char>>& replies,
                            std::vector<std::size_t>& missing) {
  const std::size_t shards = views.size();
  std::vector<std::uint32_t> sent_seq(shards, 0);
  std::vector<bool> pending(shards, false), retry(shards, false),
      failed(shards, false);
  // Scatter first so every worker computes its pass concurrently...
  for (std::size_t s = 0; s < shards; ++s) {
    if (!views[s].active) continue;
    Worker& w = workers_[s];
    sent_seq[s] = ++w.seq;
    if (SendFrame(w.fd, static_cast<FrameType>(type), sent_seq[s],
                  payload.data(), payload.size())) {
      pending[s] = true;
    } else {
      failed[s] = true;
    }
  }
  // ...then gather in shard order.
  for (std::size_t s = 0; s < shards; ++s) {
    if (!pending[s]) continue;
    Frame frame;
    RecvStatus st;
    for (;;) {
      st = RecvFrame(workers_[s].fd, &frame, timeout_ms);
      if (st == RecvStatus::kOk && frame.seq != sent_seq[s]) continue;
      break;
    }
    if (st == RecvStatus::kOk &&
        frame.type == static_cast<std::uint32_t>(FrameType::kReply)) {
      replies[s] = std::move(frame.payload);
    } else if (st == RecvStatus::kTimeout && retryable) {
      retry[s] = true;
    } else {
      failed[s] = true;
    }
  }
  for (std::size_t s = 0; s < shards; ++s) {
    if (retry[s] && SendRecv(s, type, payload, &replies[s], timeout_ms,
                             /*retryable=*/true)) {
      continue;
    }
    if (retry[s] || failed[s]) {
      MarkDead(s);
      views[s].active = false;
      missing.push_back(s);
    }
  }
}

std::size_t ServeRouter::ShardOf(std::size_t global) const {
  const auto it =
      std::upper_bound(bases_.begin() + 1, bases_.end(), global);
  return static_cast<std::size_t>(it - (bases_.begin() + 1));
}

int ServeRouter::RemainingMs(std::int64_t deadline_ms) const {
  const std::int64_t left = deadline_ms - NowMs();
  if (left <= 0) return 0;
  const int cap = options_.op_timeout_ms;
  return left < cap ? static_cast<int>(left) : cap;
}

ServeResult ServeRouter::Nearest(std::string_view query) {
  if (options_.auto_respawn) RespawnDead();
  return QueryLazy(query, 1, /*slack=*/1.0);
}

ServeResult ServeRouter::KNearest(std::string_view query, std::size_t k) {
  if (options_.auto_respawn) RespawnDead();
  return QueryLazy(query, k, /*slack=*/1.0);
}

std::vector<ServeResult> ServeRouter::NearestBatch(
    const std::vector<std::string>& queries) {
  return KNearestBatch(queries, 1);
}

std::vector<ServeResult> ServeRouter::KNearestBatch(
    const std::vector<std::string>& queries, std::size_t k) {
  std::vector<ServeResult> out;
  out.reserve(queries.size());
  for (const std::string& q : queries) {
    // Respawn between queries: one crash costs one partial answer, and the
    // respawned worker (re-mapped, checksum-verified) rejoins for the next.
    if (options_.auto_respawn) RespawnDead();
    out.push_back(QueryRow(q, k));
  }
  return out;
}

bool ServeRouter::PingAll() {
  bool all = true;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    if (!workers_[s].alive) {
      all = false;
      continue;
    }
    std::vector<char> reply;
    if (!SendRecv(s, static_cast<std::uint32_t>(FrameType::kPing), {}, &reply,
                  options_.op_timeout_ms, /*retryable=*/true)) {
      all = false;
      continue;
    }
    PayloadReader r(reply);
    if (r.U64() != s || !r.Done()) {
      MarkDead(s);
      all = false;
    }
  }
  return all;
}

std::size_t ServeRouter::RespawnDead() {
  std::size_t revived = 0;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    if (workers_[s].alive) continue;
    ReapWorker(s);
    SpawnWorker(s, options_.respawn_fault_spec);
    if (!workers_[s].alive) continue;
    std::vector<char> reply;
    if (SendRecv(s, static_cast<std::uint32_t>(FrameType::kPing), {}, &reply,
                 options_.op_timeout_ms, /*retryable=*/true)) {
      ++revived;
    }
  }
  return revived;
}

// The distributed `ShardedLaesa::Sweep`: identical decisions on identical
// values in identical order — only the per-shard kernel passes run in the
// workers. Read side by side with sharded_laesa.cc.
ServeResult ServeRouter::QueryLazy(std::string_view query, std::size_t k,
                                   double slack) {
  ServeResult res;
  k = std::min(k, n_);
  if (k == 0) return res;
  const std::int64_t deadline = NowMs() + options_.query_deadline_ms;
  const std::size_t shards = shard_sizes_.size();

  std::vector<ShardView> views(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    views[s].active = workers_[s].alive;
    if (!views[s].active) res.missing_shards.push_back(s);
  }

  // Scatter the sweep start. Idempotent: a worker that misses the timeout
  // is retried before being declared dead.
  {
    PayloadWriter w;
    w.Str(query);
    std::vector<std::vector<char>> replies(shards);
    Broadcast(static_cast<std::uint32_t>(FrameType::kBeginLazy), w.buf,
              /*retryable=*/true, RemainingMs(deadline), views, replies,
              res.missing_shards);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      views[s].live = r.U64();
      views[s].live_pivots = r.U64();
      if (!r.Done() || views[s].live != shard_sizes_[s]) {
        MarkDead(s);
        views[s].active = false;
        res.missing_shards.push_back(s);
      }
    }
  }

  std::size_t total_live = 0, live_pivots = 0;
  auto recount = [&]() {
    total_live = 0;
    live_pivots = 0;
    for (const ShardView& v : views) {
      if (!v.active) continue;
      total_live += v.live;
      live_pivots += v.live_pivots;
    }
  };
  recount();

  // Merge per-shard minima in shard order with strict '<' — the lowest
  // global index wins ties, exactly as in process.
  auto select_next = [&]() -> std::size_t {
    std::size_t next = kSweepNone, next_pivot = kSweepNone;
    double next_key = kInf, next_pivot_key = kInf;
    for (const ShardView& v : views) {
      if (!v.active) continue;
      if (v.last.next != kSweepNone && v.last.next_key < next_key) {
        next_key = v.last.next_key;
        next = v.last.next;
      }
      if (v.last.next_pivot != kSweepNone &&
          v.last.next_pivot_key < next_pivot_key) {
        next_pivot_key = v.last.next_pivot_key;
        next_pivot = v.last.next_pivot;
      }
    }
    return live_pivots > 0 ? next_pivot : next;
  };

  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? kInf : best.back().distance; };
  std::uint64_t computations = 0, abandons = 0, pivot_computations = 0;

  std::size_t s_cand = pivots_[0];
  while (total_live > 0 && s_cand != kSweepNone) {
    if (RemainingMs(deadline) == 0) {
      // Deadline: degrade to the incumbents; every shard still holding
      // live candidates is missing from the answer.
      for (std::size_t s = 0; s < shards; ++s) {
        if (views[s].active && views[s].live > 0) {
          res.missing_shards.push_back(s);
        }
      }
      break;
    }
    const std::int32_t rank = pivot_rank_[s_cand];
    const bool is_pivot = rank >= 0;
    const double cap = is_pivot ? kInf : kth();
    double d;
    if (is_pivot) {
      // Pivot strings live in the manifest: the visit evaluation runs
      // router-side, like the pivot stage.
      d = distance_->DistanceBounded(query, pivot_strings_[rank], cap);
    } else {
      const std::size_t owner = ShardOf(s_cand);
      PayloadWriter w;
      w.U64(s_cand);
      w.F64(cap);
      std::vector<char> reply;
      bool ok = views[owner].active &&
                SendRecv(owner, static_cast<std::uint32_t>(FrameType::kEval),
                         w.buf, &reply, RemainingMs(deadline),
                         /*retryable=*/true);
      if (ok) {
        PayloadReader r(reply);
        d = r.F64();
        ok = r.Done();
        if (!ok) MarkDead(owner);
      }
      if (!ok) {
        // The candidate's shard is gone: drop it from the sweep and pick
        // the best survivor from the remaining shards' last passes. No
        // visit happened, so no counters move.
        views[owner].active = false;
        res.missing_shards.push_back(owner);
        recount();
        s_cand = select_next();
        continue;
      }
    }
    ++computations;
    pivot_computations += is_pivot ? 1 : 0;
    const bool abandoned = d >= cap;
    if (abandoned) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s_cand, d});
    }

    // Scatter the visit pass; the elimination radius tightens with the
    // new incumbent. Mutating — never retried: a shard that misses the
    // timeout here is degraded on the spot.
    const double bound = kth();
    PayloadWriter w;
    w.U32(static_cast<std::uint32_t>(s_cand));
    w.I32(rank);
    w.F64(d);
    w.F64(slack);
    w.F64(bound);
    std::vector<std::vector<char>> replies(shards);
    Broadcast(static_cast<std::uint32_t>(FrameType::kStep), w.buf,
              /*retryable=*/false, RemainingMs(deadline), views, replies,
              res.missing_shards);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) {
        MarkDead(s);
        views[s].active = false;
        res.missing_shards.push_back(s);
        continue;
      }
      views[s].last = wc.pass;
      views[s].live = wc.pass.live;
      views[s].live_pivots = wc.live_pivots;
    }
    recount();
    if (total_live == 0) break;
    s_cand = select_next();
  }

  res.stats.distance_computations += computations;
  res.stats.bounded_abandons += abandons;
  res.stats.pivot_computations += pivot_computations;
  std::sort(res.missing_shards.begin(), res.missing_shards.end());
  res.missing_shards.erase(
      std::unique(res.missing_shards.begin(), res.missing_shards.end()),
      res.missing_shards.end());
  res.partial = !res.missing_shards.empty();
  res.stats.shards_degraded = res.missing_shards.size();
  res.neighbors = std::move(best);
  return res;
}

// The distributed `ShardedLaesa::SweepWithRow`: the router evaluates the
// pivot row locally, seeds the incumbents (ties admitted, as the row is
// already paid for), scatters row + seed bound, then runs the same
// adaptive loop over the merged survivors.
ServeResult ServeRouter::QueryRow(std::string_view query, std::size_t k) {
  ServeResult res;
  k = std::min(k, n_);
  if (k == 0) return res;
  const std::int64_t deadline = NowMs() + options_.query_deadline_ms;
  const std::size_t shards = shard_sizes_.size();
  const std::size_t np = pivots_.size();

  std::vector<ShardView> views(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    views[s].active = workers_[s].alive;
    if (!views[s].active) res.missing_shards.push_back(s);
  }

  // Pivot stage, router-side (counted as the batch engine counts it).
  std::vector<double> row(np);
  for (std::size_t p = 0; p < np; ++p) {
    row[p] = distance_->Distance(query, pivot_strings_[p]);
  }
  res.stats.distance_computations += np;
  res.stats.pivot_computations += np;

  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? kInf : best.back().distance; };
  for (std::size_t p = 0; p < np; ++p) {
    InsertNeighborTopK(best, k, {pivots_[p], row[p]}, /*admit_ties=*/true);
  }
  const double seed_bound = kth();

  {
    PayloadWriter w;
    w.Str(query);
    w.F64(seed_bound);
    w.U64(np);
    w.Raw(row.data(), np * sizeof(double));
    std::vector<std::vector<char>> replies(shards);
    Broadcast(static_cast<std::uint32_t>(FrameType::kBeginRow), w.buf,
              /*retryable=*/true, RemainingMs(deadline), views, replies,
              res.missing_shards);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) {
        MarkDead(s);
        views[s].active = false;
        res.missing_shards.push_back(s);
        continue;
      }
      views[s].last = wc.pass;
      views[s].live = wc.pass.live;
      views[s].live_pivots = 0;
    }
  }

  std::size_t total_live = 0;
  auto recount = [&]() {
    total_live = 0;
    for (const ShardView& v : views) {
      if (v.active) total_live += v.live;
    }
  };
  auto select_next = [&]() -> std::size_t {
    std::size_t next = kSweepNone;
    double next_key = kInf;
    for (const ShardView& v : views) {
      if (!v.active) continue;
      if (v.last.next != kSweepNone && v.last.next_key < next_key) {
        next_key = v.last.next_key;
        next = v.last.next;
      }
    }
    return next;
  };
  recount();
  std::size_t s_cand = select_next();

  std::uint64_t computations = 0, abandons = 0;
  while (total_live > 0 && s_cand != kSweepNone) {
    if (RemainingMs(deadline) == 0) {
      for (std::size_t s = 0; s < shards; ++s) {
        if (views[s].active && views[s].live > 0) {
          res.missing_shards.push_back(s);
        }
      }
      break;
    }
    const double cap = kth();
    const std::size_t owner = ShardOf(s_cand);
    PayloadWriter ew;
    ew.U64(s_cand);
    ew.F64(cap);
    std::vector<char> reply;
    bool ok = views[owner].active &&
              SendRecv(owner, static_cast<std::uint32_t>(FrameType::kEval),
                       ew.buf, &reply, RemainingMs(deadline),
                       /*retryable=*/true);
    double d = 0.0;
    if (ok) {
      PayloadReader r(reply);
      d = r.F64();
      ok = r.Done();
      if (!ok) MarkDead(owner);
    }
    if (!ok) {
      views[owner].active = false;
      res.missing_shards.push_back(owner);
      recount();
      s_cand = select_next();
      continue;
    }
    ++computations;
    const bool abandoned = d >= cap;
    if (abandoned) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s_cand, d});
    }

    const double bound = kth();
    PayloadWriter w;
    w.U32(static_cast<std::uint32_t>(s_cand));
    w.F64(bound);
    std::vector<std::vector<char>> replies(shards);
    Broadcast(static_cast<std::uint32_t>(FrameType::kStepRow), w.buf,
              /*retryable=*/false, RemainingMs(deadline), views, replies,
              res.missing_shards);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!views[s].active) continue;
      PayloadReader r(replies[s]);
      const WireCompact wc = DecodeCompact(r);
      if (!r.Done()) {
        MarkDead(s);
        views[s].active = false;
        res.missing_shards.push_back(s);
        continue;
      }
      views[s].last = wc.pass;
      views[s].live = wc.pass.live;
    }
    recount();
    if (total_live == 0) break;
    s_cand = select_next();
  }

  res.stats.distance_computations += computations;
  res.stats.bounded_abandons += abandons;
  std::sort(res.missing_shards.begin(), res.missing_shards.end());
  res.missing_shards.erase(
      std::unique(res.missing_shards.begin(), res.missing_shards.end()),
      res.missing_shards.end());
  res.partial = !res.missing_shards.empty();
  res.stats.shards_degraded = res.missing_shards.size();
  res.neighbors = std::move(best);
  return res;
}

}  // namespace cned
