#include "serve/fault.h"

#include <cstddef>
#include <stdexcept>

namespace cned {
namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::uint64_t ParseU64(const std::string& text, const std::string& what) {
  if (text.empty()) {
    throw std::invalid_argument("CNED_FAULT: empty value for " + what);
  }
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("CNED_FAULT: non-numeric value for " + what +
                                  ": '" + text + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

FaultSpec FaultSpec::Parse(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  for (const std::string& part : Split(text, '|')) {
    if (part.empty()) continue;
    const std::size_t colon = part.find(':');
    const std::string kind_name = part.substr(0, colon);
    FaultDirective d;
    if (kind_name == "delay") {
      d.kind = FaultDirective::Kind::kDelay;
    } else if (kind_name == "drop") {
      d.kind = FaultDirective::Kind::kDrop;
    } else if (kind_name == "crash") {
      d.kind = FaultDirective::Kind::kCrash;
    } else if (kind_name == "corrupt") {
      d.kind = FaultDirective::Kind::kCorrupt;
    } else if (kind_name == "mangle") {
      d.kind = FaultDirective::Kind::kMangle;
    } else {
      throw std::invalid_argument("CNED_FAULT: unknown fault kind '" +
                                  kind_name + "'");
    }
    if (colon != std::string::npos && colon + 1 < part.size()) {
      for (const std::string& kv : Split(part.substr(colon + 1), ',')) {
        if (kv.empty()) continue;
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          throw std::invalid_argument("CNED_FAULT: expected key=value, got '" +
                                      kv + "'");
        }
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "shard") {
          d.shard = static_cast<std::int64_t>(ParseU64(val, key));
        } else if (key == "replica") {
          d.replica = static_cast<std::int64_t>(ParseU64(val, key));
        } else if (key == "op") {
          if (val != "ping" && val != "begin" && val != "eval" &&
              val != "step") {
            throw std::invalid_argument("CNED_FAULT: unknown op '" + val +
                                        "' (want ping|begin|eval|step)");
          }
          d.op = val;
        } else if (key == "nth") {
          d.nth = ParseU64(val, key);
          if (d.nth == 0) {
            throw std::invalid_argument("CNED_FAULT: nth is 1-based");
          }
        } else if (key == "every") {
          d.every = ParseU64(val, key);
          if (d.every == 0) {
            throw std::invalid_argument("CNED_FAULT: every must be >= 1");
          }
        } else if (key == "ms") {
          d.ms = ParseU64(val, key);
        } else {
          throw std::invalid_argument("CNED_FAULT: unknown key '" + key + "'");
        }
      }
    }
    spec.directives.push_back(d);
  }
  return spec;
}

FaultInjector::Action FaultInjector::OnRequest(const std::string& op) {
  Action action;
  for (std::size_t i = 0; i < spec_.directives.size(); ++i) {
    const FaultDirective& d = spec_.directives[i];
    if (d.shard >= 0 && d.shard != shard_) continue;
    if (d.replica >= 0 && d.replica != replica_) continue;
    if (!d.op.empty() && d.op != op) continue;
    const std::uint64_t count = ++counts_[i];
    bool fires = true;
    if (d.nth != 0) fires = (count == d.nth);
    if (d.every != 0) fires = fires && (count % d.every == 0);
    if (!fires) continue;
    switch (d.kind) {
      case FaultDirective::Kind::kDelay:
        action.delay_ms += d.ms;
        break;
      case FaultDirective::Kind::kDrop:
        action.drop = true;
        break;
      case FaultDirective::Kind::kCrash:
        action.crash = true;
        break;
      case FaultDirective::Kind::kCorrupt:
        action.corrupt = true;
        break;
      case FaultDirective::Kind::kMangle:
        action.mangle = true;
        break;
    }
  }
  return action;
}

}  // namespace cned
