#ifndef CNED_DISTANCES_REGISTRY_H_
#define CNED_DISTANCES_REGISTRY_H_

#include <string>
#include <vector>

#include "distances/distance.h"

namespace cned {

/// Creates a distance by its paper name. Known names:
///   "dE", "dsum", "dmax", "dmin", "dYB", "dMV", "dC", "dC,h".
/// Throws std::invalid_argument for unknown names.
StringDistancePtr MakeDistance(const std::string& name);

/// All registered distance names, in the order the paper's tables use.
std::vector<std::string> AllDistanceNames();

/// The five distances of the paper's evaluation section (Figures 2-4,
/// Table 1): dYB, dC,h, dMV, dmax, dE.
std::vector<StringDistancePtr> EvaluationDistances();

/// The six distances of Table 2 (adds exact dC and dC,h).
std::vector<StringDistancePtr> ClassificationDistances();

}  // namespace cned

#endif  // CNED_DISTANCES_REGISTRY_H_
