#include "distances/marzal_vidal.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/dp_workspace.h"

namespace cned {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// DP over exact path length L: w[L][i][j] = cheapest weight of an editing
// path of exactly L elementary operations (matches included) aligning the
// i-prefix of x with the j-prefix of y. Two (i,j) planes suffice because
// every operation increases L by one.
//
// Early termination: any path extending beyond the current length restricts
// to a prefix ending in some cell of the current plane, so its final weight
// is at least the plane's minimum finite cell (weights are non-negative)
// and its ratio at least that minimum divided by the maximal length m+n.
// Once that floor reaches min(bound, best_ratio) no later candidate can
// either beat the incumbent or come in under the caller's bound, which
// preserves the `DistanceBounded` contract (and, with bound = +inf, makes
// the plain distance strictly faster without changing its value).
double Solve(std::string_view x, std::string_view y, const EditCosts& costs,
             double bound) {
  const std::size_t m = x.size(), n = y.size();
  if (m == 0 && n == 0) return 0.0;

  const std::size_t width = n + 1;
  DpWorkspace& ws = TlsDpWorkspace();
  ws.plane_a.assign((m + 1) * width, kInf);
  ws.plane_b.assign((m + 1) * width, kInf);
  std::vector<double>* prev = &ws.plane_a;
  std::vector<double>* cur = &ws.plane_b;
  auto at = [width](std::vector<double>& v, std::size_t i,
                    std::size_t j) -> double& { return v[i * width + j]; };

  at(*prev, 0, 0) = 0.0;  // L = 0
  double best_ratio = kInf;
  const std::size_t max_len = m + n;
  for (std::size_t len = 1; len <= max_len; ++len) {
    double plane_min = kInf;
    for (std::size_t i = 0; i <= m; ++i) {
      for (std::size_t j = 0; j <= n; ++j) {
        // Cells reachable with exactly `len` ops satisfy
        // max(i,j) <= len <= i+j; skip the rest cheaply.
        if (len > i + j || len < std::max(i, j)) {
          at(*cur, i, j) = kInf;
          continue;
        }
        double best = kInf;
        if (i > 0 && j > 0) {
          double w = at(*prev, i - 1, j - 1) + costs.Sub(x[i - 1], y[j - 1]);
          best = std::min(best, w);
        }
        if (i > 0) {
          best = std::min(best, at(*prev, i - 1, j) + costs.Del(x[i - 1]));
        }
        if (j > 0) {
          best = std::min(best, at(*prev, i, j - 1) + costs.Ins(y[j - 1]));
        }
        at(*cur, i, j) = best;
        plane_min = std::min(plane_min, best);
      }
    }
    double w = at(*cur, m, n);
    if (w < kInf) {
      best_ratio = std::min(best_ratio, w / static_cast<double>(len));
    }
    const double cutoff = std::min(bound, best_ratio);
    if (plane_min >= cutoff * static_cast<double>(max_len)) break;
    std::swap(prev, cur);
  }
  return best_ratio;
}

}  // namespace

double MarzalVidalDistance(std::string_view x, std::string_view y) {
  UnitCosts unit;
  return Solve(x, y, unit, kInf);
}

double MarzalVidalDistance(std::string_view x, std::string_view y,
                           const EditCosts& costs) {
  return Solve(x, y, costs, kInf);
}

double MarzalVidalDistanceBounded(std::string_view x, std::string_view y,
                                  double bound) {
  UnitCosts unit;
  return Solve(x, y, unit, bound);
}

double MarzalVidalDistanceBounded(std::string_view x, std::string_view y,
                                  const EditCosts& costs, double bound) {
  return Solve(x, y, costs, bound);
}

}  // namespace cned
