#include "distances/registry.h"

#include <stdexcept>

#include "core/contextual.h"
#include "core/contextual_heuristic.h"
#include "distances/levenshtein.h"
#include "distances/marzal_vidal.h"
#include "distances/normalized.h"

namespace cned {

StringDistancePtr MakeDistance(const std::string& name) {
  if (name == "dE") return std::make_shared<EditDistance>();
  if (name == "dsum") return std::make_shared<SumNormalizedDistance>();
  if (name == "dmax") return std::make_shared<MaxNormalizedDistance>();
  if (name == "dmin") return std::make_shared<MinNormalizedDistance>();
  if (name == "dYB") return std::make_shared<YujianBoDistance>();
  if (name == "dMV") return std::make_shared<MarzalVidalNormalizedDistance>();
  if (name == "dC") return std::make_shared<ContextualEditDistance>();
  if (name == "dC,h") return std::make_shared<ContextualHeuristicEditDistance>();
  throw std::invalid_argument("MakeDistance: unknown distance '" + name + "'");
}

std::vector<std::string> AllDistanceNames() {
  return {"dE", "dsum", "dmax", "dmin", "dYB", "dMV", "dC", "dC,h"};
}

std::vector<StringDistancePtr> EvaluationDistances() {
  return {MakeDistance("dYB"), MakeDistance("dC,h"), MakeDistance("dMV"),
          MakeDistance("dmax"), MakeDistance("dE")};
}

std::vector<StringDistancePtr> ClassificationDistances() {
  return {MakeDistance("dYB"),  MakeDistance("dMV"), MakeDistance("dC"),
          MakeDistance("dC,h"), MakeDistance("dmax"), MakeDistance("dE")};
}

}  // namespace cned
