#include "distances/myers.h"

#include <array>
#include <cstdint>
#include <vector>

namespace cned {
namespace {

constexpr std::size_t kWord = 64;

// Single-word Myers (pattern length <= 64).
std::size_t MyersShort(std::string_view pattern, std::string_view text) {
  const std::size_t m = pattern.size();
  std::array<std::uint64_t, 256> peq{};
  for (std::size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= std::uint64_t{1} << i;
  }
  const std::uint64_t high = std::uint64_t{1} << (m - 1);
  std::uint64_t pv = ~std::uint64_t{0};
  std::uint64_t mv = 0;
  std::size_t score = m;
  for (char c : text) {
    const std::uint64_t eq = peq[static_cast<unsigned char>(c)];
    const std::uint64_t xv = eq | mv;
    const std::uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    std::uint64_t ph = mv | ~(xh | pv);
    std::uint64_t mh = pv & xh;
    if (ph & high) ++score;
    if (mh & high) --score;
    ph = (ph << 1) | 1;  // horizontal carry-in of +1 from the top row
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

// Blocked Myers/Hyyrö for pattern length > 64. One vertical-delta word pair
// (pv, mv) per block; horizontal deltas are carried across blocks for each
// text column. The top boundary row contributes carry +1 into block 0.
std::size_t MyersBlocked(std::string_view pattern, std::string_view text) {
  const std::size_t m = pattern.size();
  const std::size_t blocks = (m + kWord - 1) / kWord;
  std::vector<std::array<std::uint64_t, 256>> peq(
      blocks, std::array<std::uint64_t, 256>{});
  for (std::size_t i = 0; i < m; ++i) {
    peq[i / kWord][static_cast<unsigned char>(pattern[i])] |=
        std::uint64_t{1} << (i % kWord);
  }
  std::vector<std::uint64_t> pv(blocks, ~std::uint64_t{0});
  std::vector<std::uint64_t> mv(blocks, 0);
  const std::size_t last_bits = m - (blocks - 1) * kWord;
  const std::uint64_t last_high = std::uint64_t{1} << (last_bits - 1);
  std::size_t score = m;

  for (char c : text) {
    int hin = 1;  // carry from the top boundary row (D[0][j] = j)
    for (std::size_t b = 0; b < blocks; ++b) {
      std::uint64_t eq = peq[b][static_cast<unsigned char>(c)];
      const std::uint64_t xv = eq | mv[b];
      if (hin < 0) eq |= 1;
      const std::uint64_t xh = (((eq & pv[b]) + pv[b]) ^ pv[b]) | eq;
      std::uint64_t ph = mv[b] | ~(xh | pv[b]);
      std::uint64_t mh = pv[b] & xh;

      const std::uint64_t high =
          (b + 1 == blocks) ? last_high : (std::uint64_t{1} << (kWord - 1));
      int hout = 0;
      if (ph & high) hout = 1;
      if (mh & high) hout = -1;

      ph <<= 1;
      mh <<= 1;
      if (hin > 0) ph |= 1;
      if (hin < 0) mh |= 1;

      pv[b] = mh | ~(xv | ph);
      mv[b] = ph & xv;
      hin = hout;
    }
    score = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(score) + hin);
  }
  return score;
}

}  // namespace

std::size_t MyersLevenshtein(std::string_view x, std::string_view y) {
  // Use the shorter string as the pattern (fewer blocks).
  std::string_view pattern = x, text = y;
  if (pattern.size() > text.size()) std::swap(pattern, text);
  if (pattern.empty()) return text.size();
  if (pattern.size() <= kWord) return MyersShort(pattern, text);
  return MyersBlocked(pattern, text);
}

}  // namespace cned
