#include "distances/generalized_yujian_bo.h"

#include <stdexcept>

namespace cned {

double GeneralizedYujianBoDistance(std::string_view x, std::string_view y,
                                   const EditCosts& costs, double alpha) {
  if (alpha <= 0.0) {
    throw std::invalid_argument("GeneralizedYujianBoDistance: alpha must be > 0");
  }
  if (x.empty() && y.empty()) return 0.0;
  double gld = WeightedLevenshtein(x, y, costs);
  return 2.0 * gld /
         (alpha * static_cast<double>(x.size() + y.size()) + gld);
}

double GeneralizedYujianBoMetric::DistanceBounded(std::string_view x,
                                                  std::string_view y,
                                                  double bound) const {
  if (x.empty() && y.empty()) return 0.0;
  // d_gYB = 2 GLD / (alpha len + GLD) < 2: a bound >= 2 is never reached.
  if (bound >= 2.0) return Distance(x, y);
  const double len = static_cast<double>(x.size() + y.size());
  // Monotone in GLD: d_gYB < b  <=>  GLD < b * alpha * len / (2 - b), and
  // mapping any GLD lower bound >= that threshold back through the formula
  // yields a value >= b.
  const double threshold = bound * alpha_ * len / (2.0 - bound);
  const double gld = WeightedLevenshteinBounded(x, y, *costs_, threshold);
  return 2.0 * gld / (alpha_ * len + gld);
}

GeneralizedYujianBoMetric::GeneralizedYujianBoMetric(
    std::shared_ptr<const EditCosts> costs, double alpha,
    bool costs_are_metric)
    : costs_(std::move(costs)), alpha_(alpha), metric_(costs_are_metric) {
  if (alpha_ <= 0.0) {
    throw std::invalid_argument("GeneralizedYujianBoMetric: alpha must be > 0");
  }
}

}  // namespace cned
