#ifndef CNED_DISTANCES_MARZAL_VIDAL_H_
#define CNED_DISTANCES_MARZAL_VIDAL_H_

#include <memory>
#include <string>
#include <string_view>

#include "distances/distance.h"
#include "distances/weighted_levenshtein.h"

namespace cned {

/// Marzal & Vidal's normalised edit distance (1993):
///
///   d_MV(x,y) = min over editing paths P of  w(P) / L(P)
///
/// where w(P) is the total edit weight of the path and L(P) its *length* —
/// the number of elementary operations including cost-0 matches (the marked
/// path length of the paper's Example 3). This is NOT d_E/l for any single
/// l: the minimising path may trade extra operations for a better ratio.
///
/// Computed exactly by dynamic programming over (path length, i, j) in
/// O(|x|·|y|·(|x|+|y|)) time and O(|x|·|y|) space — the same DP Marzal &
/// Vidal propose, not the faster approximations, so the baseline is as
/// strong as possible.
///
/// By convention d_MV(λ, λ) = 0.
double MarzalVidalDistance(std::string_view x, std::string_view y);

/// Generalised-cost variant (the paper notes d_MV extends to arbitrary
/// weights, where it is provably not a metric).
double MarzalVidalDistance(std::string_view x, std::string_view y,
                           const EditCosts& costs);

/// Bounded-evaluation variants (`StringDistance::DistanceBounded` contract).
/// The length DP stops as soon as the cheapest cell of the current plane,
/// divided by the maximal path length, reaches the bound.
double MarzalVidalDistanceBounded(std::string_view x, std::string_view y,
                                  double bound);
double MarzalVidalDistanceBounded(std::string_view x, std::string_view y,
                                  const EditCosts& costs, double bound);

/// `StringDistance` adapter.
///
/// Metric status: Marzal & Vidal proved the generalised version is not a
/// metric; for unit costs the question is open (paper §2.2), so we
/// conservatively report false.
class MarzalVidalNormalizedDistance final : public StringDistance {
 public:
  MarzalVidalNormalizedDistance() = default;

  explicit MarzalVidalNormalizedDistance(std::shared_ptr<const EditCosts> costs)
      : costs_(std::move(costs)) {}

  double Distance(std::string_view x, std::string_view y) const override {
    return costs_ ? MarzalVidalDistance(x, y, *costs_)
                  : MarzalVidalDistance(x, y);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    if (LengthLowerBound(x.size(), y.size()) >= bound) return bound;
    return costs_ ? MarzalVidalDistanceBounded(x, y, *costs_, bound)
                  : MarzalVidalDistanceBounded(x, y, bound);
  }
  /// Unit costs only: every editing path needs at least |len(x) - len(y)|
  /// insertions/deletions (cost 1 each) and has length at most |x| + |y|,
  /// so d_MV >= gap / (|x| + |y|). With generalised costs no length-only
  /// bound holds — returns 0 (the safe default).
  double LengthLowerBound(std::size_t x_len, std::size_t y_len) const override {
    if (costs_ || (x_len == 0 && y_len == 0)) return 0.0;
    const double gap =
        static_cast<double>(x_len > y_len ? x_len - y_len : y_len - x_len);
    return gap / static_cast<double>(x_len + y_len);
  }
  std::string name() const override { return "dMV"; }
  bool is_metric() const override { return false; }

 private:
  std::shared_ptr<const EditCosts> costs_;
};

}  // namespace cned

#endif  // CNED_DISTANCES_MARZAL_VIDAL_H_
