#ifndef CNED_DISTANCES_MYERS_H_
#define CNED_DISTANCES_MYERS_H_

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>

#include "distances/distance.h"
#include "distances/levenshtein.h"

namespace cned {

/// Bit-parallel Levenshtein distance (Myers 1999, blocked form of Hyyrö
/// 2003): processes 64 DP cells per machine word, giving a ~10-30x speedup
/// over the classic DP for long strings.
///
/// This is a production fast path for the heavy workloads of §4.3 (the
/// normalisations d_sum/d_max/d_min/d_YB only need d_E plus lengths, so all
/// of them accelerate transparently). Exact — property-tested against the
/// reference DP.
std::size_t MyersLevenshtein(std::string_view x, std::string_view y);

/// `StringDistance` adapter using the bit-parallel engine (same values as
/// `EditDistance`, different constant factor).
class FastEditDistance final : public StringDistance {
 public:
  double Distance(std::string_view x, std::string_view y) const override {
    return static_cast<double>(MyersLevenshtein(x, y));
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    // A bound wider than the longest string never abandons — stay on the
    // bit-parallel kernel. Tighter bounds switch to the Ukkonen band, which
    // beats even bit-parallelism once the band is narrow; values agree with
    // d_E exactly either way.
    if (bound > static_cast<double>(std::max(x.size(), y.size()))) {
      return Distance(x, y);
    }
    return LevenshteinDistanceBounded(x, y, bound);
  }
  std::string name() const override { return "dE(bitparallel)"; }
  bool is_metric() const override { return true; }
};

}  // namespace cned

#endif  // CNED_DISTANCES_MYERS_H_
