#include "distances/levenshtein.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/dp_workspace.h"
// Deliberate .cc-level reach into the search layer (both live in the one
// cned library, headers stay acyclic): the sweep-kernel table owns the
// dispatched |Δlen| fill, and dE's zeroth-pivot bound must come from the
// same dispatch point so a forced kernel variant governs the whole sweep.
#include "search/sweep_kernel.h"

namespace cned {

void EditDistance::LengthLowerBounds(std::size_t x_len,
                                     const std::uint32_t* y_lens,
                                     std::size_t n, double* out) const {
  ActiveSweepKernels().fill_absdiff_bounds(x_len, y_lens, n, out);
}
namespace {

// Strips the common prefix and suffix in place. Unit-cost edit distance is
// invariant under both (matched symbols cost 0 and an optimal path may
// always take them), and real workloads — dictionary words sharing stems,
// perturbed queries — have long shared affixes, so the DP often shrinks to
// a fraction of the naive |x| x |y| table.
void TrimCommonAffixes(std::string_view& x, std::string_view& y) {
  std::size_t prefix = 0;
  const std::size_t max_affix = std::min(x.size(), y.size());
  while (prefix < max_affix && x[prefix] == y[prefix]) ++prefix;
  x.remove_prefix(prefix);
  y.remove_prefix(prefix);
  std::size_t suffix = 0;
  const std::size_t remaining = std::min(x.size(), y.size());
  while (suffix < remaining &&
         x[x.size() - 1 - suffix] == y[y.size() - 1 - suffix]) {
    ++suffix;
  }
  x.remove_suffix(suffix);
  y.remove_suffix(suffix);
}

}  // namespace

std::size_t LevenshteinDistance(std::string_view x, std::string_view y) {
  TrimCommonAffixes(x, y);
  // Keep the shorter string on the column axis for O(min) space.
  if (x.size() < y.size()) std::swap(x, y);
  const std::size_t m = x.size(), n = y.size();
  if (n == 0) return m;

  std::vector<std::size_t>& row = TlsDpWorkspace().int_row;
  row.resize(n + 1);
  for (std::size_t j = 0; j <= n; ++j) row[j] = j;
  for (std::size_t i = 1; i <= m; ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= n; ++j) {
      std::size_t sub = diag + (x[i - 1] == y[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({sub, row[j] + 1, row[j - 1] + 1});
    }
  }
  return row[n];
}

std::size_t BoundedLevenshtein(std::string_view x, std::string_view y,
                               std::size_t bound) {
  TrimCommonAffixes(x, y);
  if (x.size() < y.size()) std::swap(x, y);
  const std::size_t m = x.size(), n = y.size();
  if (m - n > bound) return bound + 1;
  if (n == 0) return m;

  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t>& row = TlsDpWorkspace().int_row;
  row.assign(n + 1, kInf);
  for (std::size_t j = 0; j <= std::min(n, bound); ++j) row[j] = j;
  for (std::size_t i = 1; i <= m; ++i) {
    // Only cells with |i - j| <= bound can hold values <= bound.
    std::size_t lo = i > bound ? i - bound : 1;
    std::size_t hi = std::min(n, i + bound);
    std::size_t diag = row[lo - 1];
    row[lo - 1] = (lo == 1) ? i : kInf;
    std::size_t row_min = row[lo - 1];
    for (std::size_t j = lo; j <= hi; ++j) {
      std::size_t sub = diag + (x[i - 1] == y[j - 1] ? 0 : 1);
      diag = row[j];
      std::size_t up = (j <= i + bound - 1) ? row[j] : kInf;
      row[j] = std::min({sub, up + 1, row[j - 1] + 1});
      row_min = std::min(row_min, row[j]);
    }
    if (hi < n) row[hi + 1] = kInf;
    if (row_min > bound) return bound + 1;
  }
  return row[n] > bound ? bound + 1 : row[n];
}

double LevenshteinDistanceBounded(std::string_view x, std::string_view y,
                                  double bound) {
  const std::size_t longer = std::max(x.size(), y.size());
  const std::size_t shorter = std::min(x.size(), y.size());
  if (bound <= 0.0) return 0.0;  // every distance is >= 0 >= bound
  // Length-difference early-out: |len(x) - len(y)| <= d_E, so when the gap
  // already reaches the bound no DP needs to run at all.
  if (static_cast<double>(longer - shorter) >= bound) return bound;
  if (bound > static_cast<double>(longer)) {
    // d_E <= max(|x|, |y|) < bound: the exact value is always needed.
    return static_cast<double>(LevenshteinDistance(x, y));
  }
  // Largest integer strictly below `bound`: exactness is required only for
  // d_E <= ceil(bound) - 1, and the banded kernel's overflow sentinel
  // ceil(bound) is itself >= bound, satisfying the contract.
  const auto band = static_cast<std::size_t>(std::ceil(bound)) - 1;
  return static_cast<double>(BoundedLevenshtein(x, y, band));
}

std::vector<std::vector<std::size_t>> LevenshteinMatrix(std::string_view x,
                                                        std::string_view y) {
  const std::size_t m = x.size(), n = y.size();
  std::vector<std::vector<std::size_t>> d(m + 1,
                                          std::vector<std::size_t>(n + 1, 0));
  for (std::size_t i = 0; i <= m; ++i) d[i][0] = i;
  for (std::size_t j = 0; j <= n; ++j) d[0][j] = j;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      std::size_t sub = d[i - 1][j - 1] + (x[i - 1] == y[j - 1] ? 0 : 1);
      d[i][j] = std::min({sub, d[i - 1][j] + 1, d[i][j - 1] + 1});
    }
  }
  return d;
}

}  // namespace cned
