#include "distances/weighted_levenshtein.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/dp_workspace.h"

namespace cned {

MatrixCosts::MatrixCosts(Alphabet alphabet,
                         std::vector<std::vector<double>> sub,
                         std::vector<double> ins, std::vector<double> del,
                         double fallback)
    : alphabet_(std::move(alphabet)),
      sub_(std::move(sub)),
      ins_(std::move(ins)),
      del_(std::move(del)),
      fallback_(fallback) {
  const std::size_t n = alphabet_.size();
  if (sub_.size() != n || ins_.size() != n || del_.size() != n) {
    throw std::invalid_argument("MatrixCosts: dimension mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (sub_[i].size() != n) {
      throw std::invalid_argument("MatrixCosts: substitution matrix not square");
    }
    if (sub_[i][i] != 0.0) {
      throw std::invalid_argument("MatrixCosts: diagonal must be zero");
    }
  }
}

MatrixCosts MatrixCosts::Uniform(const Alphabet& alphabet, double s, double i,
                                 double d) {
  const std::size_t n = alphabet.size();
  std::vector<std::vector<double>> sub(n, std::vector<double>(n, s));
  for (std::size_t k = 0; k < n; ++k) sub[k][k] = 0.0;
  return MatrixCosts(alphabet, std::move(sub), std::vector<double>(n, i),
                     std::vector<double>(n, d));
}

double MatrixCosts::Sub(char a, char b) const {
  if (a == b) return 0.0;
  int ia = alphabet_.IndexOf(a), ib = alphabet_.IndexOf(b);
  if (ia < 0 || ib < 0) return fallback_;
  return sub_[static_cast<std::size_t>(ia)][static_cast<std::size_t>(ib)];
}

double MatrixCosts::Ins(char b) const {
  int ib = alphabet_.IndexOf(b);
  return ib < 0 ? fallback_ : ins_[static_cast<std::size_t>(ib)];
}

double MatrixCosts::Del(char a) const {
  int ia = alphabet_.IndexOf(a);
  return ia < 0 ? fallback_ : del_[static_cast<std::size_t>(ia)];
}

double WeightedLevenshtein(std::string_view x, std::string_view y,
                           const EditCosts& costs) {
  // One shared DP body; the row-min bookkeeping of the bounded variant is
  // one extra min per cell and an infinite bound never abandons.
  return WeightedLevenshteinBounded(
      x, y, costs, std::numeric_limits<double>::infinity());
}

double WeightedLevenshteinBounded(std::string_view x, std::string_view y,
                                  const EditCosts& costs, double bound) {
  const std::size_t m = x.size(), n = y.size();
  std::vector<double>& row = TlsDpWorkspace().weight_row;
  row.resize(n + 1);
  row[0] = 0.0;
  for (std::size_t j = 1; j <= n; ++j) row[j] = row[j - 1] + costs.Ins(y[j - 1]);
  for (std::size_t i = 1; i <= m; ++i) {
    double diag = row[0];
    row[0] += costs.Del(x[i - 1]);
    double row_min = row[0];
    for (std::size_t j = 1; j <= n; ++j) {
      double sub = diag + costs.Sub(x[i - 1], y[j - 1]);
      double del = row[j] + costs.Del(x[i - 1]);
      double ins = row[j - 1] + costs.Ins(y[j - 1]);
      diag = row[j];
      row[j] = std::min({sub, del, ins});
      row_min = std::min(row_min, row[j]);
    }
    // Any path to (m, n) crosses row i, and costs are non-negative, so the
    // row minimum lower-bounds the final distance.
    if (row_min >= bound) return row_min;
  }
  return row[n];
}

}  // namespace cned
