#ifndef CNED_DISTANCES_NORMALIZED_H_
#define CNED_DISTANCES_NORMALIZED_H_

#include <string>
#include <string_view>

#include "distances/distance.h"

namespace cned {

/// d_sum(x,y) = d_E(x,y) / (|x|+|y|); zero for two empty strings.
/// NOT a metric — the paper's counterexample (ab, aba, ba) is reproduced in
/// the tests and the metric-violation bench.
double DsumDistance(std::string_view x, std::string_view y);

/// d_max(x,y) = d_E(x,y) / max(|x|,|y|); zero for two empty strings.
/// NOT a metric (same counterexample family). Despite that, it obtains the
/// best classification rate in the paper's Table 2.
double DmaxDistance(std::string_view x, std::string_view y);

/// d_min(x,y) = d_E(x,y) / min(|x|,|y|); when one string is empty the paper
/// leaves it undefined — we return d_E/max(...,1) conventionally so the value
/// is finite. NOT a metric: counterexample (b, ba, aa).
double DminDistance(std::string_view x, std::string_view y);

/// Yujian & Bo's normalised metric
///   d_YB(x,y) = 2 d_E / (|x| + |y| + d_E).
/// Ranges in [0,1] and is a proven metric.
double DybDistance(std::string_view x, std::string_view y);

/// Bounded-evaluation variants (`StringDistance::DistanceBounded` contract:
/// exact when the true value is < `bound`, else any value >= `bound`). All
/// four normalisations are monotone in d_E for fixed lengths, so the bound
/// maps onto BoundedLevenshtein's integer Ukkonen band.
double DsumDistanceBounded(std::string_view x, std::string_view y,
                           double bound);
double DmaxDistanceBounded(std::string_view x, std::string_view y,
                           double bound);
double DminDistanceBounded(std::string_view x, std::string_view y,
                           double bound);
double DybDistanceBounded(std::string_view x, std::string_view y,
                          double bound);

/// Length-only lower bounds (d_E >= |len(x) - len(y)| pushed through each
/// normalisation, which is monotone in d_E for fixed lengths). All return 0
/// for two empty strings.
double DsumLengthLowerBound(std::size_t x_len, std::size_t y_len);
double DmaxLengthLowerBound(std::size_t x_len, std::size_t y_len);
double DminLengthLowerBound(std::size_t x_len, std::size_t y_len);
double DybLengthLowerBound(std::size_t x_len, std::size_t y_len);

/// `StringDistance` adapters.
class SumNormalizedDistance final : public StringDistance {
 public:
  double Distance(std::string_view x, std::string_view y) const override {
    return DsumDistance(x, y);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    return DsumDistanceBounded(x, y, bound);
  }
  double LengthLowerBound(std::size_t x_len, std::size_t y_len) const override {
    return DsumLengthLowerBound(x_len, y_len);
  }
  void LengthLowerBounds(std::size_t x_len, const std::uint32_t* y_lens,
                         std::size_t n, double* out) const override {
    FillLengthLowerBounds(DsumLengthLowerBound, x_len, y_lens, n, out);
  }
  std::string name() const override { return "dsum"; }
  bool is_metric() const override { return false; }
};

class MaxNormalizedDistance final : public StringDistance {
 public:
  double Distance(std::string_view x, std::string_view y) const override {
    return DmaxDistance(x, y);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    return DmaxDistanceBounded(x, y, bound);
  }
  double LengthLowerBound(std::size_t x_len, std::size_t y_len) const override {
    return DmaxLengthLowerBound(x_len, y_len);
  }
  void LengthLowerBounds(std::size_t x_len, const std::uint32_t* y_lens,
                         std::size_t n, double* out) const override {
    FillLengthLowerBounds(DmaxLengthLowerBound, x_len, y_lens, n, out);
  }
  std::string name() const override { return "dmax"; }
  bool is_metric() const override { return false; }
};

class MinNormalizedDistance final : public StringDistance {
 public:
  double Distance(std::string_view x, std::string_view y) const override {
    return DminDistance(x, y);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    return DminDistanceBounded(x, y, bound);
  }
  double LengthLowerBound(std::size_t x_len, std::size_t y_len) const override {
    return DminLengthLowerBound(x_len, y_len);
  }
  void LengthLowerBounds(std::size_t x_len, const std::uint32_t* y_lens,
                         std::size_t n, double* out) const override {
    FillLengthLowerBounds(DminLengthLowerBound, x_len, y_lens, n, out);
  }
  std::string name() const override { return "dmin"; }
  bool is_metric() const override { return false; }
};

class YujianBoDistance final : public StringDistance {
 public:
  double Distance(std::string_view x, std::string_view y) const override {
    return DybDistance(x, y);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    return DybDistanceBounded(x, y, bound);
  }
  double LengthLowerBound(std::size_t x_len, std::size_t y_len) const override {
    return DybLengthLowerBound(x_len, y_len);
  }
  void LengthLowerBounds(std::size_t x_len, const std::uint32_t* y_lens,
                         std::size_t n, double* out) const override {
    FillLengthLowerBounds(DybLengthLowerBound, x_len, y_lens, n, out);
  }
  std::string name() const override { return "dYB"; }
  bool is_metric() const override { return true; }
};

}  // namespace cned

#endif  // CNED_DISTANCES_NORMALIZED_H_
