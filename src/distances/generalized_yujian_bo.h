#ifndef CNED_DISTANCES_GENERALIZED_YUJIAN_BO_H_
#define CNED_DISTANCES_GENERALIZED_YUJIAN_BO_H_

#include <memory>
#include <string>
#include <string_view>

#include "distances/distance.h"
#include "distances/weighted_levenshtein.h"

namespace cned {

/// Yujian & Bo's *generalised* normalised metric (TPAMI 2007, the extension
/// the paper's §2.2 credits them with):
///
///   d_gYB(x,y) = 2·GLD(x,y) / ( alpha·(|x|+|y|) + GLD(x,y) )
///
/// where GLD is the generalised (weighted) Levenshtein distance and `alpha`
/// must be an upper bound on every insertion/deletion weight. Yujian & Bo
/// prove d_gYB is a metric whenever the underlying weight function is one;
/// with unit costs and alpha = 1 it reduces exactly to the paper's d_YB.
///
/// Implemented because the paper contrasts the contextual distance against
/// exactly this capability ("Yujian and Bo's method ... extends to the case
/// where the distance is generalised"), which the naive contextual
/// generalisation lacks (§5; see NaiveGeneralizedContextualDistance).
double GeneralizedYujianBoDistance(std::string_view x, std::string_view y,
                                   const EditCosts& costs, double alpha);

/// `StringDistance` adapter. The caller asserts (via `is_metric`) that the
/// supplied cost model is itself a metric and `alpha` dominates the indel
/// weights; metricity is then guaranteed by Yujian & Bo's theorem.
class GeneralizedYujianBoMetric final : public StringDistance {
 public:
  GeneralizedYujianBoMetric(std::shared_ptr<const EditCosts> costs,
                            double alpha, bool costs_are_metric);

  double Distance(std::string_view x, std::string_view y) const override {
    return GeneralizedYujianBoDistance(x, y, *costs_, alpha_);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override;
  std::string name() const override { return "dgYB"; }
  bool is_metric() const override { return metric_; }

  double alpha() const { return alpha_; }

 private:
  std::shared_ptr<const EditCosts> costs_;
  double alpha_;
  bool metric_;
};

}  // namespace cned

#endif  // CNED_DISTANCES_GENERALIZED_YUJIAN_BO_H_
