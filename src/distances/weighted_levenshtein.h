#ifndef CNED_DISTANCES_WEIGHTED_LEVENSHTEIN_H_
#define CNED_DISTANCES_WEIGHTED_LEVENSHTEIN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "distances/distance.h"
#include "strings/alphabet.h"

namespace cned {

/// Cost model for the generalised edit distance: per-pair substitution
/// weights and per-symbol insertion/deletion weights.
///
/// Both the Marzal-Vidal and Yujian-Bo normalisations extend to generalised
/// costs (paper §2.2); the contextual distance does not extend naively
/// (paper §5), which `NaiveGeneralizedContextual` demonstrates.
class EditCosts {
 public:
  virtual ~EditCosts() = default;

  /// Cost of substituting `a` by `b`. Must be 0 when a == b for the distance
  /// to satisfy identity.
  virtual double Sub(char a, char b) const = 0;

  /// Cost of inserting `b`.
  virtual double Ins(char b) const = 0;

  /// Cost of deleting `a`.
  virtual double Del(char a) const = 0;
};

/// Classic unit costs: substitution/insertion/deletion all cost 1.
class UnitCosts final : public EditCosts {
 public:
  double Sub(char a, char b) const override { return a == b ? 0.0 : 1.0; }
  double Ins(char) const override { return 1.0; }
  double Del(char) const override { return 1.0; }
};

/// Table-driven costs over a fixed alphabet.
///
/// Substitution weights come from a size x size matrix indexed by alphabet
/// position; insertion/deletion weights from per-symbol vectors. Symbols
/// outside the alphabet are charged `fallback`.
class MatrixCosts final : public EditCosts {
 public:
  /// `sub[i][j]` is the cost of substituting symbol i by symbol j;
  /// `ins[j]`/`del[i]` the indel costs. All diagonals of `sub` must be 0.
  MatrixCosts(Alphabet alphabet, std::vector<std::vector<double>> sub,
              std::vector<double> ins, std::vector<double> del,
              double fallback = 1.0);

  /// Uniform costs: substitution `s`, insertion `i`, deletion `d`.
  static MatrixCosts Uniform(const Alphabet& alphabet, double s, double i,
                             double d);

  double Sub(char a, char b) const override;
  double Ins(char b) const override;
  double Del(char a) const override;

 private:
  Alphabet alphabet_;
  std::vector<std::vector<double>> sub_;
  std::vector<double> ins_;
  std::vector<double> del_;
  double fallback_;
};

/// Generalised edit distance: minimum total cost of an edit script turning
/// `x` into `y` under `costs`. O(|x|·|y|) time, O(min) space.
double WeightedLevenshtein(std::string_view x, std::string_view y,
                           const EditCosts& costs);

/// Bounded-evaluation variant (`StringDistance::DistanceBounded` contract):
/// abandons as soon as a DP row's minimum — a lower bound on the final
/// distance under non-negative costs — reaches `bound`.
double WeightedLevenshteinBounded(std::string_view x, std::string_view y,
                                  const EditCosts& costs, double bound);

/// `StringDistance` adapter. Metricity depends on the cost model (the caller
/// asserts it via `is_metric`).
class WeightedEditDistance final : public StringDistance {
 public:
  WeightedEditDistance(std::shared_ptr<const EditCosts> costs,
                       std::string name, bool is_metric)
      : costs_(std::move(costs)), name_(std::move(name)), metric_(is_metric) {}

  double Distance(std::string_view x, std::string_view y) const override {
    return WeightedLevenshtein(x, y, *costs_);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    return WeightedLevenshteinBounded(x, y, *costs_, bound);
  }
  std::string name() const override { return name_; }
  bool is_metric() const override { return metric_; }

 private:
  std::shared_ptr<const EditCosts> costs_;
  std::string name_;
  bool metric_;
};

}  // namespace cned

#endif  // CNED_DISTANCES_WEIGHTED_LEVENSHTEIN_H_
