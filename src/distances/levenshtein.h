#ifndef CNED_DISTANCES_LEVENSHTEIN_H_
#define CNED_DISTANCES_LEVENSHTEIN_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "distances/distance.h"

namespace cned {

/// Unit-cost Levenshtein (edit) distance d_E.
///
/// The minimum number of single-symbol insertions, deletions and
/// substitutions turning `x` into `y` (Wagner & Fischer 1974). O(|x|·|y|)
/// time, O(min(|x|,|y|)) space.
std::size_t LevenshteinDistance(std::string_view x, std::string_view y);

/// Banded variant: returns the exact distance if it is <= `bound`, otherwise
/// any value > `bound` (early exit). Useful for heavy NN workloads.
std::size_t BoundedLevenshtein(std::string_view x, std::string_view y,
                               std::size_t bound);

/// Real-valued wrapper with the `StringDistance::DistanceBounded` contract:
/// exactly d_E(x,y) when that is < `bound`, otherwise any value >= `bound`.
/// Maps the real bound onto the integer Ukkonen band.
double LevenshteinDistanceBounded(std::string_view x, std::string_view y,
                                  double bound);

/// The full DP matrix D[i][j] = d_E(x[0..i), y[0..j)), rows |x|+1 by |y|+1.
/// Exposed because the Marzal-Vidal and contextual computations, tests and
/// teaching examples need the intermediate values.
std::vector<std::vector<std::size_t>> LevenshteinMatrix(std::string_view x,
                                                        std::string_view y);

/// `StringDistance` adapter for d_E.
class EditDistance final : public StringDistance {
 public:
  double Distance(std::string_view x, std::string_view y) const override {
    return static_cast<double>(LevenshteinDistance(x, y));
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    return LevenshteinDistanceBounded(x, y, bound);
  }
  /// |len(x) - len(y)| <= d_E: each unit of length gap needs one indel.
  double LengthLowerBound(std::size_t x_len, std::size_t y_len) const override {
    return x_len > y_len ? static_cast<double>(x_len - y_len)
                         : static_cast<double>(y_len - x_len);
  }
  /// Batched |Δlen| fill over a store's packed length array. Runs on the
  /// dispatched sweep-kernel layer (search/sweep_kernel.h): the zeroth-pivot
  /// fill of the LAESA sweeps is exactly this kernel, with scalar/AVX2/NEON
  /// variants producing bit-identical doubles (every value involved is an
  /// exactly representable integer). Defined in levenshtein.cc so this
  /// header stays free of the search-layer include.
  void LengthLowerBounds(std::size_t x_len, const std::uint32_t* y_lens,
                         std::size_t n, double* out) const override;
  std::string name() const override { return "dE"; }
  bool is_metric() const override { return true; }
};

}  // namespace cned

#endif  // CNED_DISTANCES_LEVENSHTEIN_H_
