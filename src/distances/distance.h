#ifndef CNED_DISTANCES_DISTANCE_H_
#define CNED_DISTANCES_DISTANCE_H_

#include <memory>
#include <string>
#include <string_view>

namespace cned {

/// Abstract string distance (or dissimilarity) function.
///
/// Every distance in the paper — the Levenshtein distance, the naive
/// normalisations, Marzal-Vidal, Yujian-Bo and the contextual distance —
/// implements this interface so the search structures, histogram tools and
/// experiment harnesses are generic over the distance used.
///
/// Implementations must be deterministic and symmetric in value (even the
/// ones that are not metrics satisfy d(x,y) == d(y,x)); `is_metric()`
/// reports whether the triangle inequality is guaranteed, which LAESA/AESA
/// require for exactness.
class StringDistance {
 public:
  virtual ~StringDistance() = default;

  /// The distance between `x` and `y`.
  virtual double Distance(std::string_view x, std::string_view y) const = 0;

  /// Bounded evaluation: exactly `Distance(x, y)` whenever that value is
  /// `< bound`; otherwise any value `>= bound` (the kernel may abandon the
  /// computation as soon as the result provably reaches the bound).
  ///
  /// Metric indexes pass their incumbent best (or search radius) here so
  /// hopeless distance computations are cut short — the dominant saving for
  /// the cubic contextual kernel. Callers detect an abandoned evaluation by
  /// `result >= bound`; an abandoned value carries no other information (it
  /// is NOT a lower bound on the true distance beyond `bound` itself).
  ///
  /// The default forwards to `Distance` (always exact, never abandons);
  /// kernels with a cheaper banded/early-exit form override it.
  virtual double DistanceBounded(std::string_view x, std::string_view y,
                                 double bound) const {
    (void)bound;
    return Distance(x, y);
  }

  /// Short identifier as used in the paper, e.g. "dE", "dC,h", "dYB".
  virtual std::string name() const = 0;

  /// True when the distance provably satisfies the metric axioms.
  virtual bool is_metric() const = 0;
};

using StringDistancePtr = std::shared_ptr<const StringDistance>;

}  // namespace cned

#endif  // CNED_DISTANCES_DISTANCE_H_
