#ifndef CNED_DISTANCES_DISTANCE_H_
#define CNED_DISTANCES_DISTANCE_H_

#include <memory>
#include <string>
#include <string_view>

namespace cned {

/// Abstract string distance (or dissimilarity) function.
///
/// Every distance in the paper — the Levenshtein distance, the naive
/// normalisations, Marzal-Vidal, Yujian-Bo and the contextual distance —
/// implements this interface so the search structures, histogram tools and
/// experiment harnesses are generic over the distance used.
///
/// Implementations must be deterministic and symmetric in value (even the
/// ones that are not metrics satisfy d(x,y) == d(y,x)); `is_metric()`
/// reports whether the triangle inequality is guaranteed, which LAESA/AESA
/// require for exactness.
class StringDistance {
 public:
  virtual ~StringDistance() = default;

  /// The distance between `x` and `y`.
  virtual double Distance(std::string_view x, std::string_view y) const = 0;

  /// Short identifier as used in the paper, e.g. "dE", "dC,h", "dYB".
  virtual std::string name() const = 0;

  /// True when the distance provably satisfies the metric axioms.
  virtual bool is_metric() const = 0;
};

using StringDistancePtr = std::shared_ptr<const StringDistance>;

}  // namespace cned

#endif  // CNED_DISTANCES_DISTANCE_H_
