#ifndef CNED_DISTANCES_DISTANCE_H_
#define CNED_DISTANCES_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace cned {

/// Abstract string distance (or dissimilarity) function.
///
/// Every distance in the paper — the Levenshtein distance, the naive
/// normalisations, Marzal-Vidal, Yujian-Bo and the contextual distance —
/// implements this interface so the search structures, histogram tools and
/// experiment harnesses are generic over the distance used.
///
/// Implementations must be deterministic and symmetric in value (even the
/// ones that are not metrics satisfy d(x,y) == d(y,x)); `is_metric()`
/// reports whether the triangle inequality is guaranteed, which LAESA/AESA
/// require for exactness.
class StringDistance {
 public:
  virtual ~StringDistance() = default;

  /// The distance between `x` and `y`.
  virtual double Distance(std::string_view x, std::string_view y) const = 0;

  /// Bounded evaluation: exactly `Distance(x, y)` whenever that value is
  /// `< bound`; otherwise any value `>= bound` (the kernel may abandon the
  /// computation as soon as the result provably reaches the bound).
  ///
  /// Metric indexes pass their incumbent best (or search radius) here so
  /// hopeless distance computations are cut short — the dominant saving for
  /// the cubic contextual kernel. Callers detect an abandoned evaluation by
  /// `result >= bound`; an abandoned value carries no other information (it
  /// is NOT a lower bound on the true distance beyond `bound` itself).
  ///
  /// The default forwards to `Distance` (always exact, never abandons);
  /// kernels with a cheaper banded/early-exit form override it.
  virtual double DistanceBounded(std::string_view x, std::string_view y,
                                 double bound) const {
    (void)bound;
    return Distance(x, y);
  }

  /// A lower bound on `Distance(x, y)` computable from the string lengths
  /// alone; 0.0 when no such bound is known (the safe default). For the
  /// Levenshtein family |len(x) - len(y)| <= d_E gives closed forms that
  /// cost a handful of arithmetic ops — search structures use them to
  /// reject candidates before any DP runs, and `DistanceBounded` fast paths
  /// use them to return immediately when the bound is already reached.
  virtual double LengthLowerBound(std::size_t x_len, std::size_t y_len) const {
    (void)x_len;
    (void)y_len;
    return 0.0;
  }

  /// Batched form over a packed length array (the `PrototypeStore` layout):
  /// out[i] = LengthLowerBound(x_len, y_lens[i]). The default loops over
  /// the scalar hook; kernels with a closed-form bound override it with a
  /// flat, branch-light loop the compiler can vectorise — this is the
  /// "free zeroth pivot" of the LAESA elimination sweep.
  virtual void LengthLowerBounds(std::size_t x_len, const std::uint32_t* y_lens,
                                 std::size_t n, double* out) const {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = LengthLowerBound(x_len, y_lens[i]);
    }
  }

  /// Short identifier as used in the paper, e.g. "dE", "dC,h", "dYB".
  virtual std::string name() const = 0;

  /// True when the distance provably satisfies the metric axioms.
  virtual bool is_metric() const = 0;
};

using StringDistancePtr = std::shared_ptr<const StringDistance>;

/// Shared body for `LengthLowerBounds` overrides: applies the scalar bound
/// `f(x_len, y_len)` across a packed length array. Statically dispatched,
/// so the inner loop stays a flat, vectorizable pass.
template <typename F>
inline void FillLengthLowerBounds(F&& f, std::size_t x_len,
                                  const std::uint32_t* y_lens, std::size_t n,
                                  double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f(x_len, y_lens[i]);
}

}  // namespace cned

#endif  // CNED_DISTANCES_DISTANCE_H_
