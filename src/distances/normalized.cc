#include "distances/normalized.h"

#include <algorithm>
#include <cmath>

#include "distances/levenshtein.h"

namespace cned {
namespace {

// All four normalisations are monotone non-decreasing in d_E for fixed
// string lengths, so a bound `b` on the normalised value maps to an integer
// threshold t on d_E: the value is < b iff d_E < t. Exactness is then only
// needed for d_E <= ceil(t)-1, which is exactly the Ukkonen band of
// BoundedLevenshtein; the truncated sentinel ceil(t) maps back to a
// normalised value >= b by the same monotonicity. Returns the (possibly
// truncated) d_E; a threshold <= 0 yields 0 (any mapped value is >= b).
double EditDistanceForThreshold(std::string_view x, std::string_view y,
                                double threshold) {
  const double longer = static_cast<double>(std::max(x.size(), y.size()));
  if (threshold <= 0.0) return 0.0;
  if (threshold > longer) {
    // d_E <= longer < t: the exact value is always needed.
    return static_cast<double>(LevenshteinDistance(x, y));
  }
  const auto band = static_cast<std::size_t>(std::ceil(threshold)) - 1;
  return static_cast<double>(BoundedLevenshtein(x, y, band));
}

}  // namespace

double DsumDistance(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  return static_cast<double>(LevenshteinDistance(x, y)) /
         static_cast<double>(x.size() + y.size());
}

double DmaxDistance(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  return static_cast<double>(LevenshteinDistance(x, y)) /
         static_cast<double>(std::max(x.size(), y.size()));
}

double DminDistance(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  std::size_t denom = std::max<std::size_t>(std::min(x.size(), y.size()), 1);
  return static_cast<double>(LevenshteinDistance(x, y)) /
         static_cast<double>(denom);
}

double DybDistance(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  double de = static_cast<double>(LevenshteinDistance(x, y));
  return 2.0 * de / (static_cast<double>(x.size() + y.size()) + de);
}

double DsumLengthLowerBound(std::size_t x_len, std::size_t y_len) {
  if (x_len == 0 && y_len == 0) return 0.0;
  const double gap =
      static_cast<double>(x_len > y_len ? x_len - y_len : y_len - x_len);
  return gap / static_cast<double>(x_len + y_len);
}

double DmaxLengthLowerBound(std::size_t x_len, std::size_t y_len) {
  if (x_len == 0 && y_len == 0) return 0.0;
  const double gap =
      static_cast<double>(x_len > y_len ? x_len - y_len : y_len - x_len);
  return gap / static_cast<double>(std::max(x_len, y_len));
}

double DminLengthLowerBound(std::size_t x_len, std::size_t y_len) {
  if (x_len == 0 && y_len == 0) return 0.0;
  const double gap =
      static_cast<double>(x_len > y_len ? x_len - y_len : y_len - x_len);
  return gap / static_cast<double>(
                   std::max<std::size_t>(std::min(x_len, y_len), 1));
}

double DybLengthLowerBound(std::size_t x_len, std::size_t y_len) {
  if (x_len == 0 && y_len == 0) return 0.0;
  // d_YB = 2 d_E / (|x|+|y|+d_E) is increasing in d_E; plug in d_E >= gap.
  const double gap =
      static_cast<double>(x_len > y_len ? x_len - y_len : y_len - x_len);
  return 2.0 * gap / (static_cast<double>(x_len + y_len) + gap);
}

double DsumDistanceBounded(std::string_view x, std::string_view y,
                           double bound) {
  if (x.empty() && y.empty()) return 0.0;
  // Length-difference early-out: skip even the threshold mapping when the
  // length-only bound already reaches the caller's bound.
  if (DsumLengthLowerBound(x.size(), y.size()) >= bound) return bound;
  const double denom = static_cast<double>(x.size() + y.size());
  return EditDistanceForThreshold(x, y, bound * denom) / denom;
}

double DmaxDistanceBounded(std::string_view x, std::string_view y,
                           double bound) {
  if (x.empty() && y.empty()) return 0.0;
  if (DmaxLengthLowerBound(x.size(), y.size()) >= bound) return bound;
  const double denom = static_cast<double>(std::max(x.size(), y.size()));
  return EditDistanceForThreshold(x, y, bound * denom) / denom;
}

double DminDistanceBounded(std::string_view x, std::string_view y,
                           double bound) {
  if (x.empty() && y.empty()) return 0.0;
  if (DminLengthLowerBound(x.size(), y.size()) >= bound) return bound;
  const double denom = static_cast<double>(
      std::max<std::size_t>(std::min(x.size(), y.size()), 1));
  return EditDistanceForThreshold(x, y, bound * denom) / denom;
}

double DybDistanceBounded(std::string_view x, std::string_view y,
                          double bound) {
  if (x.empty() && y.empty()) return 0.0;
  // d_YB = 2 d_E / (|x|+|y| + d_E) < 2 always; b >= 2 can never be reached.
  if (bound >= 2.0) return DybDistance(x, y);
  if (DybLengthLowerBound(x.size(), y.size()) >= bound) return bound;
  const double len = static_cast<double>(x.size() + y.size());
  // d_YB < b  <=>  d_E < b * (|x|+|y|) / (2 - b), and the mapping below is
  // monotone, so a truncated d_E >= threshold still lands >= b.
  const double de =
      EditDistanceForThreshold(x, y, bound * len / (2.0 - bound));
  return 2.0 * de / (len + de);
}

}  // namespace cned
