#include "distances/normalized.h"

#include <algorithm>

#include "distances/levenshtein.h"

namespace cned {

double DsumDistance(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  return static_cast<double>(LevenshteinDistance(x, y)) /
         static_cast<double>(x.size() + y.size());
}

double DmaxDistance(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  return static_cast<double>(LevenshteinDistance(x, y)) /
         static_cast<double>(std::max(x.size(), y.size()));
}

double DminDistance(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  std::size_t denom = std::max<std::size_t>(std::min(x.size(), y.size()), 1);
  return static_cast<double>(LevenshteinDistance(x, y)) /
         static_cast<double>(denom);
}

double DybDistance(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  double de = static_cast<double>(LevenshteinDistance(x, y));
  return 2.0 * de / (static_cast<double>(x.size() + y.size()) + de);
}

}  // namespace cned
