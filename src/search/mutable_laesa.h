#ifndef CNED_SEARCH_MUTABLE_LAESA_H_
#define CNED_SEARCH_MUTABLE_LAESA_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "datasets/prototype_store.h"
#include "distances/distance.h"
#include "search/laesa.h"
#include "search/nn_searcher.h"
#include "search/table_quant.h"

namespace cned {

/// The live-mutability tier: an LSM-style mutable index in front of the
/// immutable LAESA machinery, so inserts and deletes land while queries are
/// in flight (the add/search + view() serving model of usearch, see
/// ROADMAP.md).
///
/// Structure — two segments behind one epoch-numbered immutable `State`:
///
///   * **base**: a frozen `PrototypeStore` + `Laesa` (owned or mapped from
///     a snapshot). Never rewritten in place; deletes set a bit in a
///     tombstone bitmap that the sweep masks *inside* its compaction
///     (`Laesa::KNearestMasked`), so a deleted prototype can never surface
///     as a neighbour at any `table_precision`.
///   * **delta**: an appendable `PrototypeStore` holding everything
///     inserted since the last merge, with its own tombstone bitmap.
///     Queried exhaustively (bounded by the merged incumbent) below
///     `Options::delta_index_threshold` entries, through a small LAESA of
///     its own above it.
///
/// Every prototype carries a stable 64-bit id, assigned monotonically by
/// `Insert` and never reused; results report ids, not slots. Base slots
/// are kept in ascending-id order and the delta always holds the newest
/// ids, so all base ids < all delta ids — which lets the
/// strict-improvement top-k merge resolve cross-segment distance ties
/// toward the base (older-id) side. Distances are always exact; as
/// everywhere in the LAESA family, equal-distance tie *winners* within a
/// segment follow the sweep's visiting order (an admissible pruner may
/// eliminate an equal-distance candidate by its lower bound without ever
/// evaluating it).
///
/// Concurrency — single-writer, lock-free readers: mutators serialize on an
/// internal mutex, build a fresh `State` (copy-on-write of only the parts
/// they touch) and publish it with `std::atomic_store` on the shared_ptr.
/// Readers pin the current state with `std::atomic_load` and keep their
/// pinned segments for the whole query, so a concurrent publish (or a
/// background merge's epoch swap) never invalidates an in-flight query and
/// no query ever fails during a swap. Readers never block writers and vice
/// versa.
///
/// Background merge — `StartMerge` pins the current epoch and rewrites
/// base+delta (minus tombstones) into a fresh base on a background thread,
/// then swaps it in: entries removed *during* the merge become tombstones
/// on the new base, entries inserted during it stay in the (re-packed)
/// delta. With a snapshot directory the merge output goes through
/// temp-file + rename, so a crash mid-merge leaves the previous snapshot
/// fully valid — the only residue is a stale `*.tmp` pair.
///
/// Differential contract: at every point, Nearest/KNearest return exactly
/// the distance profile a from-scratch rebuild over the live set would
/// return (and the same neighbours wherever distances are unique); two
/// instances fed the identical op sequence agree bit for bit, QueryStats
/// included; and after a merge the index is bit-identical — stats included
/// — to one built from the live set directly (tests/mutable_laesa_test.cc).
class MutableLaesa final : public NearestNeighborSearcher {
 public:
  struct Options {
    // Explicit ctor instead of member initializers: the defaults must be
    // usable in this class's own default arguments (GCC defers NSDMIs of a
    // nested class past the enclosing class's end).
    Options()
        : num_pivots(8),
          delta_pivots(4),
          delta_index_threshold(128),
          table_precision(DefaultTablePrecision()) {}
    /// Pivots for the base index (built by the ctor and by every merge).
    std::size_t num_pivots;
    /// Pivots for the delta's own LAESA once it crosses the threshold.
    std::size_t delta_pivots;
    /// Delta size at which the exhaustive scan gives way to a delta LAESA.
    std::size_t delta_index_threshold;
    /// Pivot-table storage precision for base and delta indexes.
    TablePrecision table_precision;
  };

  /// Starts empty (delta only until the first merge).
  explicit MutableLaesa(StringDistancePtr distance, Options options = Options());

  /// Starts from a frozen base set; ids 0..base.size()-1 in order.
  MutableLaesa(const std::vector<std::string>& base,
               StringDistancePtr distance, Options options = Options());

  /// Serves a snapshot written by a merge (`StartMerge(dir)`): maps the
  /// store and index zero-copy. Ids restart at 0..n-1 — the snapshot is a
  /// compacted world, stable within the new instance's lifetime.
  static MutableLaesa FromSnapshot(const std::string& dir,
                                   StringDistancePtr distance,
                                   Options options = Options());

  ~MutableLaesa() override;

  MutableLaesa(const MutableLaesa&) = delete;
  MutableLaesa& operator=(const MutableLaesa&) = delete;

  /// Appends one prototype; returns its stable id. O(delta) copy-on-write —
  /// the background merge is what keeps the delta (and thus this cost)
  /// bounded.
  std::uint64_t Insert(std::string_view s);

  /// Tombstones `id`. Returns false when the id is unknown or already
  /// removed. O(bitmap words).
  bool Remove(std::uint64_t id);

  /// True when `id` is present and live.
  bool Contains(std::uint64_t id) const;

  /// The live string behind `id`; throws std::out_of_range when unknown or
  /// removed. (Copies: the pinned segment may be swapped out by a merge
  /// after return.)
  std::string GetString(std::uint64_t id) const;

  /// Live prototypes (inserted and not removed).
  std::size_t size() const override;
  /// The next id `Insert` would assign (== total ever inserted + base).
  std::uint64_t next_id() const;
  /// Publish counter: bumps on every mutation and every merge swap.
  std::uint64_t epoch() const;
  std::size_t delta_size() const;       ///< live delta entries
  std::size_t tombstone_count() const;  ///< dead entries not yet merged out

  /// Nearest live prototype by stable id; throws std::out_of_range when
  /// the index is empty. Safe to call concurrently with mutators.
  NeighborResult Nearest(std::string_view query,
                         QueryStats* stats = nullptr) const override;

  /// The k nearest live prototypes, closest first; exact distances, with
  /// cross-segment distance ties resolving to the base (lower-id) segment.
  std::vector<NeighborResult> KNearest(
      std::string_view query, std::size_t k,
      QueryStats* stats = nullptr) const override;

  /// 1-NN classification over the live set. `labels_by_id` is indexed by
  /// stable id (the mutable-tier analogue of BatchQueryEngine::Classify's
  /// slot-indexed labels); throws std::invalid_argument when the nearest
  /// id is not covered.
  int Classify(std::string_view query, const std::vector<int>& labels_by_id,
               QueryStats* stats = nullptr) const;

  /// Kicks off a background merge of the current delta+tombstones into a
  /// fresh base. Returns false when a merge is already running (or reaped
  /// by WaitMerge yet), or when there is nothing to merge. With a
  /// non-empty `snapshot_dir` the merged store+index are also written
  /// there (temp-file + rename) and the new base serves mapped from those
  /// files.
  bool StartMerge(const std::string& snapshot_dir = std::string());

  /// Joins the background merge if one is running or finished-unreaped.
  void WaitMerge();

  /// StartMerge + WaitMerge. Returns false when there was nothing to do.
  bool MergeNow(const std::string& snapshot_dir = std::string());

  /// Non-empty after a merge that failed (snapshot I/O error); the state
  /// is then unchanged. Cleared by the next successful merge.
  std::string merge_error() const;

  static std::string SnapshotStorePath(const std::string& dir);
  static std::string SnapshotIndexPath(const std::string& dir);

 private:
  // FromSnapshot builds in-place through this tag (the class holds a mutex,
  // so it is immovable; C++17 prvalue return elides the copy).
  struct SnapshotTag {};
  MutableLaesa(SnapshotTag, const std::string& dir, StringDistancePtr distance,
               Options options);

  /// One frozen segment: slots 0..count-1, ids ascending, optional
  /// tombstone bitmap (null = no deletes yet).
  struct Segment {
    std::shared_ptr<const PrototypeStore> store;
    std::shared_ptr<const std::vector<std::uint64_t>> ids;
    std::shared_ptr<const std::vector<std::uint64_t>> tombs;
    std::size_t dead = 0;
    std::size_t count() const { return store ? store->size() : 0; }
    std::size_t live() const { return count() - dead; }
    const std::uint64_t* tomb_bits() const {
      return dead > 0 ? tombs->data() : nullptr;
    }
  };

  /// The immutable world a reader pins. Everything reachable from here is
  /// frozen; mutators publish whole new States.
  struct State {
    Segment base;
    std::shared_ptr<const Laesa> base_index;  // null iff base empty
    Segment delta;
    std::shared_ptr<const Laesa> delta_index;  // null below the threshold
    std::uint64_t next_id = 0;
    std::uint64_t epoch = 0;
  };

  std::shared_ptr<const State> Pin() const {
    return std::atomic_load(&state_);
  }
  void Publish(std::shared_ptr<const State> next) {
    std::atomic_store(&state_,
                      std::shared_ptr<const State>(std::move(next)));
  }

  std::shared_ptr<const Laesa> BuildDeltaIndex(const Segment& delta) const;
  void MergeBody(std::shared_ptr<const State> pinned, std::string dir);

  StringDistancePtr distance_;
  Options options_;
  std::shared_ptr<const State> state_;  // accessed via atomic_load/store

  /// Serializes mutators and merge bookkeeping; never held while querying.
  mutable std::mutex write_mu_;
  std::thread merge_thread_;
  bool merging_ = false;
  std::string merge_error_;
};

}  // namespace cned

#endif  // CNED_SEARCH_MUTABLE_LAESA_H_
