#ifndef CNED_SEARCH_VP_TREE_H_
#define CNED_SEARCH_VP_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// Vantage-point tree (Yianilos 1993) over a string metric.
///
/// The paper argues its LAESA results "will apply in similar cases" — other
/// methods that exploit the triangle inequality. The VP-tree is the classic
/// such method with logarithmic-ish search on low-intrinsic-dimension data,
/// so it directly tests that claim: a distance with a flatter histogram
/// (lower rho, like d_C) prunes more of the tree.
///
/// Exact nearest-neighbour search when the distance is a true metric.
class VpTree final : public NearestNeighborSearcher {
 public:
  struct QueryStats {
    std::uint64_t distance_computations = 0;
    /// Evaluations whose result reached the bound passed via
    /// `DistanceBounded` (cut short mid-DP by kernels with a real bounded
    /// implementation; counted either way).
    std::uint64_t bounded_abandons = 0;
  };

  /// Builds the tree over `prototypes` (kept by reference, caller owns).
  /// `seed` controls vantage-point sampling.
  VpTree(const std::vector<std::string>& prototypes, StringDistancePtr distance,
         std::uint64_t seed = 1);

  NeighborResult Nearest(std::string_view query, QueryStats* stats) const;

  NeighborResult Nearest(std::string_view query) const override {
    return Nearest(query, nullptr);
  }
  std::size_t size() const override { return prototypes_->size(); }

  /// The k nearest prototypes, closest first: the prune radius is the
  /// current k-th best distance instead of the single best.
  std::vector<NeighborResult> KNearest(std::string_view query, std::size_t k,
                                       QueryStats* stats = nullptr) const;

  /// All prototypes within `radius`, ascending by distance.
  std::vector<NeighborResult> RangeSearch(std::string_view query,
                                          double radius,
                                          QueryStats* stats = nullptr) const;

  /// Distance evaluations spent building the tree.
  std::uint64_t preprocessing_computations() const {
    return preprocessing_computations_;
  }

 private:
  struct Node {
    std::size_t point = 0;       // prototype index of the vantage point
    double radius = 0.0;         // median distance to the subtree points
    std::int32_t inside = -1;    // child with d <= radius
    std::int32_t outside = -1;   // child with d > radius
  };

  std::int32_t Build(std::vector<std::size_t>& items, std::size_t lo,
                     std::size_t hi, std::uint64_t seed);
  void Search(std::int32_t node, std::string_view query, NeighborResult& best,
              QueryStats& stats) const;
  void SearchK(std::int32_t node, std::string_view query, std::size_t k,
               std::vector<NeighborResult>& best, QueryStats& stats) const;
  void SearchRange(std::int32_t node, std::string_view query, double radius,
                   std::vector<NeighborResult>& hits, QueryStats& stats) const;

  const std::vector<std::string>* prototypes_;
  StringDistancePtr distance_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::uint64_t preprocessing_computations_ = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_VP_TREE_H_
