#ifndef CNED_SEARCH_VP_TREE_H_
#define CNED_SEARCH_VP_TREE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "datasets/prototype_store.h"
#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// Vantage-point tree (Yianilos 1993) over a string metric.
///
/// The paper argues its LAESA results "will apply in similar cases" — other
/// methods that exploit the triangle inequality. The VP-tree is the classic
/// such method with logarithmic-ish search on low-intrinsic-dimension data,
/// so it directly tests that claim: a distance with a flatter histogram
/// (lower rho, like d_C) prunes more of the tree.
///
/// Exact nearest-neighbour search when the distance is a true metric.
class VpTree final : public NearestNeighborSearcher {
 public:
  /// Shared per-query cost counters (see `cned::QueryStats`).
  using QueryStats = ::cned::QueryStats;

  /// Builds the tree over `prototypes` — a borrowed `PrototypeStore`
  /// (caller keeps it alive) or a `std::vector<std::string>` packed once
  /// into an owned store. `seed` controls vantage-point sampling.
  VpTree(PrototypeStoreRef prototypes, StringDistancePtr distance,
         std::uint64_t seed = 1);

  NeighborResult Nearest(std::string_view query,
                         QueryStats* stats = nullptr) const override;

  std::size_t size() const override { return prototypes_->size(); }

  /// The prototype set the index searches over.
  const PrototypeStore& store() const { return prototypes_.get(); }

  /// The k nearest prototypes, closest first: the prune radius is the
  /// current k-th best distance instead of the single best.
  std::vector<NeighborResult> KNearest(
      std::string_view query, std::size_t k,
      QueryStats* stats = nullptr) const override;

  /// All prototypes within `radius`, ascending by distance.
  std::vector<NeighborResult> RangeSearch(std::string_view query,
                                          double radius,
                                          QueryStats* stats = nullptr) const;

  /// Distance evaluations spent building the tree.
  std::uint64_t preprocessing_computations() const {
    return preprocessing_computations_;
  }

 private:
  struct Node {
    std::size_t point = 0;       // prototype index of the vantage point
    double radius = 0.0;         // median distance to the subtree points
    std::int32_t inside = -1;    // child with d <= radius
    std::int32_t outside = -1;   // child with d > radius
  };

  std::int32_t Build(std::vector<std::size_t>& items, std::size_t lo,
                     std::size_t hi, std::uint64_t seed);
  void Search(std::int32_t node, std::string_view query, NeighborResult& best,
              QueryStats& stats) const;
  void SearchK(std::int32_t node, std::string_view query, std::size_t k,
               std::vector<NeighborResult>& best, QueryStats& stats) const;
  void SearchRange(std::int32_t node, std::string_view query, double radius,
                   std::vector<NeighborResult>& hits, QueryStats& stats) const;

  PrototypeStoreRef prototypes_;
  StringDistancePtr distance_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::uint64_t preprocessing_computations_ = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_VP_TREE_H_
