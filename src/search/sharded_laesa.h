#ifndef CNED_SEARCH_SHARDED_LAESA_H_
#define CNED_SEARCH_SHARDED_LAESA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "datasets/sharded_prototype_store.h"
#include "distances/distance.h"
#include "search/nn_searcher.h"
#include "search/pivot_stage.h"
#include "search/sharded_searcher.h"
#include "search/table_quant.h"

namespace cned {

/// LAESA over a `ShardedPrototypeStore`: one pivot table per shard, one
/// shared (global) pivot set.
///
/// Pivots are selected max-min over the *whole* logical set — the same
/// sequence a flat `Laesa` would pick — and each shard stores the distances
/// from every pivot to its own prototypes as an independent row-major
/// table (an independently built, independently mmap-able unit). Pivots
/// are prototypes, so their own lower bounds come out of the same tables
/// and they remain adaptive candidates of their home shard.
///
/// Query execution runs the *identical* approximating-and-eliminating
/// sweep as the flat index: one global visit loop (incumbents, elimination
/// threshold and the next-candidate choice are global decisions, ties
/// resolved by lowest global index exactly as the flat packed scan does),
/// with the per-visit tighten/eliminate/compact pass partitioned by shard
/// and fanned out through `ParallelFor` when enough candidates survive to
/// amortise the dispatch. Every shard pass touches only its own contiguous
/// candidate segment and its own table rows, and the per-shard minima are
/// merged in shard order — so neighbours, distances *and* `QueryStats` are
/// bit-identical to the single-store `Laesa` on every distance, metric or
/// not, regardless of shard count or thread schedule.
///
/// The `*WithPivotRow` entry points are the sharded half of the batch
/// engine's two-stage pipeline (see pivot_stage.h): the engine evaluates
/// the query x pivot block once for the whole batch and each sweep then
/// consumes its precomputed row — per-shard row application in parallel,
/// followed by the same global adaptive phase over the survivors.
class ShardedLaesa final : public NearestNeighborSearcher,
                           public PivotStageSearcher,
                           public ShardStatsSearcher {
 public:
  /// Shared per-query cost counters (see `cned::QueryStats`).
  using QueryStats = ::cned::QueryStats;

  /// Builds per-shard pivot tables with greedy max-min pivots over the
  /// global set, starting from global index `first_pivot`. `store` is
  /// borrowed — the caller keeps it alive. Costs ~2·num_pivots·N distance
  /// evaluations, the same as the flat index.
  ///
  /// `table_precision` quantizes the shard tables exactly as in `Laesa`:
  /// each GLOBAL pivot row gets one shared decode meta (scanned across all
  /// shards before encoding), so a sharded build stays bit-identical to the
  /// flat build at the same precision.
  ShardedLaesa(const ShardedPrototypeStore& store, StringDistancePtr distance,
               std::size_t num_pivots, std::size_t first_pivot = 0,
               TablePrecision table_precision = DefaultTablePrecision());

  /// Nearest prototype (global index). `shard_stats`, when non-null, must
  /// point at shard_count() entries; each visited candidate's evaluation is
  /// accumulated onto its home shard.
  NeighborResult Nearest(std::string_view query,
                         QueryStats* stats = nullptr) const override;
  NeighborResult Nearest(std::string_view query, QueryStats* stats,
                         QueryStats* shard_stats) const;

  /// Approximate variant, as `Laesa::NearestApprox`.
  NeighborResult NearestApprox(std::string_view query, double epsilon,
                               QueryStats* stats = nullptr) const;

  /// The k nearest prototypes, closest first.
  std::vector<NeighborResult> KNearest(
      std::string_view query, std::size_t k,
      QueryStats* stats = nullptr) const override;
  std::vector<NeighborResult> KNearest(std::string_view query, std::size_t k,
                                       QueryStats* stats,
                                       QueryStats* shard_stats) const;

  std::size_t size() const override { return store_->size(); }
  std::size_t shard_count() const override { return store_->shard_count(); }

  // ShardStatsSearcher: the batch engine's per-shard cost accounting.
  NeighborResult NearestWithShardStats(std::string_view query,
                                       QueryStats* stats,
                                       QueryStats* shard_stats)
      const override {
    return Nearest(query, stats, shard_stats);
  }
  NeighborResult NearestWithPivotRowAndShardStats(std::string_view query,
                                                  const double* row,
                                                  QueryStats* stats,
                                                  QueryStats* shard_stats)
      const override {
    return NearestWithPivotRow(query, row, stats, shard_stats);
  }

  /// The sharded prototype set the index searches over.
  const ShardedPrototypeStore& store() const { return *store_; }

  std::size_t num_pivots() const { return pivots_.size(); }
  const std::vector<std::size_t>& pivots() const { return pivots_; }

  /// Distance evaluations spent in preprocessing (pivot selection + tables).
  std::uint64_t preprocessing_computations() const {
    return preprocessing_computations_;
  }

  // PivotStageSearcher: the batched pivot stage of the query engine.
  std::size_t pivot_count() const override { return pivots_.size(); }
  std::string_view PivotString(std::size_t p) const override {
    return store_->view(pivots_[p]);
  }
  const StringDistance& pivot_distance() const override { return *distance_; }
  void ComputePivotRow(std::string_view query, double* row,
                       QueryStats* stats = nullptr) const override;
  NeighborResult NearestWithPivotRow(std::string_view query, const double* row,
                                     QueryStats* stats = nullptr)
      const override;
  NeighborResult NearestWithPivotRow(std::string_view query, const double* row,
                                     QueryStats* stats,
                                     QueryStats* shard_stats) const;
  std::vector<NeighborResult> KNearestWithPivotRow(
      std::string_view query, std::size_t k, const double* row,
      QueryStats* stats = nullptr) const override;
  std::vector<NeighborResult> KNearestWithPivotRow(std::string_view query,
                                                   std::size_t k,
                                                   const double* row,
                                                   QueryStats* stats,
                                                   QueryStats* shard_stats)
      const;

  /// Binary serialization (shard sizes, global pivots and every per-shard
  /// table, 64-byte-aligned sections — common/binary_io.h). Pair with
  /// `ShardedPrototypeStore::SaveBinary` for a full serving snapshot.
  void Save(const std::string& path) const;

  /// Writes shard `s`'s slice of the index as a standalone snapshot: the
  /// global pivot ids plus that shard's table only, with enough header
  /// shape (total size, shard count, shard id, base) for a worker process
  /// to validate it belongs to the deployment it joined. A distributed
  /// shard worker maps this file plus the matching
  /// `store().shard(s).SaveBinary` store file and serves its segment of
  /// the sweep without ever touching the other shards' bytes
  /// (src/serve/replica.h).
  void SaveShard(std::size_t s, const std::string& path) const;

  /// Writes the router's half of a distributed snapshot: shard sizes, the
  /// global pivot ids and the pivot *strings*. The scatter/gather router
  /// loads only this manifest — it evaluates the pivot stage locally from
  /// the embedded strings and leaves every non-pivot candidate to the
  /// shard workers, so its memory stays O(pivots), not O(N).
  void SaveRouterManifest(const std::string& path) const;

  /// Restores an index saved by `Save` against the *same* sharded store and
  /// distance. Throws std::runtime_error on malformed input or a
  /// store-shape mismatch.
  static ShardedLaesa Load(const std::string& path,
                           const ShardedPrototypeStore& store,
                           StringDistancePtr distance);

  /// Zero-copy form of `Load`: maps the file and points every per-shard
  /// table view at its section in place — no table is copied, so startup is
  /// O(N) bookkeeping instead of O(pivots x N), and each shard's table
  /// remains an independently page-cache-shared unit. Validation matches
  /// `Load`; results and `QueryStats` are bit-identical to the built index.
  static ShardedLaesa Map(const std::string& path,
                          const ShardedPrototypeStore& store,
                          StringDistancePtr distance);

  /// True when the shard tables alias a mapped snapshot.
  bool mapped() const { return mapping_ != nullptr; }

  /// Storage precision of the shard tables.
  TablePrecision table_precision() const { return precision_; }

 private:
  struct InternalTag {};
  ShardedLaesa(InternalTag, const ShardedPrototypeStore& store,
               StringDistancePtr distance)
      : store_(&store), distance_(std::move(distance)) {}

  void BuildTables();

  /// The global adaptive sweep with shard-partitioned passes (lazy pivot
  /// evaluation — the per-query path).
  std::vector<NeighborResult> Sweep(std::string_view query, std::size_t k,
                                    double slack, QueryStats* stats,
                                    QueryStats* shard_stats) const;

  /// The row-consuming sweep behind the *WithPivotRow entry points.
  std::vector<NeighborResult> SweepWithRow(std::string_view query,
                                           std::size_t k, const double* row,
                                           QueryStats* stats,
                                           QueryStats* shard_stats) const;

  /// Shard s's pivot table as a flat row-major view:
  /// shard_table(s)[p * n_s + j] = d(pivot_p, shard s's j-th prototype).
  /// Pivots are prototypes, so their own bounds come from these tables too
  /// — no separate pivot-to-pivot matrix is needed. Backed by the owned
  /// per-shard buffers (build/Load) or by mapped file sections (Map).
  const double* shard_table(std::size_t s) const {
    return mapping_ ? mapped_tables_[s] : tables_[s].data();
  }

  /// Shard s's quantized code table / the GLOBAL per-row meta, owned or
  /// mapped (meaningless for f64).
  const void* shard_quant(std::size_t s) const {
    return mapping_ ? mapped_quants_[s]
                    : static_cast<const void*>(quant_tables_[s].data());
  }
  const QuantRowMeta* row_meta_data() const {
    return mapping_ ? mapped_meta_ : row_meta_.data();
  }

  /// The any-precision view of shard s's table (table_quant.h). The meta
  /// is global — every shard decodes a pivot row with the same
  /// scale/offset/gap, which is what keeps sharded == flat bitwise.
  QuantTableView shard_view(std::size_t s) const {
    QuantTableView view;
    view.precision = precision_;
    if (precision_ == TablePrecision::kF64) {
      view.f64 = shard_table(s);
    } else {
      view.q = shard_quant(s);
      view.rows = row_meta_data();
    }
    return view;
  }

  const ShardedPrototypeStore* store_;
  StringDistancePtr distance_;
  std::vector<std::size_t> pivots_;       // global indices, distinct
  std::vector<std::int32_t> pivot_rank_;  // global index -> ordinal or -1
  TablePrecision precision_ = TablePrecision::kF64;
  std::vector<std::vector<double>> tables_;  // owned f64 tables; else empty
  std::vector<std::vector<unsigned char>> quant_tables_;  // owned codes
  std::vector<QuantRowMeta> row_meta_;  // global per-row meta (non-f64)
  std::vector<const double*> mapped_tables_;  // views into mapping_
  std::vector<const void*> mapped_quants_;    // quantized counterparts
  const QuantRowMeta* mapped_meta_ = nullptr;
  std::shared_ptr<MappedFile> mapping_;
  std::uint64_t preprocessing_computations_ = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_SHARDED_LAESA_H_
