// AVX2 implementations of the sweep kernels (see sweep_kernel.h for the
// semantics every variant must reproduce bit for bit).
//
// This translation unit — and only this one — is compiled with -mavx2
// (CMake's CNED_SIMD option); the rest of the library stays portable and
// the variant is picked at runtime via CPUID (common/cpu_features.h).
//
// Vectorisation notes, all in service of the bit-identity contract:
//
//  * |d - row| is _mm256_sub_pd + clearing the sign bit — exactly the
//    scalar std::abs(d - row) (one correctly rounded subtraction; abs is
//    exact). No FMA is used anywhere, so no contraction can change a
//    rounding.
//  * The running-max update `lb = g > lb ? g : lb` is _mm256_max_pd(g, lb)
//    verbatim: maxpd returns the SECOND operand on ties and NaNs, which is
//    precisely the scalar ternary's behaviour.
//  * Elimination keeps a lane iff NOT(lb * slack >= bound), encoded as the
//    unordered-quiet predicate _CMP_NGE_UQ so an (impossible in practice,
//    but contract-tested) NaN bound/lb survives exactly like the scalar
//    `!(lb >= bound)`.
//  * Survivor compaction is the classic movemask + shuffle-table left
//    pack: a 4-bit keep mask selects a pshufb control for the 4 u32 ids
//    and a vpermd control for the 4 doubles. Stores write a full vector at
//    the write cursor; write <= read holds throughout, so at most the
//    block just loaded is overwritten, never unread data.
//  * The minimal-bound survivor is tracked as per-lane (key, id) running
//    minima with a strict '<', then folded by (key, id). The packed id
//    slice is strictly ascending (see sweep_kernel.h), so "smallest id
//    among ties" is exactly the scalar "first occurrence in scan order".
//    Ids ride along as exact doubles (u32 -> double via the 2^31 bias
//    trick, exact for the full 32-bit range).
//  * A lane whose bound is +inf never becomes `next` (inf < anything is
//    false), matching the scalar strict '<' from an infinite initial key —
//    eliminated-slot infinities propagate identically.

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "search/sweep_kernel.h"
#include "search/table_quant.h"  // HalfToDouble for the f16 scalar tails

namespace cned {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Left-pack shuffle controls, indexed by the 4-bit keep mask.
struct PackTables {
  alignas(16) std::uint8_t u32_bytes[16][16];  // pshufb control, 4 x u32
  alignas(32) std::uint32_t f64_lanes[16][8];  // vpermd control, 4 x f64
  PackTables() {
    for (int m = 0; m < 16; ++m) {
      int w = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if ((m >> lane) & 1) {
          for (int b = 0; b < 4; ++b) {
            u32_bytes[m][w * 4 + b] = static_cast<std::uint8_t>(lane * 4 + b);
          }
          f64_lanes[m][w * 2] = static_cast<std::uint32_t>(lane * 2);
          f64_lanes[m][w * 2 + 1] = static_cast<std::uint32_t>(lane * 2 + 1);
          ++w;
        }
      }
      // Tail lanes beyond the survivors are garbage by contract; zero-fill
      // the controls (0x80 zeroes pshufb lanes) so the stores are at least
      // deterministic.
      for (int b = w * 4; b < 16; ++b) u32_bytes[m][b] = 0x80;
      for (int l = w * 2; l < 8; ++l) f64_lanes[m][l] = 0;
    }
  }
};

const PackTables& Tables() {
  static const PackTables tables;
  return tables;
}

inline __m256d AbsDiff(__m256d d, __m256d row) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), _mm256_sub_pd(d, row));
}

/// Exact u32 -> double for all 2^32 values: bias to signed, convert, unbias.
inline __m256d U32ToDouble(__m128i v) {
  const __m128i biased = _mm_add_epi32(v, _mm_set1_epi32(INT32_MIN));
  return _mm256_add_pd(_mm256_cvtepi32_pd(biased),
                       _mm256_set1_pd(2147483648.0));
}

void Avx2UpdateLowerDense(double d, const double* row, double* lower,
                          std::size_t n) {
  const __m256d vd = _mm256_set1_pd(d);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d g = AbsDiff(vd, _mm256_loadu_pd(row + i));
    _mm256_storeu_pd(lower + i,
                     _mm256_max_pd(g, _mm256_loadu_pd(lower + i)));
  }
  for (; i < n; ++i) {
    const double g = std::abs(d - row[i]);
    if (g > lower[i]) lower[i] = g;
  }
}

void Avx2UpdateLowerPacked(double d, const double* row,
                           const std::uint32_t* idx, std::uint32_t base,
                           double* lower, std::size_t live) {
  const __m256d vd = _mm256_set1_pd(d);
  const __m128i vbase = _mm_set1_epi32(static_cast<int>(base));
  std::size_t r = 0;
  for (; r + 4 <= live; r += 4) {
    // Early in a sweep the packed slice is still (nearly) dense, and ids
    // are strictly ascending throughout — when a block spans exactly four
    // consecutive ids, a contiguous load replaces the (much slower on many
    // cores) hardware gather. Same row elements either way.
    const std::uint32_t first = idx[r];
    const __m256d rows =
        idx[r + 3] - first == 3
            ? _mm256_loadu_pd(row + (first - base))
            : _mm256_i32gather_pd(
                  row,
                  _mm_sub_epi32(_mm_loadu_si128(
                                    reinterpret_cast<const __m128i*>(idx + r)),
                                vbase),
                  8);
    const __m256d g = AbsDiff(vd, rows);
    _mm256_storeu_pd(lower + r,
                     _mm256_max_pd(g, _mm256_loadu_pd(lower + r)));
  }
  for (; r < live; ++r) {
    const double g = std::abs(d - row[idx[r] - base]);
    if (g > lower[r]) lower[r] = g;
  }
}

// --- Quantized row kernels (semantics in sweep_kernel.h). ------------------
//
// Every decode is exact, so the only rounded operations are the same
// subtractions/multiply the scalar kernels perform:
//  * f32 widens with cvtps_pd (exact).
//  * f16 reconstructs the float by shifting the half's exponent+mantissa
//    into float position and rescaling by 2^112f — an exact power-of-two
//    multiply, bit-identical to HalfToDouble.
//  * u8 widens the code via cvtepi32_pd (exact for 0..255) and multiplies
//    by the row scale — the ONE rounded multiply, same as the scalar
//    per-lane `double(code) * scale`. No FMA, so diff = m - d' cannot be
//    contracted with it.

/// max(diff, (-diff) - gap): sign-flip is exact, the subtraction is the
/// scalar's, and maxpd(diff, other) returns `other` on ties — exactly the
/// scalar ternary `diff > other ? diff : other`.
inline __m256d QuantArms(__m256d diff, __m256d vgap) {
  const __m256d other =
      _mm256_sub_pd(_mm256_xor_pd(diff, _mm256_set1_pd(-0.0)), vgap);
  return _mm256_max_pd(diff, other);
}

/// Exact decode of 4 binary16 codes sitting in u32 lanes.
inline __m256d DecodeHalfCodes(__m128i codes32) {
  const __m128i bits =
      _mm_slli_epi32(_mm_and_si128(codes32, _mm_set1_epi32(0x7FFF)), 13);
  const __m128 f = _mm_mul_ps(_mm_castsi128_ps(bits), _mm_set1_ps(0x1p112f));
  return _mm256_cvtps_pd(f);
}

/// 4 u8 codes -> u32 lanes (unaligned 4-byte load).
inline __m128i LoadU8x4(const std::uint8_t* p) {
  std::uint32_t four;
  std::memcpy(&four, p, sizeof(four));
  return _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(four)));
}

void Avx2UpdateLowerDenseF32(double d, const float* row, double gap,
                             double* lower, std::size_t n) {
  const __m256d vd = _mm256_set1_pd(d);
  const __m256d vgap = _mm256_set1_pd(gap);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(row + i));
    const __m256d g = QuantArms(_mm256_sub_pd(v, vd), vgap);
    _mm256_storeu_pd(lower + i, _mm256_max_pd(g, _mm256_loadu_pd(lower + i)));
  }
  for (; i < n; ++i) {
    const double diff = static_cast<double>(row[i]) - d;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[i]) lower[i] = g;
  }
}

void Avx2UpdateLowerPackedF32(double d, const float* row,
                              const std::uint32_t* idx, std::uint32_t base,
                              double gap, double* lower, std::size_t live) {
  const __m256d vd = _mm256_set1_pd(d);
  const __m256d vgap = _mm256_set1_pd(gap);
  const __m128i vbase = _mm_set1_epi32(static_cast<int>(base));
  std::size_t r = 0;
  for (; r + 4 <= live; r += 4) {
    const std::uint32_t first = idx[r];
    const __m128 rows =
        idx[r + 3] - first == 3
            ? _mm_loadu_ps(row + (first - base))
            : _mm_i32gather_ps(
                  row,
                  _mm_sub_epi32(_mm_loadu_si128(
                                    reinterpret_cast<const __m128i*>(idx + r)),
                                vbase),
                  4);
    const __m256d g =
        QuantArms(_mm256_sub_pd(_mm256_cvtps_pd(rows), vd), vgap);
    _mm256_storeu_pd(lower + r, _mm256_max_pd(g, _mm256_loadu_pd(lower + r)));
  }
  for (; r < live; ++r) {
    const double diff = static_cast<double>(row[idx[r] - base]) - d;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[r]) lower[r] = g;
  }
}

void Avx2UpdateLowerDenseF16(double d, const std::uint16_t* row, double gap,
                             double* lower, std::size_t n) {
  const __m256d vd = _mm256_set1_pd(d);
  const __m256d vgap = _mm256_set1_pd(gap);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i codes = _mm_cvtepu16_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + i)));
    const __m256d g =
        QuantArms(_mm256_sub_pd(DecodeHalfCodes(codes), vd), vgap);
    _mm256_storeu_pd(lower + i, _mm256_max_pd(g, _mm256_loadu_pd(lower + i)));
  }
  for (; i < n; ++i) {
    const double diff = HalfToDouble(row[i]) - d;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[i]) lower[i] = g;
  }
}

void Avx2UpdateLowerPackedF16(double d, const std::uint16_t* row,
                              const std::uint32_t* idx, std::uint32_t base,
                              double gap, double* lower, std::size_t live) {
  const __m256d vd = _mm256_set1_pd(d);
  const __m256d vgap = _mm256_set1_pd(gap);
  std::size_t r = 0;
  for (; r + 4 <= live; r += 4) {
    const std::uint32_t first = idx[r];
    // No 16-bit hardware gather exists; scatter-load the four codes when
    // the block isn't contiguous.
    const __m128i codes =
        idx[r + 3] - first == 3
            ? _mm_cvtepu16_epi32(_mm_loadl_epi64(
                  reinterpret_cast<const __m128i*>(row + (first - base))))
            : _mm_setr_epi32(row[idx[r] - base], row[idx[r + 1] - base],
                             row[idx[r + 2] - base], row[idx[r + 3] - base]);
    const __m256d g =
        QuantArms(_mm256_sub_pd(DecodeHalfCodes(codes), vd), vgap);
    _mm256_storeu_pd(lower + r, _mm256_max_pd(g, _mm256_loadu_pd(lower + r)));
  }
  for (; r < live; ++r) {
    const double diff = HalfToDouble(row[idx[r] - base]) - d;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[r]) lower[r] = g;
  }
}

void Avx2UpdateLowerDenseU8(double d, const std::uint8_t* row, double scale,
                            double offset, double gap, double* lower,
                            std::size_t n) {
  const double dq = d - offset;  // once per call, as in the scalar kernel
  const __m256d vdq = _mm256_set1_pd(dq);
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vgap = _mm256_set1_pd(gap);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d m =
        _mm256_mul_pd(_mm256_cvtepi32_pd(LoadU8x4(row + i)), vscale);
    const __m256d g = QuantArms(_mm256_sub_pd(m, vdq), vgap);
    _mm256_storeu_pd(lower + i, _mm256_max_pd(g, _mm256_loadu_pd(lower + i)));
  }
  for (; i < n; ++i) {
    const double m = static_cast<double>(row[i]) * scale;
    const double diff = m - dq;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[i]) lower[i] = g;
  }
}

void Avx2UpdateLowerPackedU8(double d, const std::uint8_t* row,
                             const std::uint32_t* idx, std::uint32_t base,
                             double scale, double offset, double gap,
                             double* lower, std::size_t live) {
  const double dq = d - offset;
  const __m256d vdq = _mm256_set1_pd(dq);
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vgap = _mm256_set1_pd(gap);
  std::size_t r = 0;
  for (; r + 4 <= live; r += 4) {
    const std::uint32_t first = idx[r];
    const __m128i codes =
        idx[r + 3] - first == 3
            ? LoadU8x4(row + (first - base))
            : _mm_setr_epi32(row[idx[r] - base], row[idx[r + 1] - base],
                             row[idx[r + 2] - base], row[idx[r + 3] - base]);
    const __m256d m = _mm256_mul_pd(_mm256_cvtepi32_pd(codes), vscale);
    const __m256d g = QuantArms(_mm256_sub_pd(m, vdq), vgap);
    _mm256_storeu_pd(lower + r, _mm256_max_pd(g, _mm256_loadu_pd(lower + r)));
  }
  for (; r < live; ++r) {
    const double m = static_cast<double>(row[idx[r] - base]) * scale;
    const double diff = m - dq;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[r]) lower[r] = g;
  }
}

void Avx2FillAbsDiffBounds(std::size_t x_len, const std::uint32_t* y_lens,
                           std::size_t n, double* out) {
  // double(x_len) and double(y) are exact (string lengths < 2^53, y < 2^32)
  // and so is their difference — identical to the scalar integer-subtract-
  // then-convert form.
  const __m256d vx = _mm256_set1_pd(static_cast<double>(x_len));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d y = U32ToDouble(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(y_lens + i)));
    _mm256_storeu_pd(out + i, AbsDiff(vx, y));
  }
  for (; i < n; ++i) {
    const std::size_t y = y_lens[i];
    out[i] = x_len > y ? static_cast<double>(x_len - y)
                       : static_cast<double>(y - x_len);
  }
}

/// Folds one (key, id) candidate into the running (next_key, next) pair
/// with the tie rule "smaller id wins" — equivalent to the scalar
/// first-occurrence strict '<' because packed ids are strictly ascending.
/// The id arrives as a double (the lane representation) and is converted
/// only behind the key guard: an unrecorded lane carries +inf in BOTH
/// registers, and float-to-integer conversion of inf would be UB.
inline void FoldMin(double key, double id_lane, double* next_key,
                    std::size_t* next) {
  if (!(key < kInf)) return;  // never recorded by the scalar strict '<'
  const std::size_t id = static_cast<std::size_t>(id_lane);
  if (key < *next_key || (key == *next_key && id < *next)) {
    *next_key = key;
    *next = id;
  }
}

/// Shared body of the two packed eliminate-and-compact kernels. kFlagged
/// adds the slack multiply and the pivot bookkeeping of the lazy sweeps.
template <bool kFlagged>
SweepCompactResult Avx2Eliminate(std::uint32_t* idx, double* lower,
                                 const std::int32_t* pivot_rank,
                                 std::size_t live, std::uint32_t skip,
                                 double slack, double bound) {
  // Below a couple of vector blocks the per-pass fixed cost (broadcasts,
  // final lane reduce, the rank gather's latency) outweighs the lane win —
  // and late-sweep passes over a collapsed candidate set are the common
  // case in the lazy path. The scalar tail loop below IS the scalar
  // kernel, so skipping the vector phase changes nothing but speed.
  constexpr std::size_t kScalarCutoff = 32;
  SweepCompactResult out;
  const PackTables& t = Tables();
  const __m256d vslack = _mm256_set1_pd(slack);
  const __m256d vbound = _mm256_set1_pd(bound);
  const __m256d vinf = _mm256_set1_pd(kInf);
  const __m128i vskip = _mm_set1_epi32(static_cast<int>(skip));
  const __m128i vneg1 = _mm_set1_epi32(-1);
  __m256d vmin = vinf, vmin_id = vinf;
  __m256d vpmin = vinf, vpmin_id = vinf;
  std::size_t pivots_died = 0;
  std::size_t write = 0;
  std::size_t r = 0;
  for (; live >= kScalarCutoff && r + 4 <= live; r += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + r));
    const __m256d lb = _mm256_loadu_pd(lower + r);
    const __m256d scaled = kFlagged ? _mm256_mul_pd(lb, vslack) : lb;
    // keep iff id != skip && !(lb * slack >= bound)
    const __m256d value_ok = _mm256_cmp_pd(scaled, vbound, _CMP_NGE_UQ);
    const __m128i skip_eq = _mm_cmpeq_epi32(vi, vskip);
    const int skip_bits = _mm_movemask_ps(_mm_castsi128_ps(skip_eq));
    const int keep = _mm256_movemask_pd(value_ok) & ~skip_bits & 0xF;
    // Left-pack survivors in place (write <= r: never clobbers unread data).
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(idx + write),
        _mm_shuffle_epi8(vi, _mm_load_si128(reinterpret_cast<const __m128i*>(
                                 t.u32_bytes[keep]))));
    _mm256_storeu_pd(
        lower + write,
        _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
            _mm256_castpd_si256(lb),
            _mm256_load_si256(
                reinterpret_cast<const __m256i*>(t.f64_lanes[keep])))));
    write += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(keep)));
    // Running minimum over kept lanes (masked-out lanes become +inf, which
    // the strict '<' never records).
    const __m256d keep_mask = _mm256_andnot_pd(
        _mm256_castsi256_pd(_mm256_cvtepi32_epi64(skip_eq)), value_ok);
    const __m256d masked = _mm256_blendv_pd(vinf, lb, keep_mask);
    const __m256d lt = _mm256_cmp_pd(masked, vmin, _CMP_LT_OQ);
    const __m256d ids = U32ToDouble(vi);
    vmin = _mm256_blendv_pd(vmin, masked, lt);
    vmin_id = _mm256_blendv_pd(vmin_id, ids, lt);
    if constexpr (kFlagged) {
      const __m128i ranks = _mm_i32gather_epi32(
          reinterpret_cast<const int*>(pivot_rank), vi, 4);
      const __m128i flag32 = _mm_cmpgt_epi32(ranks, vneg1);  // rank >= 0
      const int flag_bits = _mm_movemask_ps(_mm_castsi128_ps(flag32));
      pivots_died += static_cast<std::size_t>(
          __builtin_popcount(static_cast<unsigned>(flag_bits & ~keep & 0xF)));
      const __m256d flag_mask =
          _mm256_castsi256_pd(_mm256_cvtepi32_epi64(flag32));
      const __m256d pmasked = _mm256_blendv_pd(
          vinf, lb, _mm256_and_pd(keep_mask, flag_mask));
      const __m256d plt = _mm256_cmp_pd(pmasked, vpmin, _CMP_LT_OQ);
      vpmin = _mm256_blendv_pd(vpmin, pmasked, plt);
      vpmin_id = _mm256_blendv_pd(vpmin_id, ids, plt);
    }
  }
  // Fold the vector lanes, then the scalar tail (tail ids are larger than
  // every vector-phase id, so the shared (key, id) rule stays exact).
  alignas(32) double keys[4], ids[4];
  _mm256_store_pd(keys, vmin);
  _mm256_store_pd(ids, vmin_id);
  for (int l = 0; l < 4; ++l) {
    FoldMin(keys[l], ids[l], &out.next_key, &out.next);
  }
  if constexpr (kFlagged) {
    _mm256_store_pd(keys, vpmin);
    _mm256_store_pd(ids, vpmin_id);
    for (int l = 0; l < 4; ++l) {
      FoldMin(keys[l], ids[l], &out.next_pivot_key, &out.next_pivot);
    }
  }
  for (; r < live; ++r) {
    const std::uint32_t u = idx[r];
    const bool is_pivot = kFlagged && pivot_rank[u] >= 0;
    if (u == skip) {
      pivots_died += is_pivot ? 1 : 0;
      continue;
    }
    const double lb = lower[r];
    if ((kFlagged ? lb * slack : lb) >= bound) {
      pivots_died += is_pivot ? 1 : 0;
      continue;
    }
    idx[write] = u;
    lower[write] = lb;
    ++write;
    FoldMin(lb, static_cast<double>(u), &out.next_key, &out.next);
    if (is_pivot) {
      FoldMin(lb, static_cast<double>(u), &out.next_pivot_key,
              &out.next_pivot);
    }
  }
  out.live = write;
  out.pivots_died = kFlagged ? pivots_died : 0;
  return out;
}

SweepCompactResult Avx2EliminateAndCompact(std::uint32_t* idx, double* lower,
                                           std::size_t live,
                                           std::uint32_t skip, double bound) {
  return Avx2Eliminate<false>(idx, lower, nullptr, live, skip, 1.0, bound);
}

SweepCompactResult Avx2EliminateAndCompactFlagged(
    std::uint32_t* idx, double* lower, const std::int32_t* pivot_rank,
    std::size_t live, std::uint32_t skip, double slack, double bound) {
  return Avx2Eliminate<true>(idx, lower, pivot_rank, live, skip, slack,
                             bound);
}

SweepCompactResult Avx2CompactSeed(const double* lower_dense,
                                   const std::int32_t* rank, std::size_t n,
                                   std::uint32_t base, double bound,
                                   std::uint32_t* idx_out,
                                   double* lower_out) {
  SweepCompactResult out;
  const PackTables& t = Tables();
  const __m256d vbound = _mm256_set1_pd(bound);
  const __m256d vinf = _mm256_set1_pd(kInf);
  const __m128i viota = _mm_setr_epi32(0, 1, 2, 3);
  const __m128i vzero = _mm_setzero_si128();
  __m256d vmin = vinf, vmin_id = vinf;
  std::size_t write = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d lb = _mm256_loadu_pd(lower_dense + j);
    const __m128i ranks =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rank + j));
    const __m128i non_pivot = _mm_cmpgt_epi32(vzero, ranks);  // rank < 0
    const __m256d value_ok = _mm256_cmp_pd(lb, vbound, _CMP_NGE_UQ);
    const int keep = _mm256_movemask_pd(value_ok) &
                     _mm_movemask_ps(_mm_castsi128_ps(non_pivot)) & 0xF;
    const __m128i ids32 = _mm_add_epi32(
        _mm_set1_epi32(static_cast<int>(base + static_cast<std::uint32_t>(j))),
        viota);
    // lower_out may alias lower_dense: write <= j keeps the pack in-place
    // safe exactly as in the packed kernels.
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(idx_out + write),
        _mm_shuffle_epi8(ids32,
                         _mm_load_si128(reinterpret_cast<const __m128i*>(
                             t.u32_bytes[keep]))));
    _mm256_storeu_pd(
        lower_out + write,
        _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
            _mm256_castpd_si256(lb),
            _mm256_load_si256(
                reinterpret_cast<const __m256i*>(t.f64_lanes[keep])))));
    write += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(keep)));
    const __m256d keep_mask = _mm256_and_pd(
        _mm256_castsi256_pd(_mm256_cvtepi32_epi64(non_pivot)), value_ok);
    const __m256d masked = _mm256_blendv_pd(vinf, lb, keep_mask);
    const __m256d lt = _mm256_cmp_pd(masked, vmin, _CMP_LT_OQ);
    const __m256d ids = U32ToDouble(ids32);
    vmin = _mm256_blendv_pd(vmin, masked, lt);
    vmin_id = _mm256_blendv_pd(vmin_id, ids, lt);
  }
  alignas(32) double keys[4], ids[4];
  _mm256_store_pd(keys, vmin);
  _mm256_store_pd(ids, vmin_id);
  for (int l = 0; l < 4; ++l) {
    FoldMin(keys[l], ids[l], &out.next_key, &out.next);
  }
  for (; j < n; ++j) {
    if (rank[j] >= 0) continue;
    const double lb = lower_dense[j];
    if (lb >= bound) continue;
    idx_out[write] = base + static_cast<std::uint32_t>(j);
    lower_out[write] = lb;
    ++write;
    FoldMin(lb, static_cast<double>(base + j), &out.next_key, &out.next);
  }
  out.live = write;
  return out;
}

}  // namespace

const SweepKernels& Avx2SweepKernels() {
  static const SweepKernels kAvx2 = [] {
    SweepKernels k{};
    k.name = "avx2";
    k.update_lower_dense = Avx2UpdateLowerDense;
    k.update_lower_packed = Avx2UpdateLowerPacked;
    k.update_lower_dense_f32 = Avx2UpdateLowerDenseF32;
    k.update_lower_packed_f32 = Avx2UpdateLowerPackedF32;
    k.update_lower_dense_f16 = Avx2UpdateLowerDenseF16;
    k.update_lower_packed_f16 = Avx2UpdateLowerPackedF16;
    k.update_lower_dense_u8 = Avx2UpdateLowerDenseU8;
    k.update_lower_packed_u8 = Avx2UpdateLowerPackedU8;
    k.fill_absdiff_bounds = Avx2FillAbsDiffBounds;
    k.eliminate_and_compact = Avx2EliminateAndCompact;
    k.eliminate_and_compact_flagged = Avx2EliminateAndCompactFlagged;
    k.compact_seed = Avx2CompactSeed;
    return k;
  }();
  return kAvx2;
}

}  // namespace cned

#endif  // defined(__AVX2__)
