#include "search/condensing.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace cned {
namespace {

// 1-NN label of `query` within the subset `kept` (indices into samples).
int ClassifyWithin(const std::vector<std::string>& samples,
                   const std::vector<int>& labels,
                   const std::vector<std::size_t>& kept,
                   const StringDistance& distance, const std::string& query) {
  double best = std::numeric_limits<double>::infinity();
  int best_label = -1;
  for (std::size_t idx : kept) {
    double d = distance.Distance(query, samples[idx]);
    if (d < best) {
      best = d;
      best_label = labels[idx];
    }
  }
  return best_label;
}

}  // namespace

std::vector<std::size_t> CondenseTrainingSet(
    const std::vector<std::string>& samples, const std::vector<int>& labels,
    const StringDistance& distance) {
  if (samples.size() != labels.size()) {
    throw std::invalid_argument("CondenseTrainingSet: size mismatch");
  }
  if (samples.empty()) return {};

  std::vector<std::size_t> kept;
  std::vector<bool> in_subset(samples.size(), false);

  // Seed with the first occurrence of every class, in index order.
  std::vector<int> seen_labels;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    bool new_label = true;
    for (int l : seen_labels) {
      if (l == labels[i]) {
        new_label = false;
        break;
      }
    }
    if (new_label) {
      seen_labels.push_back(labels[i]);
      kept.push_back(i);
      in_subset[i] = true;
    }
  }

  // Sweep until a full pass makes no additions: add every sample the
  // current subset misclassifies.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (in_subset[i]) continue;
      int predicted =
          ClassifyWithin(samples, labels, kept, distance, samples[i]);
      if (predicted != labels[i]) {
        kept.push_back(i);
        in_subset[i] = true;
        changed = true;
      }
    }
  }
  return kept;
}

std::vector<std::size_t> WilsonEdit(const std::vector<std::string>& samples,
                                    const std::vector<int>& labels,
                                    const StringDistance& distance,
                                    std::size_t k) {
  if (samples.size() != labels.size()) {
    throw std::invalid_argument("WilsonEdit: size mismatch");
  }
  if (k == 0) throw std::invalid_argument("WilsonEdit: k must be >= 1");
  std::vector<std::size_t> kept;
  if (samples.size() <= 1) {
    for (std::size_t i = 0; i < samples.size(); ++i) kept.push_back(i);
    return kept;
  }

  for (std::size_t i = 0; i < samples.size(); ++i) {
    // k nearest neighbours of sample i among the others.
    std::vector<std::pair<double, std::size_t>> dists;
    dists.reserve(samples.size() - 1);
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (j == i) continue;
      dists.emplace_back(distance.Distance(samples[i], samples[j]), j);
    }
    std::size_t kk = std::min(k, dists.size());
    std::partial_sort(dists.begin(),
                      dists.begin() + static_cast<std::ptrdiff_t>(kk),
                      dists.end());
    std::map<int, std::size_t> votes;
    for (std::size_t t = 0; t < kk; ++t) ++votes[labels[dists[t].second]];
    // Majority label; proximity breaks ties.
    int best_label = labels[dists[0].second];
    std::size_t best_votes = 0;
    for (std::size_t t = 0; t < kk; ++t) {
      int label = labels[dists[t].second];
      if (votes[label] > best_votes) {
        best_votes = votes[label];
        best_label = label;
      }
    }
    if (best_label == labels[i]) kept.push_back(i);
  }
  return kept;
}

CondensedSet Condense(const std::vector<std::string>& samples,
                      const std::vector<int>& labels,
                      const StringDistance& distance) {
  CondensedSet out;
  out.indices = CondenseTrainingSet(samples, labels, distance);
  out.strings.reserve(out.indices.size());
  out.labels.reserve(out.indices.size());
  for (std::size_t idx : out.indices) {
    out.strings.push_back(samples[idx]);
    out.labels.push_back(labels[idx]);
  }
  return out;
}

}  // namespace cned
