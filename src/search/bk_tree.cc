#include "search/bk_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cned {

std::size_t BkTree::IntDistance(std::string_view a, std::string_view b) const {
  double d = distance_->Distance(a, b);
  double rounded = std::round(d);
  if (d < 0.0 || std::abs(d - rounded) > 1e-9) {
    throw std::invalid_argument(
        "BkTree: distance is not integer-valued (use dE)");
  }
  return static_cast<std::size_t>(rounded);
}

std::size_t BkTree::BoundedIntDistance(std::string_view a, std::string_view b,
                                       double cap, bool* abandoned) const {
  double d = distance_->DistanceBounded(a, b, cap);
  if (d >= cap) {
    *abandoned = true;
    return 0;
  }
  *abandoned = false;
  double rounded = std::round(d);
  if (d < 0.0 || std::abs(d - rounded) > 1e-9) {
    throw std::invalid_argument(
        "BkTree: distance is not integer-valued (use dE)");
  }
  return static_cast<std::size_t>(rounded);
}

BkTree::BkTree(PrototypeStoreRef prototypes, StringDistancePtr distance)
    : prototypes_(prototypes), distance_(std::move(distance)) {
  if (prototypes_->empty()) {
    throw std::invalid_argument("BkTree: empty prototype set");
  }
  nodes_.reserve(prototypes_->size());
  nodes_.push_back(Node{0, {}});
  for (std::size_t i = 1; i < prototypes_->size(); ++i) {
    std::int32_t cur = 0;
    for (;;) {
      std::size_t d = IntDistance(store()[i],
                                  store()[nodes_[cur].point]);
      if (d == 0) break;  // exact duplicate: keep only the first copy
      auto it = nodes_[static_cast<std::size_t>(cur)].children.find(d);
      if (it == nodes_[static_cast<std::size_t>(cur)].children.end()) {
        nodes_.push_back(Node{i, {}});
        nodes_[static_cast<std::size_t>(cur)].children[d] =
            static_cast<std::int32_t>(nodes_.size() - 1);
        break;
      }
      cur = it->second;
    }
  }
}

NeighborResult BkTree::Nearest(std::string_view query,
                               QueryStats* stats) const {
  NeighborResult best{0, std::numeric_limits<double>::infinity()};
  std::uint64_t computations = 0, abandons = 0;
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    // The kernel may stop once d can neither improve the incumbent nor
    // reach any child edge window [e - r, e + r]: the largest edge label
    // plus the current radius caps every useful value (distances are
    // integers, so "+1" makes the cap exclusive).
    double cap = best.distance;
    if (!node.children.empty() &&
        best.distance != std::numeric_limits<double>::infinity()) {
      const double max_edge =
          static_cast<double>(node.children.rbegin()->first);
      cap = std::max(cap, max_edge + best.distance + 1.0);
    }
    bool abandoned = false;
    std::size_t d = BoundedIntDistance(query, store()[node.point], cap,
                                       &abandoned);
    ++computations;
    if (abandoned) {
      ++abandons;
      continue;  // no improvement and every child edge is out of range
    }
    if (static_cast<double>(d) < best.distance) {
      best = {node.point, static_cast<double>(d)};
    }
    const auto r = static_cast<std::size_t>(best.distance);
    // Only edges labelled within [d - r, d + r] can contain improvements.
    const std::size_t lo = d > r ? d - r : 0;
    const std::size_t hi = d + r;
    for (auto it = node.children.lower_bound(lo);
         it != node.children.end() && it->first <= hi; ++it) {
      stack.push_back(it->second);
    }
  }
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

std::vector<NeighborResult> BkTree::KNearest(std::string_view query,
                                             std::size_t k,
                                             QueryStats* stats) const {
  k = std::min(k, size());
  if (k == 0) return {};
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? inf : best.back().distance; };
  std::uint64_t computations = 0, abandons = 0;
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    // As in Nearest, with the k-th incumbent as the radius: the kernel may
    // stop once d can neither improve the k-th best nor reach any child
    // edge window [e - r, e + r]. Until k incumbents exist the radius is
    // unbounded, so every node is evaluated exactly and every child kept.
    double cap = kth();
    if (!node.children.empty() && cap != inf) {
      const double max_edge =
          static_cast<double>(node.children.rbegin()->first);
      cap = std::max(cap, max_edge + cap + 1.0);
    }
    bool abandoned = false;
    std::size_t d = BoundedIntDistance(query, store()[node.point], cap,
                                       &abandoned);
    ++computations;
    if (abandoned) {
      ++abandons;
      continue;  // cannot improve and every child edge is out of range
    }
    InsertNeighborTopK(best, k, {node.point, static_cast<double>(d)});
    if (kth() == inf) {
      for (const auto& [edge, child] : node.children) stack.push_back(child);
      continue;
    }
    const auto radius = static_cast<std::size_t>(kth());
    // Only edges labelled within [d - r, d + r] can contain improvements.
    const std::size_t lo = d > radius ? d - radius : 0;
    const std::size_t hi = d + radius;
    for (auto it = node.children.lower_bound(lo);
         it != node.children.end() && it->first <= hi; ++it) {
      stack.push_back(it->second);
    }
  }
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

std::vector<NeighborResult> BkTree::RangeSearch(std::string_view query,
                                                std::size_t radius,
                                                QueryStats* stats) const {
  std::vector<NeighborResult> hits;
  std::uint64_t computations = 0, abandons = 0;
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    const double max_edge =
        node.children.empty()
            ? 0.0
            : static_cast<double>(node.children.rbegin()->first);
    const double cap =
        std::max(static_cast<double>(radius),
                 max_edge + static_cast<double>(radius)) +
        1.0;
    bool abandoned = false;
    std::size_t d = BoundedIntDistance(query, store()[node.point], cap,
                                       &abandoned);
    ++computations;
    if (abandoned) {
      ++abandons;
      continue;  // beyond the radius and beyond every child edge window
    }
    if (d <= radius) hits.push_back({node.point, static_cast<double>(d)});
    const std::size_t lo = d > radius ? d - radius : 0;
    const std::size_t hi = d + radius;
    for (auto it = node.children.lower_bound(lo);
         it != node.children.end() && it->first <= hi; ++it) {
      stack.push_back(it->second);
    }
  }
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return hits;
}

}  // namespace cned
