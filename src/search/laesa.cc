#include "search/laesa.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "common/binary_io.h"
#include "common/parallel.h"
#include "search/pivot_selection.h"
#include "search/sweep_kernel.h"

namespace cned {

Laesa::Laesa(PrototypeStoreRef prototypes, StringDistancePtr distance,
             std::size_t num_pivots, std::size_t first_pivot,
             TablePrecision table_precision)
    : prototypes_(prototypes),
      distance_(std::move(distance)),
      precision_(table_precision) {
  if (store().empty()) {
    throw std::invalid_argument("Laesa: empty prototype set");
  }
  num_pivots = std::min(num_pivots, store().size());
  if (num_pivots == 0) {
    throw std::invalid_argument("Laesa: need at least one pivot");
  }
  pivots_ = SelectPivotsMaxMin(store(), *distance_, num_pivots, first_pivot);
  preprocessing_computations_ +=
      static_cast<std::uint64_t>(pivots_.size()) * store().size();
  BuildTable();
}

Laesa::Laesa(PrototypeStoreRef prototypes, StringDistancePtr distance,
             std::vector<std::size_t> pivot_indices,
             TablePrecision table_precision)
    : prototypes_(prototypes),
      distance_(std::move(distance)),
      pivots_(std::move(pivot_indices)),
      precision_(table_precision) {
  if (store().empty()) {
    throw std::invalid_argument("Laesa: empty prototype set");
  }
  if (pivots_.empty()) {
    throw std::invalid_argument("Laesa: need at least one pivot");
  }
  for (std::size_t p : pivots_) {
    if (p >= store().size()) {
      throw std::invalid_argument("Laesa: pivot index out of range");
    }
  }
  BuildTable();
}

void Laesa::BuildTable() {
  const PrototypeStore& protos = store();
  const std::size_t n = protos.size();
  pivot_rank_.assign(n, -1);
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    pivot_rank_[pivots_[p]] = static_cast<std::int32_t>(p);
  }
  pivot_dist_.resize(pivots_.size() * n);
  // One task per table entry: the atomic work queue in ParallelFor balances
  // the load even when string lengths (and thus per-distance cost) vary
  // wildly. Every distance kernel is thread-safe (thread-local workspaces).
  ParallelFor(pivots_.size() * n, [&](std::size_t t) {
    const std::size_t p = t / n;
    const std::size_t i = t % n;
    pivot_dist_[t] = distance_->Distance(protos[pivots_[p]], protos[i]);
  });
  preprocessing_computations_ +=
      static_cast<std::uint64_t>(pivots_.size()) * n;
  if (precision_ != TablePrecision::kF64) {
    // Quantize row by row (round-down codes + per-row gap, table_quant.h)
    // and drop the exact table — the narrow codes ARE the index from here
    // on, so build, save, load and map all sweep the same bytes.
    const std::size_t width = TablePrecisionBytes(precision_);
    quant_table_.resize(pivots_.size() * n * width);
    row_meta_.resize(pivots_.size());
    for (std::size_t p = 0; p < pivots_.size(); ++p) {
      QuantRowEncoder enc;
      enc.Scan(pivot_dist_.data() + p * n, n);
      enc.Prepare(precision_);
      enc.Encode(pivot_dist_.data() + p * n, n,
                 quant_table_.data() + p * n * width);
      row_meta_[p] = enc.Finish();
    }
    pivot_dist_.clear();
    pivot_dist_.shrink_to_fit();
  }
}

// Unified flat sweep behind Nearest (k = 1), NearestApprox (slack = 1+eps)
// and KNearest: a candidate is eliminated when lower_bound * slack reaches
// the k-th incumbent.
//
// Elimination and the incumbent update share one semantic: a candidate that
// cannot *strictly* improve on the k-th incumbent is dead. That is what
// lets the incumbent itself be the `DistanceBounded` bound — the kernel may
// abandon any evaluation that provably reaches it, because such a value
// could at most tie.
//
// The per-visit pass — tighten with the visited pivot's contiguous table
// row, eliminate, compact, pick the next candidate — runs on the shared
// dispatched sweep kernels (sweep_kernel.h), so the flat, sharded and
// mapped indexes execute literally the same vector code over their packed
// candidate slabs. The kernels preserve the classic scan's semantics
// bit for bit: compaction is stable and min-bound ties resolve to the
// smallest index.
std::vector<NeighborResult> Laesa::Sweep(std::string_view query, std::size_t k,
                                         double slack, QueryStats* stats,
                                         const std::uint64_t* tombstones)
    const {
  const PrototypeStore& protos = store();
  const std::size_t n = protos.size();
  k = std::min(k, n);
  if (k == 0) return {};

  const SweepKernels& kern = ActiveSweepKernels();
  const QuantTableView view = table_view();
  SweepScratch& scratch = TlsSweepScratch();
  scratch.idx.resize(n);
  scratch.lower.resize(n);
  std::uint32_t* idx = scratch.idx.data();
  double* lower = scratch.lower.data();

  // Free zeroth pivot: length-only lower bounds, filled by one flat pass
  // over the store's packed length array before any distance is computed.
  distance_->LengthLowerBounds(query.size(), protos.lengths_data(), n, lower);
  // Count live pivots from pivot_rank_, not pivots_.size(): the ablation
  // constructor and Load accept duplicate pivot indices, which occupy one
  // candidate slot but several pivots_ entries.
  std::size_t live_pivots = FillIotaCountPivots(idx, pivot_rank_.data(), n);

  std::size_t live = n;  // candidates in the packed prefix [0, live)

  // Current k best, sorted ascending (k is small in practice).
  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  const double inf = std::numeric_limits<double>::infinity();
  auto kth = [&]() { return best.size() < k ? inf : best.back().distance; };

  std::uint64_t computations = 0, abandons = 0, pivot_computations = 0;

  std::size_t s = pivots_[0];  // start from the first base prototype
  if (tombstones != nullptr) {
    // Deletes are eliminated inside the compaction before anything is
    // visited: force the masked slots' bounds to +inf, then one flagged
    // pass drops them from the packed slab (lower >= bound is inclusive,
    // so +inf falls even to the infinite starting incumbent) and hands
    // back the minimal-bound live start — pivots first, as usual.
    ApplyTombstoneMask(tombstones, n, lower);
    const SweepCompactResult pre = kern.eliminate_and_compact_flagged(
        idx, lower, pivot_rank_.data(), live, /*skip=*/0xFFFFFFFFu, slack,
        inf);
    live = pre.live;
    live_pivots -= pre.pivots_died;
    s = live_pivots > 0 ? pre.next_pivot : pre.next;
    if (s == kSweepNone) live = 0;
  }
  while (live > 0) {
    const bool s_is_pivot = pivot_rank_[s] >= 0;

    // Pivot distances stay exact: the full value tightens a whole row of
    // lower bounds (both sides of |d - row[i]|), which an abandoned
    // evaluation cannot. Non-pivot distances only ever update the
    // incumbents, so the k-th incumbent bounds their kernel — the search
    // trajectory (and computation count) is identical to the unbounded
    // sweep, only the per-evaluation DP work shrinks.
    const double cap = s_is_pivot ? inf : kth();
    const double d = distance_->DistanceBounded(query, protos[s], cap);
    ++computations;
    pivot_computations += s_is_pivot ? 1 : 0;
    if (d >= cap) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s, d});
    }

    // Tighten with the visited pivot's row (a non-pivot visit leaves the
    // bounds as they are), then one eliminate-and-compact pass picks the
    // next candidate — the surviving pivot with minimal lower bound while
    // pivots remain (the "approximating" step of LAESA), otherwise the
    // surviving prototype with minimal lower bound.
    if (s_is_pivot) {
      QuantUpdateLowerPacked(kern, view,
                             static_cast<std::size_t>(pivot_rank_[s]), n, d,
                             idx, 0, lower, live);
    }
    const SweepCompactResult pass = kern.eliminate_and_compact_flagged(
        idx, lower, pivot_rank_.data(), live, static_cast<std::uint32_t>(s),
        slack, kth());
    live = pass.live;
    live_pivots -= pass.pivots_died;
    if (live == 0) break;
    s = live_pivots > 0 ? pass.next_pivot : pass.next;
    if (s == kSweepNone) break;  // defensive: accounting can never reach this
  }

  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
    stats->pivot_computations += pivot_computations;
  }
  return best;
}

// The batched counterpart of `Sweep`: the caller already paid for every
// query-pivot distance (they are shared across the batch), so all pivot
// rows are applied before any elimination — the tightest pivot-based lower
// bounds the table can give — and only the surviving non-pivots are then
// visited adaptively. Same elimination semantics as `Sweep` (a candidate
// that can at most tie the k-th incumbent is dead), different trajectory:
// see pivot_stage.h.
std::vector<NeighborResult> Laesa::SweepWithRow(std::string_view query,
                                                std::size_t k,
                                                const double* row,
                                                QueryStats* stats) const {
  const PrototypeStore& protos = store();
  const std::size_t n = protos.size();
  k = std::min(k, n);
  if (k == 0) return {};

  const SweepKernels& kern = ActiveSweepKernels();
  SweepScratch& scratch = TlsSweepScratch();
  scratch.idx.resize(n);
  scratch.lower.resize(n);
  std::uint32_t* idx = scratch.idx.data();
  double* lower = scratch.lower.data();

  distance_->LengthLowerBounds(query.size(), protos.lengths_data(), n, lower);

  // Seed the incumbents with every pivot distance (each live pivot once —
  // the ablation constructor and Load accept duplicate pivot entries).
  // These evaluations are already paid for, so ties admit the lower index.
  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  const double inf = std::numeric_limits<double>::infinity();
  auto kth = [&]() { return best.size() < k ? inf : best.back().distance; };
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    if (pivot_rank_[pivots_[p]] != static_cast<std::int32_t>(p)) continue;
    InsertNeighborTopK(best, k, {pivots_[p], row[p]}, /*admit_ties=*/true);
  }

  // Tighten every lower bound with every pivot row (no elimination yet:
  // each row pass is the dense streamed-max kernel), then eliminate against
  // the fully seeded k-th incumbent, compact the surviving non-pivots into
  // the packed slabs and pick the first minimal-bound survivor — one
  // compact_seed pass.
  const QuantTableView view = table_view();
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    QuantUpdateLowerDense(kern, view, p, n, row[p], lower);
  }
  const SweepCompactResult seed = kern.compact_seed(
      lower, pivot_rank_.data(), n, 0, kth(), idx, lower);
  std::size_t live = seed.live;
  std::size_t s = seed.next;

  std::uint64_t computations = 0, abandons = 0;

  // Adaptive non-pivot phase, identical in structure to `Sweep`'s loop with
  // no table row left to apply: visit the minimal-lower-bound survivor,
  // then one eliminate-and-compact pass against the improved incumbent
  // picks the next visit.
  while (live > 0 && s != kSweepNone) {
    const double cap = kth();
    const double d = distance_->DistanceBounded(query, protos[s], cap);
    ++computations;
    if (d >= cap) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s, d});
    }
    const SweepCompactResult pass = kern.eliminate_and_compact(
        idx, lower, live, static_cast<std::uint32_t>(s), kth());
    live = pass.live;
    s = pass.next;
  }

  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

void Laesa::ComputePivotRow(std::string_view query, double* row,
                            QueryStats* stats) const {
  const PrototypeStore& protos = store();
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    row[p] = distance_->Distance(query, protos[pivots_[p]]);
  }
  if (stats != nullptr) {
    stats->distance_computations += pivots_.size();
    stats->pivot_computations += pivots_.size();
  }
}

NeighborResult Laesa::NearestWithPivotRow(std::string_view query,
                                          const double* row,
                                          QueryStats* stats) const {
  return SweepWithRow(query, 1, row, stats).front();
}

std::vector<NeighborResult> Laesa::KNearestWithPivotRow(
    std::string_view query, std::size_t k, const double* row,
    QueryStats* stats) const {
  return SweepWithRow(query, k, row, stats);
}

NeighborResult Laesa::Nearest(std::string_view query,
                              QueryStats* stats) const {
  return Sweep(query, 1, /*slack=*/1.0, stats).front();
}

NeighborResult Laesa::NearestApprox(std::string_view query, double epsilon,
                                    QueryStats* stats) const {
  if (epsilon < 0.0) {
    throw std::invalid_argument("Laesa::NearestApprox: epsilon must be >= 0");
  }
  return Sweep(query, 1, 1.0 + epsilon, stats).front();
}

std::vector<NeighborResult> Laesa::KNearest(std::string_view query,
                                            std::size_t k,
                                            QueryStats* stats) const {
  return Sweep(query, k, /*slack=*/1.0, stats);
}

NeighborResult Laesa::NearestMasked(std::string_view query,
                                    const std::uint64_t* tombstones,
                                    QueryStats* stats) const {
  auto best = Sweep(query, 1, /*slack=*/1.0, stats, tombstones);
  if (best.empty()) {
    throw std::out_of_range("Laesa::NearestMasked: every prototype deleted");
  }
  return best.front();
}

std::vector<NeighborResult> Laesa::KNearestMasked(
    std::string_view query, std::size_t k, const std::uint64_t* tombstones,
    QueryStats* stats) const {
  return Sweep(query, k, /*slack=*/1.0, stats, tombstones);
}

std::vector<NeighborResult> Laesa::RangeSearch(std::string_view query,
                                               double radius,
                                               QueryStats* stats) const {
  const PrototypeStore& protos = store();
  const std::size_t n = protos.size();
  const SweepKernels& kern = ActiveSweepKernels();
  SweepScratch& scratch = TlsSweepScratch();
  scratch.lower.resize(n);
  double* lower = scratch.lower.data();
  // Length-difference bounds seed the candidate filter for free, as in the
  // nearest-neighbour sweep.
  distance_->LengthLowerBounds(query.size(), protos.lengths_data(), n, lower);

  std::vector<NeighborResult> hits;
  std::uint64_t computations = 0, abandons = 0;

  // Phase 1: compute query-pivot distances, tighten every lower bound with
  // the pivot's contiguous table row (the dense streamed-max kernel). Pivot
  // distances stay exact: their full value feeds every candidate's lower
  // bound, which is worth far more than an abandoned evaluation saves.
  const QuantTableView view = table_view();
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    const std::size_t s = pivots_[p];
    const double d = distance_->Distance(query, protos[s]);
    ++computations;
    if (d <= radius) hits.push_back({s, d});
    QuantUpdateLowerDense(kern, view, p, n, d, lower);
  }
  // Phase 2: verify every surviving non-pivot (pivots were computed in
  // phase 1). Hits are inclusive (d <= radius), so the kernel bound is the
  // next representable value above the radius — an abandoned evaluation
  // then certifies d > radius.
  const double cap =
      std::nextafter(radius, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    if (pivot_rank_[i] >= 0 || lower[i] > radius) continue;
    const double d = distance_->DistanceBounded(query, protos[i], cap);
    ++computations;
    if (d >= cap) {
      ++abandons;
    } else if (d <= radius) {
      hits.push_back({i, d});
    }
  }
  std::sort(hits.begin(), hits.end(), NeighborLess);
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
    stats->pivot_computations += pivots_.size();
  }
  return hits;
}

// Text format: "LAESA 1" is the original exact-table form, written for f64
// indexes exactly as before. Quantized indexes write "LAESA 2 <precision>"
// followed by the per-row decode meta (precision-17 doubles: round-trip
// exact) and the codes as integers — u8 values, f16 bit patterns, f32 bit
// patterns — so a text round-trip restores the codes bit for bit.
void Laesa::Save(std::ostream& out) const {
  const std::size_t n = store().size();
  const std::size_t entries = pivots_.size() * n;
  if (precision_ == TablePrecision::kF64) {
    out << "LAESA 1\n" << n << ' ' << pivots_.size() << '\n';
  } else {
    out << "LAESA 2 " << TablePrecisionName(precision_) << '\n'
        << n << ' ' << pivots_.size() << '\n';
  }
  for (std::size_t p : pivots_) out << p << ' ';
  out << '\n';
  out.precision(17);
  switch (precision_) {
    case TablePrecision::kF64: {
      const double* table = table_data();
      for (std::size_t t = 0; t < entries; ++t) out << table[t] << ' ';
      break;
    }
    case TablePrecision::kF32: {
      for (const QuantRowMeta* m = row_meta_data();
           m != row_meta_data() + pivots_.size(); ++m) {
        out << m->scale << ' ' << m->offset << ' ' << m->gap << '\n';
      }
      const float* codes = static_cast<const float*>(quant_data());
      for (std::size_t t = 0; t < entries; ++t) {
        std::uint32_t bits;
        std::memcpy(&bits, codes + t, sizeof(bits));
        out << bits << ' ';
      }
      break;
    }
    case TablePrecision::kF16: {
      for (const QuantRowMeta* m = row_meta_data();
           m != row_meta_data() + pivots_.size(); ++m) {
        out << m->scale << ' ' << m->offset << ' ' << m->gap << '\n';
      }
      const std::uint16_t* codes =
          static_cast<const std::uint16_t*>(quant_data());
      for (std::size_t t = 0; t < entries; ++t) out << codes[t] << ' ';
      break;
    }
    case TablePrecision::kU8: {
      for (const QuantRowMeta* m = row_meta_data();
           m != row_meta_data() + pivots_.size(); ++m) {
        out << m->scale << ' ' << m->offset << ' ' << m->gap << '\n';
      }
      const std::uint8_t* codes =
          static_cast<const std::uint8_t*>(quant_data());
      for (std::size_t t = 0; t < entries; ++t) {
        out << static_cast<unsigned>(codes[t]) << ' ';
      }
      break;
    }
  }
  out << '\n';
}

Laesa Laesa::Load(std::istream& in, PrototypeStoreRef prototypes,
                  StringDistancePtr distance) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (!in || magic != "LAESA" || (version != 1 && version != 2)) {
    throw std::runtime_error("Laesa::Load: bad header");
  }
  TablePrecision precision = TablePrecision::kF64;
  if (version == 2) {
    std::string name;
    in >> name;
    if (!in || !ParseTablePrecision(name, &precision) ||
        precision == TablePrecision::kF64) {
      throw std::runtime_error("Laesa::Load: bad table precision");
    }
  }
  std::size_t n = 0, np = 0;
  in >> n >> np;
  if (!in) throw std::runtime_error("Laesa::Load: bad header");
  if (n != prototypes->size()) {
    throw std::runtime_error("Laesa::Load: prototype count mismatch");
  }
  if (np == 0 || np > n) {
    throw std::runtime_error("Laesa::Load: bad pivot count");
  }
  Laesa index(InternalTag{}, prototypes, std::move(distance));
  index.precision_ = precision;
  index.pivots_.resize(np);
  for (std::size_t& p : index.pivots_) {
    in >> p;
    if (!in || p >= n) throw std::runtime_error("Laesa::Load: bad pivot");
  }
  index.pivot_rank_.assign(n, -1);
  for (std::size_t p = 0; p < np; ++p) {
    index.pivot_rank_[index.pivots_[p]] = static_cast<std::int32_t>(p);
  }
  if (precision == TablePrecision::kF64) {
    index.pivot_dist_.resize(np * n);
    for (double& d : index.pivot_dist_) {
      in >> d;
      if (!in) throw std::runtime_error("Laesa::Load: truncated table");
    }
    return index;
  }
  index.row_meta_.resize(np);
  for (QuantRowMeta& m : index.row_meta_) {
    in >> m.scale >> m.offset >> m.gap;
    if (!in) throw std::runtime_error("Laesa::Load: truncated table");
  }
  const std::size_t width = TablePrecisionBytes(precision);
  index.quant_table_.resize(np * n * width);
  for (std::size_t t = 0; t < np * n; ++t) {
    std::uint32_t code = 0;
    in >> code;
    if (!in) throw std::runtime_error("Laesa::Load: truncated table");
    switch (precision) {
      case TablePrecision::kF32:
        std::memcpy(index.quant_table_.data() + t * 4, &code, 4);
        break;
      case TablePrecision::kF16: {
        const std::uint16_t h = static_cast<std::uint16_t>(code);
        std::memcpy(index.quant_table_.data() + t * 2, &h, 2);
        break;
      }
      default:
        index.quant_table_[t] = static_cast<unsigned char>(code);
        break;
    }
  }
  return index;
}

namespace {
constexpr char kLaesaMagic[8] = {'C', 'N', 'E', 'D', 'L', 'S', 'A', '1'};
constexpr std::uint32_t kLaesaVersion = 1;
// Version 2 adds quantized tables: counts gain the precision, and a 32-byte
// per-row QuantRowMeta section sits between the pivots and the (narrow)
// code table. f64 indexes keep writing version 1, byte-identical to every
// snapshot produced before quantization existed.
constexpr std::uint32_t kLaesaVersionQuant = 2;

/// Range-checks a version-2 header's precision count (f64 snapshots are
/// version 1 by construction, so 0 is rejected too).
TablePrecision CheckedPrecision(std::uint64_t raw, const char* who) {
  if (raw < 1 || raw > 3) {
    throw std::runtime_error(std::string(who) + ": bad table precision");
  }
  return static_cast<TablePrecision>(static_cast<std::uint32_t>(raw));
}
}  // namespace

void Laesa::Save(const std::string& path) const {
  BinaryWriter writer(path);
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "64-bit pivot indices expected");
  if (precision_ == TablePrecision::kF64) {
    const std::uint64_t counts[2] = {store().size(), pivots_.size()};
    writer.Header(kLaesaMagic, kLaesaVersion, counts, 2);
    writer.Align();
    writer.Raw(pivots_.data(), pivots_.size() * sizeof(std::uint64_t));
    writer.Align();
    // Through the view, so a mapped index re-snapshots byte-identically.
    writer.Raw(table_data(),
               pivots_.size() * store().size() * sizeof(double));
    writer.Finish();
    return;
  }
  const std::uint64_t counts[3] = {store().size(), pivots_.size(),
                                   static_cast<std::uint64_t>(precision_)};
  writer.Header(kLaesaMagic, kLaesaVersionQuant, counts, 3);
  writer.Align();
  writer.Raw(pivots_.data(), pivots_.size() * sizeof(std::uint64_t));
  writer.Align();
  writer.Raw(row_meta_data(), pivots_.size() * sizeof(QuantRowMeta));
  writer.Align();
  writer.Raw(quant_data(), pivots_.size() * store().size() *
                               TablePrecisionBytes(precision_));
  writer.Finish();
}

Laesa Laesa::Load(const std::string& path, PrototypeStoreRef prototypes,
                  StringDistancePtr distance) {
  BinaryReader reader(path);
  std::uint32_t version = 0;
  const auto counts =
      reader.Header(kLaesaMagic, kLaesaVersion, kLaesaVersionQuant, &version);
  const std::uint64_t n = counts[0];
  const std::uint64_t np = counts[1];
  if (n != prototypes->size()) {
    throw std::runtime_error("Laesa::Load: prototype count mismatch");
  }
  if (np == 0 || np > n) {
    throw std::runtime_error("Laesa::Load: bad pivot count");
  }
  Laesa index(InternalTag{}, prototypes, std::move(distance));
  reader.RequireArray(np, sizeof(std::uint64_t));
  index.pivots_.resize(np);
  reader.Align();
  reader.Raw(index.pivots_.data(), np * sizeof(std::uint64_t));
  index.pivot_rank_.assign(n, -1);
  for (std::size_t p = 0; p < np; ++p) {
    if (index.pivots_[p] >= n) {
      throw std::runtime_error("Laesa::Load: pivot index out of range");
    }
    index.pivot_rank_[index.pivots_[p]] = static_cast<std::int32_t>(p);
  }
  if (version == kLaesaVersion) {
    reader.RequireArray(np * n, sizeof(double));
    index.pivot_dist_.resize(np * n);
    reader.Align();
    reader.Raw(index.pivot_dist_.data(), np * n * sizeof(double));
    return index;
  }
  index.precision_ = CheckedPrecision(counts[2], "Laesa::Load");
  const std::size_t width = TablePrecisionBytes(index.precision_);
  reader.RequireArray(np, sizeof(QuantRowMeta));
  index.row_meta_.resize(np);
  reader.Align();
  reader.Raw(index.row_meta_.data(), np * sizeof(QuantRowMeta));
  reader.RequireArray(np * n, width);
  index.quant_table_.resize(np * n * width);
  reader.Align();
  reader.Raw(index.quant_table_.data(), np * n * width);
  return index;
}

Laesa Laesa::Map(const std::string& path, PrototypeStoreRef prototypes,
                 StringDistancePtr distance) {
  MappedReader reader(MappedFile::Open(path));
  std::uint32_t version = 0;
  const auto counts =
      reader.Header(kLaesaMagic, kLaesaVersion, kLaesaVersionQuant, &version);
  const std::uint64_t n = counts[0];
  const std::uint64_t np = counts[1];
  if (n != prototypes->size()) {
    throw std::runtime_error("Laesa::Map: prototype count mismatch");
  }
  if (np == 0 || np > n) {
    throw std::runtime_error("Laesa::Map: bad pivot count");
  }
  Laesa index(InternalTag{}, prototypes, std::move(distance));
  // The pivot index array is tiny (np entries); copying it keeps the
  // `pivots()` API. The table — the O(pivots x N) bulk — stays a view.
  const std::uint64_t* pivots = reader.Array<std::uint64_t>(np);
  index.pivots_.assign(pivots, pivots + np);
  index.pivot_rank_.assign(n, -1);
  for (std::size_t p = 0; p < np; ++p) {
    if (index.pivots_[p] >= n) {
      throw std::runtime_error("Laesa::Map: pivot index out of range");
    }
    index.pivot_rank_[index.pivots_[p]] = static_cast<std::int32_t>(p);
  }
  // np <= n <= the live store's size, so np * n cannot overflow before
  // Array()'s own division-form extent check sees it.
  if (version == kLaesaVersion) {
    index.mapped_table_ = reader.Array<double>(np * n);
    index.mapping_ = reader.file();
    return index;
  }
  index.precision_ = CheckedPrecision(counts[2], "Laesa::Map");
  index.mapped_meta_ = reader.Array<QuantRowMeta>(np);
  // The code section is served zero-copy too: the sweep reads the narrow
  // elements straight off the page cache through the kernels' widening
  // loads.
  index.mapped_quant_ =
      reader.Section(np * n, TablePrecisionBytes(index.precision_));
  index.mapping_ = reader.file();
  return index;
}

}  // namespace cned
