#include "search/laesa.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "common/parallel.h"
#include "search/pivot_selection.h"

namespace cned {

Laesa::Laesa(const std::vector<std::string>& prototypes,
             StringDistancePtr distance, std::size_t num_pivots,
             std::size_t first_pivot)
    : prototypes_(&prototypes), distance_(std::move(distance)) {
  if (prototypes_->empty()) {
    throw std::invalid_argument("Laesa: empty prototype set");
  }
  num_pivots = std::min(num_pivots, prototypes_->size());
  if (num_pivots == 0) {
    throw std::invalid_argument("Laesa: need at least one pivot");
  }
  pivots_ =
      SelectPivotsMaxMin(*prototypes_, *distance_, num_pivots, first_pivot);
  preprocessing_computations_ +=
      static_cast<std::uint64_t>(pivots_.size()) * prototypes_->size();
  BuildTable();
}

Laesa::Laesa(const std::vector<std::string>& prototypes,
             StringDistancePtr distance, std::vector<std::size_t> pivot_indices)
    : prototypes_(&prototypes),
      distance_(std::move(distance)),
      pivots_(std::move(pivot_indices)) {
  if (prototypes_->empty()) {
    throw std::invalid_argument("Laesa: empty prototype set");
  }
  if (pivots_.empty()) {
    throw std::invalid_argument("Laesa: need at least one pivot");
  }
  for (std::size_t p : pivots_) {
    if (p >= prototypes_->size()) {
      throw std::invalid_argument("Laesa: pivot index out of range");
    }
  }
  BuildTable();
}

void Laesa::BuildTable() {
  const std::size_t n = prototypes_->size();
  pivot_rank_.assign(n, -1);
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    pivot_rank_[pivots_[p]] = static_cast<std::int32_t>(p);
  }
  pivot_dist_.resize(pivots_.size() * n);
  // One task per table entry: the atomic work queue in ParallelFor balances
  // the load even when string lengths (and thus per-distance cost) vary
  // wildly. Every distance kernel is thread-safe (thread-local workspaces).
  ParallelFor(pivots_.size() * n, [&](std::size_t t) {
    const std::size_t p = t / n;
    const std::size_t i = t % n;
    pivot_dist_[t] =
        distance_->Distance((*prototypes_)[pivots_[p]], (*prototypes_)[i]);
  });
  preprocessing_computations_ +=
      static_cast<std::uint64_t>(pivots_.size()) * n;
}

namespace {

// Shared search loop for exact (slack = 1) and approximate (slack = 1+eps)
// LAESA: a candidate is eliminated when lower_bound * slack >= best.
//
// Elimination and the best update share one semantic: a candidate that
// cannot *strictly* improve on the incumbent is dead. That is what lets the
// incumbent itself be the `DistanceBounded` bound — the kernel may abandon
// any evaluation that provably reaches it, because such a value could at
// most tie.
NeighborResult LaesaSearch(const std::vector<std::string>& prototypes,
                           const StringDistance& distance,
                           const std::vector<std::size_t>& pivots,
                           const std::vector<std::int32_t>& pivot_rank,
                           const std::vector<double>& pivot_dist, double slack,
                           std::string_view query, std::uint64_t& computations,
                           std::uint64_t& bounded_abandons) {
  const std::size_t n = prototypes.size();
  std::vector<double> lower(n, 0.0);
  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;
  std::size_t alive_pivots = pivots.size();

  NeighborResult best{0, std::numeric_limits<double>::infinity()};

  std::size_t s = pivots[0];  // start from the first base prototype
  while (alive_count > 0) {
    alive[s] = false;
    --alive_count;
    const bool s_is_pivot = pivot_rank[s] >= 0;
    if (s_is_pivot) --alive_pivots;

    // Pivot distances stay exact: the full value tightens a whole row of
    // lower bounds (both sides of |d - row[i]|), which an abandoned
    // evaluation cannot. Non-pivot distances only ever update the
    // incumbent, so the incumbent itself bounds their kernel — the search
    // trajectory (and computation count) is identical to the unbounded
    // search, only the per-evaluation DP work shrinks.
    const double cap =
        s_is_pivot ? std::numeric_limits<double>::infinity() : best.distance;
    double d = distance.DistanceBounded(query, prototypes[s], cap);
    ++computations;
    if (d >= cap) ++bounded_abandons;
    if (d < best.distance) best = {s, d};

    // Tighten lower bounds with the pivot's stored row, then eliminate.
    if (s_is_pivot) {
      const double* row =
          &pivot_dist[static_cast<std::size_t>(pivot_rank[s]) * n];
      for (std::size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        double g = std::abs(d - row[i]);
        if (g > lower[i]) lower[i] = g;
      }
    }

    // Eliminate everything whose (slack-scaled) lower bound reaches the
    // best distance, and pick the next candidate: the alive pivot with
    // minimal lower bound while pivots remain, otherwise the alive
    // prototype with minimal lower bound ("approximating" step of LAESA).
    std::size_t next = n;
    double next_key = std::numeric_limits<double>::infinity();
    bool prefer_pivots = alive_pivots > 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      if (lower[i] * slack >= best.distance) {
        alive[i] = false;
        --alive_count;
        if (pivot_rank[i] >= 0) --alive_pivots;
        continue;
      }
      if (prefer_pivots && pivot_rank[i] < 0) continue;
      if (lower[i] < next_key) {
        next_key = lower[i];
        next = i;
      }
    }
    if (alive_count == 0) break;
    if (next == n) {
      // All remaining alive candidates are non-pivots but we preferred
      // pivots (they were all eliminated in this very pass); rescan.
      for (std::size_t i = 0; i < n; ++i) {
        if (alive[i] && lower[i] < next_key) {
          next_key = lower[i];
          next = i;
        }
      }
    }
    if (next == n) break;
    s = next;
  }
  return best;
}

}  // namespace

NeighborResult Laesa::Nearest(std::string_view query, QueryStats* stats) const {
  std::uint64_t computations = 0, abandons = 0;
  NeighborResult best =
      LaesaSearch(*prototypes_, *distance_, pivots_, pivot_rank_, pivot_dist_,
                  /*slack=*/1.0, query, computations, abandons);
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

NeighborResult Laesa::NearestApprox(std::string_view query, double epsilon,
                                    QueryStats* stats) const {
  if (epsilon < 0.0) {
    throw std::invalid_argument("Laesa::NearestApprox: epsilon must be >= 0");
  }
  std::uint64_t computations = 0, abandons = 0;
  NeighborResult best =
      LaesaSearch(*prototypes_, *distance_, pivots_, pivot_rank_, pivot_dist_,
                  1.0 + epsilon, query, computations, abandons);
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

std::vector<NeighborResult> Laesa::KNearest(std::string_view query,
                                            std::size_t k,
                                            QueryStats* stats) const {
  const std::size_t n = prototypes_->size();
  k = std::min(k, n);
  if (k == 0) return {};
  std::vector<double> lower(n, 0.0);
  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;
  std::size_t alive_pivots = pivots_.size();

  // Current k best, kept sorted ascending (k is small in practice).
  std::vector<NeighborResult> best;
  auto kth_distance = [&]() {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.back().distance;
  };
  auto offer = [&](std::size_t index, double d) {
    if (best.size() == k && d >= best.back().distance) return;
    NeighborResult r{index, d};
    auto pos = std::lower_bound(best.begin(), best.end(), r,
                                [](const NeighborResult& a,
                                   const NeighborResult& b) {
                                  if (a.distance != b.distance) {
                                    return a.distance < b.distance;
                                  }
                                  return a.index < b.index;
                                });
    best.insert(pos, r);
    if (best.size() > k) best.pop_back();
  };

  std::uint64_t computations = 0, abandons = 0;
  std::size_t s = pivots_[0];
  while (alive_count > 0) {
    alive[s] = false;
    --alive_count;
    const bool s_is_pivot = pivot_rank_[s] >= 0;
    if (s_is_pivot) --alive_pivots;

    // As in LaesaSearch: pivots stay exact (their value feeds a whole row
    // of lower bounds), non-pivots are bounded by the k-th incumbent —
    // `offer` rejects any d >= kth anyway (strict-improvement semantics).
    const double cap =
        s_is_pivot ? std::numeric_limits<double>::infinity() : kth_distance();
    double d = distance_->DistanceBounded(query, (*prototypes_)[s], cap);
    ++computations;
    if (d >= cap) {
      ++abandons;
    } else {
      offer(s, d);
    }

    if (s_is_pivot) {
      const double* row =
          &pivot_dist_[static_cast<std::size_t>(pivot_rank_[s]) * n];
      for (std::size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        double g = std::abs(d - row[i]);
        if (g > lower[i]) lower[i] = g;
      }
    }

    std::size_t next = n;
    double next_key = std::numeric_limits<double>::infinity();
    const double bound = kth_distance();
    bool prefer_pivots = alive_pivots > 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      // Same elimination semantics as LaesaSearch (slack = 1): a lower
      // bound that reaches the k-th incumbent can at most tie, and ties
      // never enter the result.
      if (lower[i] >= bound) {
        alive[i] = false;
        --alive_count;
        if (pivot_rank_[i] >= 0) --alive_pivots;
        continue;
      }
      if (prefer_pivots && pivot_rank_[i] < 0) continue;
      if (lower[i] < next_key) {
        next_key = lower[i];
        next = i;
      }
    }
    if (alive_count == 0) break;
    if (next == n) {
      for (std::size_t i = 0; i < n; ++i) {
        if (alive[i] && lower[i] < next_key) {
          next_key = lower[i];
          next = i;
        }
      }
    }
    if (next == n) break;
    s = next;
  }
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

std::vector<NeighborResult> Laesa::RangeSearch(std::string_view query,
                                               double radius,
                                               QueryStats* stats) const {
  const std::size_t n = prototypes_->size();
  // Phase 1: compute query-pivot distances, accumulate lower bounds. Pivot
  // distances stay exact: their full value feeds every candidate's lower
  // bound, which is worth far more than an abandoned evaluation saves.
  std::vector<double> lower(n, 0.0);
  std::vector<bool> computed(n, false);
  std::vector<NeighborResult> hits;
  std::uint64_t computations = 0, abandons = 0;

  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    std::size_t s = pivots_[p];
    double d = distance_->Distance(query, (*prototypes_)[s]);
    ++computations;
    computed[s] = true;
    if (d <= radius) hits.push_back({s, d});
    const double* row = &pivot_dist_[p * n];
    for (std::size_t i = 0; i < n; ++i) {
      double g = std::abs(d - row[i]);
      if (g > lower[i]) lower[i] = g;
    }
  }
  // Phase 2: verify every surviving candidate. Hits are inclusive
  // (d <= radius), so the kernel bound is the next representable value
  // above the radius — an abandoned evaluation then certifies d > radius.
  const double cap =
      std::nextafter(radius, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    if (computed[i] || lower[i] > radius) continue;
    double d = distance_->DistanceBounded(query, (*prototypes_)[i], cap);
    ++computations;
    if (d >= cap) {
      ++abandons;
    } else if (d <= radius) {
      hits.push_back({i, d});
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const NeighborResult& a, const NeighborResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.index < b.index;
            });
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return hits;
}

void Laesa::Save(std::ostream& out) const {
  out << "LAESA 1\n" << prototypes_->size() << ' ' << pivots_.size() << '\n';
  for (std::size_t p : pivots_) out << p << ' ';
  out << '\n';
  out.precision(17);
  for (double d : pivot_dist_) out << d << ' ';
  out << '\n';
}

Laesa Laesa::Load(std::istream& in,
                  const std::vector<std::string>& prototypes,
                  StringDistancePtr distance) {
  std::string magic;
  int version = 0;
  std::size_t n = 0, np = 0;
  in >> magic >> version >> n >> np;
  if (!in || magic != "LAESA" || version != 1) {
    throw std::runtime_error("Laesa::Load: bad header");
  }
  if (n != prototypes.size()) {
    throw std::runtime_error("Laesa::Load: prototype count mismatch");
  }
  if (np == 0 || np > n) {
    throw std::runtime_error("Laesa::Load: bad pivot count");
  }
  Laesa index(InternalTag{}, prototypes, std::move(distance));
  index.pivots_.resize(np);
  for (std::size_t& p : index.pivots_) {
    in >> p;
    if (!in || p >= n) throw std::runtime_error("Laesa::Load: bad pivot");
  }
  index.pivot_rank_.assign(n, -1);
  for (std::size_t p = 0; p < np; ++p) {
    index.pivot_rank_[index.pivots_[p]] = static_cast<std::int32_t>(p);
  }
  index.pivot_dist_.resize(np * n);
  for (double& d : index.pivot_dist_) {
    in >> d;
    if (!in) throw std::runtime_error("Laesa::Load: truncated table");
  }
  return index;
}

}  // namespace cned
