// NEON implementations of the sweep kernels (see sweep_kernel.h for the
// semantics every variant must reproduce bit for bit).
//
// AArch64 AdvSIMD is baseline (and these kernels use float64x2 intrinsics
// that exist ONLY on AArch64 — 32-bit ARM NEON is f32/integer), so this
// translation unit needs no special compile flags: CMake includes it on
// AArch64 targets only, and the runtime probe (common/cpu_features.h)
// stays constant-true there.
//
// Scope: the bandwidth-bound passes — the dense and gathered row updates
// and the |Δlen| fill — are vectorised (2 double lanes). The compaction
// kernels reuse the scalar reference: with 2-wide vectors and no movemask
// instruction, a NEON left-pack buys nothing over the scalar loop that the
// compiler already schedules well, and sharing the scalar code keeps the
// bit-identity argument trivial. The running-max update is written as
// compare + select (not vmaxq, which would propagate NaNs differently from
// the scalar `g > lb ? g : lb`).

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <cstdint>

#include "search/sweep_kernel.h"

namespace cned {
namespace {

void NeonUpdateLowerDense(double d, const double* row, double* lower,
                          std::size_t n) {
  const float64x2_t vd = vdupq_n_f64(d);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t g = vabsq_f64(vsubq_f64(vd, vld1q_f64(row + i)));
    const float64x2_t lb = vld1q_f64(lower + i);
    // lb = g > lb ? g : lb — exact scalar ternary semantics.
    vst1q_f64(lower + i, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; i < n; ++i) {
    const double g = std::abs(d - row[i]);
    if (g > lower[i]) lower[i] = g;
  }
}

void NeonUpdateLowerPacked(double d, const double* row,
                           const std::uint32_t* idx, std::uint32_t base,
                           double* lower, std::size_t live) {
  const float64x2_t vd = vdupq_n_f64(d);
  std::size_t r = 0;
  for (; r + 2 <= live; r += 2) {
    // No NEON gather: two scalar loads feed the vector lanes.
    float64x2_t rows = vdupq_n_f64(row[idx[r] - base]);
    rows = vsetq_lane_f64(row[idx[r + 1] - base], rows, 1);
    const float64x2_t g = vabsq_f64(vsubq_f64(vd, rows));
    const float64x2_t lb = vld1q_f64(lower + r);
    vst1q_f64(lower + r, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; r < live; ++r) {
    const double g = std::abs(d - row[idx[r] - base]);
    if (g > lower[r]) lower[r] = g;
  }
}

void NeonFillAbsDiffBounds(std::size_t x_len, const std::uint32_t* y_lens,
                           std::size_t n, double* out) {
  const float64x2_t vx = vdupq_n_f64(static_cast<double>(x_len));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // u32 -> u64 -> double is exact for the full 32-bit range.
    const float64x2_t y =
        vcvtq_f64_u64(vmovl_u32(vld1_u32(y_lens + i)));
    vst1q_f64(out + i, vabsq_f64(vsubq_f64(vx, y)));
  }
  for (; i < n; ++i) {
    const std::size_t y = y_lens[i];
    out[i] = x_len > y ? static_cast<double>(x_len - y)
                       : static_cast<double>(y - x_len);
  }
}

}  // namespace

const SweepKernels& NeonSweepKernels() {
  static const SweepKernels kNeon = [] {
    SweepKernels k = ScalarSweepKernels();  // compaction stays scalar
    k.name = "neon";
    k.update_lower_dense = NeonUpdateLowerDense;
    k.update_lower_packed = NeonUpdateLowerPacked;
    k.fill_absdiff_bounds = NeonFillAbsDiffBounds;
    return k;
  }();
  return kNeon;
}

}  // namespace cned

#endif  // defined(__aarch64__)
