// NEON implementations of the sweep kernels (see sweep_kernel.h for the
// semantics every variant must reproduce bit for bit).
//
// AArch64 AdvSIMD is baseline (and these kernels use float64x2 intrinsics
// that exist ONLY on AArch64 — 32-bit ARM NEON is f32/integer), so this
// translation unit needs no special compile flags: CMake includes it on
// AArch64 targets only, and the runtime probe (common/cpu_features.h)
// stays constant-true there.
//
// Scope: the bandwidth-bound passes — the dense and gathered row updates
// and the |Δlen| fill — are vectorised (2 double lanes). The compaction
// kernels reuse the scalar reference: with 2-wide vectors and no movemask
// instruction, a NEON left-pack buys nothing over the scalar loop that the
// compiler already schedules well, and sharing the scalar code keeps the
// bit-identity argument trivial. The running-max update is written as
// compare + select (not vmaxq, which would propagate NaNs differently from
// the scalar `g > lb ? g : lb`).

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <cstdint>

#include "search/sweep_kernel.h"
#include "search/table_quant.h"  // HalfToDouble: the shared exact f16 decode

namespace cned {
namespace {

// Quantized arm max (semantics in sweep_kernel.h): negation is exact, the
// subtraction is the scalar's, and compare+select reproduces the scalar
// ternary `diff > other ? diff : other` including ties.
inline float64x2_t QuantArms(float64x2_t diff, float64x2_t vgap) {
  const float64x2_t other = vsubq_f64(vnegq_f64(diff), vgap);
  return vbslq_f64(vcgtq_f64(diff, other), diff, other);
}

void NeonUpdateLowerDense(double d, const double* row, double* lower,
                          std::size_t n) {
  const float64x2_t vd = vdupq_n_f64(d);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t g = vabsq_f64(vsubq_f64(vd, vld1q_f64(row + i)));
    const float64x2_t lb = vld1q_f64(lower + i);
    // lb = g > lb ? g : lb — exact scalar ternary semantics.
    vst1q_f64(lower + i, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; i < n; ++i) {
    const double g = std::abs(d - row[i]);
    if (g > lower[i]) lower[i] = g;
  }
}

void NeonUpdateLowerPacked(double d, const double* row,
                           const std::uint32_t* idx, std::uint32_t base,
                           double* lower, std::size_t live) {
  const float64x2_t vd = vdupq_n_f64(d);
  std::size_t r = 0;
  for (; r + 2 <= live; r += 2) {
    // No NEON gather: two scalar loads feed the vector lanes.
    float64x2_t rows = vdupq_n_f64(row[idx[r] - base]);
    rows = vsetq_lane_f64(row[idx[r + 1] - base], rows, 1);
    const float64x2_t g = vabsq_f64(vsubq_f64(vd, rows));
    const float64x2_t lb = vld1q_f64(lower + r);
    vst1q_f64(lower + r, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; r < live; ++r) {
    const double g = std::abs(d - row[idx[r] - base]);
    if (g > lower[r]) lower[r] = g;
  }
}

// --- Quantized row kernels. ------------------------------------------------
// Decodes run per lane in scalar (they are exact, so any exact decode
// agrees bitwise; the u8 per-lane `double(code) * scale` is the same one
// rounded multiply in scalar or vector form — and the library builds with
// -ffp-contract=off, so it can never be fused into the vector subtract).
// The arm max and the running-max update are vectorised 2-wide.

void NeonUpdateLowerDenseF32(double d, const float* row, double gap,
                             double* lower, std::size_t n) {
  const float64x2_t vd = vdupq_n_f64(d);
  const float64x2_t vgap = vdupq_n_f64(gap);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vcvt_f64_f32(vld1_f32(row + i));  // exact widen
    const float64x2_t g = QuantArms(vsubq_f64(v, vd), vgap);
    const float64x2_t lb = vld1q_f64(lower + i);
    vst1q_f64(lower + i, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; i < n; ++i) {
    const double diff = static_cast<double>(row[i]) - d;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[i]) lower[i] = g;
  }
}

void NeonUpdateLowerPackedF32(double d, const float* row,
                              const std::uint32_t* idx, std::uint32_t base,
                              double gap, double* lower, std::size_t live) {
  const float64x2_t vd = vdupq_n_f64(d);
  const float64x2_t vgap = vdupq_n_f64(gap);
  std::size_t r = 0;
  for (; r + 2 <= live; r += 2) {
    float64x2_t v = vdupq_n_f64(static_cast<double>(row[idx[r] - base]));
    v = vsetq_lane_f64(static_cast<double>(row[idx[r + 1] - base]), v, 1);
    const float64x2_t g = QuantArms(vsubq_f64(v, vd), vgap);
    const float64x2_t lb = vld1q_f64(lower + r);
    vst1q_f64(lower + r, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; r < live; ++r) {
    const double diff = static_cast<double>(row[idx[r] - base]) - d;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[r]) lower[r] = g;
  }
}

void NeonUpdateLowerDenseF16(double d, const std::uint16_t* row, double gap,
                             double* lower, std::size_t n) {
  const float64x2_t vd = vdupq_n_f64(d);
  const float64x2_t vgap = vdupq_n_f64(gap);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t v = vdupq_n_f64(HalfToDouble(row[i]));
    v = vsetq_lane_f64(HalfToDouble(row[i + 1]), v, 1);
    const float64x2_t g = QuantArms(vsubq_f64(v, vd), vgap);
    const float64x2_t lb = vld1q_f64(lower + i);
    vst1q_f64(lower + i, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; i < n; ++i) {
    const double diff = HalfToDouble(row[i]) - d;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[i]) lower[i] = g;
  }
}

void NeonUpdateLowerPackedF16(double d, const std::uint16_t* row,
                              const std::uint32_t* idx, std::uint32_t base,
                              double gap, double* lower, std::size_t live) {
  const float64x2_t vd = vdupq_n_f64(d);
  const float64x2_t vgap = vdupq_n_f64(gap);
  std::size_t r = 0;
  for (; r + 2 <= live; r += 2) {
    float64x2_t v = vdupq_n_f64(HalfToDouble(row[idx[r] - base]));
    v = vsetq_lane_f64(HalfToDouble(row[idx[r + 1] - base]), v, 1);
    const float64x2_t g = QuantArms(vsubq_f64(v, vd), vgap);
    const float64x2_t lb = vld1q_f64(lower + r);
    vst1q_f64(lower + r, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; r < live; ++r) {
    const double diff = HalfToDouble(row[idx[r] - base]) - d;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[r]) lower[r] = g;
  }
}

void NeonUpdateLowerDenseU8(double d, const std::uint8_t* row, double scale,
                            double offset, double gap, double* lower,
                            std::size_t n) {
  const double dq = d - offset;  // once per call, as in the scalar kernel
  const float64x2_t vdq = vdupq_n_f64(dq);
  const float64x2_t vgap = vdupq_n_f64(gap);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t m = vdupq_n_f64(static_cast<double>(row[i]) * scale);
    m = vsetq_lane_f64(static_cast<double>(row[i + 1]) * scale, m, 1);
    const float64x2_t g = QuantArms(vsubq_f64(m, vdq), vgap);
    const float64x2_t lb = vld1q_f64(lower + i);
    vst1q_f64(lower + i, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; i < n; ++i) {
    const double m = static_cast<double>(row[i]) * scale;
    const double diff = m - dq;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[i]) lower[i] = g;
  }
}

void NeonUpdateLowerPackedU8(double d, const std::uint8_t* row,
                             const std::uint32_t* idx, std::uint32_t base,
                             double scale, double offset, double gap,
                             double* lower, std::size_t live) {
  const double dq = d - offset;
  const float64x2_t vdq = vdupq_n_f64(dq);
  const float64x2_t vgap = vdupq_n_f64(gap);
  std::size_t r = 0;
  for (; r + 2 <= live; r += 2) {
    float64x2_t m =
        vdupq_n_f64(static_cast<double>(row[idx[r] - base]) * scale);
    m = vsetq_lane_f64(static_cast<double>(row[idx[r + 1] - base]) * scale, m,
                       1);
    const float64x2_t g = QuantArms(vsubq_f64(m, vdq), vgap);
    const float64x2_t lb = vld1q_f64(lower + r);
    vst1q_f64(lower + r, vbslq_f64(vcgtq_f64(g, lb), g, lb));
  }
  for (; r < live; ++r) {
    const double m = static_cast<double>(row[idx[r] - base]) * scale;
    const double diff = m - dq;
    const double other = (-diff) - gap;
    const double g = diff > other ? diff : other;
    if (g > lower[r]) lower[r] = g;
  }
}

void NeonFillAbsDiffBounds(std::size_t x_len, const std::uint32_t* y_lens,
                           std::size_t n, double* out) {
  const float64x2_t vx = vdupq_n_f64(static_cast<double>(x_len));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // u32 -> u64 -> double is exact for the full 32-bit range.
    const float64x2_t y =
        vcvtq_f64_u64(vmovl_u32(vld1_u32(y_lens + i)));
    vst1q_f64(out + i, vabsq_f64(vsubq_f64(vx, y)));
  }
  for (; i < n; ++i) {
    const std::size_t y = y_lens[i];
    out[i] = x_len > y ? static_cast<double>(x_len - y)
                       : static_cast<double>(y - x_len);
  }
}

}  // namespace

const SweepKernels& NeonSweepKernels() {
  static const SweepKernels kNeon = [] {
    SweepKernels k = ScalarSweepKernels();  // compaction stays scalar
    k.name = "neon";
    k.update_lower_dense = NeonUpdateLowerDense;
    k.update_lower_packed = NeonUpdateLowerPacked;
    k.update_lower_dense_f32 = NeonUpdateLowerDenseF32;
    k.update_lower_packed_f32 = NeonUpdateLowerPackedF32;
    k.update_lower_dense_f16 = NeonUpdateLowerDenseF16;
    k.update_lower_packed_f16 = NeonUpdateLowerPackedF16;
    k.update_lower_dense_u8 = NeonUpdateLowerDenseU8;
    k.update_lower_packed_u8 = NeonUpdateLowerPackedU8;
    k.fill_absdiff_bounds = NeonFillAbsDiffBounds;
    return k;
  }();
  return kNeon;
}

}  // namespace cned

#endif  // defined(__aarch64__)
