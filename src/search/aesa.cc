#include "search/aesa.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/parallel.h"

namespace cned {

Aesa::Aesa(PrototypeStoreRef prototypes, StringDistancePtr distance)
    : prototypes_(prototypes), distance_(std::move(distance)) {
  if (prototypes_->empty()) {
    throw std::invalid_argument("Aesa: empty prototype set");
  }
  const PrototypeStore& protos = store();
  const std::size_t n = protos.size();
  matrix_.assign(n * n, 0.0);
  // Parallel over rows: row i fills pairs (i, i+1..n-1). Writes to (i, j)
  // and its mirror (j, i) are disjoint across tasks because each unordered
  // pair belongs to exactly one row.
  ParallelFor(n, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double d = distance_->Distance(protos[i], protos[j]);
      matrix_[i * n + j] = matrix_[j * n + i] = d;
    }
  });
  preprocessing_computations_ += static_cast<std::uint64_t>(n) * (n - 1) / 2;
}

// Shared sweep behind Nearest (k = 1) and KNearest: a candidate whose lower
// bound reaches the k-th incumbent cannot strictly improve on it and is
// eliminated; the same k-th incumbent caps every kernel evaluation.
std::vector<NeighborResult> Aesa::Sweep(std::string_view query, std::size_t k,
                                        QueryStats* stats) const {
  const PrototypeStore& protos = store();
  const std::size_t n = protos.size();
  k = std::min(k, n);
  if (k == 0) return {};
  // Length-difference lower bounds seed the elimination for free, as in
  // LAESA's "zeroth pivot": one flat pass over the packed length array.
  std::vector<double> lower(n);
  distance_->LengthLowerBounds(query.size(), protos.lengths_data(), n,
                               lower.data());
  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? inf : best.back().distance; };
  std::uint64_t computations = 0, abandons = 0;

  std::size_t s = 0;
  while (alive_count > 0) {
    alive[s] = false;
    --alive_count;

    // The k-th incumbent is the kernel bound: only a strict improvement is
    // ever used, so an evaluation that provably reaches it may stop early.
    // An abandoned evaluation still certifies d(q, s) >= cap, giving the
    // one-sided lower bound d(q, i) >= cap - d(s, i) for every survivor.
    const double cap = kth();
    double d = distance_->DistanceBounded(query, protos[s], cap);
    ++computations;
    const bool abandoned = d >= cap;
    if (abandoned) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s, d});
    }

    const double bound = kth();
    std::size_t next = n;
    double next_key = inf;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      double g = abandoned ? cap - Dist(s, i) : std::abs(d - Dist(s, i));
      if (g > lower[i]) lower[i] = g;
      if (lower[i] >= bound) {
        alive[i] = false;
        --alive_count;
        continue;
      }
      if (lower[i] < next_key) {
        next_key = lower[i];
        next = i;
      }
    }
    if (next == n) break;
    s = next;
  }

  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

NeighborResult Aesa::Nearest(std::string_view query, QueryStats* stats) const {
  return Sweep(query, 1, stats).front();
}

std::vector<NeighborResult> Aesa::KNearest(std::string_view query,
                                           std::size_t k,
                                           QueryStats* stats) const {
  return Sweep(query, k, stats);
}

}  // namespace cned
