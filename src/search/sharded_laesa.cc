#include "search/sharded_laesa.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/binary_io.h"
#include "common/parallel.h"
#include "search/pivot_selection.h"
#include "search/sweep_kernel.h"
#include "serve/shard_snapshot.h"

namespace cned {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Candidate work below which the per-visit shard passes run serially on the
// calling thread. ParallelFor spawns and joins real threads (no pool), so a
// pass must stream on the order of a million candidates — tens of
// megabytes, hundreds of microseconds — before that dispatch pays for
// itself; under the batch engine the nested call runs inline anyway.
// Results are identical either way — only the execution schedule changes.
constexpr std::size_t kParallelPassWork = 1 << 20;

/// Thread-local per-shard bookkeeping: segment live counts and the
/// per-shard kernel pass results. The packed candidate slabs themselves
/// come from the shared `TlsSweepScratch` (segment s occupies
/// [shard_base(s), shard_base(s) + live[s]) of the 64-byte-aligned slabs
/// the kernels sweep). Owned per thread, so batched queries running under
/// ParallelFor never share state.
struct ShardedScratch {
  std::vector<std::size_t> live;
  std::vector<SweepCompactResult> pass;
};

ShardedScratch& TlsShardedScratch() {
  thread_local ShardedScratch scratch;
  return scratch;
}

}  // namespace

ShardedLaesa::ShardedLaesa(const ShardedPrototypeStore& store,
                           StringDistancePtr distance, std::size_t num_pivots,
                           std::size_t first_pivot,
                           TablePrecision table_precision)
    : store_(&store),
      distance_(std::move(distance)),
      precision_(table_precision) {
  if (store.empty()) {
    throw std::invalid_argument("ShardedLaesa: empty prototype set");
  }
  num_pivots = std::min(num_pivots, store.size());
  if (num_pivots == 0) {
    throw std::invalid_argument("ShardedLaesa: need at least one pivot");
  }
  // Max-min selection over the global index space — the exact sequence the
  // flat index picks, so a sharded and a flat build of the same data share
  // pivots (and therefore search trajectories).
  pivots_ = SelectPivotsMaxMin(store, *distance_, num_pivots, first_pivot);
  preprocessing_computations_ +=
      static_cast<std::uint64_t>(pivots_.size()) * store.size();
  BuildTables();
}

void ShardedLaesa::BuildTables() {
  const ShardedPrototypeStore& st = *store_;
  const std::size_t n = st.size();
  const std::size_t p_count = pivots_.size();
  pivot_rank_.assign(n, -1);
  for (std::size_t p = 0; p < p_count; ++p) {
    if (pivot_rank_[pivots_[p]] >= 0) {
      throw std::invalid_argument("ShardedLaesa: duplicate pivot index");
    }
    pivot_rank_[pivots_[p]] = static_cast<std::int32_t>(p);
  }
  tables_.resize(st.shard_count());
  for (std::size_t s = 0; s < st.shard_count(); ++s) {
    tables_[s].resize(p_count * st.shard(s).size());
  }
  // One task per table entry, as in the flat build: the atomic work queue
  // balances wildly varying string lengths, and writes are disjoint.
  ParallelFor(p_count * n, [&](std::size_t t) {
    const std::size_t p = t / n;
    const std::size_t g = t % n;
    const std::size_t s = st.ShardOf(g);
    const std::size_t local = g - st.shard_base(s);
    tables_[s][p * st.shard(s).size() + local] =
        distance_->Distance(st.view(pivots_[p]), st.view(g));
  });
  preprocessing_computations_ += static_cast<std::uint64_t>(p_count) * n;

  if (precision_ != TablePrecision::kF64) {
    // Quantize each GLOBAL pivot row with one shared meta: scan every
    // shard's slice of the row first (shard order == global index order),
    // then encode the slices against that meta. A sharded build therefore
    // produces exactly the codes and gaps a flat build of the same data
    // would — sharded results stay bit-identical to flat at any precision.
    const std::size_t width = TablePrecisionBytes(precision_);
    quant_tables_.resize(st.shard_count());
    for (std::size_t s = 0; s < st.shard_count(); ++s) {
      quant_tables_[s].resize(p_count * st.shard(s).size() * width);
    }
    row_meta_.resize(p_count);
    for (std::size_t p = 0; p < p_count; ++p) {
      QuantRowEncoder enc;
      for (std::size_t s = 0; s < st.shard_count(); ++s) {
        enc.Scan(tables_[s].data() + p * st.shard(s).size(),
                 st.shard(s).size());
      }
      enc.Prepare(precision_);
      for (std::size_t s = 0; s < st.shard_count(); ++s) {
        const std::size_t n_s = st.shard(s).size();
        enc.Encode(tables_[s].data() + p * n_s, n_s,
                   quant_tables_[s].data() + p * n_s * width);
      }
      row_meta_[p] = enc.Finish();
    }
    tables_.clear();
    tables_.shrink_to_fit();
  }
}

// The flat `Laesa::Sweep` with its per-visit pass partitioned by shard: the
// visit loop below makes the same decisions on the same values in the same
// order (incumbents, kernel caps, elimination bound, and the
// next-candidate merge that resolves ties to the lowest global index, as
// the flat packed scan does), so neighbours, distances and QueryStats are
// bit-identical to the single-store index for every distance. Each shard's
// tighten/eliminate/compact pass runs on the shared dispatched sweep
// kernels (sweep_kernel.h) over that shard's slab segment — literally the
// flat index's vector code, partitioned.
std::vector<NeighborResult> ShardedLaesa::Sweep(std::string_view query,
                                                std::size_t k, double slack,
                                                QueryStats* stats,
                                                QueryStats* shard_stats) const {
  const ShardedPrototypeStore& st = *store_;
  const std::size_t n = st.size();
  const std::size_t shards = st.shard_count();
  k = std::min(k, n);
  if (k == 0) return {};

  const SweepKernels& kern = ActiveSweepKernels();
  SweepScratch& slabs = TlsSweepScratch();
  slabs.idx.resize(n);
  slabs.lower.resize(n);
  ShardedScratch& scratch = TlsShardedScratch();
  scratch.live.assign(shards, 0);
  scratch.pass.assign(shards, SweepCompactResult{});
  std::uint32_t* idx = slabs.idx.data();
  double* lower = slabs.lower.data();

  // Free zeroth pivot per shard: one flat pass over each shard's packed
  // length array, writing straight into that shard's bound segment.
  for (std::size_t s = 0; s < shards; ++s) {
    const PrototypeStore& shard = st.shard(s);
    distance_->LengthLowerBounds(query.size(), shard.lengths_data(),
                                 shard.size(), lower + st.shard_base(s));
    scratch.live[s] = shard.size();
  }
  std::size_t live_pivots = FillIotaCountPivots(idx, pivot_rank_.data(), n);
  std::size_t total_live = n;

  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? kInf : best.back().distance; };

  std::uint64_t computations = 0, abandons = 0, pivot_computations = 0;

  std::size_t s_cand = pivots_[0];  // start from the first base prototype
  while (total_live > 0) {
    const std::int32_t rank = pivot_rank_[s_cand];
    const bool is_pivot = rank >= 0;
    const double cap = is_pivot ? kInf : kth();
    const double d = distance_->DistanceBounded(query, st.view(s_cand), cap);
    ++computations;
    pivot_computations += is_pivot ? 1 : 0;
    const bool abandoned = d >= cap;
    if (abandoned) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s_cand, d});
    }
    if (shard_stats != nullptr) {
      QueryStats& hs = shard_stats[st.ShardOf(s_cand)];
      hs.distance_computations += 1;
      hs.bounded_abandons += abandoned ? 1 : 0;
      hs.pivot_computations += is_pivot ? 1 : 0;
    }

    const double bound = kth();
    auto pass_fn = [&](std::size_t sh) {
      const std::size_t base = st.shard_base(sh);
      const std::size_t seg_live = scratch.live[sh];
      if (is_pivot) {
        QuantUpdateLowerPacked(kern, shard_view(sh),
                               static_cast<std::size_t>(rank),
                               st.shard(sh).size(), d, idx + base,
                               static_cast<std::uint32_t>(base), lower + base,
                               seg_live);
      }
      scratch.pass[sh] = kern.eliminate_and_compact_flagged(
          idx + base, lower + base, pivot_rank_.data(), seg_live,
          static_cast<std::uint32_t>(s_cand), slack, bound);
    };
    if (shards > 1 && total_live >= kParallelPassWork) {
      ParallelFor(shards, pass_fn);
    } else {
      for (std::size_t sh = 0; sh < shards; ++sh) pass_fn(sh);
    }

    // Merge per-shard minima in shard order with strict '<': the first
    // occurrence wins, i.e. the lowest global index among ties — exactly
    // the flat packed scan's choice.
    total_live = 0;
    std::size_t next = kSweepNone, next_pivot = kSweepNone;
    double next_key = kInf, next_pivot_key = kInf;
    for (std::size_t sh = 0; sh < shards; ++sh) {
      const SweepCompactResult& out = scratch.pass[sh];
      scratch.live[sh] = out.live;
      total_live += out.live;
      live_pivots -= out.pivots_died;
      if (out.next != kSweepNone && out.next_key < next_key) {
        next_key = out.next_key;
        next = out.next;
      }
      if (out.next_pivot != kSweepNone && out.next_pivot_key < next_pivot_key) {
        next_pivot_key = out.next_pivot_key;
        next_pivot = out.next_pivot;
      }
    }
    if (total_live == 0) break;
    s_cand = live_pivots > 0 ? next_pivot : next;
    // defensive: accounting can never reach this
    if (s_cand == kSweepNone) break;
  }

  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
    stats->pivot_computations += pivot_computations;
  }
  return best;
}

// Row-consuming counterpart, mirroring `Laesa::SweepWithRow`: seed the
// incumbents with every pivot distance, apply every table row per shard (a
// streamed max with no elimination inside), eliminate against the seeded
// k-th incumbent, then run the same adaptive loop over the surviving
// non-pivots.
std::vector<NeighborResult> ShardedLaesa::SweepWithRow(
    std::string_view query, std::size_t k, const double* row,
    QueryStats* stats, QueryStats* shard_stats) const {
  const ShardedPrototypeStore& st = *store_;
  const std::size_t n = st.size();
  const std::size_t shards = st.shard_count();
  const std::size_t p_count = pivots_.size();
  k = std::min(k, n);
  if (k == 0) return {};

  const SweepKernels& kern = ActiveSweepKernels();
  SweepScratch& slabs = TlsSweepScratch();
  slabs.idx.resize(n);
  slabs.lower.resize(n);
  ShardedScratch& scratch = TlsShardedScratch();
  scratch.live.assign(shards, 0);
  scratch.pass.assign(shards, SweepCompactResult{});
  std::uint32_t* idx = slabs.idx.data();
  double* lower = slabs.lower.data();

  for (std::size_t s = 0; s < shards; ++s) {
    const PrototypeStore& shard = st.shard(s);
    distance_->LengthLowerBounds(query.size(), shard.lengths_data(),
                                 shard.size(), lower + st.shard_base(s));
  }

  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  auto kth = [&]() { return best.size() < k ? kInf : best.back().distance; };
  for (std::size_t p = 0; p < p_count; ++p) {
    InsertNeighborTopK(best, k, {pivots_[p], row[p]}, /*admit_ties=*/true);
  }

  // Per shard: every pivot row applied with the dense streamed-max kernel,
  // then one compact_seed pass packs the surviving non-pivots of that
  // shard's segment and tracks its minimal-bound survivor.
  const double seed_bound = kth();
  auto stage_fn = [&](std::size_t sh) {
    const std::size_t base = st.shard_base(sh);
    const std::size_t n_sh = st.shard(sh).size();
    double* slow = lower + base;
    const QuantTableView view = shard_view(sh);
    for (std::size_t p = 0; p < p_count; ++p) {
      QuantUpdateLowerDense(kern, view, p, n_sh, row[p], slow);
    }
    scratch.pass[sh] = kern.compact_seed(
        slow, pivot_rank_.data() + base, n_sh,
        static_cast<std::uint32_t>(base), seed_bound, idx + base, slow);
  };
  if (shards > 1 && p_count * n >= kParallelPassWork) {
    ParallelFor(shards, stage_fn);
  } else {
    for (std::size_t sh = 0; sh < shards; ++sh) stage_fn(sh);
  }

  std::size_t total_live = 0;
  std::size_t s_cand = kSweepNone;
  double s_key = kInf;
  for (std::size_t sh = 0; sh < shards; ++sh) {
    const SweepCompactResult& out = scratch.pass[sh];
    scratch.live[sh] = out.live;
    total_live += out.live;
    if (out.next != kSweepNone && out.next_key < s_key) {
      s_key = out.next_key;
      s_cand = out.next;
    }
  }

  std::uint64_t computations = 0, abandons = 0;

  while (total_live > 0 && s_cand != kSweepNone) {
    const double cap = kth();
    const double d = distance_->DistanceBounded(query, st.view(s_cand), cap);
    ++computations;
    const bool abandoned = d >= cap;
    if (abandoned) {
      ++abandons;
    } else {
      InsertNeighborTopK(best, k, {s_cand, d});
    }
    if (shard_stats != nullptr) {
      QueryStats& hs = shard_stats[st.ShardOf(s_cand)];
      hs.distance_computations += 1;
      hs.bounded_abandons += abandoned ? 1 : 0;
    }

    const double bound = kth();
    auto pass_fn = [&](std::size_t sh) {
      const std::size_t base = st.shard_base(sh);
      scratch.pass[sh] = kern.eliminate_and_compact(
          idx + base, lower + base, scratch.live[sh],
          static_cast<std::uint32_t>(s_cand), bound);
    };
    if (shards > 1 && total_live >= kParallelPassWork) {
      ParallelFor(shards, pass_fn);
    } else {
      for (std::size_t sh = 0; sh < shards; ++sh) pass_fn(sh);
    }

    total_live = 0;
    s_cand = kSweepNone;
    s_key = kInf;
    for (std::size_t sh = 0; sh < shards; ++sh) {
      const SweepCompactResult& out = scratch.pass[sh];
      scratch.live[sh] = out.live;
      total_live += out.live;
      if (out.next != kSweepNone && out.next_key < s_key) {
        s_key = out.next_key;
        s_cand = out.next;
      }
    }
  }

  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

void ShardedLaesa::ComputePivotRow(std::string_view query, double* row,
                                   QueryStats* stats) const {
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    row[p] = distance_->Distance(query, store_->view(pivots_[p]));
  }
  if (stats != nullptr) {
    stats->distance_computations += pivots_.size();
    stats->pivot_computations += pivots_.size();
  }
}

NeighborResult ShardedLaesa::Nearest(std::string_view query,
                                     QueryStats* stats) const {
  return Nearest(query, stats, nullptr);
}

NeighborResult ShardedLaesa::Nearest(std::string_view query, QueryStats* stats,
                                     QueryStats* shard_stats) const {
  return Sweep(query, 1, /*slack=*/1.0, stats, shard_stats).front();
}

NeighborResult ShardedLaesa::NearestApprox(std::string_view query,
                                           double epsilon,
                                           QueryStats* stats) const {
  if (epsilon < 0.0) {
    throw std::invalid_argument(
        "ShardedLaesa::NearestApprox: epsilon must be >= 0");
  }
  return Sweep(query, 1, 1.0 + epsilon, stats, nullptr).front();
}

std::vector<NeighborResult> ShardedLaesa::KNearest(std::string_view query,
                                                   std::size_t k,
                                                   QueryStats* stats) const {
  return Sweep(query, k, /*slack=*/1.0, stats, nullptr);
}

std::vector<NeighborResult> ShardedLaesa::KNearest(
    std::string_view query, std::size_t k, QueryStats* stats,
    QueryStats* shard_stats) const {
  return Sweep(query, k, /*slack=*/1.0, stats, shard_stats);
}

NeighborResult ShardedLaesa::NearestWithPivotRow(std::string_view query,
                                                 const double* row,
                                                 QueryStats* stats) const {
  return SweepWithRow(query, 1, row, stats, nullptr).front();
}

NeighborResult ShardedLaesa::NearestWithPivotRow(std::string_view query,
                                                 const double* row,
                                                 QueryStats* stats,
                                                 QueryStats* shard_stats)
    const {
  return SweepWithRow(query, 1, row, stats, shard_stats).front();
}

std::vector<NeighborResult> ShardedLaesa::KNearestWithPivotRow(
    std::string_view query, std::size_t k, const double* row,
    QueryStats* stats) const {
  return SweepWithRow(query, k, row, stats, nullptr);
}

std::vector<NeighborResult> ShardedLaesa::KNearestWithPivotRow(
    std::string_view query, std::size_t k, const double* row,
    QueryStats* stats, QueryStats* shard_stats) const {
  return SweepWithRow(query, k, row, stats, shard_stats);
}

namespace {
constexpr char kShardedLaesaMagic[8] = {'C', 'N', 'E', 'D', 'S', 'H', 'L', '1'};
constexpr std::uint32_t kShardedLaesaVersion = 1;
// Version 2 stores a quantized table: counts {n, shards, np, precision},
// sections shard sizes, pivot ids, the GLOBAL per-row meta
// QuantRowMeta[np], then each shard's code table elem[np * n_s]. f64
// indices keep writing version 1 byte-identically.
constexpr std::uint32_t kShardedLaesaVersionQuant = 2;

TablePrecision CheckedShardPrecision(std::uint64_t raw, const char* who) {
  if (raw < 1 || raw > 3) {
    throw std::runtime_error(std::string(who) + ": bad table precision");
  }
  return static_cast<TablePrecision>(static_cast<std::uint32_t>(raw));
}
}  // namespace

void ShardedLaesa::Save(const std::string& path) const {
  BinaryWriter writer(path);
  std::vector<std::uint64_t> sizes(store_->shard_count());
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    sizes[s] = store_->shard(s).size();
  }
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "64-bit pivot indices expected");
  if (precision_ == TablePrecision::kF64) {
    const std::uint64_t counts[3] = {store_->size(), store_->shard_count(),
                                     pivots_.size()};
    writer.Header(kShardedLaesaMagic, kShardedLaesaVersion, counts, 3);
    writer.Align();
    writer.Raw(sizes.data(), sizes.size() * sizeof(std::uint64_t));
    writer.Align();
    writer.Raw(pivots_.data(), pivots_.size() * sizeof(std::uint64_t));
    // Through the views, so a mapped index re-snapshots byte-identically.
    for (std::size_t s = 0; s < store_->shard_count(); ++s) {
      writer.Align();
      writer.Raw(shard_table(s),
                 pivots_.size() * store_->shard(s).size() * sizeof(double));
    }
  } else {
    const std::uint64_t counts[4] = {store_->size(), store_->shard_count(),
                                     pivots_.size(),
                                     static_cast<std::uint64_t>(precision_)};
    writer.Header(kShardedLaesaMagic, kShardedLaesaVersionQuant, counts, 4);
    writer.Align();
    writer.Raw(sizes.data(), sizes.size() * sizeof(std::uint64_t));
    writer.Align();
    writer.Raw(pivots_.data(), pivots_.size() * sizeof(std::uint64_t));
    writer.Align();
    writer.Raw(row_meta_data(), pivots_.size() * sizeof(QuantRowMeta));
    const std::size_t width = TablePrecisionBytes(precision_);
    for (std::size_t s = 0; s < store_->shard_count(); ++s) {
      writer.Align();
      writer.Raw(shard_quant(s),
                 pivots_.size() * store_->shard(s).size() * width);
    }
  }
  writer.Finish();
}

void ShardedLaesa::SaveShard(std::size_t s, const std::string& path) const {
  const std::size_t n_s = store_->shard(s).size();
  BinaryWriter writer(path);
  const std::uint64_t counts[6] = {store_->size(), store_->shard_count(),
                                   pivots_.size(),  s,
                                   n_s,             store_->shard_base(s)};
  if (precision_ == TablePrecision::kF64) {
    writer.Header(kShardSliceMagic, kShardSliceVersion, counts, 6);
    writer.Align();
    writer.Raw(pivots_.data(), pivots_.size() * sizeof(std::uint64_t));
    writer.Align();
    writer.Raw(shard_table(s), pivots_.size() * n_s * sizeof(double));
  } else {
    // All six header counts are taken, so v2 leads with an extra
    // {precision, reserved} section (see serve/shard_snapshot.h).
    writer.Header(kShardSliceMagic, kShardSliceVersionQuant, counts, 6);
    const std::uint64_t prec[2] = {static_cast<std::uint64_t>(precision_), 0};
    writer.Align();
    writer.Raw(prec, sizeof(prec));
    writer.Align();
    writer.Raw(pivots_.data(), pivots_.size() * sizeof(std::uint64_t));
    writer.Align();
    writer.Raw(row_meta_data(), pivots_.size() * sizeof(QuantRowMeta));
    writer.Align();
    writer.Raw(shard_quant(s),
               pivots_.size() * n_s * TablePrecisionBytes(precision_));
  }
  writer.Finish();
}

void ShardedLaesa::SaveRouterManifest(const std::string& path) const {
  BinaryWriter writer(path);
  std::vector<std::uint64_t> lens(pivots_.size());
  std::uint64_t arena_bytes = 0;
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    lens[p] = store_->view(pivots_[p]).size();
    arena_bytes += lens[p];
  }
  const std::uint64_t counts[4] = {store_->size(), store_->shard_count(),
                                   pivots_.size(), arena_bytes};
  writer.Header(kRouterManifestMagic, kRouterManifestVersion, counts, 4);
  std::vector<std::uint64_t> sizes(store_->shard_count());
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    sizes[s] = store_->shard(s).size();
  }
  writer.Align();
  writer.Raw(sizes.data(), sizes.size() * sizeof(std::uint64_t));
  writer.Align();
  writer.Raw(pivots_.data(), pivots_.size() * sizeof(std::uint64_t));
  writer.Align();
  writer.Raw(lens.data(), lens.size() * sizeof(std::uint64_t));
  writer.Align();
  for (std::size_t p = 0; p < pivots_.size(); ++p) {
    const std::string_view v = store_->view(pivots_[p]);
    writer.Raw(v.data(), v.size());
  }
  writer.Finish();
}

ShardedLaesa ShardedLaesa::Load(const std::string& path,
                                const ShardedPrototypeStore& store,
                                StringDistancePtr distance) {
  BinaryReader reader(path);
  std::uint32_t version = 0;
  const auto counts = reader.Header(kShardedLaesaMagic, kShardedLaesaVersion,
                                    kShardedLaesaVersionQuant, &version);
  const std::uint64_t n = counts[0];
  const std::uint64_t shards = counts[1];
  const std::uint64_t np = counts[2];
  if (n != store.size() || shards != store.shard_count()) {
    throw std::runtime_error("ShardedLaesa::Load: store shape mismatch");
  }
  if (np == 0 || np > n) {
    throw std::runtime_error("ShardedLaesa::Load: bad pivot count");
  }
  reader.RequireArray(shards, sizeof(std::uint64_t));
  std::vector<std::uint64_t> sizes(shards);
  reader.Align();
  reader.Raw(sizes.data(), shards * sizeof(std::uint64_t));
  for (std::uint64_t s = 0; s < shards; ++s) {
    if (sizes[s] != store.shard(s).size()) {
      throw std::runtime_error("ShardedLaesa::Load: shard size mismatch");
    }
  }
  ShardedLaesa index(InternalTag{}, store, std::move(distance));
  reader.RequireArray(np, sizeof(std::uint64_t));
  index.pivots_.resize(np);
  reader.Align();
  reader.Raw(index.pivots_.data(), np * sizeof(std::uint64_t));
  index.pivot_rank_.assign(n, -1);
  for (std::size_t p = 0; p < np; ++p) {
    if (index.pivots_[p] >= n) {
      throw std::runtime_error("ShardedLaesa::Load: pivot index out of range");
    }
    if (index.pivot_rank_[index.pivots_[p]] >= 0) {
      throw std::runtime_error("ShardedLaesa::Load: duplicate pivot index");
    }
    index.pivot_rank_[index.pivots_[p]] = static_cast<std::int32_t>(p);
  }
  if (version == kShardedLaesaVersion) {
    index.tables_.resize(shards);
    for (std::uint64_t s = 0; s < shards; ++s) {
      reader.RequireArray(np * sizes[s], sizeof(double));
      index.tables_[s].resize(np * sizes[s]);
      reader.Align();
      reader.Raw(index.tables_[s].data(), np * sizes[s] * sizeof(double));
    }
  } else {
    index.precision_ = CheckedShardPrecision(counts[3], "ShardedLaesa::Load");
    const std::size_t width = TablePrecisionBytes(index.precision_);
    reader.RequireArray(np, sizeof(QuantRowMeta));
    index.row_meta_.resize(np);
    reader.Align();
    reader.Raw(index.row_meta_.data(), np * sizeof(QuantRowMeta));
    index.quant_tables_.resize(shards);
    for (std::uint64_t s = 0; s < shards; ++s) {
      reader.RequireArray(np * sizes[s], width);
      index.quant_tables_[s].resize(np * sizes[s] * width);
      reader.Align();
      reader.Raw(index.quant_tables_[s].data(), np * sizes[s] * width);
    }
  }
  return index;
}

ShardedLaesa ShardedLaesa::Map(const std::string& path,
                               const ShardedPrototypeStore& store,
                               StringDistancePtr distance) {
  MappedReader reader(MappedFile::Open(path));
  std::uint32_t version = 0;
  const auto counts = reader.Header(kShardedLaesaMagic, kShardedLaesaVersion,
                                    kShardedLaesaVersionQuant, &version);
  const std::uint64_t n = counts[0];
  const std::uint64_t shards = counts[1];
  const std::uint64_t np = counts[2];
  if (n != store.size() || shards != store.shard_count()) {
    throw std::runtime_error("ShardedLaesa::Map: store shape mismatch");
  }
  if (np == 0 || np > n) {
    throw std::runtime_error("ShardedLaesa::Map: bad pivot count");
  }
  const std::uint64_t* sizes = reader.Array<std::uint64_t>(shards);
  for (std::uint64_t s = 0; s < shards; ++s) {
    if (sizes[s] != store.shard(s).size()) {
      throw std::runtime_error("ShardedLaesa::Map: shard size mismatch");
    }
  }
  ShardedLaesa index(InternalTag{}, store, std::move(distance));
  // Pivot indices are tiny (np entries); copying them keeps the `pivots()`
  // API. The per-shard tables — the O(pivots x N) bulk — stay views.
  const std::uint64_t* pivots = reader.Array<std::uint64_t>(np);
  index.pivots_.assign(pivots, pivots + np);
  index.pivot_rank_.assign(n, -1);
  for (std::size_t p = 0; p < np; ++p) {
    if (index.pivots_[p] >= n) {
      throw std::runtime_error("ShardedLaesa::Map: pivot index out of range");
    }
    if (index.pivot_rank_[index.pivots_[p]] >= 0) {
      throw std::runtime_error("ShardedLaesa::Map: duplicate pivot index");
    }
    index.pivot_rank_[index.pivots_[p]] = static_cast<std::int32_t>(p);
  }
  if (version == kShardedLaesaVersion) {
    index.mapped_tables_.resize(shards);
    for (std::uint64_t s = 0; s < shards; ++s) {
      // sizes[s] was validated against the live store, so np * sizes[s]
      // cannot wrap before Array()'s division-form extent check sees it.
      index.mapped_tables_[s] = reader.Array<double>(np * sizes[s]);
    }
  } else {
    index.precision_ = CheckedShardPrecision(counts[3], "ShardedLaesa::Map");
    const std::size_t width = TablePrecisionBytes(index.precision_);
    index.mapped_meta_ = reader.Array<QuantRowMeta>(np);
    index.mapped_quants_.resize(shards);
    for (std::uint64_t s = 0; s < shards; ++s) {
      index.mapped_quants_[s] = reader.Section(np * sizes[s], width);
    }
  }
  index.mapping_ = reader.file();
  return index;
}

}  // namespace cned
