#ifndef CNED_SEARCH_KNN_CLASSIFIER_H_
#define CNED_SEARCH_KNN_CLASSIFIER_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "datasets/prototype_store.h"
#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// 1-NN classifier over labelled prototypes, generic in the search backend
/// (exhaustive, LAESA or AESA), as used in the paper's §4.4: a query is
/// given the label of its nearest training prototype.
///
/// Batch entry points run on the `BatchQueryEngine` (all cores, merged
/// stats) and return exactly what the per-query loop would.
class NearestNeighborClassifier {
 public:
  /// `labels[i]` is the class of the searcher's i-th prototype. The searcher
  /// and labels are borrowed; the caller keeps them alive.
  NearestNeighborClassifier(const NearestNeighborSearcher& searcher,
                            const std::vector<int>& labels);

  /// Label of the nearest prototype.
  int Classify(std::string_view query) const;

  /// Labels for a whole query span, batched across cores. `queries` is a
  /// borrowed `PrototypeStore` or a `std::vector<std::string>`; `threads`
  /// = 0 means hardware concurrency.
  std::vector<int> ClassifyBatch(PrototypeStoreRef queries,
                                 QueryStats* stats = nullptr,
                                 std::size_t threads = 0) const;

  /// Fraction (in %) of test samples whose predicted label differs from the
  /// true one — the error rate of Table 2. Batched internally.
  double ErrorRatePercent(PrototypeStoreRef queries,
                          const std::vector<int>& true_labels) const;

 private:
  const NearestNeighborSearcher* searcher_;
  const std::vector<int>* labels_;
};

/// Majority-vote k-NN (extension beyond the paper's 1-NN). Works with any
/// backend implementing `KNearest` (exhaustive, LAESA, VP-tree). Ties break
/// toward the closer neighbour's label.
int KnnClassify(const NearestNeighborSearcher& searcher,
                const std::vector<int>& labels, std::string_view query,
                std::size_t k);

/// Batched majority-vote k-NN over the `BatchQueryEngine`.
std::vector<int> KnnClassifyBatch(const NearestNeighborSearcher& searcher,
                                  const std::vector<int>& labels,
                                  PrototypeStoreRef queries, std::size_t k,
                                  QueryStats* stats = nullptr,
                                  std::size_t threads = 0);

}  // namespace cned

#endif  // CNED_SEARCH_KNN_CLASSIFIER_H_
