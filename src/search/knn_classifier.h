#ifndef CNED_SEARCH_KNN_CLASSIFIER_H_
#define CNED_SEARCH_KNN_CLASSIFIER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "distances/distance.h"
#include "search/exhaustive.h"
#include "search/nn_searcher.h"

namespace cned {

/// 1-NN classifier over labelled prototypes, generic in the search backend
/// (exhaustive, LAESA or AESA), as used in the paper's §4.4: a query is
/// given the label of its nearest training prototype.
class NearestNeighborClassifier {
 public:
  /// `labels[i]` is the class of the searcher's i-th prototype. The searcher
  /// and labels are borrowed; the caller keeps them alive.
  NearestNeighborClassifier(const NearestNeighborSearcher& searcher,
                            const std::vector<int>& labels);

  /// Label of the nearest prototype.
  int Classify(std::string_view query) const;

  /// Fraction (in %) of test samples whose predicted label differs from the
  /// true one — the error rate of Table 2.
  double ErrorRatePercent(const std::vector<std::string>& queries,
                          const std::vector<int>& true_labels) const;

 private:
  const NearestNeighborSearcher* searcher_;
  const std::vector<int>* labels_;
};

/// Majority-vote k-NN (extension beyond the paper's 1-NN, exhaustive
/// backend). Ties break toward the closer neighbour's label.
int KnnClassify(const ExhaustiveSearch& searcher,
                const std::vector<int>& labels, std::string_view query,
                std::size_t k);

}  // namespace cned

#endif  // CNED_SEARCH_KNN_CLASSIFIER_H_
