#include "search/batch_engine.h"

#include <stdexcept>

#include "common/parallel.h"

namespace cned {
namespace {

/// Runs `per_query(i, stats_i)` for every query index under ParallelFor and
/// merges the per-query counters in index order. A dense per-query stats
/// array (16 bytes each) keeps workers contention-free and the merge
/// deterministic.
template <typename Body>
void RunBatch(std::size_t n, std::size_t threads, QueryStats* stats,
              const Body& per_query) {
  if (stats == nullptr) {
    ParallelFor(n, [&](std::size_t i) { per_query(i, nullptr); }, threads);
    return;
  }
  std::vector<QueryStats> per(n);
  ParallelFor(n, [&](std::size_t i) { per_query(i, &per[i]); }, threads);
  for (const QueryStats& s : per) *stats += s;
}

}  // namespace

BatchQueryEngine::BatchQueryEngine(const NearestNeighborSearcher& searcher)
    : BatchQueryEngine(searcher, Options()) {}

BatchQueryEngine::BatchQueryEngine(const NearestNeighborSearcher& searcher,
                                   Options options)
    : searcher_(&searcher), options_(options) {}

std::vector<NeighborResult> BatchQueryEngine::Nearest(
    PrototypeStoreRef queries, QueryStats* stats) const {
  const PrototypeStore& q = queries.get();
  std::vector<NeighborResult> results(q.size());
  RunBatch(q.size(), options_.threads, stats,
           [&](std::size_t i, QueryStats* s) {
             results[i] = searcher_->Nearest(q[i], s);
           });
  return results;
}

std::vector<std::vector<NeighborResult>> BatchQueryEngine::KNearest(
    PrototypeStoreRef queries, std::size_t k, QueryStats* stats) const {
  const PrototypeStore& q = queries.get();
  std::vector<std::vector<NeighborResult>> results(q.size());
  if (!q.empty()) {
    // Probe k-NN support on the calling thread: backends without KNearest
    // throw std::logic_error here. Inside a ParallelFor worker the same
    // throw would std::terminate the process (raw std::thread semantics).
    // k = 0 is a no-op on every supporting backend (returns {} before any
    // distance evaluation), so the probe costs nothing and touches no
    // stats.
    (void)searcher_->KNearest(q[0], 0, nullptr);
  }
  RunBatch(q.size(), options_.threads, stats,
           [&](std::size_t i, QueryStats* s) {
             results[i] = searcher_->KNearest(q[i], k, s);
           });
  return results;
}

std::vector<int> BatchQueryEngine::Classify(PrototypeStoreRef queries,
                                            const std::vector<int>& labels,
                                            QueryStats* stats) const {
  if (labels.size() != searcher_->size()) {
    throw std::invalid_argument(
        "BatchQueryEngine::Classify: labels/prototypes size mismatch");
  }
  const PrototypeStore& q = queries.get();
  std::vector<int> out(q.size());
  RunBatch(q.size(), options_.threads, stats,
           [&](std::size_t i, QueryStats* s) {
             out[i] = labels[searcher_->Nearest(q[i], s).index];
           });
  return out;
}

}  // namespace cned
