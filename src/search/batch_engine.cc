#include "search/batch_engine.h"

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "common/parallel.h"
#include "search/pivot_stage.h"
#include "search/sharded_searcher.h"

namespace cned {
namespace {

/// Runs `per_query(i, stats_i)` for every query index under ParallelFor and
/// merges the per-query counters in index order. A dense per-query stats
/// array keeps workers contention-free and the merge deterministic.
template <typename Body>
void RunBatch(std::size_t n, std::size_t threads, QueryStats* stats,
              const Body& per_query) {
  if (stats == nullptr) {
    ParallelFor(n, [&](std::size_t i) { per_query(i, nullptr); }, threads);
    return;
  }
  std::vector<QueryStats> per(n);
  ParallelFor(n, [&](std::size_t i) { per_query(i, &per[i]); }, threads);
  for (const QueryStats& s : per) *stats += s;
}

}  // namespace

BatchQueryEngine::BatchQueryEngine(const NearestNeighborSearcher& searcher)
    : BatchQueryEngine(searcher, Options()) {}

BatchQueryEngine::BatchQueryEngine(const NearestNeighborSearcher& searcher,
                                   Options options)
    : searcher_(&searcher), options_(options) {}

std::vector<double> BatchQueryEngine::PivotStagePass(
    const PivotStageSearcher& ps, const PrototypeStore& queries,
    std::vector<std::size_t>* row_of, QueryStats* stats) const {
  const std::size_t q_count = queries.size();
  const std::size_t p_count = ps.pivot_count();

  // Duplicate query strings share one row: popular queries are the normal
  // case for a serving batch, and the pivot stage is the part of the work
  // that is literally identical across them.
  row_of->resize(q_count);
  std::unordered_map<std::string_view, std::size_t> first;
  first.reserve(q_count);
  std::vector<std::size_t> unique;
  unique.reserve(q_count);
  for (std::size_t i = 0; i < q_count; ++i) {
    const auto [it, inserted] = first.emplace(queries[i], unique.size());
    if (inserted) unique.push_back(i);
    (*row_of)[i] = it->second;
  }
  const std::size_t u_count = unique.size();

  // Blocked pass: within each block of queries the pivots run in the outer
  // loop, so one pivot string is streamed against the whole block while it
  // is hot in cache. Blocks are independent ParallelFor tasks.
  std::vector<double> rows(u_count * p_count);
  const std::size_t block = options_.pivot_block > 0 ? options_.pivot_block : 1;
  const std::size_t n_blocks = (u_count + block - 1) / block;
  const StringDistance& distance = ps.pivot_distance();
  ParallelFor(
      n_blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(lo + block, u_count);
        for (std::size_t p = 0; p < p_count; ++p) {
          const std::string_view pivot = ps.PivotString(p);
          for (std::size_t u = lo; u < hi; ++u) {
            rows[u * p_count + p] = distance.Distance(queries[unique[u]], pivot);
          }
        }
      },
      options_.threads);

  if (stats != nullptr) {
    const std::uint64_t evals =
        static_cast<std::uint64_t>(u_count) * p_count;
    stats->distance_computations += evals;
    stats->pivot_computations += evals;
  }
  return rows;
}

std::vector<NeighborResult> BatchQueryEngine::Nearest(
    PrototypeStoreRef queries, QueryStats* stats) const {
  const PrototypeStore& q = queries.get();
  std::vector<NeighborResult> results(q.size());
  const auto* ps = options_.pivot_stage
                       ? dynamic_cast<const PivotStageSearcher*>(searcher_)
                       : nullptr;
  if (ps != nullptr && ps->pivot_count() > 0 && !q.empty()) {
    std::vector<std::size_t> row_of;
    const std::vector<double> rows = PivotStagePass(*ps, q, &row_of, stats);
    const std::size_t p_count = ps->pivot_count();
    RunBatch(q.size(), options_.threads, stats,
             [&](std::size_t i, QueryStats* s) {
               results[i] =
                   ps->NearestWithPivotRow(q[i], &rows[row_of[i] * p_count], s);
             });
    return results;
  }
  RunBatch(q.size(), options_.threads, stats,
           [&](std::size_t i, QueryStats* s) {
             results[i] = searcher_->Nearest(q[i], s);
           });
  return results;
}

std::vector<NeighborResult> BatchQueryEngine::Nearest(
    PrototypeStoreRef queries, QueryStats* stats,
    std::vector<QueryStats>* shard_stats) const {
  if (shard_stats == nullptr) return Nearest(queries, stats);
  const auto* sharded = dynamic_cast<const ShardStatsSearcher*>(searcher_);
  if (sharded == nullptr) {
    throw std::invalid_argument(
        "BatchQueryEngine::Nearest: per-shard stats need a sharded searcher");
  }
  const PrototypeStore& q = queries.get();
  const std::size_t shards = sharded->shard_count();
  std::vector<NeighborResult> results(q.size());
  // Dense query x shard counters, merged in index order afterwards — the
  // same determinism scheme as the per-query stats.
  std::vector<QueryStats> per_shard(q.size() * shards);
  const auto* ps = options_.pivot_stage
                       ? dynamic_cast<const PivotStageSearcher*>(searcher_)
                       : nullptr;
  if (ps != nullptr && ps->pivot_count() > 0 && !q.empty()) {
    std::vector<std::size_t> row_of;
    const std::vector<double> rows = PivotStagePass(*ps, q, &row_of, stats);
    const std::size_t p_count = ps->pivot_count();
    RunBatch(q.size(), options_.threads, stats,
             [&](std::size_t i, QueryStats* s) {
               results[i] = sharded->NearestWithPivotRowAndShardStats(
                   q[i], &rows[row_of[i] * p_count], s,
                   &per_shard[i * shards]);
             });
  } else {
    RunBatch(q.size(), options_.threads, stats,
             [&](std::size_t i, QueryStats* s) {
               results[i] = sharded->NearestWithShardStats(
                   q[i], s, &per_shard[i * shards]);
             });
  }
  shard_stats->assign(shards, QueryStats{});
  for (std::size_t i = 0; i < q.size(); ++i) {
    for (std::size_t sh = 0; sh < shards; ++sh) {
      (*shard_stats)[sh] += per_shard[i * shards + sh];
    }
  }
  return results;
}

std::vector<std::vector<NeighborResult>> BatchQueryEngine::KNearest(
    PrototypeStoreRef queries, std::size_t k, QueryStats* stats) const {
  const PrototypeStore& q = queries.get();
  std::vector<std::vector<NeighborResult>> results(q.size());
  const auto* ps = options_.pivot_stage
                       ? dynamic_cast<const PivotStageSearcher*>(searcher_)
                       : nullptr;
  if (ps != nullptr && ps->pivot_count() > 0 && !q.empty()) {
    std::vector<std::size_t> row_of;
    const std::vector<double> rows = PivotStagePass(*ps, q, &row_of, stats);
    const std::size_t p_count = ps->pivot_count();
    RunBatch(q.size(), options_.threads, stats,
             [&](std::size_t i, QueryStats* s) {
               results[i] = ps->KNearestWithPivotRow(
                   q[i], k, &rows[row_of[i] * p_count], s);
             });
    return results;
  }
  if (!q.empty()) {
    // Probe k-NN support on the calling thread: backends without KNearest
    // throw std::logic_error here. Inside a ParallelFor worker the same
    // throw would std::terminate the process (raw std::thread semantics).
    // k = 0 is a no-op on every supporting backend (returns {} before any
    // distance evaluation), so the probe costs nothing and touches no
    // stats.
    (void)searcher_->KNearest(q[0], 0, nullptr);
  }
  RunBatch(q.size(), options_.threads, stats,
           [&](std::size_t i, QueryStats* s) {
             results[i] = searcher_->KNearest(q[i], k, s);
           });
  return results;
}

std::vector<int> BatchQueryEngine::Classify(PrototypeStoreRef queries,
                                            const std::vector<int>& labels,
                                            QueryStats* stats) const {
  if (labels.size() != searcher_->size()) {
    throw std::invalid_argument(
        "BatchQueryEngine::Classify: labels/prototypes size mismatch");
  }
  const std::vector<NeighborResult> nearest = Nearest(queries, stats);
  std::vector<int> out(nearest.size());
  for (std::size_t i = 0; i < nearest.size(); ++i) {
    out[i] = labels[nearest[i].index];
  }
  return out;
}

}  // namespace cned
