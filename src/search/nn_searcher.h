#ifndef CNED_SEARCH_NN_SEARCHER_H_
#define CNED_SEARCH_NN_SEARCHER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace cned {

/// Result of a nearest-neighbour query.
struct NeighborResult {
  std::size_t index = 0;  ///< index into the prototype set
  double distance = 0.0;  ///< distance to the query
};

/// The deterministic result order every searcher and merge in the library
/// shares: ascending distance, ties broken by the lower prototype index.
inline bool NeighborLess(const NeighborResult& a, const NeighborResult& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

/// Inserts `r` into `best` — the current top-k, kept sorted by
/// `NeighborLess` — when it qualifies, evicting the k-th entry if full.
/// The default gate admits `r` only when it *strictly improves* on the
/// k-th distance (the adaptive sweeps' semantics: a distance tie never
/// displaces an incumbent — the same ">= eliminates" convention the
/// bounded kernels rely on). `admit_ties` switches to the full
/// (distance, index) order, used when seeding incumbents from already-paid
/// pivot evaluations, where an equal-distance lower-index prototype wins.
///
/// Every index family shares this one helper so the bit-identity
/// contracts (flat vs sharded, sequential vs batched) rest on a single
/// tie-break implementation.
inline void InsertNeighborTopK(std::vector<NeighborResult>& best,
                               std::size_t k, const NeighborResult& r,
                               bool admit_ties = false) {
  if (best.size() >= k) {
    const bool qualifies = admit_ties ? NeighborLess(r, best.back())
                                      : r.distance < best.back().distance;
    if (!qualifies) return;
  }
  best.insert(std::lower_bound(best.begin(), best.end(), r, NeighborLess), r);
  if (best.size() > k) best.pop_back();
}

/// Per-query cost counters, shared by every index family (paper §4.3
/// reports distance computations as the primary cost measure).
struct QueryStats {
  std::uint64_t distance_computations = 0;
  /// Distance evaluations whose result reached the bound the search passed
  /// via `DistanceBounded` (its incumbent best / radius). Kernels with a
  /// real bounded implementation cut these short mid-DP; for a kernel using
  /// the exact fallback the count still reflects how many evaluations a
  /// bounded kernel *could* abandon on this workload.
  std::uint64_t bounded_abandons = 0;
  /// Subset of `distance_computations` spent on query-pivot evaluations
  /// (LAESA family only; other indexes leave it 0). The batched pivot stage
  /// of the query engine exists to shrink exactly this number, so the shard
  /// benches report it separately.
  std::uint64_t pivot_computations = 0;
  /// Shards the distributed serving tier dropped from this query (crashed,
  /// timed out, or returned a malformed reply — see src/serve/router.h).
  /// Always 0 for in-process searchers and for healthy distributed queries,
  /// so it rides along in the flat-vs-distributed bit-identity comparisons.
  std::uint64_t shards_degraded = 0;

  /// Merge counters from another query (batch aggregation).
  QueryStats& operator+=(const QueryStats& other) {
    distance_computations += other.distance_computations;
    bounded_abandons += other.bounded_abandons;
    pivot_computations += other.pivot_computations;
    shards_degraded += other.shards_degraded;
    return *this;
  }
};

inline QueryStats operator+(QueryStats a, const QueryStats& b) {
  a += b;
  return a;
}

inline bool operator==(const QueryStats& a, const QueryStats& b) {
  return a.distance_computations == b.distance_computations &&
         a.bounded_abandons == b.bounded_abandons &&
         a.pivot_computations == b.pivot_computations &&
         a.shards_degraded == b.shards_degraded;
}

/// Common interface over nearest-neighbour searchers (exhaustive, LAESA,
/// AESA, VP-tree, BK-tree) so classifiers, the batch engine and experiment
/// harnesses are generic in the search algorithm, as in the paper's Table 2
/// (LAESA vs exhaustive columns).
class NearestNeighborSearcher {
 public:
  virtual ~NearestNeighborSearcher() = default;

  /// The nearest prototype to `query`; accumulates cost counters into
  /// `stats` when non-null. Implementations must be safe to call
  /// concurrently from multiple threads (the batch engine relies on it).
  virtual NeighborResult Nearest(std::string_view query,
                                 QueryStats* stats = nullptr) const = 0;

  /// The k nearest prototypes, closest first. Families without a k-NN
  /// search (AESA, BK-tree) keep this default, which throws
  /// std::logic_error.
  virtual std::vector<NeighborResult> KNearest(std::string_view query,
                                               std::size_t k,
                                               QueryStats* stats = nullptr)
      const {
    (void)query;
    (void)k;
    (void)stats;
    throw std::logic_error("KNearest: not supported by this index family");
  }

  /// Number of prototypes indexed.
  virtual std::size_t size() const = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_NN_SEARCHER_H_
