#ifndef CNED_SEARCH_NN_SEARCHER_H_
#define CNED_SEARCH_NN_SEARCHER_H_

#include <cstddef>
#include <string_view>

namespace cned {

/// Result of a nearest-neighbour query.
struct NeighborResult {
  std::size_t index = 0;  ///< index into the prototype set
  double distance = 0.0;  ///< distance to the query
};

/// Common interface over nearest-neighbour searchers (exhaustive, LAESA,
/// AESA) so classifiers and experiment harnesses are generic in the search
/// algorithm, as in the paper's Table 2 (LAESA vs exhaustive columns).
class NearestNeighborSearcher {
 public:
  virtual ~NearestNeighborSearcher() = default;

  /// The nearest prototype to `query`.
  virtual NeighborResult Nearest(std::string_view query) const = 0;

  /// Number of prototypes indexed.
  virtual std::size_t size() const = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_NN_SEARCHER_H_
