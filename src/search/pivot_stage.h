#ifndef CNED_SEARCH_PIVOT_STAGE_H_
#define CNED_SEARCH_PIVOT_STAGE_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// Interface of searchers whose query work splits into a pivot stage (exact
/// query-pivot distance evaluations, independent of elimination) and an
/// elimination sweep consuming those values — the LAESA family.
///
/// The split is what lets `BatchQueryEngine` run its two-stage pipeline:
/// every query of a batch shares the same pivot set, so the engine evaluates
/// the query x pivot distance block once, in pivot-major blocked order
/// (each pivot string streamed once per query block, duplicate query
/// strings evaluated once), and hands each query its precomputed row.
///
/// Contract: `NearestWithPivotRow(q, row, stats)` with `row` produced by
/// `ComputePivotRow(q, row, ...)` returns exactly the same neighbours as an
/// engine-driven two-stage query, and `row[p]` must hold the exact distance
/// from the query to pivot `p`. The row-consuming sweep applies *all* pivot
/// rows up front (the pivot distances are already paid for), which makes
/// its trajectory — and therefore its `QueryStats` — intentionally
/// different from the lazy `Nearest` path that evaluates pivots adaptively
/// and may skip eliminated ones: the batched mode trades unconditional
/// pivot rows for tighter bounds, fewer non-pivot evaluations and a
/// cache-friendly evaluation order.
class PivotStageSearcher {
 public:
  virtual ~PivotStageSearcher() = default;

  /// Number of pivots (row length for the stage).
  virtual std::size_t pivot_count() const = 0;

  /// The p-th pivot string (a view into the prototype store).
  virtual std::string_view PivotString(std::size_t p) const = 0;

  /// The distance the pivot stage must evaluate with.
  virtual const StringDistance& pivot_distance() const = 0;

  /// Fills `row[p] = d(query, pivot_p)` for all pivots (exact evaluations)
  /// and counts them into `stats` when non-null — the sequential reference
  /// for the engine's blocked pass.
  virtual void ComputePivotRow(std::string_view query, double* row,
                               QueryStats* stats = nullptr) const = 0;

  /// Nearest neighbour given the precomputed pivot row. Counts only the
  /// sweep's own (non-pivot) evaluations into `stats` — the row was counted
  /// by whoever computed it.
  virtual NeighborResult NearestWithPivotRow(std::string_view query,
                                             const double* row,
                                             QueryStats* stats = nullptr)
      const = 0;

  /// k nearest neighbours given the precomputed pivot row, closest first.
  virtual std::vector<NeighborResult> KNearestWithPivotRow(
      std::string_view query, std::size_t k, const double* row,
      QueryStats* stats = nullptr) const = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_PIVOT_STAGE_H_
