#ifndef CNED_SEARCH_BK_TREE_H_
#define CNED_SEARCH_BK_TREE_H_

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "datasets/prototype_store.h"
#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// Burkhard-Keller tree over an *integer-valued* string metric (d_E).
///
/// The classic discrete-metric index: every edge from a node is labelled by
/// the exact distance between parent and child, and a query with current
/// best radius r only needs to descend edges labelled within [d-r, d+r]
/// (triangle inequality). Included as a second "similar case" index
/// alongside the VP-tree; only meaningful for the unit-cost edit distance,
/// which is why the normalised distances need continuous-metric structures
/// like LAESA in the first place.
class BkTree final : public NearestNeighborSearcher {
 public:
  /// Shared per-query cost counters (see `cned::QueryStats`).
  using QueryStats = ::cned::QueryStats;

  /// Builds by successive insertion. `prototypes` is either a borrowed
  /// `PrototypeStore` (caller keeps it alive) or a
  /// `std::vector<std::string>` packed once into an owned store. `distance`
  /// must return non-negative integers (e.g. "dE"); throws
  /// std::invalid_argument otherwise (detected on first violation during
  /// construction).
  BkTree(PrototypeStoreRef prototypes, StringDistancePtr distance);

  NeighborResult Nearest(std::string_view query,
                         QueryStats* stats = nullptr) const override;

  /// The k nearest prototypes, closest first: the descent radius is the
  /// current k-th best distance instead of the single best, so the batch
  /// engine's k-NN entry point works on this family too.
  std::vector<NeighborResult> KNearest(
      std::string_view query, std::size_t k,
      QueryStats* stats = nullptr) const override;

  std::size_t size() const override { return prototypes_->size(); }

  /// The prototype set the index searches over.
  const PrototypeStore& store() const { return prototypes_.get(); }

  /// All prototypes within distance `radius` of the query (range query, the
  /// classic BK-tree use case, e.g. "suggestions within 2 edits").
  std::vector<NeighborResult> RangeSearch(std::string_view query,
                                          std::size_t radius,
                                          QueryStats* stats = nullptr) const;

 private:
  struct Node {
    std::size_t point = 0;
    std::map<std::size_t, std::int32_t> children;  // edge distance -> node
  };

  std::size_t IntDistance(std::string_view a, std::string_view b) const;

  /// Bounded variant: exact when the distance is < `cap`, otherwise returns
  /// `cap` (abandoned; the caller must have chosen `cap` so that any
  /// distance >= cap is unusable). Validates integrality only on exact
  /// values — abandoned sentinels never feed edge arithmetic.
  std::size_t BoundedIntDistance(std::string_view a, std::string_view b,
                                 double cap, bool* abandoned) const;

  PrototypeStoreRef prototypes_;
  StringDistancePtr distance_;
  std::vector<Node> nodes_;
};

}  // namespace cned

#endif  // CNED_SEARCH_BK_TREE_H_
