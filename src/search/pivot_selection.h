#ifndef CNED_SEARCH_PIVOT_SELECTION_H_
#define CNED_SEARCH_PIVOT_SELECTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/prototype_store.h"
#include "datasets/sharded_prototype_store.h"
#include "distances/distance.h"

namespace cned {

/// Greedy maximum-minimum-distance pivot (base prototype) selection, the
/// strategy of the LAESA paper (Micó, Oncina & Vidal 1994): start from
/// `first` and repeatedly add the prototype whose minimum distance to the
/// already-chosen pivots is largest. Returns `count` indices.
///
/// Costs count * |prototypes| distance evaluations.
std::vector<std::size_t> SelectPivotsMaxMin(const PrototypeStore& prototypes,
                                            const StringDistance& distance,
                                            std::size_t count,
                                            std::size_t first = 0);

/// Sharded overload over the global index space — identical selection to a
/// flat store of the same strings (the sharded index's bit-identity with
/// the flat one starts here), without materialising a flat copy.
std::vector<std::size_t> SelectPivotsMaxMin(
    const ShardedPrototypeStore& prototypes, const StringDistance& distance,
    std::size_t count, std::size_t first = 0);

/// Convenience overload: packs `prototypes` into a temporary store.
std::vector<std::size_t> SelectPivotsMaxMin(
    const std::vector<std::string>& prototypes, const StringDistance& distance,
    std::size_t count, std::size_t first = 0);

/// Uniform random pivots (the ablation baseline).
std::vector<std::size_t> SelectPivotsRandom(std::size_t n_prototypes,
                                            std::size_t count, Rng& rng);

}  // namespace cned

#endif  // CNED_SEARCH_PIVOT_SELECTION_H_
