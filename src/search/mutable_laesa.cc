#include "search/mutable_laesa.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

#include "search/sweep_kernel.h"

namespace cned {

namespace {

/// Binary search over an ascending stable-id array; slots == positions.
bool FindSlot(const std::vector<std::uint64_t>& ids, std::uint64_t id,
              std::size_t* slot) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return false;
  *slot = static_cast<std::size_t>(it - ids.begin());
  return true;
}

std::shared_ptr<std::vector<std::uint64_t>> CopyOrMakeTombs(
    const std::shared_ptr<const std::vector<std::uint64_t>>& old,
    std::size_t count) {
  auto tombs = old ? std::make_shared<std::vector<std::uint64_t>>(*old)
                   : std::make_shared<std::vector<std::uint64_t>>();
  tombs->resize(TombstoneWords(count), 0);
  return tombs;
}

void ValidateOptions(const MutableLaesa::Options& options) {
  if (options.num_pivots == 0 || options.delta_pivots == 0) {
    throw std::invalid_argument("MutableLaesa: need at least one pivot");
  }
}

}  // namespace

MutableLaesa::MutableLaesa(StringDistancePtr distance, Options options)
    : distance_(std::move(distance)), options_(options) {
  ValidateOptions(options_);
  state_ = std::make_shared<State>();
}

MutableLaesa::MutableLaesa(const std::vector<std::string>& base,
                           StringDistancePtr distance, Options options)
    : distance_(std::move(distance)), options_(options) {
  ValidateOptions(options_);
  auto st = std::make_shared<State>();
  if (!base.empty()) {
    auto store = std::make_shared<const PrototypeStore>(base);
    auto ids = std::make_shared<std::vector<std::uint64_t>>(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) (*ids)[i] = i;
    st->base.store = store;
    st->base.ids = std::move(ids);
    st->base_index = std::make_shared<const Laesa>(
        PrototypeStoreRef(*store), distance_, options_.num_pivots,
        /*first_pivot=*/0, options_.table_precision);
  }
  st->next_id = base.size();
  state_ = std::move(st);
}

MutableLaesa::MutableLaesa(SnapshotTag, const std::string& dir,
                           StringDistancePtr distance, Options options)
    : distance_(std::move(distance)), options_(options) {
  ValidateOptions(options_);
  auto store = std::make_shared<const PrototypeStore>(
      PrototypeStore::Map(SnapshotStorePath(dir)));
  auto ids = std::make_shared<std::vector<std::uint64_t>>(store->size());
  for (std::size_t i = 0; i < store->size(); ++i) (*ids)[i] = i;
  auto st = std::make_shared<State>();
  st->base.store = store;
  st->base.ids = std::move(ids);
  st->base_index = std::make_shared<const Laesa>(Laesa::Map(
      SnapshotIndexPath(dir), PrototypeStoreRef(*store), distance_));
  st->next_id = store->size();
  state_ = std::move(st);
}

MutableLaesa MutableLaesa::FromSnapshot(const std::string& dir,
                                        StringDistancePtr distance,
                                        Options options) {
  return MutableLaesa(SnapshotTag{}, dir, std::move(distance), options);
}

MutableLaesa::~MutableLaesa() { WaitMerge(); }

std::string MutableLaesa::SnapshotStorePath(const std::string& dir) {
  return dir + "/mutable.store.bin";
}

std::string MutableLaesa::SnapshotIndexPath(const std::string& dir) {
  return dir + "/mutable.index.bin";
}

std::shared_ptr<const Laesa> MutableLaesa::BuildDeltaIndex(
    const Segment& delta) const {
  // The index is a pure function of the delta's *contents* (tombstones are
  // query-time masks), so two instances replaying the same op sequence
  // build bit-identical indexes — the stats-determinism contract.
  if (delta.count() < options_.delta_index_threshold || delta.count() == 0) {
    return nullptr;
  }
  const std::size_t np = std::min(options_.delta_pivots, delta.count());
  std::vector<std::size_t> pivots(np);
  for (std::size_t p = 0; p < np; ++p) pivots[p] = p;
  return std::make_shared<const Laesa>(PrototypeStoreRef(*delta.store),
                                       distance_, std::move(pivots),
                                       options_.table_precision);
}

std::uint64_t MutableLaesa::Insert(std::string_view s) {
  std::lock_guard<std::mutex> lk(write_mu_);
  const auto cur = Pin();
  auto next = std::make_shared<State>(*cur);
  // Copy-on-write append: readers pinned on the old state keep its arena.
  auto store = cur->delta.store
                   ? std::make_shared<PrototypeStore>(*cur->delta.store)
                   : std::make_shared<PrototypeStore>();
  store->Add(s);
  auto ids = cur->delta.ids
                 ? std::make_shared<std::vector<std::uint64_t>>(
                       *cur->delta.ids)
                 : std::make_shared<std::vector<std::uint64_t>>();
  const std::uint64_t id = cur->next_id;
  ids->push_back(id);
  next->delta.store = std::move(store);
  next->delta.ids = std::move(ids);
  if (cur->delta.tombs) {
    next->delta.tombs =
        CopyOrMakeTombs(cur->delta.tombs, next->delta.count());
  }
  next->delta_index = BuildDeltaIndex(next->delta);
  next->next_id = id + 1;
  next->epoch = cur->epoch + 1;
  Publish(std::move(next));
  return id;
}

bool MutableLaesa::Remove(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(write_mu_);
  const auto cur = Pin();
  auto next = std::make_shared<State>(*cur);
  std::size_t slot = 0;
  if (cur->base.ids && FindSlot(*cur->base.ids, id, &slot)) {
    if (cur->base.tombs && TestTombstone(cur->base.tombs->data(), slot)) {
      return false;
    }
    auto tombs = CopyOrMakeTombs(cur->base.tombs, cur->base.count());
    SetTombstone(tombs->data(), slot);
    next->base.tombs = std::move(tombs);
    next->base.dead = cur->base.dead + 1;
  } else if (cur->delta.ids && FindSlot(*cur->delta.ids, id, &slot)) {
    if (cur->delta.tombs && TestTombstone(cur->delta.tombs->data(), slot)) {
      return false;
    }
    auto tombs = CopyOrMakeTombs(cur->delta.tombs, cur->delta.count());
    SetTombstone(tombs->data(), slot);
    next->delta.tombs = std::move(tombs);
    next->delta.dead = cur->delta.dead + 1;
  } else {
    return false;
  }
  next->epoch = cur->epoch + 1;
  Publish(std::move(next));
  return true;
}

bool MutableLaesa::Contains(std::uint64_t id) const {
  const auto st = Pin();
  std::size_t slot = 0;
  if (st->base.ids && FindSlot(*st->base.ids, id, &slot)) {
    return !(st->base.tombs && TestTombstone(st->base.tombs->data(), slot));
  }
  if (st->delta.ids && FindSlot(*st->delta.ids, id, &slot)) {
    return !(st->delta.tombs &&
             TestTombstone(st->delta.tombs->data(), slot));
  }
  return false;
}

std::string MutableLaesa::GetString(std::uint64_t id) const {
  const auto st = Pin();
  std::size_t slot = 0;
  if (st->base.ids && FindSlot(*st->base.ids, id, &slot)) {
    if (!(st->base.tombs && TestTombstone(st->base.tombs->data(), slot))) {
      return std::string(st->base.store->view(slot));
    }
  } else if (st->delta.ids && FindSlot(*st->delta.ids, id, &slot)) {
    if (!(st->delta.tombs &&
          TestTombstone(st->delta.tombs->data(), slot))) {
      return std::string(st->delta.store->view(slot));
    }
  }
  throw std::out_of_range("MutableLaesa::GetString: unknown or removed id");
}

std::size_t MutableLaesa::size() const {
  const auto st = Pin();
  return st->base.live() + st->delta.live();
}

std::uint64_t MutableLaesa::next_id() const { return Pin()->next_id; }

std::uint64_t MutableLaesa::epoch() const { return Pin()->epoch; }

std::size_t MutableLaesa::delta_size() const { return Pin()->delta.live(); }

std::size_t MutableLaesa::tombstone_count() const {
  const auto st = Pin();
  return st->base.dead + st->delta.dead;
}

std::vector<NeighborResult> MutableLaesa::KNearest(std::string_view query,
                                                   std::size_t k,
                                                   QueryStats* stats) const {
  const auto st = Pin();  // the whole query runs against this epoch
  std::vector<NeighborResult> best;
  if (k == 0) return best;
  QueryStats qs;

  // Base segment: the masked LAESA sweep, slot results mapped to stable
  // ids. Slots are in ascending-id order, so the sweep's (distance, slot)
  // tie-break IS the (distance, id) tie-break.
  if (st->base_index && st->base.live() > 0) {
    const auto r =
        st->base_index->KNearestMasked(query, k, st->base.tomb_bits(), &qs);
    const auto& ids = *st->base.ids;
    best.reserve(r.size());
    for (const auto& nr : r) {
      best.push_back({static_cast<std::size_t>(ids[nr.index]), nr.distance});
    }
  }

  // Delta segment, merged with the strict-improvement gate: every delta id
  // is larger than every base id, so a delta candidate that only ties the
  // k-th incumbent must lose — exactly what the gate enforces.
  if (st->delta.live() > 0) {
    const auto& ids = *st->delta.ids;
    if (st->delta_index) {
      const auto r = st->delta_index->KNearestMasked(
          query, k, st->delta.tomb_bits(), &qs);
      for (const auto& nr : r) {
        InsertNeighborTopK(
            best, k, {static_cast<std::size_t>(ids[nr.index]), nr.distance});
      }
    } else {
      // Exhaustive ascending-slot scan, each evaluation bounded by the
      // merged incumbent (same ">= abandons" semantics as the sweeps).
      const PrototypeStore& store = *st->delta.store;
      const std::uint64_t* tombs = st->delta.tomb_bits();
      const double inf = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < store.size(); ++j) {
        if (tombs != nullptr && TestTombstone(tombs, j)) continue;
        const double cap = best.size() < k ? inf : best.back().distance;
        const double d = distance_->DistanceBounded(query, store.view(j), cap);
        ++qs.distance_computations;
        if (d >= cap) {
          ++qs.bounded_abandons;
        } else {
          InsertNeighborTopK(best, k, {static_cast<std::size_t>(ids[j]), d});
        }
      }
    }
  }

  if (stats != nullptr) *stats += qs;
  return best;
}

NeighborResult MutableLaesa::Nearest(std::string_view query,
                                     QueryStats* stats) const {
  auto best = KNearest(query, 1, stats);
  if (best.empty()) {
    throw std::out_of_range("MutableLaesa::Nearest: empty index");
  }
  return best.front();
}

int MutableLaesa::Classify(std::string_view query,
                           const std::vector<int>& labels_by_id,
                           QueryStats* stats) const {
  const NeighborResult nn = Nearest(query, stats);
  if (nn.index >= labels_by_id.size()) {
    throw std::invalid_argument(
        "MutableLaesa::Classify: label table does not cover stable id");
  }
  return labels_by_id[nn.index];
}

bool MutableLaesa::StartMerge(const std::string& snapshot_dir) {
  std::lock_guard<std::mutex> lk(write_mu_);
  if (merging_ || merge_thread_.joinable()) return false;
  const auto pinned = Pin();
  if (pinned->delta.count() == 0 && pinned->base.dead == 0) return false;
  merging_ = true;
  merge_thread_ = std::thread(&MutableLaesa::MergeBody, this, pinned,
                              snapshot_dir);
  return true;
}

void MutableLaesa::WaitMerge() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lk(write_mu_);
    t.swap(merge_thread_);
  }
  if (t.joinable()) t.join();
}

bool MutableLaesa::MergeNow(const std::string& snapshot_dir) {
  if (!StartMerge(snapshot_dir)) return false;
  WaitMerge();
  return true;
}

std::string MutableLaesa::merge_error() const {
  std::lock_guard<std::mutex> lk(write_mu_);
  return merge_error_;
}

void MutableLaesa::MergeBody(std::shared_ptr<const State> pinned,
                             std::string dir) {
  // Everything below until the final publish runs off-lock: queries keep
  // serving (and mutators keep publishing) against the live state while
  // the pinned epoch is rewritten.
  const std::size_t covered = pinned->delta.count();
  std::string error;
  std::shared_ptr<const PrototypeStore> merged_store;
  std::shared_ptr<std::vector<std::uint64_t>> merged_ids;
  std::shared_ptr<const Laesa> merged_index;
  try {
    auto store = std::make_shared<PrototypeStore>();
    merged_ids = std::make_shared<std::vector<std::uint64_t>>();
    const auto append_live = [&](const Segment& seg) {
      for (std::size_t j = 0; j < seg.count(); ++j) {
        if (seg.tombs && TestTombstone(seg.tombs->data(), j)) continue;
        store->Add(seg.store->view(j));
        merged_ids->push_back((*seg.ids)[j]);
      }
    };
    // Base first, then the covered delta prefix: both are in ascending-id
    // order and all base ids precede all delta ids, so the merged slot
    // order is ascending-id by construction.
    append_live(pinned->base);
    append_live(pinned->delta);
    merged_store = store;
    if (store->size() > 0) {
      if (!dir.empty()) {
        // Durable snapshot: write to *.tmp, fsync-free rename into place.
        // A crash anywhere before the renames leaves the old snapshot
        // untouched; after them the new one is complete.
        const std::string store_path = SnapshotStorePath(dir);
        const std::string index_path = SnapshotIndexPath(dir);
        store->SaveBinary(store_path + ".tmp");
        {
          const Laesa built(PrototypeStoreRef(*store), distance_,
                            options_.num_pivots, /*first_pivot=*/0,
                            options_.table_precision);
          built.Save(index_path + ".tmp");
        }
        if (std::rename((store_path + ".tmp").c_str(),
                        store_path.c_str()) != 0 ||
            std::rename((index_path + ".tmp").c_str(),
                        index_path.c_str()) != 0) {
          throw std::runtime_error(
              "MutableLaesa merge: rename into snapshot dir failed");
        }
        // Serve the new base zero-copy off the snapshot just written.
        auto mapped = std::make_shared<const PrototypeStore>(
            PrototypeStore::Map(store_path));
        merged_index = std::make_shared<const Laesa>(Laesa::Map(
            index_path, PrototypeStoreRef(*mapped), distance_));
        merged_store = mapped;
      } else {
        merged_index = std::make_shared<const Laesa>(
            PrototypeStoreRef(*merged_store), distance_, options_.num_pivots,
            /*first_pivot=*/0, options_.table_precision);
      }
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  // Reconcile against whatever the state has become and swap epochs. The
  // publish is the only synchronised step; readers pinned on the old epoch
  // keep their segments alive through their shared_ptrs.
  std::lock_guard<std::mutex> lk(write_mu_);
  if (!error.empty()) {
    merge_error_ = error;
    merging_ = false;
    return;
  }
  const auto cur = Pin();
  auto next = std::make_shared<State>();
  next->base.store = merged_store;
  next->base.ids = merged_ids;
  next->base_index = merged_index;
  // Entries removed *while* the merge ran become tombstones on the new
  // base. Merged slots align with a fresh walk over the pinned segments
  // (base slots are never restructured by mutations; the delta is
  // append-only, so slots < covered are unchanged in `cur`).
  {
    std::shared_ptr<std::vector<std::uint64_t>> tombs;
    std::size_t dead = 0;
    std::size_t m = 0;
    const auto mark_dead = [&](const Segment& was, const Segment& now) {
      for (std::size_t j = 0; j < was.count(); ++j) {
        if (was.tombs && TestTombstone(was.tombs->data(), j)) continue;
        if (now.tombs && TestTombstone(now.tombs->data(), j)) {
          if (!tombs) {
            tombs = CopyOrMakeTombs(nullptr, merged_ids->size());
          }
          SetTombstone(tombs->data(), m);
          ++dead;
        }
        ++m;
      }
    };
    mark_dead(pinned->base, cur->base);
    mark_dead(pinned->delta, cur->delta);
    next->base.tombs = std::move(tombs);
    next->base.dead = dead;
  }
  // Entries inserted while the merge ran: re-pack the delta tail.
  if (cur->delta.count() > covered) {
    auto dstore = std::make_shared<PrototypeStore>();
    auto dids = std::make_shared<std::vector<std::uint64_t>>();
    std::shared_ptr<std::vector<std::uint64_t>> dtombs;
    std::size_t ddead = 0;
    const std::size_t tail = cur->delta.count() - covered;
    for (std::size_t j = covered; j < cur->delta.count(); ++j) {
      dstore->Add(cur->delta.store->view(j));
      dids->push_back((*cur->delta.ids)[j]);
      if (cur->delta.tombs &&
          TestTombstone(cur->delta.tombs->data(), j)) {
        if (!dtombs) dtombs = CopyOrMakeTombs(nullptr, tail);
        SetTombstone(dtombs->data(), j - covered);
        ++ddead;
      }
    }
    next->delta.store = std::move(dstore);
    next->delta.ids = std::move(dids);
    next->delta.tombs = std::move(dtombs);
    next->delta.dead = ddead;
    next->delta_index = BuildDeltaIndex(next->delta);
  }
  next->next_id = cur->next_id;
  next->epoch = cur->epoch + 1;
  merge_error_.clear();
  merging_ = false;
  Publish(std::move(next));
}

}  // namespace cned
