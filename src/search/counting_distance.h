#ifndef CNED_SEARCH_COUNTING_DISTANCE_H_
#define CNED_SEARCH_COUNTING_DISTANCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "distances/distance.h"

namespace cned {

/// Decorator counting how many times the wrapped distance is evaluated.
///
/// The paper's §4.3 experiments report "average number of distance
/// computations" as the primary cost measure of LAESA; every search harness
/// threads its distance through this wrapper.
class CountingDistance final : public StringDistance {
 public:
  explicit CountingDistance(StringDistancePtr inner)
      : inner_(std::move(inner)) {}

  double Distance(std::string_view x, std::string_view y) const override {
    ++count_;
    return inner_->Distance(x, y);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    ++count_;
    return inner_->DistanceBounded(x, y, bound);
  }
  std::string name() const override { return inner_->name(); }
  bool is_metric() const override { return inner_->is_metric(); }

  /// Evaluations since construction or the last Reset().
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset() { count_.store(0, std::memory_order_relaxed); }

 private:
  StringDistancePtr inner_;
  // Atomic because index builds evaluate distances from ParallelFor workers.
  mutable std::atomic<std::uint64_t> count_{0};
};

}  // namespace cned

#endif  // CNED_SEARCH_COUNTING_DISTANCE_H_
