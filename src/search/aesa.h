#ifndef CNED_SEARCH_AESA_H_
#define CNED_SEARCH_AESA_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "datasets/prototype_store.h"
#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// AESA — Approximating and Eliminating Search Algorithm (Vidal 1986).
///
/// Stores the full N x N prototype distance matrix, so *every* computed
/// query-prototype distance tightens the lower bound of every surviving
/// candidate. Achieves the fewest distance computations of the family at
/// the price of quadratic preprocessing and memory — the trade-off LAESA
/// removes (paper §4.3 and Rico-Juan & Micó 2003). Included as the
/// strong-baseline extension for the ablation benches.
class Aesa final : public NearestNeighborSearcher {
 public:
  /// Shared per-query cost counters (see `cned::QueryStats`).
  using QueryStats = ::cned::QueryStats;

  /// Precomputes all pairwise prototype distances (N(N-1)/2 evaluations).
  /// `prototypes` is either a borrowed `PrototypeStore` (caller keeps it
  /// alive) or a `std::vector<std::string>` packed once into an owned store.
  Aesa(PrototypeStoreRef prototypes, StringDistancePtr distance);

  NeighborResult Nearest(std::string_view query,
                         QueryStats* stats = nullptr) const override;

  /// The k nearest prototypes, closest first (elimination prunes against
  /// the current k-th best; abandoned evaluations still tighten every
  /// survivor one-sidedly). k = 1 follows the identical trajectory to
  /// `Nearest`, which shares this sweep.
  std::vector<NeighborResult> KNearest(
      std::string_view query, std::size_t k,
      QueryStats* stats = nullptr) const override;

  std::size_t size() const override { return prototypes_->size(); }

  /// The prototype set the index searches over.
  const PrototypeStore& store() const { return prototypes_.get(); }

  std::uint64_t preprocessing_computations() const {
    return preprocessing_computations_;
  }

 private:
  double Dist(std::size_t i, std::size_t j) const {
    return matrix_[i * prototypes_->size() + j];
  }

  /// The unified elimination sweep behind Nearest/KNearest.
  std::vector<NeighborResult> Sweep(std::string_view query, std::size_t k,
                                    QueryStats* stats) const;

  PrototypeStoreRef prototypes_;
  StringDistancePtr distance_;
  std::vector<double> matrix_;
  std::uint64_t preprocessing_computations_ = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_AESA_H_
