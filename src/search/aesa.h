#ifndef CNED_SEARCH_AESA_H_
#define CNED_SEARCH_AESA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// AESA — Approximating and Eliminating Search Algorithm (Vidal 1986).
///
/// Stores the full N x N prototype distance matrix, so *every* computed
/// query-prototype distance tightens the lower bound of every surviving
/// candidate. Achieves the fewest distance computations of the family at
/// the price of quadratic preprocessing and memory — the trade-off LAESA
/// removes (paper §4.3 and Rico-Juan & Micó 2003). Included as the
/// strong-baseline extension for the ablation benches.
class Aesa final : public NearestNeighborSearcher {
 public:
  struct QueryStats {
    std::uint64_t distance_computations = 0;
    /// Evaluations whose result reached the bound passed via
    /// `DistanceBounded` (cut short mid-DP by kernels with a real bounded
    /// implementation; counted either way).
    std::uint64_t bounded_abandons = 0;
  };

  /// Precomputes all pairwise prototype distances (N(N-1)/2 evaluations).
  Aesa(const std::vector<std::string>& prototypes, StringDistancePtr distance);

  NeighborResult Nearest(std::string_view query, QueryStats* stats) const;

  NeighborResult Nearest(std::string_view query) const override {
    return Nearest(query, nullptr);
  }
  std::size_t size() const override { return prototypes_->size(); }

  std::uint64_t preprocessing_computations() const {
    return preprocessing_computations_;
  }

 private:
  double Dist(std::size_t i, std::size_t j) const {
    return matrix_[i * prototypes_->size() + j];
  }

  const std::vector<std::string>* prototypes_;
  StringDistancePtr distance_;
  std::vector<double> matrix_;
  std::uint64_t preprocessing_computations_ = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_AESA_H_
