#ifndef CNED_SEARCH_TABLE_QUANT_H_
#define CNED_SEARCH_TABLE_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "search/sweep_kernel.h"

namespace cned {

/// Quantized pivot tables: f32/f16/u8 lower-bound storage with admissible
/// rounding.
///
/// The O(pivots x N) table dominates both snapshot size and sweep
/// bandwidth, and the sweep only ever consumes it through one expression —
/// the lower-bound tightening g = |d - t| for a table entry t = d(pivot, s).
/// That expression survives lossy storage: store a rounded-DOWN value
/// v <= t together with a per-row gap h >= t - v, and compute
///
///   g_q = max(v - d, (d - v) - h)
///
/// instead. Both arms are lower bounds of |d - t| for every d (v <= t
/// bounds the left arm, t <= v + h the right one), so g_q <= |d - t|:
/// elimination driven by quantized rows can only prune LESS than the exact
/// table, never a true neighbour — returned neighbours and distances stay
/// exact while QueryStats (candidates eliminated per pass) loosen slightly.
///
/// Precisions:
///   f64  the exact table, unchanged on-disk v1 format, original kernels.
///   f32  entries rounded down to float, per-row gap = max rounding error.
///   f16  entries rounded down to IEEE binary16 (software conversion — no
///        F16C dependency), per-row gap likewise.
///   u8   per-row affine codes: v = offset + code * scale with offset/scale
///        chosen from the row's [min, max] range and gap ~ one scale step.
///
/// Every kernel variant decodes with the SAME floating-point operation
/// sequence (documented per entry in sweep_kernel.h), and the build-time
/// encoders verify v <= t with that exact arithmetic, so all variants stay
/// bit-identical to each other at every precision.
enum class TablePrecision : std::uint32_t {
  kF64 = 0,
  kF32 = 1,
  kF16 = 2,
  kU8 = 3,
};

/// "f64", "f32", "f16" or "u8".
const char* TablePrecisionName(TablePrecision precision);

/// Parses a precision name; returns false (leaving *out alone) on an
/// unknown name.
bool ParseTablePrecision(std::string_view name, TablePrecision* out);

/// Bytes per stored table element: 8, 4, 2 or 1.
std::size_t TablePrecisionBytes(TablePrecision precision);

/// The build-time default: the CNED_TABLE_PRECISION environment variable
/// when set to a valid name (an invalid value warns on stderr and falls
/// back), otherwise f64. Lets CI rerun the whole existing suite at u8/f16
/// without touching a single test.
TablePrecision DefaultTablePrecision();

/// Per-pivot-row decode metadata, stored alongside each quantized row (and
/// serialized as one CRC-covered section). For f32/f16 only `gap` is used;
/// scale/offset are zero. 32 bytes so a row-meta array section stays
/// trivially aligned in the binary format.
struct QuantRowMeta {
  double scale = 0.0;
  double offset = 0.0;
  double gap = 0.0;
  double reserved = 0.0;
};
static_assert(sizeof(QuantRowMeta) == 32, "QuantRowMeta is 4 doubles");

/// Exact decode of a non-negative IEEE binary16 value — the same bit trick
/// the vector kernels use: drop the half's bits into a float 2^112 too
/// small, then rescale by that exact power of two. Every step is exact, so
/// any exact decode (this one, ldexp-based, F16C hardware) agrees bitwise.
/// Inline because the scalar kernel's f16 tail loops call it per element.
inline double HalfToDouble(std::uint16_t h) {
  const std::uint32_t bits = static_cast<std::uint32_t>(h & 0x7FFFu) << 13;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return static_cast<double>(f) * 0x1p112;
}

/// Largest binary16 code whose decoded value is <= t (t >= 0); saturates at
/// the maximum finite half for larger t — the gap absorbs the slack.
std::uint16_t DoubleToHalfRoundDown(double t);

/// Largest float <= t (round toward -infinity; saturates at FLT_MAX).
float DoubleToFloatRoundDown(double t);

/// Two-pass encoder for one pivot row, usable over a segmented row (the
/// sharded index quantizes each GLOBAL row with one shared meta so a
/// sharded build stays bit-identical to the flat build at the same
/// precision): Scan every segment, Prepare once, Encode the segments in the
/// same order, then Finish for the row's meta.
class QuantRowEncoder {
 public:
  /// Pass 1: accumulate the row's value range.
  void Scan(const double* values, std::size_t n);

  /// Fixes scale/offset from the scanned range (u8 affine; no-op for
  /// f32/f16). Call exactly once, after all Scan() calls.
  void Prepare(TablePrecision precision);

  /// Pass 2: encode `n` entries into `out` (element width per precision),
  /// verifying v <= t with the kernels' exact decode arithmetic and
  /// accumulating the row's worst residual t - v into the gap.
  void Encode(const double* values, std::size_t n, void* out);

  /// The row's meta, with the gap inflated by a couple of ulps so the
  /// kernels' correctly rounded arithmetic cannot overshoot the exact
  /// bound on any value the build saw.
  QuantRowMeta Finish() const;

 private:
  TablePrecision precision_ = TablePrecision::kF64;
  bool prepared_ = false;
  double lo_ = 0.0, hi_ = 0.0;
  bool scanned_any_ = false;
  QuantRowMeta meta_;
};

/// A pivot table in any precision — the one view the sweeps consume. For
/// f64, `f64` points at the exact row-major table and `q`/`rows` are null;
/// otherwise `q` is the row-major code array (element width per precision)
/// and `rows` the per-row meta.
struct QuantTableView {
  TablePrecision precision = TablePrecision::kF64;
  const double* f64 = nullptr;
  const void* q = nullptr;
  const QuantRowMeta* rows = nullptr;
};

/// Dense row application through the view: dispatches to the precision's
/// kernel entry with row `rank` of an n-wide table. Exactly
/// `kern.update_lower_dense` for f64.
inline void QuantUpdateLowerDense(const SweepKernels& kern,
                                  const QuantTableView& view, std::size_t rank,
                                  std::size_t n, double d, double* lower) {
  switch (view.precision) {
    case TablePrecision::kF64:
      kern.update_lower_dense(d, view.f64 + rank * n, lower, n);
      return;
    case TablePrecision::kF32: {
      const QuantRowMeta& m = view.rows[rank];
      kern.update_lower_dense_f32(
          d, static_cast<const float*>(view.q) + rank * n, m.gap, lower, n);
      return;
    }
    case TablePrecision::kF16: {
      const QuantRowMeta& m = view.rows[rank];
      kern.update_lower_dense_f16(
          d, static_cast<const std::uint16_t*>(view.q) + rank * n, m.gap,
          lower, n);
      return;
    }
    case TablePrecision::kU8: {
      const QuantRowMeta& m = view.rows[rank];
      kern.update_lower_dense_u8(
          d, static_cast<const std::uint8_t*>(view.q) + rank * n, m.scale,
          m.offset, m.gap, lower, n);
      return;
    }
  }
}

/// Packed (gather) row application through the view; `base`/`idx` as in
/// `SweepKernels::update_lower_packed`.
inline void QuantUpdateLowerPacked(const SweepKernels& kern,
                                   const QuantTableView& view, std::size_t rank,
                                   std::size_t n, double d,
                                   const std::uint32_t* idx, std::uint32_t base,
                                   double* lower, std::size_t live) {
  switch (view.precision) {
    case TablePrecision::kF64:
      kern.update_lower_packed(d, view.f64 + rank * n, idx, base, lower, live);
      return;
    case TablePrecision::kF32: {
      const QuantRowMeta& m = view.rows[rank];
      kern.update_lower_packed_f32(
          d, static_cast<const float*>(view.q) + rank * n, idx, base, m.gap,
          lower, live);
      return;
    }
    case TablePrecision::kF16: {
      const QuantRowMeta& m = view.rows[rank];
      kern.update_lower_packed_f16(
          d, static_cast<const std::uint16_t*>(view.q) + rank * n, idx, base,
          m.gap, lower, live);
      return;
    }
    case TablePrecision::kU8: {
      const QuantRowMeta& m = view.rows[rank];
      kern.update_lower_packed_u8(
          d, static_cast<const std::uint8_t*>(view.q) + rank * n, idx, base,
          m.scale, m.offset, m.gap, lower, live);
      return;
    }
  }
}

}  // namespace cned

#endif  // CNED_SEARCH_TABLE_QUANT_H_
