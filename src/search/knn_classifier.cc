#include "search/knn_classifier.h"

#include <map>
#include <stdexcept>

#include "search/batch_engine.h"

namespace cned {
namespace {

/// Majority vote over neighbours sorted by proximity; ties break toward the
/// closer neighbour's label (the first to reach the winning count).
int MajorityVote(const std::vector<NeighborResult>& neighbors,
                 const std::vector<int>& labels) {
  std::map<int, std::size_t> votes;
  for (const auto& nb : neighbors) ++votes[labels[nb.index]];
  int best_label = labels[neighbors.front().index];
  std::size_t best_votes = 0;
  for (const auto& nb : neighbors) {  // iterate by proximity for tie-breaking
    int label = labels[nb.index];
    std::size_t v = votes[label];
    if (v > best_votes) {
      best_votes = v;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace

NearestNeighborClassifier::NearestNeighborClassifier(
    const NearestNeighborSearcher& searcher, const std::vector<int>& labels)
    : searcher_(&searcher), labels_(&labels) {
  if (labels.size() != searcher.size()) {
    throw std::invalid_argument(
        "NearestNeighborClassifier: labels/prototypes size mismatch");
  }
}

int NearestNeighborClassifier::Classify(std::string_view query) const {
  return (*labels_)[searcher_->Nearest(query).index];
}

std::vector<int> NearestNeighborClassifier::ClassifyBatch(
    PrototypeStoreRef queries, QueryStats* stats, std::size_t threads) const {
  BatchQueryEngine engine(*searcher_, {threads});
  return engine.Classify(queries, *labels_, stats);
}

double NearestNeighborClassifier::ErrorRatePercent(
    PrototypeStoreRef queries, const std::vector<int>& true_labels) const {
  if (queries->size() != true_labels.size()) {
    throw std::invalid_argument("ErrorRatePercent: size mismatch");
  }
  if (queries->empty()) return 0.0;
  std::vector<int> predicted = ClassifyBatch(queries);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] != true_labels[i]) ++errors;
  }
  return 100.0 * static_cast<double>(errors) /
         static_cast<double>(predicted.size());
}

int KnnClassify(const NearestNeighborSearcher& searcher,
                const std::vector<int>& labels, std::string_view query,
                std::size_t k) {
  if (labels.size() != searcher.size()) {
    throw std::invalid_argument("KnnClassify: labels/prototypes size mismatch");
  }
  if (k == 0) {
    throw std::invalid_argument("KnnClassify: k must be >= 1");
  }
  return MajorityVote(searcher.KNearest(query, k), labels);
}

std::vector<int> KnnClassifyBatch(const NearestNeighborSearcher& searcher,
                                  const std::vector<int>& labels,
                                  PrototypeStoreRef queries, std::size_t k,
                                  QueryStats* stats, std::size_t threads) {
  if (labels.size() != searcher.size()) {
    throw std::invalid_argument(
        "KnnClassifyBatch: labels/prototypes size mismatch");
  }
  if (k == 0) {
    throw std::invalid_argument("KnnClassifyBatch: k must be >= 1");
  }
  BatchQueryEngine engine(searcher, {threads});
  auto neighbor_lists = engine.KNearest(queries, k, stats);
  std::vector<int> out(neighbor_lists.size());
  for (std::size_t i = 0; i < neighbor_lists.size(); ++i) {
    out[i] = MajorityVote(neighbor_lists[i], labels);
  }
  return out;
}

}  // namespace cned
