#include "search/knn_classifier.h"

#include <map>
#include <stdexcept>

namespace cned {

NearestNeighborClassifier::NearestNeighborClassifier(
    const NearestNeighborSearcher& searcher, const std::vector<int>& labels)
    : searcher_(&searcher), labels_(&labels) {
  if (labels.size() != searcher.size()) {
    throw std::invalid_argument(
        "NearestNeighborClassifier: labels/prototypes size mismatch");
  }
}

int NearestNeighborClassifier::Classify(std::string_view query) const {
  return (*labels_)[searcher_->Nearest(query).index];
}

double NearestNeighborClassifier::ErrorRatePercent(
    const std::vector<std::string>& queries,
    const std::vector<int>& true_labels) const {
  if (queries.size() != true_labels.size()) {
    throw std::invalid_argument("ErrorRatePercent: size mismatch");
  }
  if (queries.empty()) return 0.0;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (Classify(queries[i]) != true_labels[i]) ++errors;
  }
  return 100.0 * static_cast<double>(errors) /
         static_cast<double>(queries.size());
}

int KnnClassify(const ExhaustiveSearch& searcher,
                const std::vector<int>& labels, std::string_view query,
                std::size_t k) {
  if (labels.size() != searcher.size()) {
    throw std::invalid_argument("KnnClassify: labels/prototypes size mismatch");
  }
  auto neighbors = searcher.KNearest(query, k);
  std::map<int, std::size_t> votes;
  for (const auto& nb : neighbors) ++votes[labels[nb.index]];
  int best_label = labels[neighbors.front().index];
  std::size_t best_votes = 0;
  for (const auto& nb : neighbors) {  // iterate by proximity for tie-breaking
    int label = labels[nb.index];
    std::size_t v = votes[label];
    if (v > best_votes) {
      best_votes = v;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace cned
