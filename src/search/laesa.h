#ifndef CNED_SEARCH_LAESA_H_
#define CNED_SEARCH_LAESA_H_

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "datasets/prototype_store.h"
#include "distances/distance.h"
#include "search/nn_searcher.h"
#include "search/pivot_stage.h"
#include "search/table_quant.h"

namespace cned {

/// LAESA — Linear Approximating and Eliminating Search Algorithm
/// (Micó, Oncina & Vidal, Pattern Recognition Letters 1994).
///
/// Preprocessing selects `num_pivots` base prototypes and stores the
/// distances from each pivot to every prototype: linear memory and
/// preprocessing in the number of prototypes, unlike AESA's quadratic
/// matrix. At query time the triangle inequality turns each computed
/// query-pivot distance into lower bounds g(p) = max_s |d(q,s) - d(s,p)|
/// that eliminate prototypes without computing their distance; candidates
/// are visited in increasing lower-bound order, pivots first.
///
/// The hot path is a flat structure-of-arrays sweep: surviving candidates
/// live in packed index/lower-bound arrays that one pass per visited
/// candidate tightens (a contiguous row of the pivot table), eliminates and
/// compacts — no per-candidate pointer chasing, no per-query allocation
/// (thread-local scratch), and the length-difference lower bound of the
/// distance acts as a free "zeroth pivot" over the store's flat length
/// array before any distance is computed.
///
/// With a true metric the returned neighbour is exactly the nearest. The
/// paper (and this reproduction) also runs LAESA with non-metric
/// normalisations (d_max, d_MV, d_C,h); elimination is then heuristic, which
/// is precisely what Table 2 quantifies.
class Laesa final : public NearestNeighborSearcher, public PivotStageSearcher {
 public:
  /// Shared per-query cost counters (see `cned::QueryStats`).
  using QueryStats = ::cned::QueryStats;

  /// Builds the pivot table with greedy max-min pivots starting from
  /// prototype `first_pivot`. `prototypes` is either a borrowed
  /// `PrototypeStore` (caller keeps it alive) or a `std::vector<std::string>`
  /// packed once into an owned store. Costs ~(num_pivots+1)·N distance
  /// evaluations.
  ///
  /// `table_precision` selects the pivot table's storage (table_quant.h):
  /// f64 keeps the exact table; f32/f16/u8 quantize each row with
  /// admissible round-down — Nearest/KNearest/RangeSearch RESULTS stay
  /// exact (elimination only prunes less), snapshots and sweep bandwidth
  /// shrink by the element-width ratio. The |Δlen| zeroth-pivot bound is
  /// never quantized.
  Laesa(PrototypeStoreRef prototypes, StringDistancePtr distance,
        std::size_t num_pivots, std::size_t first_pivot = 0,
        TablePrecision table_precision = DefaultTablePrecision());

  /// Builds with externally chosen pivot indices (ablation hook).
  Laesa(PrototypeStoreRef prototypes, StringDistancePtr distance,
        std::vector<std::size_t> pivot_indices,
        TablePrecision table_precision = DefaultTablePrecision());

  /// Nearest prototype; accumulates counters into `stats` when non-null.
  NeighborResult Nearest(std::string_view query,
                         QueryStats* stats = nullptr) const override;

  /// Approximate variant: eliminates candidates whose lower bound exceeds
  /// best/(1+epsilon), i.e. accepts a neighbour at most (1+epsilon) times
  /// farther than the true nearest. epsilon = 0 is exact; larger values
  /// trade accuracy for fewer distance computations (a standard relaxation
  /// of approximating-eliminating search).
  ///
  /// Effective on continuous-valued distances (dYB, dC,h: measured ~2-6x
  /// fewer computations at epsilon = 1); on the integer-valued d_E the
  /// quantised thresholds mean a prematurely eliminated true neighbour
  /// leaves a stale incumbent that eliminates no better than the exact
  /// search — expect little or no saving there. Counters accumulate into
  /// `stats` when non-null.
  NeighborResult NearestApprox(std::string_view query, double epsilon,
                               QueryStats* stats = nullptr) const;

  std::size_t size() const override { return store().size(); }

  /// The k nearest prototypes, closest first (extension of the paper's
  /// 1-NN LAESA: elimination prunes against the current k-th best). Shares
  /// the sweep with `Nearest`, so k = 1 follows the identical trajectory.
  std::vector<NeighborResult> KNearest(
      std::string_view query, std::size_t k,
      QueryStats* stats = nullptr) const override;

  /// All prototypes within `radius` of the query, ascending by distance.
  /// Prototypes whose pivot (or length) lower bound exceeds `radius` are
  /// never touched.
  std::vector<NeighborResult> RangeSearch(std::string_view query,
                                          double radius,
                                          QueryStats* stats = nullptr) const;

  /// Tombstone-masked variants for the mutable tier (mutable_laesa.h):
  /// `tombstones` is a packed bitmap over prototype slots (bit i set =
  /// deleted, TombstoneWords(size()) words). Masked slots are eliminated
  /// *inside* the sweep compaction before anything is visited — their
  /// bounds are forced to +inf and one flagged compaction pass drops them
  /// from the packed slab (see sweep_kernel.h) — so a deleted prototype is
  /// never evaluated, never returned and never counted, at every
  /// table_precision and under every kernel variant. A null bitmap is the
  /// plain sweep, bit-identical to Nearest/KNearest including QueryStats.
  /// NearestMasked throws std::out_of_range when every slot is deleted.
  NeighborResult NearestMasked(std::string_view query,
                               const std::uint64_t* tombstones,
                               QueryStats* stats = nullptr) const;
  std::vector<NeighborResult> KNearestMasked(std::string_view query,
                                             std::size_t k,
                                             const std::uint64_t* tombstones,
                                             QueryStats* stats = nullptr) const;

  /// Serialises the pivot table (not the prototypes) to a stream. Rebuild
  /// with `Load` against the *same* prototype set and distance — a
  /// production convenience so the O(pivots x N) preprocessing is paid once.
  void Save(std::ostream& out) const;

  /// Restores an index saved by `Save`. Throws std::runtime_error on
  /// malformed input or when the prototype count does not match.
  static Laesa Load(std::istream& in, PrototypeStoreRef prototypes,
                    StringDistancePtr distance);

  /// Binary form of Save/Load: versioned 64-byte header, then the pivot
  /// index and pivot-table sections each 64-byte aligned (the mmap-ready
  /// format of common/binary_io.h). Pair with `PrototypeStore::SaveBinary`
  /// for a complete serving snapshot.
  void Save(const std::string& path) const;
  static Laesa Load(const std::string& path, PrototypeStoreRef prototypes,
                    StringDistancePtr distance);

  /// Zero-copy form of the binary Load: maps the file and points the pivot
  /// table view at its section in place — the O(pivots x N) table is never
  /// copied, so startup is O(N) (pivot-rank bookkeeping) instead of
  /// O(pivots x N), and the table pages are shared across processes through
  /// the page cache. Validation matches `Load`; query results, trajectories
  /// and `QueryStats` are bit-identical to the built or copy-loaded index.
  static Laesa Map(const std::string& path, PrototypeStoreRef prototypes,
                   StringDistancePtr distance);

  /// True when the pivot table aliases a mapped snapshot.
  bool mapped() const { return mapping_ != nullptr; }

  /// Storage precision of the pivot table (set at build or restored by the
  /// loaders).
  TablePrecision table_precision() const { return precision_; }

  // PivotStageSearcher: the batched pivot stage of the query engine.
  std::size_t pivot_count() const override { return pivots_.size(); }
  std::string_view PivotString(std::size_t p) const override {
    return store()[pivots_[p]];
  }
  const StringDistance& pivot_distance() const override { return *distance_; }
  void ComputePivotRow(std::string_view query, double* row,
                       QueryStats* stats = nullptr) const override;
  NeighborResult NearestWithPivotRow(std::string_view query, const double* row,
                                     QueryStats* stats = nullptr)
      const override;
  std::vector<NeighborResult> KNearestWithPivotRow(
      std::string_view query, std::size_t k, const double* row,
      QueryStats* stats = nullptr) const override;

  std::size_t num_pivots() const { return pivots_.size(); }
  const std::vector<std::size_t>& pivots() const { return pivots_; }

  /// The prototype set the index searches over.
  const PrototypeStore& store() const { return prototypes_.get(); }

  /// Distance evaluations spent in preprocessing (pivot selection + table).
  std::uint64_t preprocessing_computations() const {
    return preprocessing_computations_;
  }

 private:
  // Uninitialised shell used by Load.
  struct InternalTag {};
  Laesa(InternalTag, PrototypeStoreRef prototypes, StringDistancePtr distance)
      : prototypes_(prototypes), distance_(std::move(distance)) {}

  void BuildTable();

  /// The unified elimination sweep behind Nearest/NearestApprox/KNearest
  /// and their masked variants (`tombstones` may be null: no masking).
  std::vector<NeighborResult> Sweep(std::string_view query, std::size_t k,
                                    double slack, QueryStats* stats,
                                    const std::uint64_t* tombstones =
                                        nullptr) const;

  /// Row-consuming sweep behind the *WithPivotRow entry points: seeds the
  /// incumbents with all pivot distances, applies every pivot-table row,
  /// then eliminates and visits the surviving non-pivots adaptively.
  std::vector<NeighborResult> SweepWithRow(std::string_view query,
                                           std::size_t k, const double* row,
                                           QueryStats* stats) const;

  /// The pivot table as a flat row-major view:
  /// table_data()[p * N + i] = d(store()[pivots_[p]], store()[i]); a
  /// visited pivot contributes one contiguous row. Backed by the owned
  /// buffer (build/Load) or by the mapped file section (Map). f64 only —
  /// quantized tables go through table_view().
  const double* table_data() const {
    return mapping_ ? mapped_table_ : pivot_dist_.data();
  }

  /// Quantized code array / per-row meta, owned or mapped (null for f64).
  const void* quant_data() const {
    return mapping_ ? mapped_quant_ : static_cast<const void*>(
                                          quant_table_.data());
  }
  const QuantRowMeta* row_meta_data() const {
    return mapping_ ? mapped_meta_ : row_meta_.data();
  }

  /// The any-precision view the sweeps dispatch through (table_quant.h).
  QuantTableView table_view() const {
    QuantTableView view;
    view.precision = precision_;
    if (precision_ == TablePrecision::kF64) {
      view.f64 = table_data();
    } else {
      view.q = quant_data();
      view.rows = row_meta_data();
    }
    return view;
  }

  PrototypeStoreRef prototypes_;
  StringDistancePtr distance_;
  std::vector<std::size_t> pivots_;
  std::vector<std::int32_t> pivot_rank_;  // prototype -> pivot ordinal or -1
  TablePrecision precision_ = TablePrecision::kF64;
  std::vector<double> pivot_dist_;        // owned f64 table; empty otherwise
  std::vector<unsigned char> quant_table_;  // owned codes (non-f64)
  std::vector<QuantRowMeta> row_meta_;      // per-row decode meta (non-f64)
  const double* mapped_table_ = nullptr;  // view into mapping_ when mapped
  const void* mapped_quant_ = nullptr;    // quantized counterpart
  const QuantRowMeta* mapped_meta_ = nullptr;
  std::shared_ptr<MappedFile> mapping_;
  std::uint64_t preprocessing_computations_ = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_LAESA_H_
