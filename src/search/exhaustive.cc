#include "search/exhaustive.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cned {

ExhaustiveSearch::ExhaustiveSearch(PrototypeStoreRef prototypes,
                                   StringDistancePtr distance)
    : prototypes_(prototypes), distance_(std::move(distance)) {
  if (prototypes_->empty()) {
    throw std::invalid_argument("ExhaustiveSearch: empty prototype set");
  }
}

NeighborResult ExhaustiveSearch::Nearest(std::string_view query,
                                         QueryStats* stats) const {
  const PrototypeStore& protos = store();
  NeighborResult best{0, distance_->Distance(query, protos[0])};
  std::uint64_t computations = 1, abandons = 0;
  for (std::size_t i = 1; i < protos.size(); ++i) {
    // Strict improvement only (smallest index wins ties), so the incumbent
    // itself bounds the kernel.
    double d = distance_->DistanceBounded(query, protos[i], best.distance);
    ++computations;
    if (d >= best.distance) {
      ++abandons;
      continue;
    }
    best = {i, d};
  }
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

std::vector<NeighborResult> ExhaustiveSearch::KNearest(std::string_view query,
                                                       std::size_t k,
                                                       QueryStats* stats) const {
  const PrototypeStore& protos = store();
  const std::size_t n = protos.size();
  k = std::min(k, n);
  if (k == 0) return {};
  // Running sorted top-k; a candidate that cannot beat the k-th incumbent
  // is rejected, so the k-th incumbent bounds the kernel. Scanning in index
  // order keeps tie handling identical to the full-sort baseline (an equal
  // later index never evicts an earlier one).
  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  std::uint64_t computations = 0, abandons = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double cap = best.size() < k
                           ? std::numeric_limits<double>::infinity()
                           : best.back().distance;
    double d = distance_->DistanceBounded(query, protos[i], cap);
    ++computations;
    if (d >= cap) {
      ++abandons;
      continue;
    }
    NeighborResult r{i, d};
    auto pos = std::lower_bound(
        best.begin(), best.end(), r,
        [](const NeighborResult& a, const NeighborResult& b) {
          if (a.distance != b.distance) return a.distance < b.distance;
          return a.index < b.index;
        });
    best.insert(pos, r);
    if (best.size() > k) best.pop_back();
  }
  if (stats != nullptr) {
    stats->distance_computations += computations;
    stats->bounded_abandons += abandons;
  }
  return best;
}

}  // namespace cned
