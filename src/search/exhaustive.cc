#include "search/exhaustive.h"

#include <algorithm>
#include <stdexcept>

namespace cned {

ExhaustiveSearch::ExhaustiveSearch(const std::vector<std::string>& prototypes,
                                   StringDistancePtr distance)
    : prototypes_(&prototypes), distance_(std::move(distance)) {
  if (prototypes_->empty()) {
    throw std::invalid_argument("ExhaustiveSearch: empty prototype set");
  }
}

NeighborResult ExhaustiveSearch::Nearest(std::string_view query) const {
  NeighborResult best{0, distance_->Distance(query, (*prototypes_)[0])};
  for (std::size_t i = 1; i < prototypes_->size(); ++i) {
    double d = distance_->Distance(query, (*prototypes_)[i]);
    if (d < best.distance) best = {i, d};
  }
  return best;
}

std::vector<NeighborResult> ExhaustiveSearch::KNearest(std::string_view query,
                                                       std::size_t k) const {
  std::vector<NeighborResult> all;
  all.reserve(prototypes_->size());
  for (std::size_t i = 0; i < prototypes_->size(); ++i) {
    all.push_back({i, distance_->Distance(query, (*prototypes_)[i])});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const NeighborResult& a, const NeighborResult& b) {
                      if (a.distance != b.distance) return a.distance < b.distance;
                      return a.index < b.index;
                    });
  all.resize(k);
  return all;
}

}  // namespace cned
