#include "search/vp_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.h"

namespace cned {

VpTree::VpTree(PrototypeStoreRef prototypes, StringDistancePtr distance,
               std::uint64_t seed)
    : prototypes_(prototypes), distance_(std::move(distance)) {
  if (prototypes_->empty()) {
    throw std::invalid_argument("VpTree: empty prototype set");
  }
  std::vector<std::size_t> items(prototypes_->size());
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = i;
  nodes_.reserve(items.size());
  root_ = Build(items, 0, items.size(), seed);
}

std::int32_t VpTree::Build(std::vector<std::size_t>& items, std::size_t lo,
                           std::size_t hi, std::uint64_t seed) {
  if (lo >= hi) return -1;
  Rng rng(seed ^ (lo * 0x9e3779b97f4a7c15ull) ^ hi);

  // Vantage point: random element of the range, swapped to the front.
  std::size_t vp_slot = lo + rng.Index(hi - lo);
  std::swap(items[lo], items[vp_slot]);
  const std::size_t vp = items[lo];

  auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{vp, 0.0, -1, -1});
  if (hi - lo == 1) return node_index;

  // Distances from the vantage point to the remaining items; split at the
  // median so both children get half the points.
  std::vector<std::pair<double, std::size_t>> dists;
  dists.reserve(hi - lo - 1);
  for (std::size_t i = lo + 1; i < hi; ++i) {
    dists.emplace_back(
        distance_->Distance(store()[vp], store()[items[i]]),
        items[i]);
    ++preprocessing_computations_;
  }
  const std::size_t mid = dists.size() / 2;
  std::nth_element(dists.begin(),
                   dists.begin() + static_cast<std::ptrdiff_t>(mid),
                   dists.end());
  const double radius = dists[mid].first;
  // Rewrite the range as [vp, inside items (d <= radius), outside items].
  std::size_t cursor = lo + 1;
  for (const auto& [d, idx] : dists) {
    if (d <= radius) items[cursor++] = idx;
  }
  const std::size_t inside_end = cursor;
  for (const auto& [d, idx] : dists) {
    if (d > radius) items[cursor++] = idx;
  }

  nodes_[static_cast<std::size_t>(node_index)].radius = radius;
  std::int32_t inside = Build(items, lo + 1, inside_end, seed * 31 + 1);
  std::int32_t outside = Build(items, inside_end, hi, seed * 31 + 2);
  nodes_[static_cast<std::size_t>(node_index)].inside = inside;
  nodes_[static_cast<std::size_t>(node_index)].outside = outside;
  return node_index;
}

void VpTree::Search(std::int32_t node, std::string_view query,
                    NeighborResult& best, QueryStats& stats) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  // The kernel bound is incumbent + node radius: a vantage-point distance
  // that reaches it can neither improve the incumbent (>= best) nor leave
  // the inside ball reachable (every inside point is >= d - radius >=
  // best), so the only decision left — descend outside — needs no value.
  const double cap = best.distance + n.radius;
  const double d =
      distance_->DistanceBounded(query, store()[n.point], cap);
  ++stats.distance_computations;
  if (d >= cap) {
    ++stats.bounded_abandons;
    Search(n.outside, query, best, stats);
    return;
  }
  if (d < best.distance) best = {n.point, d};
  // Visit the more promising side first, prune with the triangle inequality.
  const bool inside_first = d <= n.radius;
  const std::int32_t first = inside_first ? n.inside : n.outside;
  const std::int32_t second = inside_first ? n.outside : n.inside;
  Search(first, query, best, stats);
  // Every point beyond the boundary is at least `boundary_gap` away; under
  // strict-improvement semantics a gap that reaches the incumbent is dead.
  const double boundary_gap = inside_first ? n.radius - d : d - n.radius;
  if (boundary_gap < best.distance) {
    Search(second, query, best, stats);
  }
}

NeighborResult VpTree::Nearest(std::string_view query,
                               QueryStats* stats) const {
  NeighborResult best{0, std::numeric_limits<double>::infinity()};
  QueryStats local;
  Search(root_, query, best, local);
  if (stats != nullptr) {
    stats->distance_computations += local.distance_computations;
    stats->bounded_abandons += local.bounded_abandons;
  }
  return best;
}

void VpTree::SearchK(std::int32_t node, std::string_view query, std::size_t k,
                     std::vector<NeighborResult>& best, QueryStats& stats) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const double incumbent = best.size() < k
                               ? std::numeric_limits<double>::infinity()
                               : best.back().distance;
  const double cap = incumbent + n.radius;
  const double d =
      distance_->DistanceBounded(query, store()[n.point], cap);
  ++stats.distance_computations;
  if (d >= cap) {
    // As in Search: no offer possible (d >= incumbent) and the inside ball
    // is provably beyond the k-th incumbent; only outside can contribute.
    ++stats.bounded_abandons;
    SearchK(n.outside, query, k, best, stats);
    return;
  }
  InsertNeighborTopK(best, k, {n.point, d});
  const bool inside_first = d <= n.radius;
  const std::int32_t first = inside_first ? n.inside : n.outside;
  const std::int32_t second = inside_first ? n.outside : n.inside;
  SearchK(first, query, k, best, stats);
  // Re-evaluate the prune bound after the first subtree tightened it.
  const double gap = inside_first ? n.radius - d : d - n.radius;
  const double bound = best.size() < k
                           ? std::numeric_limits<double>::infinity()
                           : best.back().distance;
  if (gap < bound) SearchK(second, query, k, best, stats);
}

std::vector<NeighborResult> VpTree::KNearest(std::string_view query,
                                             std::size_t k,
                                             QueryStats* stats) const {
  k = std::min(k, prototypes_->size());
  if (k == 0) return {};
  std::vector<NeighborResult> best;
  best.reserve(k + 1);
  QueryStats local;
  SearchK(root_, query, k, best, local);
  if (stats != nullptr) {
    stats->distance_computations += local.distance_computations;
    stats->bounded_abandons += local.bounded_abandons;
  }
  return best;
}

void VpTree::SearchRange(std::int32_t node, std::string_view query,
                         double radius, std::vector<NeighborResult>& hits,
                         QueryStats& stats) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  // Hits are inclusive and the inside-descent test is d <= radius + r, so
  // the kernel bound is the next value above radius + r: an abandoned
  // evaluation certifies "no hit, inside unreachable" in one stroke.
  const double cap = std::nextafter(radius + n.radius,
                                    std::numeric_limits<double>::infinity());
  const double d =
      distance_->DistanceBounded(query, store()[n.point], cap);
  ++stats.distance_computations;
  if (d >= cap) {
    ++stats.bounded_abandons;
    SearchRange(n.outside, query, radius, hits, stats);
    return;
  }
  if (d <= radius) hits.push_back({n.point, d});
  // Inside child holds points with d(vp, p) <= r: reachable only if
  // d - radius <= r; outside child only if d + radius > r.
  if (d - radius <= n.radius) SearchRange(n.inside, query, radius, hits,
                                          stats);
  if (d + radius > n.radius) SearchRange(n.outside, query, radius, hits,
                                         stats);
}

std::vector<NeighborResult> VpTree::RangeSearch(std::string_view query,
                                                double radius,
                                                QueryStats* stats) const {
  std::vector<NeighborResult> hits;
  QueryStats local;
  SearchRange(root_, query, radius, hits, local);
  std::sort(hits.begin(), hits.end(), NeighborLess);
  if (stats != nullptr) {
    stats->distance_computations += local.distance_computations;
    stats->bounded_abandons += local.bounded_abandons;
  }
  return hits;
}

}  // namespace cned
