#ifndef CNED_SEARCH_SWEEP_KERNEL_H_
#define CNED_SEARCH_SWEEP_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "common/aligned_buffer.h"

namespace cned {

/// The shared vectorised elimination core of the LAESA family.
///
/// Every LAESA-shaped sweep in the library — `Laesa::Sweep`,
/// `Laesa::SweepWithRow`, `Laesa::RangeSearch` and `ShardedLaesa`'s
/// per-shard passes (and through them the batch engine's pivot-stage
/// pipeline) — is the same three data-parallel operations over packed
/// candidate slabs:
///
///   1. tighten lower bounds with a visited pivot's table row
///      (`update_lower_*`: fused abs-diff + running max),
///   2. eliminate against the incumbent and compact the survivors
///      (`eliminate_and_compact*` / `compact_seed`: threshold filter +
///      in-place index/bound compaction that also tracks the
///      minimal-bound survivor), and
///   3. the length-bound "zeroth pivot" fill (`fill_absdiff_bounds`: the
///      |Δlen| core of the unit-cost edit-distance family's bound).
///
/// This header defines those operations once as a dispatch table of
/// function pointers with scalar, AVX2 and NEON implementations. The
/// variant is chosen at startup by runtime CPU detection (the binary stays
/// portable — only the per-ISA translation units are compiled with their
/// target extension) and can be forced for ablations and CI via the
/// `CNED_SWEEP_KERNEL` environment variable or `SetActiveSweepKernels`.
///
/// Bit-identity contract: every implementation computes exactly the scalar
/// reference semantics documented per entry below. All arithmetic involved
/// is exact in IEEE-754 double precision — |d - row| is one correctly
/// rounded subtraction plus sign clearing, comparisons and max are exact,
/// and the slack multiply is performed identically in every variant — so
/// neighbours, distances AND QueryStats are bit-identical across kernels,
/// which the differential tests and `micro_sweep_kernel` enforce.
///
/// Layout contract: candidate ids are 32-bit and < 2^31 (the SIMD gathers
/// index with signed 32-bit lanes); the packed `idx` slice handed to a
/// compaction kernel is strictly ascending (true by construction: slices
/// start as an iota fill and compaction is stable), which is what lets the
/// vector implementations resolve min-bound ties by smallest id instead of
/// smallest scan position. Slabs should come from `SweepScratch` (64-byte
/// aligned); the kernels use unaligned loads so mid-slab shard segments
/// are also fine.

/// "No candidate": the sentinel `next`/`next_pivot` value.
constexpr std::size_t kSweepNone = static_cast<std::size_t>(-1);

/// Outcome of one eliminate-and-compact pass over a packed candidate slice.
struct SweepCompactResult {
  /// Survivors now packed in [0, live) of the idx/lower slice.
  std::size_t live = 0;
  /// Dropped candidates (visited or eliminated) whose pivot flag was set.
  /// Only the *_flagged kernel fills this; others leave it 0.
  std::size_t pivots_died = 0;
  /// Surviving candidate with the minimal finite lower bound (first in
  /// packed order among ties, i.e. the smallest id), or kSweepNone.
  std::size_t next = kSweepNone;
  double next_key = std::numeric_limits<double>::infinity();
  /// Same, restricted to surviving pivots (flagged kernel only).
  std::size_t next_pivot = kSweepNone;
  double next_pivot_key = std::numeric_limits<double>::infinity();
};

/// One kernel variant: a named table of the sweep's data-parallel cores.
/// All entries are hot-loop functions — no allocation, no exceptions.
struct SweepKernels {
  /// "scalar", "avx2" or "neon" — the CNED_SWEEP_KERNEL names.
  const char* name;

  /// Dense row application: lower[i] = max(lower[i], |d - row[i]|) for i in
  /// [0, n), where max keeps lower[i] on ties (the scalar `if (g > lb)`).
  /// Used by the row-consuming sweeps (every pivot row applied to every
  /// candidate) and RangeSearch's pivot phase.
  void (*update_lower_dense)(double d, const double* row, double* lower,
                             std::size_t n);

  /// Packed (gather) row application over the live slice: for r in
  /// [0, live), lower[r] = max(lower[r], |d - row[idx[r] - base]|).
  /// `base` is the shard base so idx's global ids index the shard-local
  /// row; 0 for the flat index. Used by the lazy sweeps after each visited
  /// pivot.
  void (*update_lower_packed)(double d, const double* row,
                              const std::uint32_t* idx, std::uint32_t base,
                              double* lower, std::size_t live);

  /// --- Quantized row application (see search/table_quant.h). -----------
  ///
  /// Same dense/packed tightening over rows stored in a narrow element
  /// type. Each row carries decode metadata (QuantRowMeta): a row gap for
  /// every narrow precision, plus an affine scale/offset for u8. The
  /// shared reference semantics — identical op-for-op in every variant,
  /// never contracted into FMA (the library builds with -ffp-contract=off):
  ///
  ///   v    = decode(row[i])            // exact widen; u8: see below
  ///   diff = v - d                     // one rounded subtraction
  ///   g    = diff > (-diff) - gap ? diff : (-diff) - gap
  ///   lower = g > lower ? g : lower    // same tie handling as above
  ///
  /// decode(): f32 is a widening cast (exact); f16 is the bit-shift float
  /// reconstruction in HalfToDouble (exact); u8 computes d' = d - offset
  /// ONCE per call and per lane v' = double(code) * scale (one rounded
  /// multiply), with diff = v' - d'. Because v decodes to a value <= the
  /// exact table entry t and gap >= t - v (both enforced by the build-time
  /// encoder with this same arithmetic), g is an admissible lower bound of
  /// |d - t| in every lane.
  void (*update_lower_dense_f32)(double d, const float* row, double gap,
                                 double* lower, std::size_t n);
  void (*update_lower_packed_f32)(double d, const float* row,
                                  const std::uint32_t* idx, std::uint32_t base,
                                  double gap, double* lower, std::size_t live);
  void (*update_lower_dense_f16)(double d, const std::uint16_t* row,
                                 double gap, double* lower, std::size_t n);
  void (*update_lower_packed_f16)(double d, const std::uint16_t* row,
                                  const std::uint32_t* idx, std::uint32_t base,
                                  double gap, double* lower, std::size_t live);
  void (*update_lower_dense_u8)(double d, const std::uint8_t* row,
                                double scale, double offset, double gap,
                                double* lower, std::size_t n);
  void (*update_lower_packed_u8)(double d, const std::uint8_t* row,
                                 const std::uint32_t* idx, std::uint32_t base,
                                 double scale, double offset, double gap,
                                 double* lower, std::size_t live);

  /// The |Δlen| zeroth-pivot fill: out[i] = |x_len - y_lens[i]| as a
  /// double, over a store's packed 32-bit length array. This is the
  /// unit-cost edit-distance length bound; the normalised distances derive
  /// their closed forms from it per element (scalar, in their own
  /// overrides).
  void (*fill_absdiff_bounds)(std::size_t x_len, const std::uint32_t* y_lens,
                              std::size_t n, double* out);

  /// Eliminate + compact without pivot bookkeeping (the adaptive phase of
  /// the row-consuming sweeps). Keeps idx[r] iff
  ///   idx[r] != skip  &&  !(lower[r] >= bound)
  /// compacting idx/lower in place (stable) and tracking the minimal-bound
  /// survivor. `skip` is the just-visited candidate (pass a value absent
  /// from the slice, e.g. 0xFFFFFFFF, for "none").
  SweepCompactResult (*eliminate_and_compact)(std::uint32_t* idx,
                                              double* lower, std::size_t live,
                                              std::uint32_t skip,
                                              double bound);

  /// Eliminate + compact for the lazy sweeps: same as above with the
  /// approximation slack applied — keeps idx[r] iff
  ///   idx[r] != skip  &&  !(lower[r] * slack >= bound)
  /// — plus pivot bookkeeping: pivot_rank is indexed by candidate id
  /// (rank[id] >= 0 marks a pivot; gathered through idx), dropped pivots
  /// are counted into pivots_died, and the minimal-bound surviving pivot is
  /// tracked alongside the overall minimum.
  SweepCompactResult (*eliminate_and_compact_flagged)(
      std::uint32_t* idx, double* lower, const std::int32_t* pivot_rank,
      std::size_t live, std::uint32_t skip, double slack, double bound);

  /// Dense-to-packed seeding for the row-consuming sweeps: after all pivot
  /// rows tightened the dense bound array, keeps position j in [0, n) iff
  ///   rank[j] < 0  &&  !(lower_dense[j] >= bound)
  /// writing candidate id base + j and its bound packed into
  /// idx_out/lower_out, tracking the minimal-bound survivor. `rank` here is
  /// the slice aligned with lower_dense (rank[j] describes candidate
  /// base + j). lower_out may alias lower_dense (the in-place pack the
  /// sweeps use).
  SweepCompactResult (*compact_seed)(const double* lower_dense,
                                     const std::int32_t* rank, std::size_t n,
                                     std::uint32_t base, double bound,
                                     std::uint32_t* idx_out,
                                     double* lower_out);
};

/// The portable reference implementation (always available). Every other
/// variant is differentially tested against it.
const SweepKernels& ScalarSweepKernels();

/// All variants compiled into this binary AND supported by the running
/// CPU, scalar first, fastest last. At least one entry (scalar).
std::vector<const SweepKernels*> AvailableSweepKernels();

/// The variant the sweeps use. Resolved once on first use: the
/// CNED_SWEEP_KERNEL environment variable ("scalar", "avx2", "neon",
/// "auto") when set and available — an unavailable forced name warns on
/// stderr and falls back to scalar — otherwise the fastest available
/// variant. Thread-safe.
const SweepKernels& ActiveSweepKernels();

/// Forces a variant by name ("auto" re-selects the fastest available).
/// Returns false (and changes nothing) for an unknown or unsupported name.
/// Intended for startup/ablation use (tests, the fig3/fig4 --kernel flag),
/// not for concurrent flipping mid-query.
bool SetActiveSweepKernels(std::string_view name);

/// Thread-local 64-byte-aligned candidate slabs shared by the sweeps.
/// Reused across queries (zero steady-state allocations) and owned per
/// thread, so batched queries running under ParallelFor never share state.
struct SweepScratch {
  AlignedBuffer<std::uint32_t> idx;
  AlignedBuffer<double> lower;
};
SweepScratch& TlsSweepScratch();

/// Shared candidate-slab initialisation: idx[i] = i for i in [0, n), and
/// returns the number of ids with pivot_rank[id] >= 0 — the live-pivot
/// count the lazy sweeps start from (duplicate pivots_ entries occupy one
/// candidate slot, hence counting ranks, not table rows).
std::size_t FillIotaCountPivots(std::uint32_t* idx,
                                const std::int32_t* pivot_rank,
                                std::size_t n);

/// --- Tombstone bitmaps (the mutable tier, search/mutable_laesa.h). -------
///
/// Deletes are represented as a packed bitmap over candidate slots (bit i =
/// word i/64, bit i%64). Masking happens *inside* the sweep's compaction:
/// `ApplyTombstoneMask` writes +inf into the dense lower-bound slab for
/// every set bit, and the next `eliminate_and_compact*` pass then drops
/// exactly those slots — the elimination predicate `lower >= bound` is
/// inclusive, so +inf falls to every bound including +inf itself, and every
/// quantized row update is a running max, so +inf can never be lowered back
/// at any table_precision. A deleted prototype is therefore removed from
/// the packed slab before it can be visited, evaluated, or counted.
/// Pure integer/bit work — identical behaviour under every kernel variant.

inline std::size_t TombstoneWords(std::size_t n) { return (n + 63) / 64; }

inline bool TestTombstone(const std::uint64_t* bits, std::size_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1u;
}

inline void SetTombstone(std::uint64_t* bits, std::size_t i) {
  bits[i >> 6] |= std::uint64_t{1} << (i & 63);
}

/// lower[i] = +inf for every set bit in [0, n); other slots untouched.
void ApplyTombstoneMask(const std::uint64_t* bits, std::size_t n,
                        double* lower);

}  // namespace cned

#endif  // CNED_SEARCH_SWEEP_KERNEL_H_
