#include "search/counting_distance.h"

// Header-only implementation; this translation unit anchors the vtable.
namespace cned {}
