#ifndef CNED_SEARCH_CONDENSING_H_
#define CNED_SEARCH_CONDENSING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "distances/distance.h"

namespace cned {

/// Hart's Condensed Nearest Neighbour rule (CNN, 1968): selects a subset of
/// the labelled training set that classifies every training sample
/// correctly under 1-NN.
///
/// The natural companion of the paper's §4.4 classification experiments:
/// LAESA preprocessing and query cost are linear in the prototype count, so
/// condensing the training set under a well-discriminating distance (like
/// d_C,h) shrinks both. Returns the *indices* of the retained prototypes,
/// in selection order (the first element of each class is always retained).
///
/// Deterministic: samples are scanned in index order until a full pass adds
/// nothing. Worst case O(passes · n · |subset|) distance evaluations.
std::vector<std::size_t> CondenseTrainingSet(
    const std::vector<std::string>& samples, const std::vector<int>& labels,
    const StringDistance& distance);

/// Convenience: materialises the condensed subset.
struct CondensedSet {
  std::vector<std::string> strings;
  std::vector<int> labels;
  std::vector<std::size_t> indices;  ///< positions in the original set
};
CondensedSet Condense(const std::vector<std::string>& samples,
                      const std::vector<int>& labels,
                      const StringDistance& distance);

/// Wilson editing (ENN, 1972): removes every sample whose label disagrees
/// with the majority of its k nearest neighbours in the rest of the set —
/// the standard noise filter applied *before* Hart condensing. Returns the
/// retained indices in original order.
std::vector<std::size_t> WilsonEdit(const std::vector<std::string>& samples,
                                    const std::vector<int>& labels,
                                    const StringDistance& distance,
                                    std::size_t k = 3);

}  // namespace cned

#endif  // CNED_SEARCH_CONDENSING_H_
