#ifndef CNED_SEARCH_EXHAUSTIVE_H_
#define CNED_SEARCH_EXHAUSTIVE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// Brute-force nearest-neighbour search: one distance evaluation per
/// prototype. The baseline ("Exhaustive search" column of Table 2) and the
/// correctness oracle for LAESA/AESA.
///
/// Even the brute-force scan benefits from the bounded kernel engine: the
/// incumbent best (or the running k-th best) is passed to `DistanceBounded`
/// so the per-prototype DP is cut short once it provably cannot win. The
/// returned neighbours are identical to the unbounded scan.
class ExhaustiveSearch final : public NearestNeighborSearcher {
 public:
  struct QueryStats {
    std::uint64_t distance_computations = 0;
    /// Evaluations whose result reached the bound passed via
    /// `DistanceBounded` (cut short mid-DP by kernels with a real bounded
    /// implementation; counted either way).
    std::uint64_t bounded_abandons = 0;
  };

  /// Keeps a reference to `prototypes`; the caller owns the storage and must
  /// keep it alive and unchanged while the searcher is used.
  ExhaustiveSearch(const std::vector<std::string>& prototypes,
                   StringDistancePtr distance);

  /// The nearest prototype to `query` (smallest index wins ties).
  NeighborResult Nearest(std::string_view query, QueryStats* stats) const;

  NeighborResult Nearest(std::string_view query) const override {
    return Nearest(query, nullptr);
  }

  /// The k nearest prototypes, closest first.
  std::vector<NeighborResult> KNearest(std::string_view query, std::size_t k,
                                       QueryStats* stats = nullptr) const;

  std::size_t size() const override { return prototypes_->size(); }

 private:
  const std::vector<std::string>* prototypes_;
  StringDistancePtr distance_;
};

}  // namespace cned

#endif  // CNED_SEARCH_EXHAUSTIVE_H_
