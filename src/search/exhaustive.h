#ifndef CNED_SEARCH_EXHAUSTIVE_H_
#define CNED_SEARCH_EXHAUSTIVE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "datasets/prototype_store.h"
#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// Brute-force nearest-neighbour search: one distance evaluation per
/// prototype. The baseline ("Exhaustive search" column of Table 2) and the
/// correctness oracle for LAESA/AESA.
///
/// Candidates are read straight out of the flat `PrototypeStore` arena in
/// index order — a forward walk over contiguous memory. Even the brute-
/// force scan benefits from the bounded kernel engine: the incumbent best
/// (or the running k-th best) is passed to `DistanceBounded` so the
/// per-prototype DP is cut short once it provably cannot win. The returned
/// neighbours are identical to the unbounded scan.
class ExhaustiveSearch final : public NearestNeighborSearcher {
 public:
  /// Shared per-query cost counters (see `cned::QueryStats`).
  using QueryStats = ::cned::QueryStats;

  /// `prototypes` is either a borrowed `PrototypeStore` (caller keeps it
  /// alive) or a `std::vector<std::string>` packed once into an owned store.
  ExhaustiveSearch(PrototypeStoreRef prototypes, StringDistancePtr distance);

  /// The nearest prototype to `query` (smallest index wins ties).
  NeighborResult Nearest(std::string_view query,
                         QueryStats* stats = nullptr) const override;

  /// The k nearest prototypes, closest first.
  std::vector<NeighborResult> KNearest(
      std::string_view query, std::size_t k,
      QueryStats* stats = nullptr) const override;

  std::size_t size() const override { return prototypes_->size(); }

  /// The prototype set the index searches over.
  const PrototypeStore& store() const { return prototypes_.get(); }

 private:
  PrototypeStoreRef prototypes_;
  StringDistancePtr distance_;
};

}  // namespace cned

#endif  // CNED_SEARCH_EXHAUSTIVE_H_
