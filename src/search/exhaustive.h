#ifndef CNED_SEARCH_EXHAUSTIVE_H_
#define CNED_SEARCH_EXHAUSTIVE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "distances/distance.h"
#include "search/nn_searcher.h"

namespace cned {

/// Brute-force nearest-neighbour search: one distance evaluation per
/// prototype. The baseline ("Exhaustive search" column of Table 2) and the
/// correctness oracle for LAESA/AESA.
class ExhaustiveSearch final : public NearestNeighborSearcher {
 public:
  /// Keeps a reference to `prototypes`; the caller owns the storage and must
  /// keep it alive and unchanged while the searcher is used.
  ExhaustiveSearch(const std::vector<std::string>& prototypes,
                   StringDistancePtr distance);

  /// The nearest prototype to `query` (smallest index wins ties).
  NeighborResult Nearest(std::string_view query) const override;

  /// The k nearest prototypes, closest first.
  std::vector<NeighborResult> KNearest(std::string_view query,
                                       std::size_t k) const;

  std::size_t size() const override { return prototypes_->size(); }

 private:
  const std::vector<std::string>* prototypes_;
  StringDistancePtr distance_;
};

}  // namespace cned

#endif  // CNED_SEARCH_EXHAUSTIVE_H_
