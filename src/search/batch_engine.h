#ifndef CNED_SEARCH_BATCH_ENGINE_H_
#define CNED_SEARCH_BATCH_ENGINE_H_

#include <cstddef>
#include <vector>

#include "datasets/prototype_store.h"
#include "search/nn_searcher.h"

namespace cned {

/// Batched query execution over any `NearestNeighborSearcher`.
///
/// The paper's §4.3 experiments — and every production serving scenario the
/// ROADMAP targets — answer thousands of independent queries against one
/// index. Looping `Nearest` one query at a time leaves all but one core
/// idle; the engine instead fans the query span out through `ParallelFor`,
/// where the per-thread DP workspaces and LAESA sweep scratch (all
/// thread-local) make every searcher safe to drive concurrently.
///
/// Determinism: queries are independent and each result slot is written by
/// exactly one task, so the returned neighbours are bit-identical to the
/// sequential per-query loop, and the merged `QueryStats` equal the
/// sequential sums regardless of thread schedule.
class BatchQueryEngine {
 public:
  struct Options {
    /// Worker threads; 0 means hardware concurrency.
    std::size_t threads = 0;
  };

  /// Borrows `searcher` (caller keeps it alive).
  explicit BatchQueryEngine(const NearestNeighborSearcher& searcher);
  BatchQueryEngine(const NearestNeighborSearcher& searcher, Options options);

  /// Nearest prototype for every query in the span. `queries` is either a
  /// borrowed `PrototypeStore` or a `std::vector<std::string>` (packed once
  /// into a temporary store). Merged counters accumulate into `stats` when
  /// non-null.
  std::vector<NeighborResult> Nearest(PrototypeStoreRef queries,
                                      QueryStats* stats = nullptr) const;

  /// k nearest prototypes for every query, each closest first. Requires a
  /// searcher family with a k-NN search (LAESA, VP-tree, exhaustive);
  /// others throw std::logic_error.
  std::vector<std::vector<NeighborResult>> KNearest(
      PrototypeStoreRef queries, std::size_t k,
      QueryStats* stats = nullptr) const;

  /// 1-NN label for every query; `labels[i]` is the class of the searcher's
  /// i-th prototype. Throws std::invalid_argument on size mismatch.
  std::vector<int> Classify(PrototypeStoreRef queries,
                            const std::vector<int>& labels,
                            QueryStats* stats = nullptr) const;

  const NearestNeighborSearcher& searcher() const { return *searcher_; }

 private:
  const NearestNeighborSearcher* searcher_;
  Options options_;
};

}  // namespace cned

#endif  // CNED_SEARCH_BATCH_ENGINE_H_
