#ifndef CNED_SEARCH_BATCH_ENGINE_H_
#define CNED_SEARCH_BATCH_ENGINE_H_

#include <cstddef>
#include <vector>

#include "datasets/prototype_store.h"
#include "search/nn_searcher.h"

namespace cned {

/// Batched query execution over any `NearestNeighborSearcher`.
///
/// The paper's §4.3 experiments — and every production serving scenario the
/// ROADMAP targets — answer thousands of independent queries against one
/// index. Looping `Nearest` one query at a time leaves all but one core
/// idle; the engine instead fans the query span out through `ParallelFor`,
/// where the per-thread DP workspaces and LAESA sweep scratch (all
/// thread-local) make every searcher safe to drive concurrently.
///
/// Determinism: queries are independent and each result slot is written by
/// exactly one task, so the returned neighbours are bit-identical to the
/// sequential per-query loop, and the merged `QueryStats` equal the
/// sequential sums regardless of thread schedule.
///
/// With `Options::pivot_stage` set and a LAESA-family searcher (one
/// implementing `PivotStageSearcher`), execution becomes a two-stage
/// pipeline instead:
///   1. a blocked query x pivot distance pass shared across the whole
///      batch — pivots iterate in the outer loop of each query block, so
///      every pivot string is streamed once per block while it is hot in
///      cache, and duplicate query strings are evaluated once for the
///      whole batch (popular queries are free after the first);
///   2. per-query elimination sweeps consuming the precomputed rows
///      (`NearestWithPivotRow` / `KNearestWithPivotRow`), fanned out as
///      above.
/// Results are bit-identical to the sequential per-query two-stage loop
/// (`ComputePivotRow` + `*WithPivotRow`), and the merged stats equal that
/// loop's sums minus the deduplicated pivot rows. Searchers without a
/// pivot stage fall back to the plain per-query path.
class BatchQueryEngine {
 public:
  struct Options {
    /// Worker threads; 0 means hardware concurrency.
    std::size_t threads = 0;
    /// Run the two-stage pivot pipeline when the searcher supports it.
    bool pivot_stage = false;
    /// Queries per block of the stage-1 pass (cache-tile height).
    std::size_t pivot_block = 32;
  };

  /// Borrows `searcher` (caller keeps it alive).
  explicit BatchQueryEngine(const NearestNeighborSearcher& searcher);
  BatchQueryEngine(const NearestNeighborSearcher& searcher, Options options);

  /// Nearest prototype for every query in the span. `queries` is either a
  /// borrowed `PrototypeStore` or a `std::vector<std::string>` (packed once
  /// into a temporary store). Merged counters accumulate into `stats` when
  /// non-null.
  std::vector<NeighborResult> Nearest(PrototypeStoreRef queries,
                                      QueryStats* stats = nullptr) const;

  /// Sharded-searcher variant: additionally accumulates each visited
  /// candidate's evaluation onto its home shard. `shard_stats` is resized
  /// to the searcher's shard count; requires a searcher implementing
  /// `ShardStatsSearcher` (throws std::invalid_argument otherwise).
  /// Stage-1 pivot evaluations of the pivot pipeline are global, not
  /// per-shard — they appear only in the merged `stats`.
  std::vector<NeighborResult> Nearest(PrototypeStoreRef queries,
                                      QueryStats* stats,
                                      std::vector<QueryStats>* shard_stats)
      const;

  /// k nearest prototypes for every query, each closest first. Requires a
  /// searcher family with a k-NN search; others throw std::logic_error.
  std::vector<std::vector<NeighborResult>> KNearest(
      PrototypeStoreRef queries, std::size_t k,
      QueryStats* stats = nullptr) const;

  /// 1-NN label for every query; `labels[i]` is the class of the searcher's
  /// i-th prototype. Throws std::invalid_argument on size mismatch.
  std::vector<int> Classify(PrototypeStoreRef queries,
                            const std::vector<int>& labels,
                            QueryStats* stats = nullptr) const;

  const NearestNeighborSearcher& searcher() const { return *searcher_; }

 private:
  /// Stage 1 of the pivot pipeline: the deduplicated, blocked query x pivot
  /// pass. Fills `row_of[i]` with query i's row ordinal and returns the
  /// row-major unique-query x pivot matrix; counts the evaluations into
  /// `stats`.
  std::vector<double> PivotStagePass(const class PivotStageSearcher& ps,
                                     const PrototypeStore& queries,
                                     std::vector<std::size_t>* row_of,
                                     QueryStats* stats) const;

  const NearestNeighborSearcher* searcher_;
  Options options_;
};

}  // namespace cned

#endif  // CNED_SEARCH_BATCH_ENGINE_H_
