#include "search/pivot_selection.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cned {

namespace {

// Shared body: `StoreT` only needs size() and operator[] over the global
// index space, which both the flat and the sharded store provide — so both
// overloads pick the identical pivot sequence on the same strings.
template <typename StoreT>
std::vector<std::size_t> SelectPivotsMaxMinImpl(const StoreT& prototypes,
                                                const StringDistance& distance,
                                                std::size_t count,
                                                std::size_t first) {
  const std::size_t n = prototypes.size();
  if (count > n) {
    throw std::invalid_argument("SelectPivotsMaxMin: count > prototypes");
  }
  if (first >= n) {
    throw std::invalid_argument("SelectPivotsMaxMin: first out of range");
  }
  std::vector<std::size_t> pivots;
  pivots.reserve(count);
  if (count == 0) return pivots;

  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  std::size_t current = first;
  pivots.push_back(current);
  while (pivots.size() < count) {
    std::size_t next = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (min_dist[i] == 0.0) continue;  // already a pivot (or duplicate)
      double d = distance.Distance(prototypes[current], prototypes[i]);
      min_dist[i] = std::min(min_dist[i], d);
      if (min_dist[i] > best) {
        best = min_dist[i];
        next = i;
      }
    }
    if (best <= 0.0) break;  // all remaining prototypes coincide with pivots
    min_dist[next] = 0.0;
    pivots.push_back(next);
    current = next;
  }
  return pivots;
}

}  // namespace

std::vector<std::size_t> SelectPivotsMaxMin(const PrototypeStore& prototypes,
                                            const StringDistance& distance,
                                            std::size_t count,
                                            std::size_t first) {
  return SelectPivotsMaxMinImpl(prototypes, distance, count, first);
}

std::vector<std::size_t> SelectPivotsMaxMin(
    const ShardedPrototypeStore& prototypes, const StringDistance& distance,
    std::size_t count, std::size_t first) {
  return SelectPivotsMaxMinImpl(prototypes, distance, count, first);
}

std::vector<std::size_t> SelectPivotsMaxMin(
    const std::vector<std::string>& prototypes, const StringDistance& distance,
    std::size_t count, std::size_t first) {
  return SelectPivotsMaxMin(PrototypeStore(prototypes), distance, count,
                            first);
}

std::vector<std::size_t> SelectPivotsRandom(std::size_t n_prototypes,
                                            std::size_t count, Rng& rng) {
  if (count > n_prototypes) {
    throw std::invalid_argument("SelectPivotsRandom: count > prototypes");
  }
  std::vector<std::size_t> all(n_prototypes);
  for (std::size_t i = 0; i < n_prototypes; ++i) all[i] = i;
  rng.Shuffle(all);
  all.resize(count);
  return all;
}

}  // namespace cned
