#include "search/sweep_kernel.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/cpu_features.h"
#include "search/table_quant.h"  // HalfToDouble: the shared exact f16 decode

namespace cned {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the semantics — the ISA variants are
// differentially tested against them bit for bit (tests/sweep_kernel_test,
// bench/micro_sweep_kernel), and they double as the portable fallback and
// the CNED_SWEEP_KERNEL=scalar ablation row.
// ---------------------------------------------------------------------------

void ScalarUpdateLowerDense(double d, const double* row, double* lower,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double g = std::abs(d - row[i]);
    if (g > lower[i]) lower[i] = g;
  }
}

void ScalarUpdateLowerPacked(double d, const double* row,
                             const std::uint32_t* idx, std::uint32_t base,
                             double* lower, std::size_t live) {
  for (std::size_t r = 0; r < live; ++r) {
    const double g = std::abs(d - row[idx[r] - base]);
    if (g > lower[r]) lower[r] = g;
  }
}

// The quantized arm max documented in sweep_kernel.h: given diff = v - d,
// g = max(v - d, (d - v) - gap) with the same tie handling as the vector
// max (the second arm wins ties — irrelevant for the final result, but it
// keeps every variant literally identical).
inline double QuantArmMax(double diff, double gap) {
  const double other = (-diff) - gap;
  return diff > other ? diff : other;
}

void ScalarUpdateLowerDenseF32(double d, const float* row, double gap,
                               double* lower, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(row[i]) - d;
    const double g = QuantArmMax(diff, gap);
    if (g > lower[i]) lower[i] = g;
  }
}

void ScalarUpdateLowerPackedF32(double d, const float* row,
                                const std::uint32_t* idx, std::uint32_t base,
                                double gap, double* lower, std::size_t live) {
  for (std::size_t r = 0; r < live; ++r) {
    const double diff = static_cast<double>(row[idx[r] - base]) - d;
    const double g = QuantArmMax(diff, gap);
    if (g > lower[r]) lower[r] = g;
  }
}

void ScalarUpdateLowerDenseF16(double d, const std::uint16_t* row, double gap,
                               double* lower, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = HalfToDouble(row[i]) - d;
    const double g = QuantArmMax(diff, gap);
    if (g > lower[i]) lower[i] = g;
  }
}

void ScalarUpdateLowerPackedF16(double d, const std::uint16_t* row,
                                const std::uint32_t* idx, std::uint32_t base,
                                double gap, double* lower, std::size_t live) {
  for (std::size_t r = 0; r < live; ++r) {
    const double diff = HalfToDouble(row[idx[r] - base]) - d;
    const double g = QuantArmMax(diff, gap);
    if (g > lower[r]) lower[r] = g;
  }
}

void ScalarUpdateLowerDenseU8(double d, const std::uint8_t* row, double scale,
                              double offset, double gap, double* lower,
                              std::size_t n) {
  const double dq = d - offset;  // once per call, shared by every lane
  for (std::size_t i = 0; i < n; ++i) {
    const double m = static_cast<double>(row[i]) * scale;
    const double diff = m - dq;
    const double g = QuantArmMax(diff, gap);
    if (g > lower[i]) lower[i] = g;
  }
}

void ScalarUpdateLowerPackedU8(double d, const std::uint8_t* row,
                               const std::uint32_t* idx, std::uint32_t base,
                               double scale, double offset, double gap,
                               double* lower, std::size_t live) {
  const double dq = d - offset;
  for (std::size_t r = 0; r < live; ++r) {
    const double m = static_cast<double>(row[idx[r] - base]) * scale;
    const double diff = m - dq;
    const double g = QuantArmMax(diff, gap);
    if (g > lower[r]) lower[r] = g;
  }
}

void ScalarFillAbsDiffBounds(std::size_t x_len, const std::uint32_t* y_lens,
                             std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t y = y_lens[i];
    out[i] = x_len > y ? static_cast<double>(x_len - y)
                       : static_cast<double>(y - x_len);
  }
}

SweepCompactResult ScalarEliminateAndCompact(std::uint32_t* idx, double* lower,
                                             std::size_t live,
                                             std::uint32_t skip,
                                             double bound) {
  SweepCompactResult out;
  std::size_t write = 0;
  for (std::size_t r = 0; r < live; ++r) {
    const std::uint32_t u = idx[r];
    if (u == skip) continue;  // just visited: drop from the candidate set
    const double lb = lower[r];
    if (lb >= bound) continue;  // can at most tie: eliminated
    idx[write] = u;
    lower[write] = lb;
    ++write;
    if (lb < out.next_key) {
      out.next_key = lb;
      out.next = u;
    }
  }
  out.live = write;
  return out;
}

SweepCompactResult ScalarEliminateAndCompactFlagged(
    std::uint32_t* idx, double* lower, const std::int32_t* pivot_rank,
    std::size_t live, std::uint32_t skip, double slack, double bound) {
  SweepCompactResult out;
  std::size_t write = 0;
  for (std::size_t r = 0; r < live; ++r) {
    const std::uint32_t u = idx[r];
    const bool is_pivot = pivot_rank[u] >= 0;
    if (u == skip) {  // just visited: drop from the candidate set
      out.pivots_died += is_pivot ? 1 : 0;
      continue;
    }
    const double lb = lower[r];
    if (lb * slack >= bound) {  // can at most tie: eliminated
      out.pivots_died += is_pivot ? 1 : 0;
      continue;
    }
    idx[write] = u;
    lower[write] = lb;
    ++write;
    if (lb < out.next_key) {
      out.next_key = lb;
      out.next = u;
    }
    if (is_pivot && lb < out.next_pivot_key) {
      out.next_pivot_key = lb;
      out.next_pivot = u;
    }
  }
  out.live = write;
  return out;
}

SweepCompactResult ScalarCompactSeed(const double* lower_dense,
                                     const std::int32_t* rank, std::size_t n,
                                     std::uint32_t base, double bound,
                                     std::uint32_t* idx_out,
                                     double* lower_out) {
  SweepCompactResult out;
  std::size_t write = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (rank[j] >= 0) continue;  // already evaluated by the pivot stage
    const double lb = lower_dense[j];
    if (lb >= bound) continue;
    idx_out[write] = base + static_cast<std::uint32_t>(j);
    lower_out[write] = lb;
    ++write;
    if (lb < out.next_key) {
      out.next_key = lb;
      out.next = base + j;
    }
  }
  out.live = write;
  return out;
}

}  // namespace

const SweepKernels& ScalarSweepKernels() {
  static const SweepKernels kScalar = [] {
    SweepKernels k{};
    k.name = "scalar";
    k.update_lower_dense = ScalarUpdateLowerDense;
    k.update_lower_packed = ScalarUpdateLowerPacked;
    k.update_lower_dense_f32 = ScalarUpdateLowerDenseF32;
    k.update_lower_packed_f32 = ScalarUpdateLowerPackedF32;
    k.update_lower_dense_f16 = ScalarUpdateLowerDenseF16;
    k.update_lower_packed_f16 = ScalarUpdateLowerPackedF16;
    k.update_lower_dense_u8 = ScalarUpdateLowerDenseU8;
    k.update_lower_packed_u8 = ScalarUpdateLowerPackedU8;
    k.fill_absdiff_bounds = ScalarFillAbsDiffBounds;
    k.eliminate_and_compact = ScalarEliminateAndCompact;
    k.eliminate_and_compact_flagged = ScalarEliminateAndCompactFlagged;
    k.compact_seed = ScalarCompactSeed;
    return k;
  }();
  return kScalar;
}

// Defined in the per-ISA translation units, which CMake compiles (with
// their target extension where needed) only for matching architectures.
#if defined(CNED_SWEEP_AVX2)
const SweepKernels& Avx2SweepKernels();
#endif
#if defined(CNED_SWEEP_NEON)
const SweepKernels& NeonSweepKernels();
#endif

std::vector<const SweepKernels*> AvailableSweepKernels() {
  std::vector<const SweepKernels*> kernels{&ScalarSweepKernels()};
#if defined(CNED_SWEEP_AVX2)
  if (CpuHasAvx2()) kernels.push_back(&Avx2SweepKernels());
#endif
#if defined(CNED_SWEEP_NEON)
  if (CpuHasNeon()) kernels.push_back(&NeonSweepKernels());
#endif
  return kernels;
}

namespace {

const SweepKernels* FindKernels(std::string_view name) {
  for (const SweepKernels* k : AvailableSweepKernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const SweepKernels* BestKernels() { return AvailableSweepKernels().back(); }

const SweepKernels* ResolveStartupKernels() {
  const char* env = std::getenv("CNED_SWEEP_KERNEL");
  if (env == nullptr || *env == '\0' ||
      std::string_view(env) == std::string_view("auto")) {
    return BestKernels();
  }
  if (const SweepKernels* k = FindKernels(env)) return k;
  std::fprintf(stderr,
               "cned: CNED_SWEEP_KERNEL=%s is not available on this "
               "build/CPU; using the scalar sweep kernels\n",
               env);
  return &ScalarSweepKernels();
}

std::atomic<const SweepKernels*> g_active{nullptr};

}  // namespace

const SweepKernels& ActiveSweepKernels() {
  const SweepKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: ResolveStartupKernels is deterministic, so concurrent
    // first calls store the same pointer.
    k = ResolveStartupKernels();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

bool SetActiveSweepKernels(std::string_view name) {
  const SweepKernels* k =
      name == std::string_view("auto") ? BestKernels() : FindKernels(name);
  if (k == nullptr) return false;
  g_active.store(k, std::memory_order_release);
  return true;
}

SweepScratch& TlsSweepScratch() {
  thread_local SweepScratch scratch;
  return scratch;
}

std::size_t FillIotaCountPivots(std::uint32_t* idx,
                                const std::int32_t* pivot_rank,
                                std::size_t n) {
  std::size_t pivots = 0;
  for (std::size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<std::uint32_t>(i);
    pivots += pivot_rank[i] >= 0 ? 1 : 0;
  }
  return pivots;
}

void ApplyTombstoneMask(const std::uint64_t* bits, std::size_t n,
                        double* lower) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t w = 0; w < TombstoneWords(n); ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
      lower[(w << 6) + bit] = kInf;
      word &= word - 1;
    }
  }
}

}  // namespace cned
