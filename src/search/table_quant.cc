#include "search/table_quant.h"

#include <cfloat>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace cned {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The largest non-negative finite binary16 code (65504.0).
constexpr std::uint16_t kMaxFiniteHalf = 0x7BFF;

/// A couple of ulps of headroom on a row gap: the kernels compute the
/// (d - v) - gap arm with two correctly rounded subtractions, so the
/// computed arm can exceed the real one by at most a few ulps. Inflating
/// the gap by the same margin keeps the computed bound at or below the
/// exact |d - t| everywhere the build saw — and any residual ulp-scale
/// overshoot is far below the separation between distinct distance values
/// (integer for d_E, rationals with >= 1/(len_a * len_b) gaps for the
/// normalised family), so it can never flip an elimination decision.
double InflateGap(double gap) {
  if (gap <= 0.0) return gap < 0.0 ? 0.0 : gap;
  gap *= 1.0 + 8.0 * DBL_EPSILON;
  gap = std::nextafter(gap, kInf);
  return gap;
}

}  // namespace

const char* TablePrecisionName(TablePrecision precision) {
  switch (precision) {
    case TablePrecision::kF64:
      return "f64";
    case TablePrecision::kF32:
      return "f32";
    case TablePrecision::kF16:
      return "f16";
    case TablePrecision::kU8:
      return "u8";
  }
  return "?";
}

bool ParseTablePrecision(std::string_view name, TablePrecision* out) {
  if (name == "f64") {
    *out = TablePrecision::kF64;
  } else if (name == "f32") {
    *out = TablePrecision::kF32;
  } else if (name == "f16") {
    *out = TablePrecision::kF16;
  } else if (name == "u8") {
    *out = TablePrecision::kU8;
  } else {
    return false;
  }
  return true;
}

std::size_t TablePrecisionBytes(TablePrecision precision) {
  switch (precision) {
    case TablePrecision::kF64:
      return 8;
    case TablePrecision::kF32:
      return 4;
    case TablePrecision::kF16:
      return 2;
    case TablePrecision::kU8:
      return 1;
  }
  return 8;
}

TablePrecision DefaultTablePrecision() {
  const char* env = std::getenv("CNED_TABLE_PRECISION");
  if (env == nullptr || *env == '\0') return TablePrecision::kF64;
  TablePrecision precision = TablePrecision::kF64;
  if (!ParseTablePrecision(env, &precision)) {
    std::fprintf(stderr,
                 "cned: CNED_TABLE_PRECISION=%s is not a precision name "
                 "(f64, f32, f16, u8); using f64\n",
                 env);
    return TablePrecision::kF64;
  }
  return precision;
}

std::uint16_t DoubleToHalfRoundDown(double t) {
  if (!(t > 0.0)) return 0;  // t is a distance: >= 0, never NaN
  if (HalfToDouble(kMaxFiniteHalf) <= t) return kMaxFiniteHalf;
  // Non-negative half codes decode monotonically (subnormals, then
  // normals), so the largest code with decode <= t is a 15-step binary
  // search — build-time only, and obviously exact.
  std::uint16_t lo = 0, hi = kMaxFiniteHalf;  // decode(lo) <= t < decode(hi)
  while (hi - lo > 1) {
    const std::uint16_t mid = static_cast<std::uint16_t>((lo + hi) / 2);
    if (HalfToDouble(mid) <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

float DoubleToFloatRoundDown(double t) {
  float f = static_cast<float>(t);  // round-to-nearest
  if (static_cast<double>(f) > t) {
    f = std::nextafterf(f, -std::numeric_limits<float>::infinity());
  }
  if (std::isinf(f)) f = FLT_MAX;  // t beyond float range: saturate
  return f;
}

void QuantRowEncoder::Scan(const double* values, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = values[i];
    if (!scanned_any_) {
      lo_ = hi_ = v;
      scanned_any_ = true;
    } else {
      if (v < lo_) lo_ = v;
      if (v > hi_) hi_ = v;
    }
  }
}

void QuantRowEncoder::Prepare(TablePrecision precision) {
  precision_ = precision;
  prepared_ = true;
  if (precision == TablePrecision::kU8) {
    meta_.offset = scanned_any_ ? lo_ : 0.0;
    const double range = scanned_any_ ? hi_ - lo_ : 0.0;
    meta_.scale = range > 0.0 ? range / 255.0 : 0.0;
  }
}

void QuantRowEncoder::Encode(const double* values, std::size_t n, void* out) {
  if (!prepared_) {
    throw std::logic_error("QuantRowEncoder: Encode before Prepare");
  }
  auto track = [this](double residual) {
    if (residual > meta_.gap) meta_.gap = residual;
  };
  switch (precision_) {
    case TablePrecision::kF64:
      throw std::logic_error("QuantRowEncoder: f64 rows are not encoded");
    case TablePrecision::kF32: {
      float* o = static_cast<float*>(out);
      for (std::size_t i = 0; i < n; ++i) {
        const float v = DoubleToFloatRoundDown(values[i]);
        o[i] = v;
        track(values[i] - static_cast<double>(v));
      }
      return;
    }
    case TablePrecision::kF16: {
      std::uint16_t* o = static_cast<std::uint16_t*>(out);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint16_t h = DoubleToHalfRoundDown(values[i]);
        o[i] = h;
        track(values[i] - HalfToDouble(h));
      }
      return;
    }
    case TablePrecision::kU8: {
      std::uint8_t* o = static_cast<std::uint8_t*>(out);
      const double scale = meta_.scale;
      const double offset = meta_.offset;
      // The decoded value as the kernels effectively see it: one rounded
      // multiply (the per-lane code * scale) plus the row offset. The
      // round-then-fix-up loop below enforces decode <= t against THIS
      // arithmetic, not against real-number division.
      auto decode = [&](int c) {
        return offset + static_cast<double>(c) * scale;
      };
      for (std::size_t i = 0; i < n; ++i) {
        const double t = values[i];
        int c = 0;
        if (scale > 0.0) {
          double guess = (t - offset) / scale;
          if (guess < 0.0) guess = 0.0;
          if (guess > 255.0) guess = 255.0;
          c = static_cast<int>(guess);
          while (c > 0 && decode(c) > t) --c;
          while (c < 255 && decode(c + 1) <= t) ++c;
        }
        o[i] = static_cast<std::uint8_t>(c);
        track(t - decode(c));
      }
      return;
    }
  }
}

QuantRowMeta QuantRowEncoder::Finish() const {
  QuantRowMeta m = meta_;
  m.gap = InflateGap(m.gap);
  return m;
}

}  // namespace cned
