#ifndef CNED_SEARCH_SHARDED_SEARCHER_H_
#define CNED_SEARCH_SHARDED_SEARCHER_H_

#include <cstddef>
#include <string_view>

#include "search/nn_searcher.h"

namespace cned {

/// Capability interface of searchers that partition their prototypes into
/// shards and can attribute per-query evaluation costs to them — the
/// counterpart of `PivotStageSearcher` for the batch engine's per-shard
/// accounting, keeping the engine independent of any concrete sharded
/// index (today `ShardedLaesa`; tomorrow a distributed tier's router).
///
/// `shard_stats` always points at `shard_count()` caller-owned entries;
/// implementations accumulate each visited candidate's evaluation onto its
/// home shard. Stage-1 pivot evaluations of the engine's pivot pipeline
/// are global, not per-shard, and are accounted by the stage itself.
class ShardStatsSearcher {
 public:
  virtual ~ShardStatsSearcher() = default;

  /// Number of shards the per-query costs split across.
  virtual std::size_t shard_count() const = 0;

  /// `Nearest` with per-shard cost attribution.
  virtual NeighborResult NearestWithShardStats(std::string_view query,
                                               QueryStats* stats,
                                               QueryStats* shard_stats)
      const = 0;

  /// Row-consuming variant for the pivot pipeline: `row` comes from the
  /// same object's `PivotStageSearcher` stage.
  virtual NeighborResult NearestWithPivotRowAndShardStats(
      std::string_view query, const double* row, QueryStats* stats,
      QueryStats* shard_stats) const = 0;
};

}  // namespace cned

#endif  // CNED_SEARCH_SHARDED_SEARCHER_H_
