#ifndef CNED_COMMON_MAPPED_FILE_H_
#define CNED_COMMON_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

namespace cned {

/// Read-only RAII memory mapping of a whole file.
///
/// The zero-copy half of the serving tier: a snapshot written in the
/// 64-byte-aligned binary format (common/binary_io.h) is mapped once and
/// its sections are used in place — startup cost is O(1) in the index size
/// instead of the O(index) read+copy of the buffered loaders, and the pages
/// live in the kernel page cache, shared across every serving process that
/// maps the same file (the usearch / pg_embedding serving model).
///
/// Instances are created through `Open` and handed around as
/// `std::shared_ptr<MappedFile>`: every store or index holding views into
/// the mapping co-owns it, so the mapping outlives all views regardless of
/// destruction order. The mapping is immutable (PROT_READ) — writing
/// through a view is undefined, which is exactly the contract the
/// view-backed stores expose (`const char*` / `const double*` only).
class MappedFile {
 public:
  /// Maps `path` read-only. Throws std::runtime_error when the file cannot
  /// be opened, stat'ed or mapped. An empty file maps to a null, zero-size
  /// view (callers see it as truncated input).
  static std::shared_ptr<MappedFile> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Base of the mapping. Page-aligned, so every 64-byte-aligned file
  /// offset is also 64-byte aligned in memory — the property the in-place
  /// `double`/`uint64` section views rely on.
  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile() = default;

  const char* data_ = nullptr;  // non-POSIX builds alias a heap buffer
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace cned

#endif  // CNED_COMMON_MAPPED_FILE_H_
