#ifndef CNED_COMMON_ALIGNED_BUFFER_H_
#define CNED_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <type_traits>

namespace cned {

/// A 64-byte-aligned array of a trivial type — the scratch slabs the SIMD
/// sweep kernels stream over.
///
/// The alignment puts the packed candidate arrays at the start of a cache
/// line, so a flat sweep's vector loads never split lines (the sharded
/// sweep hands kernels mid-slab shard segments, which is why the kernels
/// themselves use unaligned load instructions — on current cores those are
/// free when the address happens to be aligned, which the slab start
/// guarantees).
///
/// Scratch semantics, deliberately narrower than std::vector: resize() does
/// NOT value-initialise and does NOT preserve contents across a growing
/// reallocation. Every sweep fully rewrites its slab prefix before reading
/// it, and the thread-local scratch only ever grows to the largest store
/// seen, so neither guarantee would be used — dropping them removes an
/// O(n) touch per query.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivial_v<T>,
                "AlignedBuffer is raw storage for trivial types only");

 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;
  ~AlignedBuffer() { std::free(data_); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Makes data() valid for n elements. Contents are indeterminate after a
  /// capacity-growing call (see class comment).
  void resize(std::size_t n) {
    if (n > capacity_) {
      std::free(data_);
      data_ = nullptr;
      capacity_ = 0;
      // aligned_alloc requires the size to be a multiple of the alignment.
      const std::size_t bytes =
          (n * sizeof(T) + kAlignment - 1) / kAlignment * kAlignment;
      data_ = static_cast<T*>(std::aligned_alloc(kAlignment, bytes));
      if (data_ == nullptr) throw std::bad_alloc();
      capacity_ = bytes / sizeof(T);
    }
    size_ = n;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace cned

#endif  // CNED_COMMON_ALIGNED_BUFFER_H_
