#ifndef CNED_COMMON_STOPWATCH_H_
#define CNED_COMMON_STOPWATCH_H_

#include <chrono>

namespace cned {

/// Wall-clock stopwatch for the experiment harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the clock.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cned

#endif  // CNED_COMMON_STOPWATCH_H_
