#ifndef CNED_COMMON_HARMONIC_H_
#define CNED_COMMON_HARMONIC_H_

#include <cstddef>
#include <vector>

namespace cned {

/// Cached prefix sums of the harmonic series, H(n) = sum_{i=1}^{n} 1/i.
///
/// The contextual edit distance charges 1/i per operation performed on a
/// string of length i; canonical paths therefore cost harmonic *segments*
/// H(b) - H(a). This table makes evaluating the closed-form path cost O(1)
/// per candidate edit length.
///
/// Instances grow on demand and are cheap to copy around by reference; the
/// process-wide table returned by `GlobalHarmonic()` is safe to use from a
/// single thread per instance (benches and tests are single-threaded per
/// distance object; create local tables for concurrent use).
class HarmonicTable {
 public:
  HarmonicTable() { prefix_.push_back(0.0); }

  /// H(n); grows the table as needed. H(0) == 0.
  double H(std::size_t n) {
    if (n >= prefix_.size()) Grow(n);
    return prefix_[n];
  }

  /// sum_{i=from}^{to} 1/i == H(to) - H(from-1). Zero when from > to.
  /// `from` must be >= 1.
  double Range(std::size_t from, std::size_t to) {
    if (from > to) return 0.0;
    return H(to) - H(from - 1);
  }

  /// Number of cached entries (largest n with a cached H(n), plus one).
  std::size_t size() const { return prefix_.size(); }

 private:
  void Grow(std::size_t n);

  std::vector<double> prefix_;
};

/// Process-wide shared table (not thread-safe; see class comment).
HarmonicTable& GlobalHarmonic();

/// The calling thread's private table. The contextual kernels use this so
/// they can run concurrently from `ParallelFor` bodies (index builds,
/// DistanceMatrix) without racing on `Grow`'s reallocation.
HarmonicTable& ThreadLocalHarmonic();

}  // namespace cned

#endif  // CNED_COMMON_HARMONIC_H_
