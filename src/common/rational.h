#ifndef CNED_COMMON_RATIONAL_H_
#define CNED_COMMON_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace cned {

/// Exact rational arithmetic on 64-bit numerator/denominator with 128-bit
/// intermediates.
///
/// The contextual edit distance is a sum of unit fractions 1/i, so every
/// value it can take on short strings is a rational whose denominator divides
/// lcm(1..L) for the maximal intermediate string length L. lcm(1..46) still
/// fits in a signed 64-bit integer, which makes `Rational` sufficient for
/// exact metric-property testing on strings of total length up to ~40 — far
/// beyond what exhaustive triangle-inequality sweeps can enumerate anyway.
///
/// All operations reduce to lowest terms and throw `std::overflow_error` if
/// the reduced result does not fit in 64 bits. The value is always kept with
/// a positive denominator.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}

  /// Integer value `n`.
  constexpr explicit Rational(std::int64_t n) : num_(n), den_(1) {}

  /// The fraction `num/den`. `den` must be non-zero; the sign is normalised
  /// onto the numerator and the fraction is reduced.
  Rational(std::int64_t num, std::int64_t den);

  /// The unit fraction 1/i (i > 0).
  static Rational Unit(std::int64_t i) { return Rational(1, i); }

  /// The harmonic segment sum_{i=from}^{to} 1/i. Returns zero when
  /// `from > to`. Both bounds must be positive.
  static Rational HarmonicRange(std::int64_t from, std::int64_t to);

  std::int64_t numerator() const { return num_; }
  std::int64_t denominator() const { return den_; }

  /// Closest double value.
  double ToDouble() const;

  /// Renders as "num/den" (or "num" when the denominator is 1).
  std::string ToString() const;

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational operator-() const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return !(*this < o); }

 private:
  // Builds from reduced-or-not 128-bit parts, reducing and range-checking.
  static Rational FromInt128(__int128 num, __int128 den);

  std::int64_t num_;
  std::int64_t den_;  // > 0 always
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace cned

#endif  // CNED_COMMON_RATIONAL_H_
