#ifndef CNED_COMMON_PARALLEL_H_
#define CNED_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace cned {

/// Minimal data-parallel loop: runs `body(i)` for i in [0, n) across
/// `threads` workers (hardware concurrency by default, capped at n).
/// `body` must be safe to call concurrently for distinct i. Blocks until
/// all iterations finish. Exceptions escaping `body` terminate the process
/// (as with raw std::thread) — keep bodies noexcept in practice.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threads = 0);

}  // namespace cned

#endif  // CNED_COMMON_PARALLEL_H_
