#ifndef CNED_COMMON_PARALLEL_H_
#define CNED_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace cned {

/// Minimal data-parallel loop: runs `body(i)` for i in [0, n) across
/// `threads` workers (hardware concurrency by default, capped at n).
/// `body` must be safe to call concurrently for distinct i. Blocks until
/// all iterations finish. If bodies throw, the first exception (by capture
/// order) is rethrown on the calling thread after every worker has joined;
/// the remaining iterations may or may not have run, so callers treating
/// the loop as transactional must discard partial output on catch.
///
/// Reentrant calls run inline: a body that itself calls ParallelFor (the
/// batch engine fanning out queries whose sharded searcher fans out over
/// shards) executes the nested loop serially on the worker thread instead
/// of spawning threads-of-threads. Results are identical either way; only
/// the top-level loop multiplies across cores.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threads = 0);

}  // namespace cned

#endif  // CNED_COMMON_PARALLEL_H_
