#ifndef CNED_COMMON_CPU_FEATURES_H_
#define CNED_COMMON_CPU_FEATURES_H_

namespace cned {

/// Runtime CPU feature probes for the dispatched SIMD kernels.
///
/// The library is compiled portably (no global -march flags); only the
/// per-ISA kernel translation units are built with their target extension,
/// and a kernel variant is selected at startup iff the running CPU actually
/// supports it. These probes are the selection gate: CPUID-backed on x86
/// (via __builtin_cpu_supports), getauxval/HWCAP on 32-bit ARM Linux, and
/// constant-true on AArch64 where AdvSIMD is architecturally mandatory.
/// Results are cached after the first call; all probes are thread-safe.

/// True when the running CPU supports AVX2 (x86 only; false elsewhere).
bool CpuHasAvx2();

/// True when the running CPU supports NEON/AdvSIMD (ARM only; false
/// elsewhere).
bool CpuHasNeon();

}  // namespace cned

#endif  // CNED_COMMON_CPU_FEATURES_H_
