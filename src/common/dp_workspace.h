#ifndef CNED_COMMON_DP_WORKSPACE_H_
#define CNED_COMMON_DP_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cned {

/// Reusable scratch buffers for the dynamic-programming distance kernels.
///
/// Every hot kernel (the contextual layered DP, Levenshtein and its banded
/// variant, the Marzal-Vidal length DP, the weighted edit DP) used to heap-
/// allocate fresh tables on each call — two allocations per evaluation in
/// the contextual case, millions of evaluations per index build. The
/// kernels now borrow these buffers instead: `assign`/`resize` reuse the
/// existing capacity, so after the first few calls of a thread the steady-
/// state path performs zero allocations.
///
/// One instance exists per thread (see `TlsDpWorkspace`), which makes every
/// kernel safe to run concurrently from `ParallelFor` bodies without
/// sharing or locking.
struct DpWorkspace {
  // Contextual layered DP: two (m+1) x (n+1) layer planes.
  std::vector<std::int32_t> layer_a;
  std::vector<std::int32_t> layer_b;
  // Marzal-Vidal length DP: two (m+1) x (n+1) weight planes.
  std::vector<double> plane_a;
  std::vector<double> plane_b;
  // Rolling rows for the Levenshtein / weighted-Levenshtein kernels.
  std::vector<std::size_t> int_row;
  std::vector<double> weight_row;
  // Paired (edit distance, max insertions) rows for the d_C,h heuristic.
  std::vector<std::uint32_t> dist_row;
  std::vector<std::uint32_t> dist_row_prev;
  std::vector<std::int32_t> ins_row;
  std::vector<std::int32_t> ins_row_prev;
};

/// The calling thread's workspace. Buffers grow monotonically with the
/// largest problem seen on the thread and are never shrunk.
DpWorkspace& TlsDpWorkspace();

}  // namespace cned

#endif  // CNED_COMMON_DP_WORKSPACE_H_
