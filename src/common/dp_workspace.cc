#include "common/dp_workspace.h"

namespace cned {

DpWorkspace& TlsDpWorkspace() {
  thread_local DpWorkspace workspace;
  return workspace;
}

}  // namespace cned
