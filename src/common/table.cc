#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cned {

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::AddRow: cell count != header count");
  }
  rows_.push_back(std::move(cells));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace cned
