#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace cned {

namespace {
// True on threads spawned by an enclosing ParallelFor — nested calls then
// run inline rather than oversubscribing with threads-of-threads.
thread_local bool g_in_parallel_worker = false;
}  // namespace

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threads) {
  if (n == 0) return;
  if (g_in_parallel_worker) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  // First worker exception wins; the flag keeps later losers from racing on
  // the exception_ptr slot and doubles as a cheap "stop dealing iterations"
  // signal so a throw doesn't leave the other workers grinding through the
  // rest of the loop.
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      g_in_parallel_worker = true;
      for (;;) {
        if (failed.load(std::memory_order_acquire)) return;
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          if (!failed.exchange(true, std::memory_order_acq_rel)) {
            error = std::current_exception();
          }
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace cned
