#ifndef CNED_COMMON_CONFIG_H_
#define CNED_COMMON_CONFIG_H_

#include <cstdint>
#include <string>

namespace cned {

/// Environment-driven knobs for the experiment harnesses.
///
/// Every bench binary reads its workload sizes through these helpers so a
/// single environment variable can scale the whole reproduction up to the
/// paper's full sizes or down for smoke runs:
///
///   CNED_SCALE       multiplier applied to default sample counts (default 1.0)
///   CNED_SEED        master RNG seed (default 20080401)
///   CNED_<NAME>      integer override for a specific knob
///
/// Example: `CNED_SCALE=0.1 ./bench/fig3_laesa_dictionary` runs a 10% sweep.
class Config {
 public:
  /// Integer knob: value of env var CNED_<name> if set, else
  /// round(default_value * CNED_SCALE).
  static std::int64_t ScaledInt(const std::string& name,
                                std::int64_t default_value);

  /// Integer knob without scaling (exact override or default).
  static std::int64_t Int(const std::string& name, std::int64_t default_value);

  /// Master seed (CNED_SEED or the default).
  static std::uint64_t Seed();

  /// The global scale factor (CNED_SCALE or 1.0).
  static double Scale();
};

}  // namespace cned

#endif  // CNED_COMMON_CONFIG_H_
