#include "common/binary_io.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/crc32.h"

namespace cned {
namespace {

constexpr char kZeros[kBinaryAlignment] = {};

/// Checks the last 64 bytes of a payload-plus-footer image: returns the
/// payload size (total minus footer) and the stored CRC, throwing when the
/// file is too short to hold a footer or the footer magic is absent. The
/// footer always occupies exactly the final 64 bytes, so truncating a file
/// anywhere destroys it — truncation is caught here even when the payload
/// counts would still "fit".
std::size_t CheckFooter(const char* data, std::size_t size,
                        std::uint32_t* stored_crc, const std::string& path) {
  if (size < kBinaryAlignment) {
    throw std::runtime_error(
        "binary_io: missing checksum footer (" + path + ")");
  }
  const char* footer = data + size - kBinaryAlignment;
  if (std::memcmp(footer, kBinaryFooterMagic, 8) != 0) {
    throw std::runtime_error(
        "binary_io: missing checksum footer (" + path + ")");
  }
  std::memcpy(stored_crc, footer + 8, sizeof(*stored_crc));
  return size - kBinaryAlignment;
}

std::string Describe(const std::string& path, const char* what) {
  return "binary_io: " + std::string(what) + " (" + path + ")";
}

/// Validates a 64-byte header already in memory and extracts the payload
/// counts — the one implementation both the copying and the mapped reader
/// share, so their magic/version errors are identical.
std::vector<std::uint64_t> ParseHeader(const char* header, const char magic[8],
                                       std::uint32_t min_version,
                                       std::uint32_t max_version,
                                       std::uint32_t* version_out,
                                       const std::string& path) {
  if (std::memcmp(header, magic, 8) != 0) {
    throw std::runtime_error(
        Describe(path, "bad magic (not a file of this type)"));
  }
  std::uint32_t version = 0;
  std::memcpy(&version, header + 8, sizeof(version));
  if (version < min_version || version > max_version) {
    const std::string reads =
        min_version == max_version
            ? "version " + std::to_string(min_version)
            : "versions " + std::to_string(min_version) + ".." +
                  std::to_string(max_version);
    throw std::runtime_error(
        "binary_io: format version mismatch: file has version " +
        std::to_string(version) + ", this build reads " + reads + " (" + path +
        ")");
  }
  if (version_out != nullptr) *version_out = version;
  std::vector<std::uint64_t> counts(kBinaryHeaderCounts);
  std::memcpy(counts.data(), header + 16,
              kBinaryHeaderCounts * sizeof(std::uint64_t));
  return counts;
}

/// Zero padding between the cursor and the next 64-byte boundary.
std::size_t PadTo(std::size_t offset) {
  const std::size_t rem = offset % kBinaryAlignment;
  return rem == 0 ? 0 : kBinaryAlignment - rem;
}

}  // namespace

bool SnapshotVerifyEnabled() {
  const char* env = std::getenv("CNED_SNAPSHOT_VERIFY");
  if (env == nullptr) return false;
  const std::string v(env);
  return v == "1" || v == "true" || v == "on";
}

void VerifySnapshotChecksum(const std::string& path) {
  // One mapped pass; works on any file BinaryWriter finished, regardless of
  // which reader will consume it afterwards.
  MappedReader reader(MappedFile::Open(path), /*verify_checksum=*/true);
}

struct BinaryWriter::Impl {
  std::ofstream out;
};

BinaryWriter::BinaryWriter(const std::string& path)
    : impl_(new Impl), path_(path) {
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    impl_ = nullptr;
    throw std::runtime_error(Describe(path, "cannot open for writing"));
  }
}

BinaryWriter::~BinaryWriter() { delete impl_; }

void BinaryWriter::Header(const char magic[8], std::uint32_t version,
                          const std::uint64_t* counts, std::size_t count_n) {
  if (count_n > kBinaryHeaderCounts) {
    throw std::invalid_argument(Describe(path_, "too many header counts"));
  }
  char header[kBinaryAlignment] = {};
  std::memcpy(header, magic, 8);
  std::memcpy(header + 8, &version, sizeof(version));
  std::memcpy(header + 16, counts, count_n * sizeof(std::uint64_t));
  Raw(header, sizeof(header));
}

void BinaryWriter::Raw(const void* data, std::size_t bytes) {
  if (bytes == 0) return;  // empty sections pass a null data pointer
  impl_->out.write(static_cast<const char*>(data),
                   static_cast<std::streamsize>(bytes));
  if (!impl_->out) throw std::runtime_error(Describe(path_, "write failed"));
  crc_ = Crc32(data, bytes, crc_);
  offset_ += bytes;
}

void BinaryWriter::Align() {
  const std::size_t rem = offset_ % kBinaryAlignment;
  if (rem != 0) Raw(kZeros, kBinaryAlignment - rem);
}

void BinaryWriter::Finish() {
  // Pad the payload to a whole number of alignment blocks, then append the
  // footer. The footer bytes are excluded from the CRC they carry, and are
  // written through the stream directly so `crc_`/`offset_` keep describing
  // the payload alone.
  Align();
  char footer[kBinaryAlignment] = {};
  std::memcpy(footer, kBinaryFooterMagic, 8);
  std::memcpy(footer + 8, &crc_, sizeof(crc_));
  impl_->out.write(footer, sizeof(footer));
  impl_->out.flush();
  impl_->out.close();
  if (impl_->out.fail()) {
    throw std::runtime_error(Describe(path_, "flush/close failed"));
  }
}

BinaryReader::BinaryReader(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error(Describe(path, "cannot open for reading"));
  const std::streamsize size = in.tellg();
  in.seekg(0);
  buffer_.resize(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(buffer_.data(), size);
    if (!in) throw std::runtime_error(Describe(path, "read failed"));
  }
  // The copying loader reads every byte anyway, so it always verifies the
  // checksum: a bit flip anywhere in the payload fails here, before any
  // structural validation interprets the corrupted values.
  std::uint32_t stored = 0;
  const std::size_t payload =
      CheckFooter(buffer_.data(), buffer_.size(), &stored, path_);
  if (Crc32(buffer_.data(), payload) != stored) {
    throw std::runtime_error(Describe(path_, "checksum mismatch"));
  }
  buffer_.resize(payload);  // sections must never read into the footer
}

std::vector<std::uint64_t> BinaryReader::Header(
    const char magic[8], std::uint32_t expected_version) {
  return Header(magic, expected_version, expected_version, nullptr);
}

std::vector<std::uint64_t> BinaryReader::Header(const char magic[8],
                                                std::uint32_t min_version,
                                                std::uint32_t max_version,
                                                std::uint32_t* version_out) {
  char header[kBinaryAlignment];
  Raw(header, sizeof(header));
  return ParseHeader(header, magic, min_version, max_version, version_out,
                     path_);
}

void BinaryReader::RequireArray(std::uint64_t count,
                                std::size_t elem_size) const {
  // Cumulative extent check: the section sits behind its alignment padding,
  // so the bytes available to it are the unread tail minus that padding. A
  // division-form comparison keeps count * elem_size from overflowing.
  const std::size_t pad = PadTo(offset_);
  const std::size_t avail = remaining() < pad ? 0 : remaining() - pad;
  if (elem_size != 0 && count > avail / elem_size) {
    throw std::runtime_error(Describe(path_, "truncated file"));
  }
}

void BinaryReader::Raw(void* out, std::size_t bytes) {
  if (bytes == 0) return;  // empty sections pass a null out pointer
  if (bytes > remaining()) {
    throw std::runtime_error(Describe(path_, "truncated file"));
  }
  std::memcpy(out, buffer_.data() + offset_, bytes);
  offset_ += bytes;
}

void BinaryReader::Align() {
  const std::size_t pad = PadTo(offset_);
  if (pad != 0) {
    if (pad > remaining()) {
      throw std::runtime_error(Describe(path_, "truncated file"));
    }
    offset_ += pad;
  }
}

MappedReader::MappedReader(std::shared_ptr<MappedFile> file)
    : MappedReader(std::move(file), SnapshotVerifyEnabled()) {}

MappedReader::MappedReader(std::shared_ptr<MappedFile> file,
                           bool verify_checksum)
    : file_(std::move(file)) {
  if (file_ == nullptr) {
    throw std::invalid_argument("binary_io: MappedReader needs a file");
  }
  data_ = file_->data();
  size_ = file_->size();
  path_ = file_->path();
  // Footer presence is always validated (and the footer removed from the
  // section space, so no view can alias it); hashing the payload is the
  // caller's choice — an eager whole-file pass would defeat the
  // O(validation) startup the mapped loaders exist for.
  std::uint32_t stored = 0;
  size_ = CheckFooter(data_, size_, &stored, path_);
  if (verify_checksum && Crc32(data_, size_) != stored) {
    throw std::runtime_error(Describe(path_, "checksum mismatch"));
  }
}

void MappedReader::VerifyChecksum() const {
  // size_ already excludes the footer; the stored CRC sits right after it.
  std::uint32_t stored = 0;
  std::memcpy(&stored, data_ + size_ + 8, sizeof(stored));
  if (Crc32(data_, size_) != stored) {
    throw std::runtime_error(Describe(path_, "checksum mismatch"));
  }
}

std::vector<std::uint64_t> MappedReader::Header(
    const char magic[8], std::uint32_t expected_version) {
  return Header(magic, expected_version, expected_version, nullptr);
}

std::vector<std::uint64_t> MappedReader::Header(const char magic[8],
                                                std::uint32_t min_version,
                                                std::uint32_t max_version,
                                                std::uint32_t* version_out) {
  // The header is a 64-byte section of its own: skip the padding in front
  // of it and bounds-check before touching the bytes.
  const char* header =
      static_cast<const char*>(Section(kBinaryAlignment, 1));
  return ParseHeader(header, magic, min_version, max_version, version_out,
                     path_);
}

const void* MappedReader::Section(std::uint64_t count, std::size_t elem_size) {
  // Every check happens before the section pointer is formed: a corrupt
  // count or a truncated tail must fail as "truncated file", never as an
  // out-of-bounds view.
  const std::size_t pad = PadTo(offset_);
  if (pad > remaining()) {
    // The file ends inside the padding — the section's aligned start would
    // lie beyond EOF.
    throw std::runtime_error(Describe(path_, "truncated file"));
  }
  const std::size_t start = offset_ + pad;
  // Division form: count * elem_size is only computed once it provably fits
  // in the tail, so the multiplication cannot overflow.
  if (elem_size != 0 && count > (size_ - start) / elem_size) {
    throw std::runtime_error(Describe(path_, "truncated file"));
  }
  const char* ptr = data_ + start;
  if (elem_size != 0 &&
      reinterpret_cast<std::uintptr_t>(ptr) % elem_size != 0) {
    // Unreachable for well-formed maps (the mapping base is page-aligned
    // and `start` is 64-byte aligned); guards the heap fallback.
    throw std::runtime_error(Describe(path_, "misaligned section"));
  }
  offset_ = start + static_cast<std::size_t>(count) * elem_size;
  return ptr;
}

}  // namespace cned
