#include "common/binary_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace cned {
namespace {

constexpr char kZeros[kBinaryAlignment] = {};

std::string Describe(const std::string& path, const char* what) {
  return "binary_io: " + std::string(what) + " (" + path + ")";
}

}  // namespace

struct BinaryWriter::Impl {
  std::ofstream out;
};

BinaryWriter::BinaryWriter(const std::string& path)
    : impl_(new Impl), path_(path) {
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    impl_ = nullptr;
    throw std::runtime_error(Describe(path, "cannot open for writing"));
  }
}

BinaryWriter::~BinaryWriter() { delete impl_; }

void BinaryWriter::Header(const char magic[8], std::uint32_t version,
                          const std::uint64_t* counts, std::size_t count_n) {
  if (count_n > kBinaryHeaderCounts) {
    throw std::invalid_argument(Describe(path_, "too many header counts"));
  }
  char header[kBinaryAlignment] = {};
  std::memcpy(header, magic, 8);
  std::memcpy(header + 8, &version, sizeof(version));
  std::memcpy(header + 16, counts, count_n * sizeof(std::uint64_t));
  Raw(header, sizeof(header));
}

void BinaryWriter::Raw(const void* data, std::size_t bytes) {
  impl_->out.write(static_cast<const char*>(data),
                   static_cast<std::streamsize>(bytes));
  if (!impl_->out) throw std::runtime_error(Describe(path_, "write failed"));
  offset_ += bytes;
}

void BinaryWriter::Align() {
  const std::size_t rem = offset_ % kBinaryAlignment;
  if (rem != 0) Raw(kZeros, kBinaryAlignment - rem);
}

void BinaryWriter::Finish() {
  impl_->out.flush();
  impl_->out.close();
  if (impl_->out.fail()) {
    throw std::runtime_error(Describe(path_, "flush/close failed"));
  }
}

BinaryReader::BinaryReader(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error(Describe(path, "cannot open for reading"));
  const std::streamsize size = in.tellg();
  in.seekg(0);
  buffer_.resize(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(buffer_.data(), size);
    if (!in) throw std::runtime_error(Describe(path, "read failed"));
  }
}

std::vector<std::uint64_t> BinaryReader::Header(
    const char magic[8], std::uint32_t expected_version) {
  char header[kBinaryAlignment];
  Raw(header, sizeof(header));
  if (std::memcmp(header, magic, 8) != 0) {
    throw std::runtime_error(
        Describe(path_, "bad magic (not a file of this type)"));
  }
  std::uint32_t version = 0;
  std::memcpy(&version, header + 8, sizeof(version));
  if (version != expected_version) {
    throw std::runtime_error(
        "binary_io: format version mismatch: file has version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(expected_version) + " (" + path_ + ")");
  }
  std::vector<std::uint64_t> counts(kBinaryHeaderCounts);
  std::memcpy(counts.data(), header + 16,
              kBinaryHeaderCounts * sizeof(std::uint64_t));
  return counts;
}

void BinaryReader::RequireArray(std::uint64_t count,
                                std::size_t elem_size) const {
  if (elem_size != 0 && count > remaining() / elem_size) {
    throw std::runtime_error(Describe(path_, "truncated file"));
  }
}

void BinaryReader::Raw(void* out, std::size_t bytes) {
  if (bytes > remaining()) {
    throw std::runtime_error(Describe(path_, "truncated file"));
  }
  std::memcpy(out, buffer_.data() + offset_, bytes);
  offset_ += bytes;
}

void BinaryReader::Align() {
  const std::size_t rem = offset_ % kBinaryAlignment;
  if (rem != 0) {
    const std::size_t pad = kBinaryAlignment - rem;
    if (pad > remaining()) {
      throw std::runtime_error(Describe(path_, "truncated file"));
    }
    offset_ += pad;
  }
}

}  // namespace cned
