#include "common/harmonic.h"

namespace cned {

void HarmonicTable::Grow(std::size_t n) {
  prefix_.reserve(n + 1);
  for (std::size_t i = prefix_.size(); i <= n; ++i) {
    prefix_.push_back(prefix_.back() + 1.0 / static_cast<double>(i));
  }
}

HarmonicTable& GlobalHarmonic() {
  static HarmonicTable table;
  return table;
}

HarmonicTable& ThreadLocalHarmonic() {
  thread_local HarmonicTable table;
  return table;
}

}  // namespace cned
