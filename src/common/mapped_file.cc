#include "common/mapped_file.h"

#include <stdexcept>

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cned {
namespace {

std::string Describe(const std::string& path, const char* what) {
  return "mapped_file: " + std::string(what) + " (" + path + ")";
}

}  // namespace

std::shared_ptr<MappedFile> MappedFile::Open(const std::string& path) {
  // Private constructor: build through new, own through shared_ptr.
  std::shared_ptr<MappedFile> file(new MappedFile);
  file->path_ = path;
#if defined(_WIN32)
  // Portability fallback: no true mapping, but the same in-place-view API —
  // the file is read once into a heap buffer the views alias.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error(Describe(path, "cannot open"));
  const std::streamsize size = in.tellg();
  in.seekg(0);
  char* buffer = new char[static_cast<std::size_t>(size) + 1];
  if (size > 0 && !in.read(buffer, size)) {
    delete[] buffer;
    throw std::runtime_error(Describe(path, "read failed"));
  }
  file->data_ = buffer;
  file->size_ = static_cast<std::size_t>(size);
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error(Describe(path, "cannot open"));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error(Describe(path, "fstat failed"));
  }
  file->size_ = static_cast<std::size_t>(st.st_size);
  if (file->size_ > 0) {
    void* mapping =
        ::mmap(nullptr, file->size_, PROT_READ, MAP_SHARED, fd, 0);
    if (mapping == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error(Describe(path, "mmap failed"));
    }
    file->data_ = static_cast<const char*>(mapping);
  }
  // The mapping holds its own reference to the inode; the descriptor is no
  // longer needed.
  ::close(fd);
#endif
  return file;
}

MappedFile::~MappedFile() {
#if defined(_WIN32)
  delete[] data_;
#else
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

}  // namespace cned
