#include "common/config.h"

#include <cstdlib>
#include <cmath>

namespace cned {
namespace {

const char* Env(const std::string& name) {
  return std::getenv(("CNED_" + name).c_str());
}

}  // namespace

double Config::Scale() {
  if (const char* v = Env("SCALE")) {
    double s = std::atof(v);
    if (s > 0.0) return s;
  }
  return 1.0;
}

std::int64_t Config::Int(const std::string& name, std::int64_t default_value) {
  if (const char* v = Env(name)) return std::atoll(v);
  return default_value;
}

std::int64_t Config::ScaledInt(const std::string& name,
                               std::int64_t default_value) {
  if (const char* v = Env(name)) return std::atoll(v);
  double scaled = std::round(static_cast<double>(default_value) * Scale());
  return scaled < 1.0 ? 1 : static_cast<std::int64_t>(scaled);
}

std::uint64_t Config::Seed() {
  return static_cast<std::uint64_t>(Int("SEED", 20080401));
}

}  // namespace cned
