#include "common/crc32.h"

#include <array>

namespace cned {
namespace {

// Slicing-by-4 tables: four bytes folded per iteration keeps the footer
// verification of multi-megabyte table sections comfortably above memory
// copy speed without any per-arch code.
struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const Crc32Tables& tb = Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace cned
