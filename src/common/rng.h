#ifndef CNED_COMMON_RNG_H_
#define CNED_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace cned {

/// Deterministic random source used by every generator in the project.
///
/// A thin wrapper over std::mt19937_64 with the handful of draws the dataset
/// generators and experiments need. All experiments are reproducible given
/// the seed; generators never consult global state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t Index(std::size_t n) {
    return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Uniform real in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Normal draw.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  bool Chance(double p) { return Uniform() < p; }

  /// Samples an index according to non-negative `weights` (need not sum
  /// to 1). Requires at least one positive weight.
  std::size_t Weighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Index(i)]);
    }
  }

  /// Derives an independent child generator (for per-repetition streams).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cned

#endif  // CNED_COMMON_RNG_H_
