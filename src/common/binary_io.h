#ifndef CNED_COMMON_BINARY_IO_H_
#define CNED_COMMON_BINARY_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mapped_file.h"

namespace cned {

/// Shared on-disk format conventions for the index/store serializers.
///
/// Every serialized object starts with a 64-byte header:
///   bytes  0..7   magic (8 ASCII chars identifying the payload type)
///   bytes  8..11  format version (uint32, little-endian)
///   bytes 12..15  reserved (zero)
///   bytes 16..63  up to six uint64 payload counts (type-specific)
/// followed by raw array sections, each aligned to a 64-byte boundary with
/// zero padding. Integers and doubles are stored in native (little-endian)
/// byte order; the format targets same-architecture serving processes, and
/// the alignment means such a process can mmap the file and point packed
/// arrays straight into it (the convention of usearch-style index files).
///
/// Every file ends with a 64-byte checksum footer written by
/// `BinaryWriter::Finish`:
///   bytes  0..7   footer magic "CNEDCRC1"
///   bytes  8..11  CRC-32 (common/crc32.h) of every byte before the footer
///   bytes 12..63  reserved (zero)
/// `BinaryReader` (the copying loader — it reads every byte anyway) always
/// verifies the checksum. `MappedReader` always validates the footer's
/// *presence* (and excludes it from the section space) but verifies the
/// content checksum only when asked — eagerly hashing the whole mapping
/// would forfeit the O(validation) zero-copy startup contract — via the
/// `verify_checksum` constructor flag, the `CNED_SNAPSHOT_VERIFY=1`
/// environment default, or a standalone `VerifySnapshotChecksum` pass (the
/// distributed serving tier runs one per shard file before mapping).
inline constexpr std::size_t kBinaryAlignment = 64;
inline constexpr std::size_t kBinaryHeaderCounts = 6;
inline constexpr char kBinaryFooterMagic[8] = {'C', 'N', 'E', 'D',
                                               'C', 'R', 'C', '1'};

/// True when `CNED_SNAPSHOT_VERIFY` is set to a truthy value ("1", "true",
/// "on"): mapped snapshot loads then verify the content checksum too.
bool SnapshotVerifyEnabled();

/// One sequential checksum pass over a snapshot file: validates the footer
/// and the CRC-32 of the payload, throwing std::runtime_error on a missing
/// footer or a mismatch. O(file) read, zero allocation beyond the mapping.
void VerifySnapshotChecksum(const std::string& path);

/// Streaming writer with 64-byte section alignment. All methods throw
/// std::runtime_error on I/O failure.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Writes the standard 64-byte header.
  void Header(const char magic[8], std::uint32_t version,
              const std::uint64_t* counts, std::size_t count_n);

  /// Writes `bytes` raw bytes.
  void Raw(const void* data, std::size_t bytes);

  /// Zero-pads to the next 64-byte boundary (call before each section).
  void Align();

  /// Pads to a 64-byte boundary, appends the checksum footer, then flushes
  /// and closes; throws if any write failed. The destructor closes silently
  /// — call Finish() on the success path.
  void Finish();

  std::size_t offset() const { return offset_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t offset_ = 0;
  std::uint32_t crc_ = 0;  // running CRC-32 of every payload byte written
  std::string path_;
};

/// Whole-file reader with the matching alignment/validation rules. Loads
/// the file into memory once; sections are then validated, bounds-checked
/// views. Throws std::runtime_error on truncated or malformed input.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  /// Validates the 64-byte header: magic must match, version must equal
  /// `expected_version` (mismatch message names both). Returns the payload
  /// counts.
  std::vector<std::uint64_t> Header(const char magic[8],
                                    std::uint32_t expected_version);

  /// Version-range form for evolving formats: accepts any version in
  /// [min_version, max_version], storing the file's actual version through
  /// `version_out` (may be null). Same errors otherwise.
  std::vector<std::uint64_t> Header(const char magic[8],
                                    std::uint32_t min_version,
                                    std::uint32_t max_version,
                                    std::uint32_t* version_out);

  /// Copies `bytes` raw bytes into `out`; throws when fewer remain.
  void Raw(void* out, std::size_t bytes);

  /// Validates that an array section of `count` elements of `elem_size`
  /// bytes can still fit in the unread tail, *before* the caller allocates
  /// for it — untrusted header counts must never size an allocation
  /// directly. The check is cumulative against the actual file length: it
  /// accounts for the zero padding the section's 64-byte alignment will
  /// consume ahead of it, so a count that only "fits" by eating the padding
  /// fails here rather than in a later Raw(). Overflow-safe; throws the
  /// same truncation error as `Raw`.
  void RequireArray(std::uint64_t count, std::size_t elem_size) const;

  /// Skips the zero padding to the next 64-byte boundary.
  void Align();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return buffer_.size() - offset_; }

 private:
  std::vector<char> buffer_;
  std::size_t offset_ = 0;
  std::string path_;
};

/// Zero-copy counterpart of `BinaryReader`: a cursor over a `MappedFile`
/// that validates the same header/alignment rules but returns in-place
/// pointers into the mapping instead of copying sections out.
///
/// Safety contract (the serving tier maps untrusted bytes): every section's
/// cumulative extent — alignment padding plus `count * elem_size`, computed
/// overflow-safely — is range-checked against the actual file length
/// *before* any pointer is formed, and the section start is verified to be
/// aligned for the element type. Malformed input throws std::runtime_error;
/// no returned pointer ever spans past the end of the mapping.
///
/// Views returned by `Section`/`Array` alias the mapping; callers must keep
/// `file()` alive for as long as they hold them (the view-backed stores
/// retain the shared_ptr).
class MappedReader {
 public:
  /// Reads `file` in place. Validates the checksum footer's presence (the
  /// footer is excluded from the section space) and, when `verify_checksum`
  /// — defaulted from `CNED_SNAPSHOT_VERIFY` — is true, verifies the
  /// payload CRC with one sequential pass. Throws std::invalid_argument on
  /// a null file, std::runtime_error on a missing footer or a mismatch.
  explicit MappedReader(std::shared_ptr<MappedFile> file);
  MappedReader(std::shared_ptr<MappedFile> file, bool verify_checksum);

  /// Verifies the payload CRC against the footer (one sequential pass over
  /// the mapping); throws std::runtime_error on mismatch. Callable at any
  /// point — the check is independent of the cursor.
  void VerifyChecksum() const;

  /// Skips to the next 64-byte boundary and validates the standard header
  /// (same rules and errors as `BinaryReader::Header`). Returns the payload
  /// counts.
  std::vector<std::uint64_t> Header(const char magic[8],
                                    std::uint32_t expected_version);

  /// Version-range form, as in `BinaryReader::Header`.
  std::vector<std::uint64_t> Header(const char magic[8],
                                    std::uint32_t min_version,
                                    std::uint32_t max_version,
                                    std::uint32_t* version_out);

  /// Skips to the next 64-byte boundary, range-checks the section extent
  /// against the remaining file length, verifies element alignment, then
  /// returns the in-place section pointer and advances past it.
  const void* Section(std::uint64_t count, std::size_t elem_size);

  /// Typed form of `Section`.
  template <typename T>
  const T* Array(std::uint64_t count) {
    return static_cast<const T*>(Section(count, sizeof(T)));
  }

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }

  /// The mapping the returned views alias.
  const std::shared_ptr<MappedFile>& file() const { return file_; }

 private:
  std::shared_ptr<MappedFile> file_;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t offset_ = 0;
  std::string path_;
};

}  // namespace cned

#endif  // CNED_COMMON_BINARY_IO_H_
