#ifndef CNED_COMMON_CRC32_H_
#define CNED_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cned {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
/// snapshot footer (common/binary_io.h) and the serving tier's wire frames
/// (serve/frame.h) share, so one implementation is differentially testable
/// against known vectors for both users.
///
/// Incremental form: pass the previous return value as `seed` to extend a
/// running checksum over multiple buffers. `Crc32(data, n)` equals the
/// standard one-shot CRC-32 of the n bytes (e.g. 0xCBF43926 for
/// "123456789").
std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace cned

#endif  // CNED_COMMON_CRC32_H_
