#include "common/rational.h"

#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cned {
namespace {

__int128 Gcd128(__int128 a, __int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational Rational::FromInt128(__int128 num, __int128 den) {
  if (den == 0) throw std::invalid_argument("Rational: zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  __int128 g = Gcd128(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  constexpr __int128 kMax = std::numeric_limits<std::int64_t>::max();
  constexpr __int128 kMin = std::numeric_limits<std::int64_t>::min();
  if (num > kMax || num < kMin || den > kMax) {
    throw std::overflow_error("Rational: value does not fit in 64 bits");
  }
  Rational r;
  r.num_ = static_cast<std::int64_t>(num);
  r.den_ = static_cast<std::int64_t>(den);
  return r;
}

Rational::Rational(std::int64_t num, std::int64_t den) {
  *this = FromInt128(num, den);
}

Rational Rational::HarmonicRange(std::int64_t from, std::int64_t to) {
  if (from <= 0) throw std::invalid_argument("HarmonicRange: from must be > 0");
  Rational sum;
  for (std::int64_t i = from; i <= to; ++i) sum += Unit(i);
  return sum;
}

double Rational::ToDouble() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::ToString() const {
  std::ostringstream os;
  os << num_;
  if (den_ != 1) os << '/' << den_;
  return os.str();
}

Rational Rational::operator+(const Rational& o) const {
  return FromInt128(static_cast<__int128>(num_) * o.den_ +
                        static_cast<__int128>(o.num_) * den_,
                    static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return FromInt128(static_cast<__int128>(num_) * o.den_ -
                        static_cast<__int128>(o.num_) * den_,
                    static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return FromInt128(static_cast<__int128>(num_) * o.num_,
                    static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) throw std::invalid_argument("Rational: division by zero");
  return FromInt128(static_cast<__int128>(num_) * o.den_,
                    static_cast<__int128>(den_) * o.num_);
}

Rational Rational::operator-() const { return Rational(-num_, den_); }

bool Rational::operator<(const Rational& o) const {
  return static_cast<__int128>(num_) * o.den_ <
         static_cast<__int128>(o.num_) * den_;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

}  // namespace cned
