#ifndef CNED_COMMON_TABLE_H_
#define CNED_COMMON_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace cned {

/// Minimal ASCII table formatter used by the benchmark harnesses to print
/// the paper's tables and figure series in a readable, diffable layout.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` digits.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Renders with aligned columns.
  void Print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by harnesses).
std::string FormatDouble(double v, int precision = 2);

}  // namespace cned

#endif  // CNED_COMMON_TABLE_H_
