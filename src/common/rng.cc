#include "common/rng.h"

#include <stdexcept>

namespace cned {

std::size_t Rng::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("Rng::Weighted: no positive weight");
  double r = Uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace cned
