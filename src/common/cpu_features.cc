#include "common/cpu_features.h"

#if defined(__arm__) && defined(__linux__)
#include <asm/hwcap.h>
#include <sys/auxv.h>
#endif

namespace cned {

bool CpuHasAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

bool CpuHasNeon() {
#if defined(__aarch64__)
  // AdvSIMD is a mandatory part of the AArch64 architecture.
  return true;
#elif defined(__arm__) && defined(__linux__) && defined(HWCAP_NEON)
  static const bool has = (getauxval(AT_HWCAP) & HWCAP_NEON) != 0;
  return has;
#else
  return false;
#endif
}

}  // namespace cned
