#ifndef CNED_STRINGS_STRING_GEN_H_
#define CNED_STRINGS_STRING_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "strings/alphabet.h"

namespace cned {

/// Random-string utilities shared by tests and dataset generators.
class StringGen {
 public:
  /// Uniform random string of exactly `length` symbols.
  static std::string Uniform(Rng& rng, const Alphabet& alphabet,
                             std::size_t length);

  /// Uniform random string with length drawn uniformly in [min_len, max_len].
  static std::string UniformLength(Rng& rng, const Alphabet& alphabet,
                                   std::size_t min_len, std::size_t max_len);

  /// `count` uniform strings with lengths in [min_len, max_len].
  static std::vector<std::string> Batch(Rng& rng, const Alphabet& alphabet,
                                        std::size_t count, std::size_t min_len,
                                        std::size_t max_len);

  /// All strings over `alphabet` of length <= max_len, in length-lexicographic
  /// order (used by exhaustive property tests; keep sizes tiny).
  static std::vector<std::string> Enumerate(const Alphabet& alphabet,
                                            std::size_t max_len);
};

}  // namespace cned

#endif  // CNED_STRINGS_STRING_GEN_H_
