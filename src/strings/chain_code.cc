#include "strings/chain_code.h"

#include <stdexcept>
#include <vector>

namespace cned {
namespace {

int ChainDigit(char c) {
  if (c < '0' || c > '7') {
    throw std::invalid_argument("chain code symbol out of range: " +
                                std::string(1, c));
  }
  return c - '0';
}

}  // namespace

std::string DifferentialChainCode(std::string_view code) {
  if (code.size() < 2) return "";
  std::string out;
  out.reserve(code.size() - 1);
  for (std::size_t i = 1; i < code.size(); ++i) {
    int diff = (ChainDigit(code[i]) - ChainDigit(code[i - 1]) + 8) % 8;
    out.push_back(static_cast<char>('0' + diff));
  }
  return out;
}

std::string CanonicalRotation(std::string_view s) {
  if (s.empty()) return "";
  // Booth's least-rotation algorithm on the doubled string.
  const std::size_t n = s.size();
  std::vector<std::ptrdiff_t> failure(2 * n, -1);
  std::size_t k = 0;  // least rotation candidate
  for (std::size_t j = 1; j < 2 * n; ++j) {
    char sj = s[j % n];
    std::ptrdiff_t i = failure[j - k - 1];
    while (i != -1 && sj != s[(k + static_cast<std::size_t>(i) + 1) % n]) {
      if (sj < s[(k + static_cast<std::size_t>(i) + 1) % n]) {
        k = j - static_cast<std::size_t>(i) - 1;
      }
      i = failure[static_cast<std::size_t>(i)];
    }
    if (i == -1 && sj != s[(k + static_cast<std::size_t>(i) + 1) % n]) {
      if (sj < s[(k + static_cast<std::size_t>(i) + 1) % n]) k = j;
      failure[j - k] = -1;
    } else {
      failure[j - k] = i + 1;
    }
  }
  std::string out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t) out.push_back(s[(k + t) % n]);
  return out;
}

std::string ContourSignature(std::string_view code) {
  return DifferentialChainCode(CanonicalRotation(code));
}

}  // namespace cned
