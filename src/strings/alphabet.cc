#include "strings/alphabet.h"

#include <stdexcept>

namespace cned {

Alphabet::Alphabet(std::string_view symbols) {
  index_.fill(-1);
  for (char c : symbols) {
    auto uc = static_cast<unsigned char>(c);
    if (index_[uc] < 0) {
      index_[uc] = static_cast<int>(symbols_.size());
      symbols_.push_back(c);
    }
  }
  if (symbols_.empty()) {
    throw std::invalid_argument("Alphabet: must be non-empty");
  }
}

Alphabet Alphabet::Latin() { return Alphabet("abcdefghijklmnopqrstuvwxyz"); }

Alphabet Alphabet::Dna() { return Alphabet("ACGT"); }

Alphabet Alphabet::ChainCode() { return Alphabet("01234567"); }

bool Alphabet::ContainsAll(std::string_view s) const {
  for (char c : s) {
    if (!Contains(c)) return false;
  }
  return true;
}

}  // namespace cned
