#ifndef CNED_STRINGS_CHAIN_CODE_H_
#define CNED_STRINGS_CHAIN_CODE_H_

#include <string>
#include <string_view>

namespace cned {

/// Utilities over Freeman 8-direction chain codes ("01234567"), the
/// representation of the paper's handwritten-digit contour strings.
///
/// The paper deliberately applies *no* normalisation to the digits
/// (orientation and size vary between scribes); these helpers implement the
/// standard invariance transforms so the ablation bench can quantify what
/// normalisation would change.

/// Differential chain code: symbol i becomes (code[i] - code[i-1]) mod 8,
/// with the first symbol kept as-is dropped. Rotating the underlying shape
/// by a multiple of 45 degrees leaves the differential code unchanged, so
/// pairing it with an edit distance gives rotation-quantised invariance.
/// Returns "" for inputs shorter than 2 symbols. Throws on non-chain-code
/// symbols.
std::string DifferentialChainCode(std::string_view code);

/// Lexicographically smallest rotation of a (cyclic) string in O(n)
/// (Booth's algorithm). Chain codes describe closed contours, so the start
/// pixel is arbitrary; canonicalising the rotation makes two traversals of
/// the same contour compare equal.
std::string CanonicalRotation(std::string_view s);

/// Convenience: differential code of the canonical rotation — start-point
/// and rotation-quantised invariant signature of a closed contour.
std::string ContourSignature(std::string_view code);

}  // namespace cned

#endif  // CNED_STRINGS_CHAIN_CODE_H_
