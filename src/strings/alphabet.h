#ifndef CNED_STRINGS_ALPHABET_H_
#define CNED_STRINGS_ALPHABET_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace cned {

/// A finite, non-empty set of byte symbols with stable ordering.
///
/// Strings in this project are plain `std::string` over an alphabet; the
/// class provides membership tests, symbol<->index mapping (used by the
/// generalised cost matrices) and the standard alphabets of the paper's
/// three benchmarks.
class Alphabet {
 public:
  /// Builds from the distinct characters of `symbols`, keeping first-seen
  /// order. Throws if empty.
  explicit Alphabet(std::string_view symbols);

  /// Latin lowercase a..z (dictionary benchmark).
  static Alphabet Latin();

  /// DNA bases ACGT (genes benchmark).
  static Alphabet Dna();

  /// Freeman chain-code directions 0..7 (digit-contour benchmark).
  static Alphabet ChainCode();

  /// Number of symbols.
  std::size_t size() const { return symbols_.size(); }

  /// The i-th symbol.
  char symbol(std::size_t i) const { return symbols_[i]; }

  /// All symbols in order.
  const std::string& symbols() const { return symbols_; }

  /// True if `c` belongs to the alphabet.
  bool Contains(char c) const { return index_[static_cast<unsigned char>(c)] >= 0; }

  /// Index of `c`, or -1 if not a member.
  int IndexOf(char c) const { return index_[static_cast<unsigned char>(c)]; }

  /// True if every character of `s` belongs to the alphabet.
  bool ContainsAll(std::string_view s) const;

 private:
  std::string symbols_;
  std::array<int, 256> index_;
};

}  // namespace cned

#endif  // CNED_STRINGS_ALPHABET_H_
