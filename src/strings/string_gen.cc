#include "strings/string_gen.h"

namespace cned {

std::string StringGen::Uniform(Rng& rng, const Alphabet& alphabet,
                               std::size_t length) {
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    s.push_back(alphabet.symbol(rng.Index(alphabet.size())));
  }
  return s;
}

std::string StringGen::UniformLength(Rng& rng, const Alphabet& alphabet,
                                     std::size_t min_len, std::size_t max_len) {
  auto len = static_cast<std::size_t>(
      rng.UniformInt(static_cast<std::int64_t>(min_len),
                     static_cast<std::int64_t>(max_len)));
  return Uniform(rng, alphabet, len);
}

std::vector<std::string> StringGen::Batch(Rng& rng, const Alphabet& alphabet,
                                          std::size_t count,
                                          std::size_t min_len,
                                          std::size_t max_len) {
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(UniformLength(rng, alphabet, min_len, max_len));
  }
  return out;
}

std::vector<std::string> StringGen::Enumerate(const Alphabet& alphabet,
                                              std::size_t max_len) {
  std::vector<std::string> out;
  out.emplace_back();  // empty string
  std::size_t level_begin = 0;
  for (std::size_t len = 1; len <= max_len; ++len) {
    std::size_t level_end = out.size();
    for (std::size_t i = level_begin; i < level_end; ++i) {
      for (std::size_t a = 0; a < alphabet.size(); ++a) {
        out.push_back(out[i] + alphabet.symbol(a));
      }
    }
    level_begin = level_end;
  }
  return out;
}

}  // namespace cned
