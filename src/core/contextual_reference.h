#ifndef CNED_CORE_CONTEXTUAL_REFERENCE_H_
#define CNED_CORE_CONTEXTUAL_REFERENCE_H_

#include <string>
#include <string_view>

#include "strings/alphabet.h"

namespace cned {

/// Ground-truth contextual distance by Dijkstra over the space of strings.
///
/// Explores every string over `alphabet` of length <= `max_len` with edges
/// = single-symbol insertions (cost 1/(|u|+1)), deletions and substitutions
/// (cost 1/|u|), exactly Definition 4 of the paper with *no* restriction to
/// internal operations or canonical path shapes. Exponential in `max_len` —
/// strictly a test oracle for validating the DP of Algorithm 1.
///
/// By the paper's well-definedness argument optimal paths never need strings
/// longer than |x|+|y|, so callers should pass max_len >= |x|+|y| (the
/// default of 0 means exactly that). Both strings must be over `alphabet`.
double ContextualReferenceDistance(std::string_view x, std::string_view y,
                                   const Alphabet& alphabet,
                                   std::size_t max_len = 0);

}  // namespace cned

#endif  // CNED_CORE_CONTEXTUAL_REFERENCE_H_
