#ifndef CNED_CORE_GENERALIZED_CONTEXTUAL_H_
#define CNED_CORE_GENERALIZED_CONTEXTUAL_H_

#include <string_view>

#include "distances/weighted_levenshtein.h"
#include "strings/alphabet.h"

namespace cned {

/// The *naive* generalised contextual distance of the paper's §5 (future
/// work): charge each elementary operation gamma(op) / max(|u|,|v|), where
/// gamma comes from an arbitrary cost model.
///
/// The paper observes this "naive idea fails": with non-uniform costs the
/// optimal path may insert cheap dummy symbols purely to lengthen the string
/// before performing expensive substitutions, then erase them — so the
/// internal-operations property (Proposition 1) and the canonical path shape
/// (Lemma 1) both break, and no polynomial DP is known. We therefore compute
/// the value by Dijkstra over bounded string space, exactly as the
/// definition states. Exponential; use on short strings only. The tests and
/// `bench/ablation_metric_violations` reproduce the dummy-symbol exploit.
///
/// `max_len` = 0 means |x|+|y| (sufficient for unit costs, but note that for
/// adversarial cost models even longer intermediates can help; callers
/// probing the exploit pass a larger bound explicitly).
double NaiveGeneralizedContextualDistance(std::string_view x,
                                          std::string_view y,
                                          const EditCosts& costs,
                                          const Alphabet& alphabet,
                                          std::size_t max_len = 0);

}  // namespace cned

#endif  // CNED_CORE_GENERALIZED_CONTEXTUAL_H_
