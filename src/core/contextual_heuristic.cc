#include "core/contextual_heuristic.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/dp_workspace.h"
#include "common/harmonic.h"

namespace cned {

// Correctness of the 2-D DP (why this equals ni[m][n][d_E] of Algorithm 1):
// any internal path of total edit length d_E(x,y) through a cell (i,j) must
// use exactly d_E(x[0..i), y[0..j)) operations on its prefix — otherwise
// swapping in a cheaper prefix would beat d_E overall. Hence maximising the
// insertion count over "minimal-k predecessors only" loses no path that the
// full DP would consider at k = d_E, and the pair (D, NI) below is exact.
ContextualHeuristicResult ContextualHeuristicDetailed(std::string_view x,
                                                      std::string_view y,
                                                      double bound) {
  const std::size_t m = x.size(), n = y.size();
  // Rows of (edit distance, max insertions among minimal scripts), borrowed
  // from the thread's workspace (no steady-state allocations).
  DpWorkspace& ws = TlsDpWorkspace();
  std::vector<std::uint32_t>&dist = ws.dist_row, &dist_prev = ws.dist_row_prev;
  std::vector<std::int32_t>&ins = ws.ins_row, &ins_prev = ws.ins_row_prev;
  dist.resize(n + 1);
  dist_prev.resize(n + 1);
  ins.resize(n + 1);
  ins_prev.resize(n + 1);

  // Every operation of a canonical path costs at least 1/(m+n), so the
  // final cost is at least k/(m+n); the row minimum of the edit-distance DP
  // lower-bounds the final k, giving a cheap per-row abandon test.
  const double row_min_cutoff = bound * static_cast<double>(m + n);

  for (std::size_t j = 0; j <= n; ++j) {
    dist_prev[j] = static_cast<std::uint32_t>(j);
    ins_prev[j] = static_cast<std::int32_t>(j);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    dist[0] = static_cast<std::uint32_t>(i);
    ins[0] = 0;
    std::uint32_t row_min = dist[0];
    for (std::size_t j = 1; j <= n; ++j) {
      const std::uint32_t d_diag =
          dist_prev[j - 1] + (x[i - 1] == y[j - 1] ? 0u : 1u);
      const std::uint32_t d_del = dist_prev[j] + 1;
      const std::uint32_t d_ins = dist[j - 1] + 1;
      const std::uint32_t d = std::min({d_diag, d_del, d_ins});
      std::int32_t ni = std::numeric_limits<std::int32_t>::min();
      if (d == d_diag) ni = std::max(ni, ins_prev[j - 1]);
      if (d == d_del) ni = std::max(ni, ins_prev[j]);
      if (d == d_ins) ni = std::max(ni, ins[j - 1] + 1);
      dist[j] = d;
      ins[j] = ni;
      row_min = std::min(row_min, d);
    }
    if (static_cast<double>(row_min) >= row_min_cutoff) {
      ContextualHeuristicResult abandoned;
      abandoned.distance = std::numeric_limits<double>::infinity();
      abandoned.k = row_min;
      return abandoned;
    }
    std::swap(dist, dist_prev);
    std::swap(ins, ins_prev);
  }

  ContextualHeuristicResult r;
  r.k = dist_prev[n];
  r.insertions = static_cast<std::size_t>(ins_prev[n]);
  r.distance =
      ContextualPathCost(m, n, r.k, r.insertions, ThreadLocalHarmonic());
  return r;
}

double ContextualHeuristicDistance(std::string_view x, std::string_view y) {
  return ContextualHeuristicDetailed(x, y).distance;
}

}  // namespace cned
