#ifndef CNED_CORE_CONTEXTUAL_HEURISTIC_H_
#define CNED_CORE_CONTEXTUAL_HEURISTIC_H_

#include <cstddef>
#include <limits>
#include <string>
#include <string_view>

#include "core/contextual.h"
#include "distances/distance.h"

namespace cned {

/// The paper's fast heuristic d_C,h (§4.1).
///
/// Instead of evaluating the max-insertion DP at every edit length k, the
/// heuristic evaluates the contextual cost formula only at the *minimal*
/// feasible k — the plain edit distance d_E(x,y) — with the maximum number
/// of insertions among minimal-length internal paths. This costs O(|x|·|y|)
/// like the classic edit DP.
///
/// Guarantees: d_C(x,y) <= d_C,h(x,y) always (the exact value minimises over
/// a superset of candidates), with equality in ~90% of benchmark cases per
/// the paper (reproduced by bench/sec41_heuristic_agreement).
///
/// Every minimal-edit-length path is prefix-minimal in every cell, so the
/// 2-D "(edit distance, max insertions)" DP below computes exactly
/// ni[|x|][|y|][d_E] of the full Algorithm 1 — see the proof sketch in
/// contextual_heuristic.cc.
struct ContextualHeuristicResult {
  double distance = 0.0;       ///< d_C,h(x, y)
  std::size_t k = 0;           ///< d_E(x, y)
  std::size_t insertions = 0;  ///< max insertions among minimal paths
};

/// d_C,h(x, y) with decomposition. When `bound` is finite the DP abandons
/// (returning distance = +infinity) as soon as the edit-distance row
/// minimum proves the final cost will be >= bound — the
/// `StringDistance::DistanceBounded` contract.
ContextualHeuristicResult ContextualHeuristicDetailed(
    std::string_view x, std::string_view y,
    double bound = std::numeric_limits<double>::infinity());

/// d_C,h(x, y).
double ContextualHeuristicDistance(std::string_view x, std::string_view y);

/// `StringDistance` adapter.
///
/// `is_metric` is false: the heuristic equals the metric d_C only on ~90% of
/// pairs, so the triangle inequality is not *guaranteed* (the paper
/// nevertheless uses it inside LAESA, as do our experiment harnesses,
/// because the deviation is tiny; reproduce that deliberately).
class ContextualHeuristicEditDistance final : public StringDistance {
 public:
  double Distance(std::string_view x, std::string_view y) const override {
    return ContextualHeuristicDistance(x, y);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    return ContextualHeuristicDetailed(x, y, bound).distance;
  }
  std::string name() const override { return "dC,h"; }
  bool is_metric() const override { return false; }
};

}  // namespace cned

#endif  // CNED_CORE_CONTEXTUAL_HEURISTIC_H_
