#include "core/contextual_reference.h"

#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cned {

double ContextualReferenceDistance(std::string_view x, std::string_view y,
                                   const Alphabet& alphabet,
                                   std::size_t max_len) {
  if (!alphabet.ContainsAll(x) || !alphabet.ContainsAll(y)) {
    throw std::invalid_argument(
        "ContextualReferenceDistance: strings not over alphabet");
  }
  if (max_len == 0) max_len = x.size() + y.size();
  if (x.size() > max_len || y.size() > max_len) {
    throw std::invalid_argument("ContextualReferenceDistance: max_len too small");
  }

  const std::string target(y);
  using Entry = std::pair<double, std::string>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::unordered_map<std::string, double> best;

  std::string start(x);
  best[start] = 0.0;
  heap.emplace(0.0, std::move(start));

  while (!heap.empty()) {
    auto [cost, u] = heap.top();
    heap.pop();
    auto it = best.find(u);
    if (it != best.end() && cost > it->second) continue;  // stale entry
    if (u == target) return cost;

    const std::size_t len = u.size();
    auto relax = [&](std::string&& v, double edge) {
      double nc = cost + edge;
      auto [vit, inserted] = best.try_emplace(v, nc);
      if (!inserted && vit->second <= nc) return;
      vit->second = nc;
      heap.emplace(nc, std::move(v));
    };

    if (len > 0) {
      const double edge = 1.0 / static_cast<double>(len);
      for (std::size_t p = 0; p < len; ++p) {
        // Deletion.
        std::string v = u;
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(p));
        relax(std::move(v), edge);
        // Substitutions.
        for (std::size_t a = 0; a < alphabet.size(); ++a) {
          char c = alphabet.symbol(a);
          if (c == u[p]) continue;
          std::string w = u;
          w[p] = c;
          relax(std::move(w), edge);
        }
      }
    }
    if (len < max_len) {
      const double edge = 1.0 / static_cast<double>(len + 1);
      for (std::size_t p = 0; p <= len; ++p) {
        for (std::size_t a = 0; a < alphabet.size(); ++a) {
          std::string v = u;
          v.insert(v.begin() + static_cast<std::ptrdiff_t>(p),
                   alphabet.symbol(a));
          relax(std::move(v), edge);
        }
      }
    }
  }
  throw std::logic_error("ContextualReferenceDistance: target unreachable");
}

}  // namespace cned
