#include "core/contextual.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cned {
namespace {

// "Minus infinity" for the insertion-count DP. Far enough from INT32_MIN
// that adding +1 per layer (at most |x|+|y| times) cannot wrap.
constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

void ValidateDecomposition(std::size_t m, std::size_t n, std::size_t k,
                           std::size_t ni) {
  if (m + ni < n) {
    throw std::invalid_argument("ContextualPathCost: negative deletion count");
  }
  std::size_t nd = m + ni - n;
  if (ni + nd > k) {
    throw std::invalid_argument("ContextualPathCost: k too small for ni");
  }
}

}  // namespace

double ContextualPathCost(std::size_t m, std::size_t n, std::size_t k,
                          std::size_t ni, HarmonicTable& harmonic) {
  ValidateDecomposition(m, n, k, ni);
  const std::size_t nd = m + ni - n;
  const std::size_t ns = k - ni - nd;
  double cost = harmonic.Range(m + 1, m + ni);  // insertions on a growing string
  if (ns > 0) {
    // All substitutions happen on the longest intermediate string (Lemma 1).
    cost += static_cast<double>(ns) / static_cast<double>(m + ni);
  }
  cost += harmonic.Range(n + 1, n + nd);  // deletions on a shrinking string
  return cost;
}

Rational ContextualPathCostExact(std::size_t m, std::size_t n, std::size_t k,
                                 std::size_t ni) {
  ValidateDecomposition(m, n, k, ni);
  const std::size_t nd = m + ni - n;
  const std::size_t ns = k - ni - nd;
  Rational cost = Rational::HarmonicRange(static_cast<std::int64_t>(m) + 1,
                                          static_cast<std::int64_t>(m + ni));
  if (ns > 0) {
    cost += Rational(static_cast<std::int64_t>(ns),
                     static_cast<std::int64_t>(m + ni));
  }
  cost += Rational::HarmonicRange(static_cast<std::int64_t>(n) + 1,
                                  static_cast<std::int64_t>(n + nd));
  return cost;
}

std::vector<std::int32_t> MaxInsertionProfile(std::string_view x,
                                              std::string_view y) {
  const std::size_t m = x.size(), n = y.size();
  const std::size_t width = n + 1;
  const std::size_t kmax = m + n;
  std::vector<std::int32_t> result(kmax + 1, kNegInf);

  // Layer k = 0: only matches — the DP value is 0 along the equal-prefix
  // diagonal, -inf elsewhere.
  std::vector<std::int32_t> prev((m + 1) * width, kNegInf);
  std::vector<std::int32_t> cur((m + 1) * width, kNegInf);
  auto at = [width](std::vector<std::int32_t>& v, std::size_t i,
                    std::size_t j) -> std::int32_t& { return v[i * width + j]; };

  at(prev, 0, 0) = 0;
  {
    bool prefix_eq = true;
    for (std::size_t t = 1; t <= std::min(m, n) && prefix_eq; ++t) {
      prefix_eq = (x[t - 1] == y[t - 1]);
      if (prefix_eq) at(prev, t, t) = 0;
    }
  }
  if (prev[m * width + n] >= 0) result[0] = prev[m * width + n];

  // Layers k = 1 .. m+n. Within a layer, the match move stays on the same
  // layer (cost 0), so cells are filled in increasing (i, j) order; the
  // substitution / deletion / insertion moves read the previous layer.
  for (std::size_t k = 1; k <= kmax; ++k) {
    at(cur, 0, 0) = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      at(cur, 0, j) = at(prev, 0, j - 1) + 1;  // insertion only
    }
    for (std::size_t i = 1; i <= m; ++i) {
      at(cur, i, 0) = at(prev, i - 1, 0);  // deletion only
      const char xi = x[i - 1];
      const std::int32_t* prev_up = &prev[(i - 1) * width];
      const std::int32_t* prev_row = &prev[i * width];
      std::int32_t* cur_row = &cur[i * width];
      const std::int32_t* cur_up = &cur[(i - 1) * width];
      for (std::size_t j = 1; j <= n; ++j) {
        // Match (same layer) or substitution (previous layer).
        std::int32_t best =
            (xi == y[j - 1]) ? cur_up[j - 1] : prev_up[j - 1];
        best = std::max(best, prev_up[j]);          // delete x_i
        best = std::max(best, prev_row[j - 1] + 1); // insert y_j
        cur_row[j] = best;
      }
    }
    if (cur[m * width + n] >= 0) result[k] = cur[m * width + n];
    std::swap(prev, cur);
  }
  return result;
}

ContextualResult ContextualDistanceDetailed(std::string_view x,
                                            std::string_view y) {
  const std::size_t m = x.size(), n = y.size();
  HarmonicTable& h = GlobalHarmonic();

  ContextualResult best;
  if (m == 0 && n == 0) return best;
  best.distance = std::numeric_limits<double>::infinity();

  // Same layered DP as MaxInsertionProfile, but evaluating each layer's
  // candidate as soon as its last cell is available so the loop can stop
  // once the k/(m+n) lower bound rules out all longer paths.
  const std::size_t width = n + 1;
  const std::size_t kmax = m + n;
  std::vector<std::int32_t> prev((m + 1) * width, kNegInf);
  std::vector<std::int32_t> cur((m + 1) * width, kNegInf);
  auto at = [width](std::vector<std::int32_t>& v, std::size_t i,
                    std::size_t j) -> std::int32_t& { return v[i * width + j]; };

  auto consider = [&](std::size_t k, std::int32_t raw_ni) {
    if (raw_ni < 0) return;
    const auto ni = static_cast<std::size_t>(raw_ni);
    double cost = ContextualPathCost(m, n, k, ni, h);
    if (cost < best.distance) {
      best.distance = cost;
      best.k = k;
      best.insertions = ni;
      best.deletions = m + ni - n;
      best.substitutions = k - ni - best.deletions;
    }
  };

  at(prev, 0, 0) = 0;
  {
    bool prefix_eq = true;
    for (std::size_t t = 1; t <= std::min(m, n) && prefix_eq; ++t) {
      prefix_eq = (x[t - 1] == y[t - 1]);
      if (prefix_eq) at(prev, t, t) = 0;
    }
  }
  consider(0, prev[m * width + n]);

  const double per_op_floor = 1.0 / static_cast<double>(m + n);
  for (std::size_t k = 1; k <= kmax; ++k) {
    // Every op on an internal path costs >= 1/(m+n); once even that floor
    // exceeds the incumbent, no longer path can win.
    if (static_cast<double>(k) * per_op_floor > best.distance) break;
    at(cur, 0, 0) = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      at(cur, 0, j) = at(prev, 0, j - 1) + 1;
    }
    for (std::size_t i = 1; i <= m; ++i) {
      at(cur, i, 0) = at(prev, i - 1, 0);
      const char xi = x[i - 1];
      const std::int32_t* prev_up = &prev[(i - 1) * width];
      const std::int32_t* prev_row = &prev[i * width];
      std::int32_t* cur_row = &cur[i * width];
      const std::int32_t* cur_up = &cur[(i - 1) * width];
      for (std::size_t j = 1; j <= n; ++j) {
        std::int32_t v = (xi == y[j - 1]) ? cur_up[j - 1] : prev_up[j - 1];
        v = std::max(v, prev_up[j]);
        v = std::max(v, prev_row[j - 1] + 1);
        cur_row[j] = v;
      }
    }
    consider(k, cur[m * width + n]);
    std::swap(prev, cur);
  }
  return best;
}

double ContextualDistance(std::string_view x, std::string_view y) {
  return ContextualDistanceDetailed(x, y).distance;
}

Rational ContextualDistanceExact(std::string_view x, std::string_view y) {
  const std::size_t m = x.size(), n = y.size();
  std::vector<std::int32_t> profile = MaxInsertionProfile(x, y);
  bool found = false;
  Rational best;
  for (std::size_t k = 0; k < profile.size(); ++k) {
    if (profile[k] < 0) continue;
    Rational cost =
        ContextualPathCostExact(m, n, k, static_cast<std::size_t>(profile[k]));
    if (!found || cost < best) {
      best = cost;
      found = true;
    }
  }
  if (!found) throw std::logic_error("ContextualDistanceExact: no path found");
  return best;
}

}  // namespace cned
