#include "core/contextual.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/dp_workspace.h"

namespace cned {
namespace {

// "Minus infinity" for the insertion-count DP. Far enough from INT32_MIN
// that adding +1 per layer (at most |x|+|y| times) cannot wrap.
constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

thread_local std::uint64_t tls_cells_evaluated = 0;

void ValidateDecomposition(std::size_t m, std::size_t n, std::size_t k,
                           std::size_t ni) {
  if (m + ni < n) {
    throw std::invalid_argument("ContextualPathCost: negative deletion count");
  }
  std::size_t nd = m + ni - n;
  if (ni + nd > k) {
    throw std::invalid_argument("ContextualPathCost: k too small for ni");
  }
}

}  // namespace

double ContextualPathCost(std::size_t m, std::size_t n, std::size_t k,
                          std::size_t ni, HarmonicTable& harmonic) {
  ValidateDecomposition(m, n, k, ni);
  const std::size_t nd = m + ni - n;
  const std::size_t ns = k - ni - nd;
  double cost = harmonic.Range(m + 1, m + ni);  // insertions on a growing string
  if (ns > 0) {
    // All substitutions happen on the longest intermediate string (Lemma 1).
    cost += static_cast<double>(ns) / static_cast<double>(m + ni);
  }
  cost += harmonic.Range(n + 1, n + nd);  // deletions on a shrinking string
  return cost;
}

Rational ContextualPathCostExact(std::size_t m, std::size_t n, std::size_t k,
                                 std::size_t ni) {
  ValidateDecomposition(m, n, k, ni);
  const std::size_t nd = m + ni - n;
  const std::size_t ns = k - ni - nd;
  Rational cost = Rational::HarmonicRange(static_cast<std::int64_t>(m) + 1,
                                          static_cast<std::int64_t>(m + ni));
  if (ns > 0) {
    cost += Rational(static_cast<std::int64_t>(ns),
                     static_cast<std::int64_t>(m + ni));
  }
  cost += Rational::HarmonicRange(static_cast<std::int64_t>(n) + 1,
                                  static_cast<std::int64_t>(n + nd));
  return cost;
}

std::vector<std::int32_t> MaxInsertionProfile(std::string_view x,
                                              std::string_view y) {
  const std::size_t m = x.size(), n = y.size();
  const std::size_t width = n + 1;
  const std::size_t kmax = m + n;
  std::vector<std::int32_t> result(kmax + 1, kNegInf);

  // Layer k = 0: only matches — the DP value is 0 along the equal-prefix
  // diagonal, -inf elsewhere.
  std::vector<std::int32_t> prev((m + 1) * width, kNegInf);
  std::vector<std::int32_t> cur((m + 1) * width, kNegInf);
  auto at = [width](std::vector<std::int32_t>& v, std::size_t i,
                    std::size_t j) -> std::int32_t& { return v[i * width + j]; };

  at(prev, 0, 0) = 0;
  {
    bool prefix_eq = true;
    for (std::size_t t = 1; t <= std::min(m, n) && prefix_eq; ++t) {
      prefix_eq = (x[t - 1] == y[t - 1]);
      if (prefix_eq) at(prev, t, t) = 0;
    }
  }
  if (prev[m * width + n] >= 0) result[0] = prev[m * width + n];

  // Layers k = 1 .. m+n. Within a layer, the match move stays on the same
  // layer (cost 0), so cells are filled in increasing (i, j) order; the
  // substitution / deletion / insertion moves read the previous layer.
  for (std::size_t k = 1; k <= kmax; ++k) {
    at(cur, 0, 0) = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      at(cur, 0, j) = at(prev, 0, j - 1) + 1;  // insertion only
    }
    for (std::size_t i = 1; i <= m; ++i) {
      at(cur, i, 0) = at(prev, i - 1, 0);  // deletion only
      const char xi = x[i - 1];
      const std::int32_t* prev_up = &prev[(i - 1) * width];
      const std::int32_t* prev_row = &prev[i * width];
      std::int32_t* cur_row = &cur[i * width];
      const std::int32_t* cur_up = &cur[(i - 1) * width];
      for (std::size_t j = 1; j <= n; ++j) {
        // Match (same layer) or substitution (previous layer).
        std::int32_t best =
            (xi == y[j - 1]) ? cur_up[j - 1] : prev_up[j - 1];
        best = std::max(best, prev_up[j]);          // delete x_i
        best = std::max(best, prev_row[j - 1] + 1); // insert y_j
        cur_row[j] = best;
      }
    }
    if (cur[m * width + n] >= 0) result[k] = cur[m * width + n];
    std::swap(prev, cur);
  }
  return result;
}

ContextualResult ContextualDistanceDetailed(std::string_view x,
                                            std::string_view y, double bound) {
  const std::size_t m = x.size(), n = y.size();
  HarmonicTable& h = ThreadLocalHarmonic();

  ContextualResult best;
  if (m == 0 && n == 0) return best;
  best.distance = std::numeric_limits<double>::infinity();

  // Same layered DP as MaxInsertionProfile, but band-limited — at layer k a
  // cell (i, j) is reachable only when |i - j| <= k, because insertions
  // minus deletions along the prefix equals j - i while their sum is at
  // most k — and evaluating each layer's candidate as soon as its last
  // cell is available so the loop can stop once the k/(m+n) lower bound
  // rules out all longer paths (or reaches the caller's bound).
  //
  // Buffer invariant: cells outside a layer's band are kNegInf. It holds
  // at the start (both planes are filled with kNegInf) and is preserved
  // because layer k writes exactly the band |i - j| <= k into the plane
  // that held layer k-2 (whose untouched cells satisfy |i - j| > k-2 and
  // were kNegInf by induction). Reads reach at most one cell outside the
  // previous layer's band in each direction, which the invariant covers.
  const std::size_t width = n + 1;
  const std::size_t kmax = m + n;
  DpWorkspace& ws = TlsDpWorkspace();
  ws.layer_a.assign((m + 1) * width, kNegInf);
  ws.layer_b.assign((m + 1) * width, kNegInf);
  std::vector<std::int32_t>* prev = &ws.layer_a;
  std::vector<std::int32_t>* cur = &ws.layer_b;

  auto consider = [&](std::size_t k, std::int32_t raw_ni) {
    if (raw_ni < 0) return;
    const auto ni = static_cast<std::size_t>(raw_ni);
    double cost = ContextualPathCost(m, n, k, ni, h);
    if (cost < best.distance) {
      best.distance = cost;
      best.k = k;
      best.insertions = ni;
      best.deletions = m + ni - n;
      best.substitutions = k - ni - best.deletions;
    }
  };

  (*prev)[0] = 0;
  {
    bool prefix_eq = true;
    for (std::size_t t = 1; t <= std::min(m, n) && prefix_eq; ++t) {
      prefix_eq = (x[t - 1] == y[t - 1]);
      if (prefix_eq) (*prev)[t * width + t] = 0;
    }
  }
  tls_cells_evaluated += std::min(m, n) + 1;
  consider(0, (*prev)[m * width + n]);

  const double per_op_floor = 1.0 / static_cast<double>(m + n);
  for (std::size_t k = 1; k <= kmax; ++k) {
    const double layer_floor = static_cast<double>(k) * per_op_floor;
    // Every op on an internal path costs >= 1/(m+n); once even that floor
    // exceeds the incumbent — or reaches the caller's bound — no longer
    // path can produce a result the caller would use.
    if (layer_floor > best.distance || layer_floor >= bound) break;

    // Row 0: insertion-only cells, band j <= k.
    {
      std::int32_t* cur_row = cur->data();
      const std::int32_t* prev_row = prev->data();
      cur_row[0] = kNegInf;
      const std::size_t jhi = std::min(n, k);
      for (std::size_t j = 1; j <= jhi; ++j) {
        cur_row[j] = prev_row[j - 1] + 1;
      }
      tls_cells_evaluated += jhi + 1;
    }
    for (std::size_t i = 1; i <= m; ++i) {
      const std::size_t jlo = i > k ? i - k : 0;
      const std::size_t jhi = std::min(n, i + k);
      if (jlo > jhi) continue;  // row entirely outside the band (i > n + k)
      const char xi = x[i - 1];
      const std::int32_t* prev_up = &(*prev)[(i - 1) * width];
      const std::int32_t* prev_row = &(*prev)[i * width];
      std::int32_t* cur_row = &(*cur)[i * width];
      const std::int32_t* cur_up = &(*cur)[(i - 1) * width];
      std::size_t j = jlo;
      if (j == 0) {
        cur_row[0] = prev_up[0];  // deletion only
        j = 1;
      }
      for (; j <= jhi; ++j) {
        std::int32_t v = (xi == y[j - 1]) ? cur_up[j - 1] : prev_up[j - 1];
        v = std::max(v, prev_up[j]);
        v = std::max(v, prev_row[j - 1] + 1);
        cur_row[j] = v;
      }
      tls_cells_evaluated += jhi - jlo + 1;
    }
    consider(k, (*cur)[m * width + n]);
    std::swap(prev, cur);
  }
  return best;
}

std::uint64_t ContextualCellsEvaluated() { return tls_cells_evaluated; }

void ResetContextualCellsEvaluated() { tls_cells_evaluated = 0; }

double ContextualDistance(std::string_view x, std::string_view y) {
  return ContextualDistanceDetailed(x, y).distance;
}

Rational ContextualDistanceExact(std::string_view x, std::string_view y) {
  const std::size_t m = x.size(), n = y.size();
  std::vector<std::int32_t> profile = MaxInsertionProfile(x, y);
  bool found = false;
  Rational best;
  for (std::size_t k = 0; k < profile.size(); ++k) {
    if (profile[k] < 0) continue;
    Rational cost =
        ContextualPathCostExact(m, n, k, static_cast<std::size_t>(profile[k]));
    if (!found || cost < best) {
      best = cost;
      found = true;
    }
  }
  if (!found) throw std::logic_error("ContextualDistanceExact: no path found");
  return best;
}

}  // namespace cned
