#ifndef CNED_CORE_CONTEXTUAL_H_
#define CNED_CORE_CONTEXTUAL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/harmonic.h"
#include "common/rational.h"
#include "distances/distance.h"

namespace cned {

/// Decomposition of an optimal canonical contextual path.
///
/// By the paper's Lemma 1 an optimal path of edit length `k` performs all
/// `insertions` first, then all `substitutions` (on the longest intermediate
/// string), then all `deletions`. The counts satisfy
/// `k = insertions + substitutions + deletions` and
/// `deletions = |x| - |y| + insertions`.
struct ContextualResult {
  double distance = 0.0;      ///< d_C(x, y)
  std::size_t k = 0;          ///< edit length of the optimal canonical path
  std::size_t insertions = 0; ///< ni
  std::size_t substitutions = 0;  ///< ns
  std::size_t deletions = 0;  ///< nd
};

/// Closed-form cost of a canonical contextual path from a length-`m` string
/// to a length-`n` string with edit length `k` and `ni` insertions:
///
///   sum_{i=m+1}^{m+ni} 1/i  +  ns/(m+ni)  +  sum_{i=n+1}^{n+nd} 1/i
///
/// with nd = m - n + ni and ns = k - ni - nd. Throws std::invalid_argument
/// when (m, n, k, ni) is not a valid decomposition (nd < 0 or ns < 0).
double ContextualPathCost(std::size_t m, std::size_t n, std::size_t k,
                          std::size_t ni, HarmonicTable& harmonic);

/// Exact-rational version of `ContextualPathCost` (for property tests that
/// must be free of floating-point noise). Only valid while the reduced
/// fraction fits in 64 bits — fine for strings of total length <= ~40.
Rational ContextualPathCostExact(std::size_t m, std::size_t n, std::size_t k,
                                 std::size_t ni);

/// The max-insertion profile of the paper's Algorithm 1: element k of the
/// returned vector is the maximum number of insertions over internal edit
/// paths of edit length k from `x` to `y`, or -1 when no such path exists.
/// The vector has |x|+|y|+1 entries.
///
/// Runs the layered DP in O(|x|·|y|·(|x|+|y|)) time and O(|x|·|y|) space
/// (the quadratic-space refinement the paper mentions).
std::vector<std::int32_t> MaxInsertionProfile(std::string_view x,
                                              std::string_view y);

/// d_C(x, y) with the optimal decomposition. Exact Algorithm 1, with three
/// compounding accelerations over the naive cubic DP:
///
///  1. Early layer termination: every operation on an internal path costs
///     at least 1/(|x|+|y|), so a path of edit length k costs at least
///     k/(|x|+|y|) and the layer loop stops once that floor exceeds the
///     best cost found — typically after ~d_C·(|x|+|y|) layers.
///  2. Band limiting: at layer k only cells with |i-j| <= k are reachable
///     (#insertions - #deletions == j - i and both counts are <= k), so
///     each layer fills O(min(|x|·|y|, k·(|x|+|y|))) cells instead of the
///     full (|x|+1)·(|y|+1) table.
///  3. Bounded evaluation: when `bound` is finite the layer loop also stops
///     at k >= bound·(|x|+|y|) (same per-op floor). The result is exact
///     whenever d_C(x,y) < bound and otherwise any value >= bound
///     (possibly +infinity) — the `DistanceBounded` contract.
///
/// The DP planes come from the calling thread's `DpWorkspace`, so the
/// steady-state path performs no heap allocations and the kernel is safe
/// to call concurrently from ParallelFor bodies.
ContextualResult ContextualDistanceDetailed(
    std::string_view x, std::string_view y,
    double bound = std::numeric_limits<double>::infinity());

/// DP cells written by the banded contextual kernel on this thread since
/// the last `ResetContextualCellsEvaluated()`. Instrumentation for the
/// bounded-kernel bench; negligible overhead (one add per layer).
std::uint64_t ContextualCellsEvaluated();
void ResetContextualCellsEvaluated();

/// d_C(x, y). Exact Algorithm 1 (cubic time, quadratic space).
double ContextualDistance(std::string_view x, std::string_view y);

/// d_C(x, y) as an exact rational (small strings only; see
/// `ContextualPathCostExact`).
Rational ContextualDistanceExact(std::string_view x, std::string_view y);

/// `StringDistance` adapter for the exact contextual distance (a proven
/// metric, paper Theorem 1).
class ContextualEditDistance final : public StringDistance {
 public:
  double Distance(std::string_view x, std::string_view y) const override {
    return ContextualDistance(x, y);
  }
  double DistanceBounded(std::string_view x, std::string_view y,
                         double bound) const override {
    return ContextualDistanceDetailed(x, y, bound).distance;
  }
  std::string name() const override { return "dC"; }
  bool is_metric() const override { return true; }
};

}  // namespace cned

#endif  // CNED_CORE_CONTEXTUAL_H_
