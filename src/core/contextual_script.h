#ifndef CNED_CORE_CONTEXTUAL_SCRIPT_H_
#define CNED_CORE_CONTEXTUAL_SCRIPT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cned {

/// Kind of elementary edit operation in an executable script.
enum class EditOpKind { kInsert, kSubstitute, kDelete };

/// One elementary operation, addressed against the *working string at
/// execution time* so a script can be replayed mechanically.
struct EditOp {
  EditOpKind kind = EditOpKind::kSubstitute;
  std::size_t pos = 0;  ///< index in the working string when executed
  char from = '\0';     ///< symbol removed/replaced (unset for insertions)
  char to = '\0';       ///< symbol inserted/written (unset for deletions)
  double cost = 0.0;    ///< contextual cost 1/max(|u|,|v|) of this operation
};

/// A canonical contextual edit script: all insertions first, then all
/// substitutions (performed on the longest intermediate string), then all
/// deletions — the optimal-path shape of the paper's Lemma 1.
struct EditScript {
  std::vector<EditOp> ops;
  double total_cost = 0.0;
  std::size_t k = 0;             ///< edit length (== ops.size())
  std::size_t insertions = 0;
  std::size_t substitutions = 0;
  std::size_t deletions = 0;
};

/// Optimal contextual edit script from `x` to `y` (exact Algorithm 1 with
/// backtracking). Requires the full 3-D DP table; throws std::length_error
/// when (|x|+1)·(|y|+1)·(|x|+|y|+1) exceeds `max_cells`.
EditScript ContextualAlign(std::string_view x, std::string_view y,
                           std::size_t max_cells = std::size_t{1} << 25);

/// Edit script of the heuristic d_C,h: a minimal-edit-length path with the
/// maximum number of insertions, in canonical order. O(|x|·|y|) time/space.
EditScript ContextualAlignHeuristic(std::string_view x, std::string_view y);

/// Replays `script` on `x` and returns the resulting string. Throws
/// std::invalid_argument when an operation's position or `from` symbol does
/// not match the working string (i.e. the script is not valid for `x`).
std::string ApplyEditScript(std::string_view x, const EditScript& script);

/// Renders a script in a compact human-readable form (for examples/debug).
std::string FormatEditScript(const EditScript& script);

}  // namespace cned

#endif  // CNED_CORE_CONTEXTUAL_SCRIPT_H_
