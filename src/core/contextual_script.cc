#include "core/contextual_script.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/harmonic.h"
#include "core/contextual.h"

namespace cned {
namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

// One column of an alignment between x and y.
enum class ColKind { kMatch, kSub, kDel, kIns };
struct Column {
  ColKind kind;
  char xc = '\0';
  char yc = '\0';
};

// Turns an alignment (left-to-right columns) into the canonical executable
// script: insertions first (left to right on a growing string), then
// substitutions (on the longest intermediate string), then deletions (right
// to left on a shrinking string, so recorded positions stay valid).
EditScript BuildCanonicalScript(std::string_view x,
                                const std::vector<Column>& columns) {
  const std::size_t m = x.size();

  EditScript script;
  std::size_t x_seen = 0;     // x symbols passed so far (match/sub/del cols)
  std::size_t inserted = 0;   // insertions emitted so far
  std::vector<std::pair<std::size_t, const Column*>> subs;  // (merged pos, col)
  std::vector<std::pair<std::size_t, const Column*>> dels;

  for (const Column& col : columns) {
    const std::size_t merged_pos = x_seen + inserted;
    switch (col.kind) {
      case ColKind::kIns: {
        EditOp op;
        op.kind = EditOpKind::kInsert;
        op.pos = merged_pos;
        op.to = col.yc;
        op.cost = 1.0 / static_cast<double>(m + inserted + 1);
        script.ops.push_back(op);
        ++inserted;
        break;
      }
      case ColKind::kSub:
        subs.emplace_back(merged_pos, &col);
        ++x_seen;
        break;
      case ColKind::kDel:
        dels.emplace_back(merged_pos, &col);
        ++x_seen;
        break;
      case ColKind::kMatch:
        ++x_seen;
        break;
    }
  }

  const std::size_t peak_len = m + inserted;
  for (const auto& [pos, col] : subs) {
    EditOp op;
    op.kind = EditOpKind::kSubstitute;
    op.pos = pos;
    op.from = col->xc;
    op.to = col->yc;
    op.cost = 1.0 / static_cast<double>(peak_len);
    script.ops.push_back(op);
  }
  std::size_t len = peak_len;
  for (auto it = dels.rbegin(); it != dels.rend(); ++it) {
    EditOp op;
    op.kind = EditOpKind::kDelete;
    op.pos = it->first;
    op.from = it->second->xc;
    op.cost = 1.0 / static_cast<double>(len);
    script.ops.push_back(op);
    --len;
  }

  script.insertions = inserted;
  script.substitutions = subs.size();
  script.deletions = dels.size();
  script.k = script.ops.size();
  script.total_cost = 0.0;
  for (const EditOp& op : script.ops) script.total_cost += op.cost;
  return script;
}

}  // namespace

EditScript ContextualAlign(std::string_view x, std::string_view y,
                           std::size_t max_cells) {
  const std::size_t m = x.size(), n = y.size();
  const std::size_t kmax = m + n;
  const std::size_t width = n + 1;
  const std::size_t plane = (m + 1) * width;
  if ((kmax + 1) > max_cells / std::max<std::size_t>(plane, 1)) {
    throw std::length_error("ContextualAlign: DP table exceeds max_cells");
  }

  // Full 3-D table of Algorithm 1 (layer-major) for backtracking.
  std::vector<std::int32_t> ni((kmax + 1) * plane, kNegInf);
  auto at = [&](std::size_t k, std::size_t i, std::size_t j) -> std::int32_t& {
    return ni[k * plane + i * width + j];
  };

  at(0, 0, 0) = 0;
  {
    bool eq = true;
    for (std::size_t t = 1; t <= std::min(m, n) && eq; ++t) {
      eq = (x[t - 1] == y[t - 1]);
      if (eq) at(0, t, t) = 0;
    }
  }
  for (std::size_t k = 1; k <= kmax; ++k) {
    for (std::size_t j = 1; j <= n; ++j) at(k, 0, j) = at(k - 1, 0, j - 1) + 1;
    for (std::size_t i = 1; i <= m; ++i) {
      at(k, i, 0) = at(k - 1, i - 1, 0);
      for (std::size_t j = 1; j <= n; ++j) {
        std::int32_t best = (x[i - 1] == y[j - 1]) ? at(k, i - 1, j - 1)
                                                   : at(k - 1, i - 1, j - 1);
        best = std::max(best, at(k - 1, i - 1, j));
        best = std::max(best, at(k - 1, i, j - 1) + 1);
        at(k, i, j) = best;
      }
    }
  }

  // Pick the optimal (k*, ni*) by the closed-form cost.
  HarmonicTable& h = GlobalHarmonic();
  double best_cost = std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k <= kmax; ++k) {
    std::int32_t v = at(k, m, n);
    if (v < 0) continue;
    double cost =
        ContextualPathCost(m, n, k, static_cast<std::size_t>(v), h);
    if (cost < best_cost) {
      best_cost = cost;
      best_k = k;
    }
  }

  // Backtrack any path realising (best_k, ni*).
  std::vector<Column> columns;
  std::size_t i = m, j = n, k = best_k;
  while (i > 0 || j > 0) {
    const std::int32_t v = at(k, i, j);
    if (i > 0 && j > 0 && x[i - 1] == y[j - 1] && v == at(k, i - 1, j - 1)) {
      columns.push_back({ColKind::kMatch, x[i - 1], y[j - 1]});
      --i, --j;
    } else if (k > 0 && i > 0 && j > 0 && x[i - 1] != y[j - 1] &&
               v == at(k - 1, i - 1, j - 1)) {
      columns.push_back({ColKind::kSub, x[i - 1], y[j - 1]});
      --i, --j, --k;
    } else if (k > 0 && i > 0 && v == at(k - 1, i - 1, j)) {
      columns.push_back({ColKind::kDel, x[i - 1], '\0'});
      --i, --k;
    } else if (k > 0 && j > 0 && v == at(k - 1, i, j - 1) + 1) {
      columns.push_back({ColKind::kIns, '\0', y[j - 1]});
      --j, --k;
    } else {
      throw std::logic_error("ContextualAlign: backtrack dead end");
    }
  }
  std::reverse(columns.begin(), columns.end());
  EditScript script = BuildCanonicalScript(x, columns);
  return script;
}

EditScript ContextualAlignHeuristic(std::string_view x, std::string_view y) {
  const std::size_t m = x.size(), n = y.size();
  const std::size_t width = n + 1;
  std::vector<std::uint32_t> dist((m + 1) * width);
  std::vector<std::int32_t> ins((m + 1) * width);
  auto d = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
    return dist[i * width + j];
  };
  auto ni = [&](std::size_t i, std::size_t j) -> std::int32_t& {
    return ins[i * width + j];
  };

  for (std::size_t j = 0; j <= n; ++j) {
    d(0, j) = static_cast<std::uint32_t>(j);
    ni(0, j) = static_cast<std::int32_t>(j);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    d(i, 0) = static_cast<std::uint32_t>(i);
    ni(i, 0) = 0;
    for (std::size_t j = 1; j <= n; ++j) {
      const std::uint32_t dd = d(i - 1, j - 1) + (x[i - 1] == y[j - 1] ? 0u : 1u);
      const std::uint32_t ddel = d(i - 1, j) + 1;
      const std::uint32_t dins = d(i, j - 1) + 1;
      const std::uint32_t best = std::min({dd, ddel, dins});
      std::int32_t best_ni = std::numeric_limits<std::int32_t>::min();
      if (best == dd) best_ni = std::max(best_ni, ni(i - 1, j - 1));
      if (best == ddel) best_ni = std::max(best_ni, ni(i - 1, j));
      if (best == dins) best_ni = std::max(best_ni, ni(i, j - 1) + 1);
      d(i, j) = best;
      ni(i, j) = best_ni;
    }
  }

  std::vector<Column> columns;
  std::size_t i = m, j = n;
  while (i > 0 || j > 0) {
    const std::uint32_t dv = d(i, j);
    const std::int32_t nv = ni(i, j);
    if (i > 0 && j > 0 &&
        dv == d(i - 1, j - 1) + (x[i - 1] == y[j - 1] ? 0u : 1u) &&
        nv == ni(i - 1, j - 1)) {
      columns.push_back({x[i - 1] == y[j - 1] ? ColKind::kMatch : ColKind::kSub,
                         x[i - 1], y[j - 1]});
      --i, --j;
    } else if (j > 0 && dv == d(i, j - 1) + 1 && nv == ni(i, j - 1) + 1) {
      columns.push_back({ColKind::kIns, '\0', y[j - 1]});
      --j;
    } else if (i > 0 && dv == d(i - 1, j) + 1 && nv == ni(i - 1, j)) {
      columns.push_back({ColKind::kDel, x[i - 1], '\0'});
      --i;
    } else {
      throw std::logic_error("ContextualAlignHeuristic: backtrack dead end");
    }
  }
  std::reverse(columns.begin(), columns.end());
  return BuildCanonicalScript(x, columns);
}

std::string ApplyEditScript(std::string_view x, const EditScript& script) {
  std::string w(x);
  for (const EditOp& op : script.ops) {
    switch (op.kind) {
      case EditOpKind::kInsert:
        if (op.pos > w.size()) {
          throw std::invalid_argument("ApplyEditScript: insert out of range");
        }
        w.insert(w.begin() + static_cast<std::ptrdiff_t>(op.pos), op.to);
        break;
      case EditOpKind::kSubstitute:
        if (op.pos >= w.size() || w[op.pos] != op.from) {
          throw std::invalid_argument("ApplyEditScript: bad substitution");
        }
        w[op.pos] = op.to;
        break;
      case EditOpKind::kDelete:
        if (op.pos >= w.size() || w[op.pos] != op.from) {
          throw std::invalid_argument("ApplyEditScript: bad deletion");
        }
        w.erase(w.begin() + static_cast<std::ptrdiff_t>(op.pos));
        break;
    }
  }
  return w;
}

std::string FormatEditScript(const EditScript& script) {
  std::ostringstream os;
  for (const EditOp& op : script.ops) {
    switch (op.kind) {
      case EditOpKind::kInsert:
        os << "ins '" << op.to << "' @" << op.pos;
        break;
      case EditOpKind::kSubstitute:
        os << "sub '" << op.from << "'->'" << op.to << "' @" << op.pos;
        break;
      case EditOpKind::kDelete:
        os << "del '" << op.from << "' @" << op.pos;
        break;
    }
    os << " (cost " << op.cost << ")\n";
  }
  os << "total " << script.total_cost << " over k=" << script.k << " ops";
  return os.str();
}

}  // namespace cned
